// Exact MTTDL computation via absorbing continuous-time Markov chains.
//
// Model: one placement group of the code's `num_nodes` nodes. Each live
// node fails at rate lambda; each failed node is repaired (independently,
// in parallel) at rate mu. A failure pattern is fatal iff the code's rank
// oracle says the data is unrecoverable. MTTDL of the group is the expected
// absorption time from the all-healthy state; the system MTTDL divides by
// the number of independent groups a `system_nodes` cluster hosts.
//
// State explosion is avoided by lumping failure patterns under the code's
// automorphism group: two failed-node sets with the same *signature* (e.g.
// "2 nodes down" for a polygon code, "1 complete mirror pair + 1 singleton"
// for RAID+m) behave identically. Signatures keep every chain in this
// library under ~50 states, so the linear solve is exact and instant.
// Correctness of the lumping is validated in tests against the un-lumped
// subset chain and against Monte-Carlo simulation.
//
// The optional unrecoverable-read-error term (params.block_read_error_prob)
// splits each repair transition into a successful and a fatal branch, with
// the fatal probability derived from how many source blocks the repair of
// that node must read through parity reconstructions (plain replica copies
// are not charged).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ec/code.h"
#include "reliability/params.h"

namespace dblrep::rel {

/// Orbit invariant of a failed-node set under the code's symmetry group.
using Signature = std::vector<int>;

/// Computes the signature of `failed` for `code`. Dispatches on the
/// concrete scheme: polygon/replication/RS lump by count, RAID+m by
/// (complete pairs, singletons), local-polygon by (per-local counts sorted,
/// global-node flag). Unknown schemes fall back to the exact subset (no
/// lumping), which is correct but larger.
Signature failure_signature(const ec::CodeScheme& code,
                            const std::set<ec::NodeIndex>& failed);

/// Number of source-block reads that flow through parity reconstructions
/// (not plain copies) when rebuilding node `v` while `failed` (including v)
/// are down. This is the per-stripe read volume charged with
/// block_read_error_prob.
std::size_t parity_read_blocks(const ec::CodeScheme& code,
                               const std::set<ec::NodeIndex>& failed,
                               ec::NodeIndex v);

/// Absorbing-CTMC MTTDL model for one code.
class GroupMarkovModel {
 public:
  GroupMarkovModel(const ec::CodeScheme& code, const ReliabilityParams& params);

  /// Expected time (hours) from all-healthy to data loss for one group.
  double mttdl_group_hours() const { return mttdl_group_hours_; }

  /// System MTTDL in years: group MTTDL / number of groups.
  double mttdl_system_years() const;

  /// Number of disjoint placement groups in the configured system
  /// (floor(system_nodes / code length), at least 1 required).
  std::size_t num_groups() const { return num_groups_; }

  /// Transient (non-absorbing) states in the lumped chain.
  std::size_t num_states() const { return num_states_; }

  /// Stripes hosted by one group given node capacity and block size.
  double stripes_per_group() const { return stripes_per_group_; }

 private:
  void build_and_solve(const ec::CodeScheme& code);

  ReliabilityParams params_;
  std::size_t num_groups_ = 1;
  std::size_t num_states_ = 0;
  double stripes_per_group_ = 1.0;
  double mttdl_group_hours_ = 0.0;
};

/// Monte-Carlo estimate of the group MTTDL (hours) by direct simulation of
/// failures/repairs until data loss, averaged over `trials`. Only feasible
/// for parameter ranges where loss is reasonably likely (tests use inflated
/// failure rates to cross-validate the chain); production parameters would
/// need ~1e9 simulated years per trial.
double simulate_group_mttdl_hours(const ec::CodeScheme& code,
                                  const ReliabilityParams& params,
                                  std::uint64_t seed, int trials);

}  // namespace dblrep::rel
