#include "reliability/markov.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/rng.h"
#include "ec/local_polygon.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/replication.h"
#include "ec/rs.h"

namespace dblrep::rel {

Signature failure_signature(const ec::CodeScheme& code,
                            const std::set<ec::NodeIndex>& failed) {
  if (dynamic_cast<const ec::PolygonCode*>(&code) ||
      dynamic_cast<const ec::ReplicationCode*>(&code) ||
      dynamic_cast<const ec::RsCode*>(&code)) {
    // Fully node-transitive: only the count matters.
    return {static_cast<int>(failed.size())};
  }
  if (const auto* raidm = dynamic_cast<const ec::RaidMirrorCode*>(&code)) {
    int pairs = 0;
    for (std::size_t sym = 0; sym < raidm->num_symbols(); ++sym) {
      const auto [a, b] = raidm->mirror_nodes(sym);
      if (failed.contains(a) && failed.contains(b)) ++pairs;
    }
    const int singletons = static_cast<int>(failed.size()) - 2 * pairs;
    return {pairs, singletons};
  }
  if (const auto* local = dynamic_cast<const ec::LocalPolygonCode*>(&code)) {
    int in_local[2] = {0, 0};
    int global = 0;
    for (ec::NodeIndex node : failed) {
      const int which = local->local_of_node(node);
      if (which < 0) {
        global = 1;
      } else {
        ++in_local[which];
      }
    }
    // The two locals are interchangeable; sort for a canonical form.
    if (in_local[0] < in_local[1]) std::swap(in_local[0], in_local[1]);
    return {in_local[0], in_local[1], global};
  }
  // Fallback: the exact subset is always a valid (un-lumped) signature.
  Signature sig;
  sig.reserve(failed.size());
  for (ec::NodeIndex node : failed) sig.push_back(node);
  return sig;
}

std::size_t parity_read_blocks(const ec::CodeScheme& code,
                               const std::set<ec::NodeIndex>& failed,
                               ec::NodeIndex v) {
  DBLREP_CHECK(failed.contains(v));
  std::size_t reads = 0;
  for (std::size_t slot : code.layout().slots_on_node(v)) {
    const std::size_t symbol = code.layout().symbol_of_slot(slot);
    const auto plan = code.plan_degraded_read(symbol, failed);
    if (!plan.is_ok()) continue;  // unrecoverable; chain treats as absorbed
    // A plain copy of a surviving replica carries no reconstruction risk.
    if (plan->aggregates.size() == 1 && plan->aggregates[0].is_plain_copy()) {
      continue;
    }
    for (const auto& send : plan->aggregates) reads += send.terms.size();
    for (const auto& rec : plan->reconstructions) reads += rec.local_terms.size();
  }
  return reads;
}

namespace {

/// Dense linear solve for expected absorption times of an absorbing CTMC.
/// For transient state i with total outflow q_i and transition rates
/// q_ij to transient j:  q_i * t_i - sum_j q_ij * t_j = 1.
std::vector<double> solve_absorption_times(
    const std::vector<std::map<std::size_t, double>>& transient_rates,
    const std::vector<double>& total_outflow) {
  const std::size_t n = transient_rates.size();
  // Build dense augmented matrix [A | 1].
  std::vector<std::vector<double>> a(n, std::vector<double>(n + 1, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    a[i][i] = total_outflow[i];
    for (const auto& [j, rate] : transient_rates[i]) {
      a[i][j] -= rate;
    }
    a[i][n] = 1.0;
  }
  // Partial-pivot Gaussian elimination. The matrix is a diagonally dominant
  // M-matrix, so this is numerically safe.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    DBLREP_CHECK_MSG(std::abs(a[col][col]) > 1e-300,
                     "singular absorption system");
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c <= n; ++c) a[r][c] -= factor * a[col][c];
    }
  }
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = a[i][n] / a[i][i];
  return t;
}

}  // namespace

GroupMarkovModel::GroupMarkovModel(const ec::CodeScheme& code,
                                   const ReliabilityParams& params)
    : params_(params) {
  DBLREP_CHECK_GE(params.system_nodes, code.num_nodes());
  num_groups_ = params.system_nodes / code.num_nodes();
  const double bytes_per_node_per_stripe =
      static_cast<double>(code.layout().max_slots_per_node()) *
      params.block_size_bytes;
  stripes_per_group_ =
      std::max(1.0, params.node_capacity_bytes / bytes_per_node_per_stripe);
  build_and_solve(code);
}

void GroupMarkovModel::build_and_solve(const ec::CodeScheme& code) {
  const double lambda = params_.failure_rate_per_hour();
  const double mu = params_.repair_rate_per_hour();
  const std::size_t c = code.num_nodes();

  // BFS over signatures from the all-healthy state; keep one representative
  // failed-set per signature (valid because signatures are orbit
  // invariants: rates out of any member of the orbit coincide).
  std::map<Signature, std::size_t> state_of;
  std::vector<std::set<ec::NodeIndex>> representative;
  std::vector<std::map<std::size_t, double>> rates;  // transient -> transient
  std::vector<double> outflow;                       // includes fatal flows

  std::deque<std::size_t> frontier;
  const std::set<ec::NodeIndex> empty;
  state_of[failure_signature(code, empty)] = 0;
  representative.push_back(empty);
  rates.emplace_back();
  outflow.push_back(0.0);
  frontier.push_back(0);

  auto state_for = [&](const std::set<ec::NodeIndex>& failed) -> std::size_t {
    const Signature sig = failure_signature(code, failed);
    const auto it = state_of.find(sig);
    if (it != state_of.end()) return it->second;
    const std::size_t id = representative.size();
    state_of.emplace(sig, id);
    representative.push_back(failed);
    rates.emplace_back();
    outflow.push_back(0.0);
    frontier.push_back(id);
    DBLREP_CHECK_MSG(representative.size() < 5000,
                     "reliability chain state explosion; add a signature for "
                     "this scheme");
    return id;
  };

  while (!frontier.empty()) {
    const std::size_t state = frontier.front();
    frontier.pop_front();
    const std::set<ec::NodeIndex> failed = representative[state];

    // Failure transitions.
    for (ec::NodeIndex v = 0; v < static_cast<ec::NodeIndex>(c); ++v) {
      if (failed.contains(v)) continue;
      std::set<ec::NodeIndex> next = failed;
      next.insert(v);
      outflow[state] += lambda;
      if (code.is_recoverable(next)) {
        // state_for may grow `rates`; resolve it before indexing.
        const std::size_t next_state = state_for(next);
        rates[state][next_state] += lambda;
      }
      // else: flows to the absorbing loss state (outflow only).
    }

    // Repair transitions (parallel repair, one rate mu per failed node).
    for (ec::NodeIndex v : failed) {
      std::set<ec::NodeIndex> next = failed;
      next.erase(v);
      double fatal_fraction = 0.0;
      if (params_.block_read_error_prob > 0.0) {
        const std::size_t reads = parity_read_blocks(code, failed, v);
        if (reads > 0) {
          const double per_stripe =
              1.0 - std::pow(1.0 - params_.block_read_error_prob,
                             static_cast<double>(reads));
          fatal_fraction =
              1.0 - std::pow(1.0 - per_stripe, stripes_per_group_);
        }
      }
      outflow[state] += mu;
      const std::size_t next_state = state_for(next);
      rates[state][next_state] += mu * (1.0 - fatal_fraction);
      // mu * fatal_fraction flows to absorption.
    }
  }

  num_states_ = representative.size();
  const auto times = solve_absorption_times(rates, outflow);
  mttdl_group_hours_ = times[0];
}

double GroupMarkovModel::mttdl_system_years() const {
  return mttdl_group_hours_ / static_cast<double>(num_groups_) / kHoursPerYear;
}

double simulate_group_mttdl_hours(const ec::CodeScheme& code,
                                  const ReliabilityParams& params,
                                  std::uint64_t seed, int trials) {
  DBLREP_CHECK_GT(trials, 0);
  Rng rng(seed);
  const double lambda = params.failure_rate_per_hour();
  const double mu = params.repair_rate_per_hour();
  const std::size_t c = code.num_nodes();
  const double bytes_per_node_per_stripe =
      static_cast<double>(code.layout().max_slots_per_node()) *
      params.block_size_bytes;
  const double stripes =
      std::max(1.0, params.node_capacity_bytes / bytes_per_node_per_stripe);

  double total_hours = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::set<ec::NodeIndex> failed;
    double clock = 0.0;
    for (;;) {
      const std::size_t live = c - failed.size();
      const double total_rate =
          static_cast<double>(live) * lambda +
          static_cast<double>(failed.size()) * mu;
      clock += rng.exponential(total_rate);
      const double pick = rng.uniform(0.0, total_rate);
      if (pick < static_cast<double>(live) * lambda) {
        // A uniformly chosen live node fails.
        auto index = rng.next_below(live);
        ec::NodeIndex v = 0;
        for (;; ++v) {
          if (!failed.contains(v)) {
            if (index == 0) break;
            --index;
          }
        }
        failed.insert(v);
        if (!code.is_recoverable(failed)) break;
      } else {
        // A uniformly chosen failed node completes repair.
        auto index = rng.next_below(failed.size());
        auto it = failed.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(index));
        const ec::NodeIndex v = *it;
        if (params.block_read_error_prob > 0.0) {
          const std::size_t reads = parity_read_blocks(code, failed, v);
          const double per_stripe =
              1.0 - std::pow(1.0 - params.block_read_error_prob,
                             static_cast<double>(reads));
          const double fatal = 1.0 - std::pow(1.0 - per_stripe, stripes);
          if (rng.bernoulli(fatal)) break;
        }
        failed.erase(v);
      }
    }
    total_hours += clock;
  }
  return total_hours / trials;
}

}  // namespace dblrep::rel
