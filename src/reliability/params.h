// Failure/repair model parameters for the MTTDL analysis of Table 1.
//
// The paper computes MTTDL "assuming a 25 node system, using standard node
// failure and repair models available in the literature [Xin et al. 2003]"
// without disclosing the constants. We use an exponential-failure /
// exponential-repair continuous-time Markov model with the parameters
// below; docs/paper_map.md documents the calibration and the residual gap on
// the fault-tolerance-3 codes.
#pragma once

#include <cstddef>

#include "common/check.h"

namespace dblrep::rel {

struct ReliabilityParams {
  /// Mean time between failures of one storage node (hours). 10 years is a
  /// common whole-node figure for the 2014-era commodity hardware the paper
  /// deploys on.
  double node_mtbf_hours = 87600.0;

  /// Mean time to repair a failed node (hours). Declustered rebuild of a
  /// ~1 TB node across a 10 Gbps LAN plus detection lag; 1.5 h calibrates
  /// the 3-rep row of Table 1 to within 20% of the paper's value.
  double node_mttr_hours = 1.5;

  /// Cluster size the paper states for Table 1.
  std::size_t system_nodes = 25;

  /// Per-node storage and block size, used to derive stripes per placement
  /// group (which scales the optional read-error term).
  double node_capacity_bytes = 1.0e12;
  double block_size_bytes = 256.0e6;

  /// Probability that reading one source block during a parity-based
  /// reconstruction hits an unrecoverable error that destroys the stripe.
  /// 0 disables the mechanism (the default model). A 1e-15/bit URE rate
  /// over a 256 MB block corresponds to ~2e-6; exposed as an ablation knob
  /// because RAID-era MTTDL models differ mainly in this term.
  double block_read_error_prob = 0.0;

  double failure_rate_per_hour() const {
    DBLREP_CHECK_GT(node_mtbf_hours, 0.0);
    return 1.0 / node_mtbf_hours;
  }
  double repair_rate_per_hour() const {
    DBLREP_CHECK_GT(node_mttr_hours, 0.0);
    return 1.0 / node_mttr_hours;
  }
};

inline constexpr double kHoursPerYear = 24.0 * 365.25;

}  // namespace dblrep::rel
