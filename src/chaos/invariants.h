// Cluster-wide invariant checkers the chaos harness runs between events.
//
// Each checker is side-effect free on the data plane: state is probed
// through the catalog and DataNode accessors directly (never through the
// client read path), so checking perturbs neither the TrafficMeter nor any
// datanode. Violations come back as human-readable strings; an empty list
// means the invariant held.
//
// The catalog of invariants (see docs/testing.md for the full rationale):
//
//  * Durability -- for every tracked file, as long as each stripe's
//    node-level erasure pattern is within the scheme's tolerance
//    (ec::CodeScheme::is_recoverable, the same rank oracle the reliability
//    engine trusts), the stripe must decode byte-identical to its
//    write-time contents. Beyond tolerance, a decode is allowed to fail --
//    but a decode that *succeeds* must still return the right bytes
//    (silent wrong-data is a violation everywhere). Additionally, every
//    *readable* slot -- parity and replica slots included -- must equal
//    the re-encoding of the write-time data, which catches CRC-valid
//    tampering the decoder's systematic fast path would never read.
//  * Placement -- every live stripe's group has one distinct in-range
//    cluster node per code node, replicas of one symbol land on distinct
//    nodes, and every block a datanode stores is one the catalog maps to
//    it. For files placed while the whole cluster was live, policy
//    promises are asserted strictly: rack_aware spreads within +/-1
//    across racks, group_per_rack pins each local group wholly inside one
//    rack with the global parity node in a third.
//  * Catalog recovery -- at every quiescent instant the metadata plane's
//    durability artifacts (per-shard snapshot + write-ahead journal) must
//    rebuild a catalog whose fingerprint matches the live NameNode's.
//  * Tier hygiene -- no orphaned re-encode scaffolding: every `.raid-tmp`
//    temp file a tier transition (or raid pass) streams into is swapped or
//    deleted before the operation returns, so at every quiescent instant
//    the namespace contains none.
//  * Traffic conservation -- every recorded byte lands in exactly one of
//    the intra-rack / cross-rack / client buckets, the buckets sum to the
//    independently-accumulated total, and per-node sent/received sums
//    agree with the bucket totals. Exact double equality is sound: all
//    values are sums of whole byte counts far below 2^53.
//
// Fingerprints: storage_fingerprint covers the raw disk contents of every
// node (offline disks and corrupted blocks included, via DataNode::peek);
// cluster_fingerprint folds in membership and the traffic totals. Replay
// determinism is asserted on these.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "hdfs/minidfs.h"
#include "net/model.h"

namespace dblrep::chaos {

/// Ground truth for one tracked file, recorded at write time.
struct FileTruth {
  Buffer expected;  // exact write-time contents
  std::size_t block_size = 0;
  /// Placement ran against the full cluster (no down nodes), so the strict
  /// per-policy placement promises apply to this file's stripes.
  bool written_fully_live = true;
};

using TruthMap = std::map<std::string, FileTruth>;

/// FNV-1a over every node's raw stored blocks (address + bytes), in node
/// and address order.
std::uint64_t storage_fingerprint(const hdfs::MiniDfs& dfs);

/// storage_fingerprint + per-node liveness + the four traffic totals.
std::uint64_t cluster_fingerprint(const hdfs::MiniDfs& dfs);

/// Node-level failure pattern of one stripe as the read and repair paths
/// would plan against it: a code-local node is failed iff any of its slots
/// is unreadable (down node, missing block, or CRC-detected corruption).
std::set<ec::NodeIndex> probe_failed_nodes(const hdfs::MiniDfs& dfs,
                                           cluster::StripeId stripe);

void check_durability(const hdfs::MiniDfs& dfs, const TruthMap& truth,
                      std::vector<std::string>& violations);

void check_placement(const hdfs::MiniDfs& dfs, const TruthMap& truth,
                     std::vector<std::string>& violations);

void check_traffic_conservation(const hdfs::MiniDfs& dfs,
                                std::vector<std::string>& violations);

/// Catalog recovery -- the metadata plane's durability artifacts (per-shard
/// snapshot + write-ahead journal) must at every quiescent instant rebuild
/// a catalog fingerprint-identical to the live one. A fresh NameNode is
/// restored from *copies* of the artifacts, so the probe never perturbs the
/// live metadata plane. Skipped while a write transaction is open: open
/// writes are rolled back by recovery by design, so live != rebuilt there
/// (the crash-point fuzzer in recovery_test owns that regime).
void check_catalog_recovery(const hdfs::MiniDfs& dfs,
                            std::vector<std::string>& violations);

/// Tier hygiene -- RaidNode's publish-then-delete swap must never leave its
/// `.raid-tmp` scaffolding published at a quiescent instant: a completed
/// transition swapped it, a failed one deleted it.
void check_tier_hygiene(const hdfs::MiniDfs& dfs,
                        std::vector<std::string>& violations);

/// Network conservation over a net::NetworkModel, valid at any instant
/// (mid-flight included): globally, bytes injected == bytes delivered +
/// bytes in flight (same for transfer counts, and in-flight is
/// non-negative); per link, bytes_in == bytes_out + held_bytes with held
/// bytes/queue depth non-negative; and the sum of per-class delivered
/// bytes equals total delivered. Once the event queue has drained, pass
/// `expect_drained` to additionally require in-flight == 0 and every
/// link's queue empty. Tolerance is exact: every quantity is a sum of
/// whole byte counts far below 2^53.
void check_network_conservation(const net::NetworkModel& model,
                                std::vector<std::string>& violations,
                                bool expect_drained = false);

/// Runs the full battery in the order above.
void check_all(const hdfs::MiniDfs& dfs, const TruthMap& truth,
               std::vector<std::string>& violations);

}  // namespace dblrep::chaos
