// ChaosHarness: deterministic fault-injection runs over MiniDfs.
//
// FoundationDB-style simulation testing, scaled to this repo: a scenario
// is (config, uint64 seed); the harness generates the seed's schedule,
// drives a fresh MiniDfs through it one event at a time -- each event is a
// serial barrier, though the DFS parallelizes freely *inside* an event,
// which is byte-identical to serial execution by the data plane's design
// -- and runs the cluster-wide invariant checkers between steps. The
// trace records every event's outcome and a post-event state fingerprint,
// so two runs agree iff their traces are equal, element by element.
//
// On violation the report carries the seed, the violating trace, and
// (when configured) a greedily minimized event list that still violates.
// chaos_replay (examples/) re-runs any seed from the command line;
// bench/chaos_sweep.cc enumerates schemes x fault mixes x seeds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "common/stats.h"

namespace dblrep::chaos {

/// One executed event: what ran, what it reported (Status codes only --
/// deterministic across thread counts), and the state it left behind.
struct EventOutcome {
  ChaosEvent event;
  std::string outcome;
  std::uint64_t storage_fingerprint = 0;  // disk bytes only
  std::uint64_t fingerprint = 0;          // + membership + traffic totals

  bool operator==(const EventOutcome&) const = default;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::vector<EventOutcome> trace;
  std::vector<std::string> violations;

  std::size_t repair_attempts = 0;
  std::size_t repair_successes = 0;
  std::size_t reads = 0;
  std::size_t read_errors = 0;
  std::size_t writes = 0;
  std::size_t write_errors = 0;

  /// Client-read latencies, split by whether the cluster had down nodes at
  /// the time of the read. Wall-clock: reported, never part of the trace.
  RunningStat read_us;
  RunningStat degraded_read_us;

  double traffic_total_bytes = 0;
  double traffic_intra_rack_bytes = 0;
  double traffic_cross_rack_bytes = 0;
  double traffic_client_bytes = 0;

  std::uint64_t final_storage_fingerprint = 0;
  std::uint64_t final_fingerprint = 0;

  /// Only filled by run_seed when config.minimize_on_violation is set and
  /// the run violated: a (locally) minimal sub-schedule that still does.
  std::vector<ChaosEvent> minimized;

  bool ok() const { return violations.empty(); }
  double repair_success_rate() const {
    return repair_attempts == 0
               ? 1.0
               : static_cast<double>(repair_successes) /
                     static_cast<double>(repair_attempts);
  }
  std::string trace_to_string() const;
};

class ChaosHarness {
 public:
  explicit ChaosHarness(ChaosConfig config) : config_(std::move(config)) {}

  const ChaosConfig& config() const { return config_; }

  /// Generates the seed's schedule and runs it. Replaying the same seed
  /// reproduces the identical trace and final state, byte for byte.
  ChaosReport run_seed(std::uint64_t seed) const;

  /// Runs an explicit event list (a minimized trace, or a hand-built one).
  ChaosReport run_schedule(std::uint64_t seed,
                           const std::vector<ChaosEvent>& events) const;

  /// Greedy backward elimination: drops every event whose removal keeps
  /// the run violating. O(n) replays of <= n events each.
  std::vector<ChaosEvent> minimize(std::uint64_t seed,
                                   std::vector<ChaosEvent> events) const;

 private:
  ChaosConfig config_;
};

/// The layered-repair equivalence invariant, run as twin scenarios: the
/// same seed with ec::layer_plan rewriting off and on must leave every
/// datanode byte-identical after every event, move the same total number
/// of bytes, and never cross racks more often when layered. Returns the
/// violations (empty = equivalent).
std::vector<std::string> check_layering_equivalence(const ChaosConfig& config,
                                                    std::uint64_t seed);

}  // namespace dblrep::chaos
