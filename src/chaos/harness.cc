#include "chaos/harness.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>

#include "ec/registry.h"
#include "exec/thread_pool.h"
#include "hdfs/client.h"
#include "hdfs/raidnode.h"
#include "hdfs/workload_driver.h"

namespace dblrep::chaos {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// SplitMix64 finalizer: derives independent sub-picks from an event's
/// single pick without consuming any run-time randomness.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string code_name(const Status& status) {
  return status_code_name(status.code());
}

/// Payload length for a seeded client write/append: 1..stripes_per_file
/// stripes, with a sub-block tail shaved off some picks to exercise
/// padding. Shared so write and append events draw identical size
/// distributions.
std::size_t seeded_payload_len(const ec::CodeScheme& code,
                               const ChaosConfig& config,
                               std::uint64_t pick) {
  const std::uint64_t sub = mix64(pick);
  const std::size_t stripes =
      1 + sub % std::max<std::size_t>(config.stripes_per_file, 1);
  const std::size_t full = stripes * code.data_blocks() * config.block_size;
  return full - mix64(sub) % config.block_size;
}

/// One in-flight scenario: the cluster under test plus the ground truth
/// and counters the checkers and the report read.
struct Run {
  const ChaosConfig& config;
  hdfs::MiniDfs dfs;
  hdfs::Client client{dfs};  // one client for all streaming events
  hdfs::RaidNode raid{dfs};  // tier transitions (kRetier-classed streams)
  TruthMap truth;
  ChaosReport report;
  std::set<std::string> seen_violations;  // dedup across checker passes
  std::size_t write_seq = 0;
  std::size_t append_seq = 0;
  std::size_t burst_seq = 0;

  Run(const ChaosConfig& cfg, std::uint64_t seed)
      : config(cfg),
        dfs(cfg.topology, seed ^ 0x853c49e6748fea9bULL,
            cfg.pool != nullptr ? cfg.pool : &exec::inline_pool(),
            cfg.dfs_options) {}

  std::uint64_t num_nodes() const { return config.topology.num_nodes; }

  std::vector<std::string> tracked_paths() const {
    std::vector<std::string> paths;
    paths.reserve(truth.size());
    for (const auto& [path, file] : truth) paths.push_back(path);
    return paths;
  }

  void record_truth(const std::string& path, Buffer expected) {
    FileTruth file;
    file.expected = std::move(expected);
    file.block_size = config.block_size;
    file.written_fully_live = dfs.down_nodes().empty();
    truth[path] = std::move(file);
  }

  void add_violation(std::size_t step, const ChaosEvent& event,
                     const std::string& text) {
    if (!seen_violations.insert(text).second) return;
    std::ostringstream os;
    os << "step " << step << " (" << event.to_string() << "): " << text;
    report.violations.push_back(os.str());
  }

  void run_checkers(std::size_t step, const ChaosEvent& event) {
    std::vector<std::string> found;
    check_all(dfs, truth, found);
    for (const std::string& text : found) add_violation(step, event, text);
  }

  std::string apply(std::size_t step, const ChaosEvent& event);
};

std::string Run::apply(std::size_t step, const ChaosEvent& event) {
  std::ostringstream os;
  const auto down = dfs.down_nodes();
  switch (event.kind) {
    case EventKind::kCrashNode: {
      const auto node = static_cast<cluster::NodeId>(event.pick % num_nodes());
      if (down.contains(node)) {
        os << "noop (node " << node << " already down)";
        break;
      }
      os << "crash node " << node << ": " << code_name(dfs.fail_node(node));
      break;
    }
    case EventKind::kOfflineNode: {
      const auto node = static_cast<cluster::NodeId>(event.pick % num_nodes());
      if (down.contains(node)) {
        os << "noop (node " << node << " already down)";
        break;
      }
      os << "offline node " << node << ": "
         << code_name(dfs.offline_node(node));
      break;
    }
    case EventKind::kRestartNode: {
      const auto node = static_cast<cluster::NodeId>(event.pick % num_nodes());
      if (!down.contains(node)) {
        os << "noop (node " << node << " already up)";
        break;
      }
      os << "restart node " << node << ": "
         << code_name(dfs.restart_node(node));
      break;
    }
    case EventKind::kRackOutage: {
      const int rack = static_cast<int>(
          event.pick % static_cast<std::uint64_t>(config.topology.num_racks));
      std::size_t taken = 0;
      for (std::uint64_t n = 0; n < num_nodes(); ++n) {
        const auto node = static_cast<cluster::NodeId>(n);
        if (config.topology.rack_of(node) != rack || down.contains(node)) {
          continue;
        }
        (void)dfs.offline_node(node);
        ++taken;
      }
      os << "rack " << rack << " outage (" << taken << " nodes offline)";
      break;
    }
    case EventKind::kRackRestore: {
      const int rack = static_cast<int>(
          event.pick % static_cast<std::uint64_t>(config.topology.num_racks));
      std::size_t restored = 0;
      for (const cluster::NodeId node : down) {
        if (config.topology.rack_of(node) != rack) continue;
        (void)dfs.restart_node(node);
        ++restored;
      }
      os << "rack " << rack << " restore (" << restored << " nodes back)";
      break;
    }
    case EventKind::kCorruptBlock:
    case EventKind::kTamperBlock: {
      // Deterministic victim selection: all blocks on live nodes, in node
      // and address order (DataNode stores are ordered maps).
      std::vector<std::pair<cluster::NodeId, cluster::SlotAddress>> candidates;
      for (std::uint64_t n = 0; n < num_nodes(); ++n) {
        const auto node = static_cast<cluster::NodeId>(n);
        const auto& dn = dfs.datanode(node);
        if (!dn.is_up()) continue;
        for (const auto& address : dn.stored_addresses()) {
          candidates.emplace_back(node, address);
        }
      }
      if (candidates.empty()) {
        os << "noop (no blocks to corrupt)";
        break;
      }
      const auto& [node, address] =
          candidates[event.pick % candidates.size()];
      auto& dn = dfs.datanode(node);
      const std::uint64_t sub = mix64(event.pick);
      if (event.kind == EventKind::kCorruptBlock) {
        const auto bytes = dn.peek(address);
        const std::size_t byte =
            bytes.is_ok() && !bytes->empty() ? sub % bytes->size() : 0;
        os << "corrupt node " << node << " stripe " << address.stripe
           << " slot " << address.slot << " byte " << byte << ": "
           << code_name(dn.corrupt(address, byte));
      } else {
        // CRC-valid rewrite: the silent-corruption case used to prove the
        // durability checker catches true violations.
        const auto bytes = dn.peek(address);
        const std::size_t size = bytes.is_ok() ? bytes->size() : 0;
        os << "tamper node " << node << " stripe " << address.stripe
           << " slot " << address.slot << ": "
           << code_name(dn.put(address, random_buffer(size, sub)));
      }
      break;
    }
    case EventKind::kClientRead: {
      const auto paths = tracked_paths();
      if (paths.empty()) {
        os << "noop (no files)";
        break;
      }
      const std::string& path = paths[event.pick % paths.size()];
      const FileTruth& file = truth.at(path);
      const std::size_t total_blocks =
          (file.expected.size() + file.block_size - 1) / file.block_size;
      if (total_blocks == 0) {
        os << "noop (empty file)";
        break;
      }
      const std::size_t block = mix64(event.pick) % total_blocks;
      ++report.reads;
      const auto start = Clock::now();
      const auto result = dfs.read_block(path, block);
      const double us = micros_since(start);
      (down.empty() ? report.read_us : report.degraded_read_us).add(us);
      os << "read " << path << " block " << block << ": "
         << code_name(result.status());
      if (result.is_ok()) {
        const std::size_t offset = block * file.block_size;
        const std::size_t want =
            std::min(file.block_size, file.expected.size() - offset);
        if (result->size() < want ||
            std::memcmp(result->data(), file.expected.data() + offset,
                        want) != 0) {
          add_violation(step, event,
                        "durability: read of " + path + " block " +
                            std::to_string(block) +
                            " returned wrong bytes");
        }
      } else {
        ++report.read_errors;
        // A read is allowed to fail only beyond the scheme's tolerance.
        const auto info = dfs.stat(path);
        const auto code = dfs.code_for(path);
        if (info.is_ok() && code.is_ok()) {
          const std::size_t k = (*code)->data_blocks();
          const cluster::StripeId stripe = info->stripes[block / k];
          if ((*code)->is_recoverable(probe_failed_nodes(dfs, stripe))) {
            add_violation(step, event,
                          "durability: read of " + path + " block " +
                              std::to_string(block) +
                              " failed within tolerance: " +
                              result.status().to_string());
          }
        }
      }
      break;
    }
    case EventKind::kClientWrite: {
      const std::string path = "/chaos/w" + std::to_string(write_seq++);
      const auto code = ec::make_code(config.code_spec);
      if (!code.is_ok()) {
        os << "write " << path << ": " << code_name(code.status());
        break;
      }
      const std::size_t len = seeded_payload_len(**code, config, event.pick);
      Buffer payload = random_buffer(len, event.pick);
      ++report.writes;
      const Status status =
          dfs.write_file(path, payload, config.code_spec, config.block_size);
      os << "write " << path << " (" << len << " B): " << code_name(status);
      if (status.is_ok()) {
        record_truth(path, std::move(payload));
      } else {
        ++report.write_errors;
      }
      break;
    }
    case EventKind::kClientPread: {
      const auto paths = tracked_paths();
      if (paths.empty()) {
        os << "noop (no files)";
        break;
      }
      const std::string& path = paths[event.pick % paths.size()];
      const FileTruth& file = truth.at(path);
      if (file.expected.empty()) {
        os << "noop (empty file)";
        break;
      }
      const std::uint64_t sub = mix64(event.pick);
      const std::size_t offset = sub % file.expected.size();
      const std::size_t len = 1 + mix64(sub) % (2 * file.block_size);
      const std::size_t want = std::min(len, file.expected.size() - offset);
      ++report.reads;
      const auto start = Clock::now();
      const auto result = client.pread(path, offset, len);
      const double us = micros_since(start);
      (down.empty() ? report.read_us : report.degraded_read_us).add(us);
      os << "pread " << path << " [" << offset << ", +" << len
         << "): " << code_name(result.status());
      if (result.is_ok()) {
        if (result->size() != want ||
            std::memcmp(result->data(), file.expected.data() + offset,
                        want) != 0) {
          add_violation(step, event,
                        "durability: pread of " + path + " [" +
                            std::to_string(offset) + ", +" +
                            std::to_string(len) +
                            ") returned wrong bytes");
        }
      } else {
        ++report.read_errors;
        // A range read may fail only if some covered stripe is beyond the
        // scheme's tolerance.
        const auto info = dfs.stat(path);
        const auto code = dfs.code_for(path);
        if (info.is_ok() && code.is_ok() && want > 0) {
          const std::size_t k = (*code)->data_blocks();
          const std::size_t first_stripe = (offset / file.block_size) / k;
          const std::size_t last_stripe =
              ((offset + want - 1) / file.block_size) / k;
          bool all_recoverable = true;
          for (std::size_t si = first_stripe;
               si <= last_stripe && si < info->stripes.size(); ++si) {
            if (!(*code)->is_recoverable(
                    probe_failed_nodes(dfs, info->stripes[si]))) {
              all_recoverable = false;
              break;
            }
          }
          if (all_recoverable) {
            add_violation(step, event,
                          "durability: pread of " + path +
                              " failed within tolerance: " +
                              result.status().to_string());
          }
        }
      }
      break;
    }
    case EventKind::kClientAppend: {
      const std::string path = "/chaos/a" + std::to_string(append_seq++);
      const auto code = ec::make_code(config.code_spec);
      if (!code.is_ok()) {
        os << "append " << path << ": " << code_name(code.status());
        break;
      }
      const std::size_t len = seeded_payload_len(**code, config, event.pick);
      Buffer payload = random_buffer(len, event.pick);
      ++report.writes;
      Status status;
      auto writer = client.create(path, config.code_spec, config.block_size);
      if (!writer.is_ok()) {
        status = writer.status();
      } else {
        // Stream in 1.5-block chunks so appends cross both block and
        // stripe boundaries through the handle's sub-stripe buffer.
        const std::size_t chunk =
            std::max<std::size_t>(1, (config.block_size * 3) / 2);
        for (std::size_t off = 0; off < len && status.is_ok();
             off += chunk) {
          status = writer->append(
              ByteSpan(payload).subspan(off, std::min(chunk, len - off)));
        }
        if (status.is_ok()) {
          status = writer->close();
        } else {
          (void)writer->abort();
        }
      }
      os << "append " << path << " (" << len << " B): " << code_name(status);
      if (status.is_ok()) {
        record_truth(path, std::move(payload));
      } else {
        ++report.write_errors;
      }
      break;
    }
    case EventKind::kDeleteFile: {
      const auto paths = tracked_paths();
      if (paths.empty()) {
        os << "noop (no files)";
        break;
      }
      const std::string& path = paths[event.pick % paths.size()];
      const Status status = dfs.delete_file(path);
      os << "delete " << path << ": " << code_name(status);
      if (status.is_ok()) {
        truth.erase(path);
      } else {
        add_violation(step, event,
                      "namespace: delete of tracked file " + path +
                          " failed: " + status.to_string());
      }
      break;
    }
    case EventKind::kWorkloadBurst: {
      const std::string prefix = "/chaos/b" + std::to_string(burst_seq++);
      hdfs::WorkloadOptions wl;
      wl.clients = 1;  // single client: the op sequence is seed-determined
      wl.ops_per_client = 6;
      wl.code_spec = config.code_spec;
      wl.block_size = config.block_size;
      wl.stripes_per_file = std::max<std::size_t>(config.stripes_per_file, 1);
      wl.preload_files = 1;
      wl.path_prefix = prefix;
      wl.fail_nodes = 0;
      wl.repair_concurrently = false;
      wl.seed = event.pick;
      const auto before = dfs.list_files();
      hdfs::WorkloadDriver driver(dfs, wl);
      const Status preload = driver.preload();
      if (!preload.is_ok()) {
        os << "burst " << prefix << " preload: " << code_name(preload);
        break;
      }
      const auto burst = driver.run();
      if (!burst.is_ok()) {
        os << "burst " << prefix << ": " << code_name(burst.status());
        break;
      }
      // Every file the burst created stores the driver's shared payload.
      const std::set<std::string> known(before.begin(), before.end());
      for (const std::string& path : dfs.list_files()) {
        if (!known.contains(path)) record_truth(path, driver.payload());
      }
      report.reads += burst->read.latency_us.count() +
                      burst->degraded.latency_us.count();
      report.read_errors += burst->read.errors + burst->degraded.errors;
      report.writes += burst->write.latency_us.count();
      report.write_errors += burst->write.errors;
      report.read_us.merge(burst->read.latency_us);
      report.degraded_read_us.merge(burst->degraded.latency_us);
      os << "burst " << prefix << ": ops=" << burst->total_ops()
         << " errors=" << burst->total_errors();
      break;
    }
    case EventKind::kRepairNode: {
      const auto node = static_cast<cluster::NodeId>(event.pick % num_nodes());
      ++report.repair_attempts;
      const Status status = dfs.repair_node(node);
      if (status.is_ok()) ++report.repair_successes;
      os << "repair node " << node << ": " << code_name(status);
      break;
    }
    case EventKind::kRepairAll: {
      ++report.repair_attempts;
      const Status status = dfs.repair_all();
      if (status.is_ok()) ++report.repair_successes;
      os << "repair all: " << code_name(status);
      break;
    }
    case EventKind::kScrubRepair: {
      const auto healed = dfs.scrub_repair();
      if (healed.is_ok()) {
        os << "scrub repair: healed " << *healed;
      } else {
        os << "scrub repair: " << code_name(healed.status());
      }
      break;
    }
    case EventKind::kNameNodeCrash: {
      // Odd picks checkpoint first, so both the replay-everything and the
      // snapshot-plus-tail recovery paths run under chaos. Events execute
      // serially (the harness is the serialization point), so no write is
      // open and recovery must land fingerprint-identical.
      const bool checkpoint = (event.pick & 1) != 0;
      if (checkpoint) dfs.snapshot_namenode();
      const std::uint64_t before = dfs.catalog_fingerprint();
      const auto recovered = dfs.crash_namenode();
      if (!recovered.is_ok()) {
        os << "namenode crash: " << code_name(recovered.status());
        add_violation(step, event,
                      "namenode recovery failed: " +
                          recovered.status().to_string());
        break;
      }
      const std::uint64_t after = dfs.catalog_fingerprint();
      os << "namenode crash" << (checkpoint ? " (snapshotted)" : "")
         << ": replayed " << recovered->journal_records_replayed
         << " records";
      if (before != after) {
        add_violation(step, event,
                      "namenode recovery changed the catalog fingerprint");
      }
      break;
    }
    case EventKind::kTierTransition: {
      // Re-encode one tracked file along the tier ladder through the same
      // kRetier-classed publish-then-delete swap the TieringEngine drives.
      // Odd sub-picks land a node crash mid-stream and read the file back
      // *during* the transition: the old layout must stay published (and
      // readable within tolerance) until the swap, the tentpole's
      // always-recoverable invariant.
      const auto paths = tracked_paths();
      if (paths.empty()) {
        os << "noop (no files)";
        break;
      }
      const std::string& path = paths[event.pick % paths.size()];
      const auto info = dfs.stat(path);
      if (!info.is_ok() || !info->sealed) {
        os << "noop (" << path << " not transitionable)";
        break;
      }
      static constexpr const char* kLadder[] = {"3-rep", "heptagon-local",
                                                "rs-10-4"};
      std::size_t target = mix64(event.pick) % 3;
      if (info->code_spec == kLadder[target]) target = (target + 1) % 3;
      const std::uint64_t sub = mix64(mix64(event.pick));
      const bool mid_crash = (sub & 1) != 0;
      const FileTruth& file = truth.at(path);
      const std::size_t total_blocks =
          (file.expected.size() + file.block_size - 1) / file.block_size;
      if (mid_crash) {
        const auto victim =
            static_cast<cluster::NodeId>((sub >> 1) % num_nodes());
        const std::size_t block =
            total_blocks == 0 ? 0 : mix64(sub) % total_blocks;
        raid.set_mid_stream_hook([&, victim, block, step] {
          if (!dfs.down_nodes().contains(victim)) {
            (void)dfs.fail_node(victim);
          }
          if (total_blocks == 0) return;
          ++report.reads;
          const auto start = Clock::now();
          const auto result = dfs.read_block(path, block);
          report.degraded_read_us.add(micros_since(start));
          if (result.is_ok()) {
            const std::size_t offset = block * file.block_size;
            const std::size_t want =
                std::min(file.block_size, file.expected.size() - offset);
            if (result->size() < want ||
                std::memcmp(result->data(), file.expected.data() + offset,
                            want) != 0) {
              add_violation(step, event,
                            "tier: mid-transition read of " + path +
                                " block " + std::to_string(block) +
                                " returned wrong bytes");
            }
          } else {
            ++report.read_errors;
            // Mid-transition, the old layout is still the published one;
            // a read may fail only beyond the scheme's tolerance.
            const auto mid_info = dfs.stat(path);
            const auto code = dfs.code_for(path);
            if (mid_info.is_ok() && code.is_ok()) {
              const std::size_t k = (*code)->data_blocks();
              const cluster::StripeId stripe = mid_info->stripes[block / k];
              if ((*code)->is_recoverable(probe_failed_nodes(dfs, stripe))) {
                add_violation(step, event,
                              "tier: mid-transition read of " + path +
                                  " block " + std::to_string(block) +
                                  " failed within tolerance: " +
                                  result.status().to_string());
              }
            }
          }
        });
      } else {
        raid.set_mid_stream_hook(nullptr);
      }
      const bool live_at_start = down.empty();
      const auto raided = raid.raid_file(path, kLadder[target]);
      raid.set_mid_stream_hook(nullptr);
      os << "tier " << path << " " << info->code_spec << " -> "
         << kLadder[target] << (mid_crash ? " (mid-crash)" : "")
         << ": " << code_name(raided.status());
      if (raided.is_ok()) {
        // The file now lives on a freshly placed layout; the strict
        // placement promises apply iff no node was down at any point of
        // the stream.
        truth.at(path).written_fully_live =
            live_at_start && dfs.down_nodes().empty();
      }
      break;
    }
  }
  return os.str();
}

}  // namespace

std::string ChaosReport::trace_to_string() const {
  std::ostringstream os;
  os << "seed=" << seed << " events=" << trace.size() << "\n";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const EventOutcome& step = trace[i];
    os << "#" << i << " " << step.event.to_string() << " -> " << step.outcome
       << " [storage=" << step.storage_fingerprint
       << " state=" << step.fingerprint << "]\n";
  }
  for (const std::string& violation : violations) {
    os << "VIOLATION: " << violation << "\n";
  }
  return os.str();
}

ChaosReport ChaosHarness::run_schedule(
    std::uint64_t seed, const std::vector<ChaosEvent>& events) const {
  Run run(config_, seed);
  run.report.seed = seed;

  // Preload: the file population every scenario starts from. A preload
  // failure is a config error, reported as a violation so sweeps fail
  // loudly instead of green-lighting empty runs.
  const auto code = ec::make_code(config_.code_spec);
  if (!code.is_ok()) {
    run.report.violations.push_back("preload: " + code.status().to_string());
    return std::move(run.report);
  }
  const std::size_t file_bytes = std::max<std::size_t>(
      config_.stripes_per_file, 1) * (*code)->data_blocks() *
      config_.block_size;
  for (std::size_t f = 0; f < config_.preload_files; ++f) {
    const std::string path = "/chaos/preload/" + std::to_string(f);
    Buffer payload = random_buffer(file_bytes, seed ^ mix64(f + 1));
    const Status status = run.dfs.write_file(path, payload, config_.code_spec,
                                             config_.block_size);
    if (!status.is_ok()) {
      run.report.violations.push_back("preload " + path + ": " +
                                      status.to_string());
      return std::move(run.report);
    }
    run.record_truth(path, std::move(payload));
  }

  const std::size_t cadence = std::max<std::size_t>(config_.check_every, 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EventOutcome step;
    step.event = events[i];
    step.outcome = run.apply(i, events[i]);
    if ((i + 1) % cadence == 0 || i + 1 == events.size()) {
      run.run_checkers(i, events[i]);
    }
    step.storage_fingerprint = storage_fingerprint(run.dfs);
    step.fingerprint = cluster_fingerprint(run.dfs);
    run.report.trace.push_back(std::move(step));
  }
  if (events.empty()) {
    run.run_checkers(0, ChaosEvent{});
  }

  const auto& meter = run.dfs.traffic();
  run.report.traffic_total_bytes = meter.total_bytes();
  run.report.traffic_intra_rack_bytes = meter.intra_rack_bytes();
  run.report.traffic_cross_rack_bytes = meter.cross_rack_bytes();
  run.report.traffic_client_bytes = meter.client_bytes();
  run.report.final_storage_fingerprint = storage_fingerprint(run.dfs);
  run.report.final_fingerprint = cluster_fingerprint(run.dfs);
  return std::move(run.report);
}

ChaosReport ChaosHarness::run_seed(std::uint64_t seed) const {
  ChaosReport report =
      run_schedule(seed, generate_schedule(config_, seed));
  if (!report.ok() && config_.minimize_on_violation) {
    std::vector<ChaosEvent> events;
    events.reserve(report.trace.size());
    for (const EventOutcome& step : report.trace) events.push_back(step.event);
    report.minimized = minimize(seed, std::move(events));
  }
  return report;
}

std::vector<ChaosEvent> ChaosHarness::minimize(
    std::uint64_t seed, std::vector<ChaosEvent> events) const {
  ChaosConfig config = config_;
  config.minimize_on_violation = false;
  const ChaosHarness probe(config);
  for (std::size_t i = events.size(); i-- > 0;) {
    std::vector<ChaosEvent> candidate = events;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
    if (!probe.run_schedule(seed, candidate).ok()) {
      events = std::move(candidate);
    }
  }
  return events;
}

std::vector<std::string> check_layering_equivalence(const ChaosConfig& config,
                                                    std::uint64_t seed) {
  std::vector<std::string> violations;
  ChaosConfig plain = config;
  plain.dfs_options.layered_repair = false;
  plain.minimize_on_violation = false;
  ChaosConfig layered = plain;
  layered.dfs_options.layered_repair = true;

  const ChaosReport a = ChaosHarness(plain).run_seed(seed);
  const ChaosReport b = ChaosHarness(layered).run_seed(seed);

  if (a.trace.size() != b.trace.size()) {
    violations.push_back("layering: trace lengths differ (" +
                         std::to_string(a.trace.size()) + " vs " +
                         std::to_string(b.trace.size()) + ")");
    return violations;
  }
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (a.trace[i].storage_fingerprint != b.trace[i].storage_fingerprint) {
      violations.push_back(
          "layering: datanode bytes diverge after step " + std::to_string(i) +
          " (" + a.trace[i].event.to_string() + ")");
      return violations;
    }
    if (a.trace[i].outcome != b.trace[i].outcome) {
      violations.push_back("layering: outcomes diverge at step " +
                           std::to_string(i) + ": '" + a.trace[i].outcome +
                           "' vs '" + b.trace[i].outcome + "'");
      return violations;
    }
  }
  if (a.traffic_total_bytes != b.traffic_total_bytes) {
    violations.push_back(
        "layering: total traffic differs (" +
        std::to_string(a.traffic_total_bytes) + " vs " +
        std::to_string(b.traffic_total_bytes) + ")");
  }
  if (b.traffic_cross_rack_bytes > a.traffic_cross_rack_bytes) {
    violations.push_back(
        "layering: layered run crossed racks more (" +
        std::to_string(b.traffic_cross_rack_bytes) + " vs " +
        std::to_string(a.traffic_cross_rack_bytes) + ")");
  }
  return violations;
}

}  // namespace dblrep::chaos
