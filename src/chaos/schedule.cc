#include "chaos/schedule.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/rng.h"

namespace dblrep::chaos {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kCrashNode:     return "crash_node";
    case EventKind::kOfflineNode:   return "offline_node";
    case EventKind::kRestartNode:   return "restart_node";
    case EventKind::kRackOutage:    return "rack_outage";
    case EventKind::kRackRestore:   return "rack_restore";
    case EventKind::kCorruptBlock:  return "corrupt_block";
    case EventKind::kTamperBlock:   return "tamper_block";
    case EventKind::kClientRead:    return "client_read";
    case EventKind::kClientWrite:   return "client_write";
    case EventKind::kClientPread:   return "client_pread";
    case EventKind::kClientAppend:  return "client_append";
    case EventKind::kDeleteFile:    return "delete_file";
    case EventKind::kWorkloadBurst: return "workload_burst";
    case EventKind::kRepairNode:    return "repair_node";
    case EventKind::kRepairAll:     return "repair_all";
    case EventKind::kScrubRepair:   return "scrub_repair";
    case EventKind::kNameNodeCrash: return "namenode_crash";
    case EventKind::kTierTransition: return "tier_transition";
  }
  return "unknown";
}

std::string ChaosEvent::to_string() const {
  std::ostringstream os;
  os << "t=" << at << " " << chaos::to_string(kind) << " pick=" << pick;
  return os.str();
}

FaultMix FaultMix::transient_storm() {
  FaultMix mix;
  mix.name = "transient_storm";
  mix.namenode_crash_rate = 0.05;
  mix.transient_rate = 0.6;
  mix.mean_outage_s = 2.0;
  mix.repair_all_rate = 0.15;
  mix.read_rate = 1.2;
  mix.write_rate = 0.2;
  return mix;
}

FaultMix FaultMix::crash_heavy() {
  FaultMix mix;
  mix.name = "crash_heavy";
  mix.namenode_crash_rate = 0.1;
  mix.crash_rate = 0.35;
  mix.restart_rate = 0.1;
  mix.repair_node_rate = 0.25;
  mix.repair_all_rate = 0.2;
  mix.read_rate = 1.0;
  mix.write_rate = 0.25;
  mix.tier_rate = 0.1;
  return mix;
}

FaultMix FaultMix::rack_correlated() {
  FaultMix mix;
  mix.name = "rack_correlated";
  mix.namenode_crash_rate = 0.05;
  mix.rack_outage_rate = 0.2;
  mix.mean_rack_outage_s = 3.0;
  mix.crash_rate = 0.08;
  mix.repair_all_rate = 0.2;
  mix.read_rate = 1.0;
  mix.write_rate = 0.15;
  return mix;
}

FaultMix FaultMix::bit_rot() {
  FaultMix mix;
  mix.name = "bit_rot";
  mix.namenode_crash_rate = 0.05;
  mix.corrupt_rate = 0.6;
  mix.scrub_rate = 0.25;
  mix.read_rate = 1.0;
  mix.write_rate = 0.2;
  mix.repair_all_rate = 0.1;
  return mix;
}

FaultMix FaultMix::mixed() {
  FaultMix mix;
  mix.name = "mixed";
  mix.namenode_crash_rate = 0.08;
  mix.crash_rate = 0.12;
  mix.transient_rate = 0.25;
  mix.rack_outage_rate = 0.06;
  mix.corrupt_rate = 0.2;
  mix.restart_rate = 0.06;
  mix.read_rate = 1.0;
  mix.write_rate = 0.25;
  mix.delete_rate = 0.04;
  mix.burst_rate = 0.08;
  mix.repair_node_rate = 0.12;
  mix.repair_all_rate = 0.15;
  mix.scrub_rate = 0.1;
  mix.tier_rate = 0.1;
  return mix;
}

std::vector<FaultMix> FaultMix::presets() {
  return {transient_storm(), crash_heavy(), rack_correlated(), bit_rot(),
          mixed()};
}

Result<FaultMix> FaultMix::preset(const std::string& name) {
  for (FaultMix& mix : presets()) {
    if (mix.name == name) return std::move(mix);
  }
  return invalid_argument_error("unknown fault mix: " + name);
}

std::vector<ChaosEvent> generate_schedule(const ChaosConfig& config,
                                          std::uint64_t seed) {
  Rng rng(seed);
  sim::EventQueue queue;
  std::vector<ChaosEvent> events;
  const FaultMix& mix = config.mix;
  const double horizon = config.horizon_s;
  const auto num_nodes = static_cast<std::uint64_t>(config.topology.num_nodes);
  const auto num_racks = static_cast<std::uint64_t>(config.topology.num_racks);

  const auto emit = [&](sim::SimTime at, EventKind kind, std::uint64_t pick) {
    events.push_back({at, kind, pick});
  };

  // One Poisson arrival process per enabled category, all drawing from the
  // shared rng in queue order (deterministic: the queue breaks time ties
  // FIFO by schedule sequence). Transient and rack outages pair each
  // outage with its scheduled recovery; the paired restore lands wherever
  // its duration says, interleaving naturally with every other arrival.
  struct Process {
    double rate;
    std::function<void(sim::SimTime)> emit_arrival;
  };
  std::vector<Process> processes;
  processes.push_back({mix.transient_rate, [&](sim::SimTime t) {
    const std::uint64_t node = rng.next_below(num_nodes);
    emit(t, EventKind::kOfflineNode, node);
    emit(t + rng.exponential(1.0 / mix.mean_outage_s),
         EventKind::kRestartNode, node);
  }});
  processes.push_back({mix.rack_outage_rate, [&](sim::SimTime t) {
    const std::uint64_t rack = rng.next_below(num_racks);
    emit(t, EventKind::kRackOutage, rack);
    emit(t + rng.exponential(1.0 / mix.mean_rack_outage_s),
         EventKind::kRackRestore, rack);
  }});
  processes.push_back({mix.crash_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kCrashNode, rng.next_below(num_nodes));
  }});
  processes.push_back({mix.restart_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kRestartNode, rng.next_below(num_nodes));
  }});
  processes.push_back({mix.corrupt_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kCorruptBlock, rng.next_u64());
  }});
  processes.push_back({mix.read_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kClientRead, rng.next_u64());
  }});
  processes.push_back({mix.write_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kClientWrite, rng.next_u64());
  }});
  processes.push_back({mix.pread_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kClientPread, rng.next_u64());
  }});
  processes.push_back({mix.append_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kClientAppend, rng.next_u64());
  }});
  processes.push_back({mix.delete_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kDeleteFile, rng.next_u64());
  }});
  processes.push_back({mix.burst_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kWorkloadBurst, rng.next_u64());
  }});
  processes.push_back({mix.repair_node_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kRepairNode, rng.next_below(num_nodes));
  }});
  processes.push_back({mix.repair_all_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kRepairAll, 0);
  }});
  processes.push_back({mix.scrub_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kScrubRepair, 0);
  }});
  processes.push_back({mix.namenode_crash_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kNameNodeCrash, rng.next_u64());
  }});
  processes.push_back({mix.tier_rate, [&](sim::SimTime t) {
    emit(t, EventKind::kTierTransition, rng.next_u64());
  }});

  // Everything below is synchronous inside this call, so the recursive
  // rescheduler can live on this stack frame (same idiom as
  // cluster/transient_sim.cc).
  std::function<void(std::size_t)> fire = [&](std::size_t i) {
    if (queue.now() > horizon) return;
    processes[i].emit_arrival(queue.now());
    queue.schedule_after(rng.exponential(processes[i].rate),
                         [&fire, i] { fire(i); });
  };
  for (std::size_t i = 0; i < processes.size(); ++i) {
    if (processes[i].rate <= 0.0) continue;
    queue.schedule_after(rng.exponential(processes[i].rate),
                         [&fire, i] { fire(i); });
  }
  queue.run(horizon);

  // Paired restores can land past the horizon; keep them (an outage that
  // never ends would distort every scenario) but order the whole schedule
  // by time, stably so same-time events keep their generation order.
  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

}  // namespace dblrep::chaos
