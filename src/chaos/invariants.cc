#include "chaos/invariants.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "cluster/placement.h"
#include "ec/local_polygon.h"
#include "ec/registry.h"

namespace dblrep::chaos {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

void mix_bytes(std::uint64_t& h, ByteSpan bytes) {
  for (std::uint8_t b : bytes) h = (h ^ b) * kFnvPrime;
}

std::string stripe_label(const std::string& path, cluster::StripeId stripe) {
  return path + " stripe " + std::to_string(stripe);
}

/// Gathers the CRC-verified, reachable slots of a stripe (the same view
/// the read and repair paths plan against) plus the node-level failure
/// pattern: a code-local node is failed iff any of its slots is
/// unreadable.
ec::SlotStore gather_verified(const hdfs::MiniDfs& dfs,
                              cluster::StripeId stripe,
                              std::set<ec::NodeIndex>& failed) {
  const auto& info = dfs.catalog().stripe(stripe);
  const auto& layout = info.code->layout();
  ec::SlotStore store;
  for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
    const cluster::NodeId node = dfs.catalog().node_of({stripe, slot});
    auto bytes = dfs.datanode(node).get({stripe, slot});
    if (bytes.is_ok()) store[slot] = std::move(*bytes);
  }
  for (std::size_t i = 0; i < info.group.size(); ++i) {
    for (std::size_t slot :
         layout.slots_on_node(static_cast<ec::NodeIndex>(i))) {
      if (!store.contains(slot)) {
        failed.insert(static_cast<ec::NodeIndex>(i));
        break;
      }
    }
  }
  return store;
}

}  // namespace

std::set<ec::NodeIndex> probe_failed_nodes(const hdfs::MiniDfs& dfs,
                                           cluster::StripeId stripe) {
  std::set<ec::NodeIndex> failed;
  (void)gather_verified(dfs, stripe, failed);
  return failed;
}

std::uint64_t storage_fingerprint(const hdfs::MiniDfs& dfs) {
  std::uint64_t h = kFnvOffset;
  const std::size_t num_nodes = dfs.topology().num_nodes;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    const auto& dn = dfs.datanode(static_cast<cluster::NodeId>(n));
    for (const auto& address : dn.stored_addresses()) {
      mix_u64(h, address.stripe);
      mix_u64(h, address.slot);
      const auto bytes = dn.peek(address);
      if (bytes.is_ok()) mix_bytes(h, *bytes);
    }
  }
  return h;
}

std::uint64_t cluster_fingerprint(const hdfs::MiniDfs& dfs) {
  std::uint64_t h = storage_fingerprint(dfs);
  const std::size_t num_nodes = dfs.topology().num_nodes;
  for (std::size_t n = 0; n < num_nodes; ++n) {
    mix_u64(h, dfs.datanode(static_cast<cluster::NodeId>(n)).is_up() ? 1 : 0);
  }
  const auto& meter = dfs.traffic();
  mix_u64(h, std::bit_cast<std::uint64_t>(meter.total_bytes()));
  mix_u64(h, std::bit_cast<std::uint64_t>(meter.intra_rack_bytes()));
  mix_u64(h, std::bit_cast<std::uint64_t>(meter.cross_rack_bytes()));
  mix_u64(h, std::bit_cast<std::uint64_t>(meter.client_bytes()));
  return h;
}

void check_durability(const hdfs::MiniDfs& dfs, const TruthMap& truth,
                      std::vector<std::string>& violations) {
  for (const auto& [path, file] : truth) {
    const auto info = dfs.stat(path);
    if (!info.is_ok()) {
      violations.push_back("durability: tracked file " + path +
                           " vanished from the namespace: " +
                           info.status().to_string());
      continue;
    }
    const auto code_result = dfs.code_for(path);
    if (!code_result.is_ok()) {
      violations.push_back("durability: code lookup for tracked file " +
                           path + " failed: " +
                           code_result.status().to_string());
      continue;
    }
    const ec::CodeScheme& code = **code_result;
    const std::size_t k = code.data_blocks();
    const std::size_t stripe_bytes = k * info->block_size;
    for (std::size_t si = 0; si < info->stripes.size(); ++si) {
      const cluster::StripeId stripe = info->stripes[si];
      std::set<ec::NodeIndex> node_failures;
      ec::SlotStore store = gather_verified(dfs, stripe, node_failures);
      const bool recoverable = code.is_recoverable(node_failures);
      auto decoded = code.decode(store, info->block_size);

      if (!decoded.is_ok()) {
        if (recoverable) {
          std::ostringstream os;
          os << "durability: " << stripe_label(path, stripe) << " has "
             << node_failures.size()
             << " failed nodes (within tolerance of "
             << code.params().fault_tolerance
             << ") but failed to decode: " << decoded.status().to_string();
          violations.push_back(os.str());
        }
        continue;  // beyond tolerance, a failed decode is the honest answer
      }

      // A successful decode must return the write-time bytes whether or
      // not the pattern was recoverable: wrong data is never acceptable.
      const std::size_t offset = si * stripe_bytes;
      bool match = true;
      for (std::size_t b = 0; b < k && match; ++b) {
        const std::size_t begin = offset + b * info->block_size;
        if (begin >= file.expected.size()) break;
        const std::size_t want =
            std::min(info->block_size, file.expected.size() - begin);
        match = std::memcmp((*decoded)[b].data(), file.expected.data() + begin,
                            want) == 0;
      }
      if (!match) {
        std::ostringstream os;
        os << "durability: " << stripe_label(path, stripe)
           << " decoded successfully but the bytes differ from the "
              "write-time contents ("
           << (recoverable ? "within" : "beyond") << " tolerance, "
           << node_failures.size() << " failed nodes)";
        violations.push_back(os.str());
      }

      // Slot-level ground truth: every readable slot -- parity and replica
      // slots included -- must equal the re-encoding of the write-time
      // data. This is what catches CRC-valid tampering of a slot the
      // decoder's systematic fast path never touches.
      const std::size_t begin = std::min(offset, file.expected.size());
      const std::size_t len =
          std::min(stripe_bytes, file.expected.size() - begin);
      const auto expected_blocks = ec::chunk_data(
          ByteSpan(file.expected.data() + begin, len), k, info->block_size);
      const auto expected_symbols = code.encode_symbols(expected_blocks);
      for (const auto& [slot, bytes] : store) {
        const std::size_t symbol = code.layout().symbol_of_slot(slot);
        if (bytes != expected_symbols[symbol]) {
          std::ostringstream os;
          os << "durability: " << stripe_label(path, stripe) << " slot "
             << slot << " (symbol " << symbol
             << ") differs from the write-time encoding";
          violations.push_back(os.str());
        }
      }
    }
  }
}

namespace {

/// Strict rack_aware promise: the group spans as many racks as it can and
/// no rack is loaded more than one block-group above another.
void check_rack_spread(const cluster::Topology& topology,
                       const std::vector<cluster::NodeId>& group,
                       const std::string& label,
                       std::vector<std::string>& violations) {
  std::map<int, std::size_t> hist;
  for (cluster::NodeId node : group) ++hist[topology.rack_of(node)];
  const std::size_t expected_racks =
      std::min(topology.num_racks, group.size());
  if (hist.size() != expected_racks) {
    violations.push_back("placement: " + label + " spans " +
                         std::to_string(hist.size()) + " racks, expected " +
                         std::to_string(expected_racks));
    return;
  }
  std::size_t lo = group.size(), hi = 0;
  for (const auto& [rack, count] : hist) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  if (hi - lo > 1) {
    violations.push_back("placement: " + label +
                         " rack load unbalanced (max " + std::to_string(hi) +
                         " vs min " + std::to_string(lo) + ")");
  }
}

/// Can group_per_rack honor the pinning constraint on a fully-live
/// cluster? Mirrors place_local_groups_per_rack's requirements: two racks
/// that can host a whole local each, plus a third distinct rack.
bool group_per_rack_feasible(const cluster::Topology& topology,
                             std::size_t local_size) {
  if (topology.num_racks < 3) return false;
  std::vector<std::size_t> rack_sizes(topology.num_racks, 0);
  for (std::size_t n = 0; n < topology.num_nodes; ++n) {
    ++rack_sizes[static_cast<std::size_t>(
        topology.rack_of(static_cast<cluster::NodeId>(n)))];
  }
  std::size_t big_racks = 0;
  for (std::size_t size : rack_sizes) {
    if (size >= local_size) ++big_racks;
  }
  return big_racks >= 2;
}

void check_group_pinning(const cluster::Topology& topology,
                         const ec::LocalPolygonCode& code,
                         const std::vector<cluster::NodeId>& group,
                         const std::string& label,
                         std::vector<std::string>& violations) {
  // Rack of each local group must be unique per local; the global parity
  // node must sit in yet another rack.
  std::map<int, std::set<int>> local_racks;  // local -> racks used
  for (std::size_t i = 0; i < group.size(); ++i) {
    const int local = code.local_of_node(static_cast<ec::NodeIndex>(i));
    if (local >= 0) {
      local_racks[local].insert(topology.rack_of(group[i]));
    }
  }
  std::set<int> used;
  for (const auto& [local, racks] : local_racks) {
    if (racks.size() != 1) {
      violations.push_back("placement: " + label + " local group " +
                           std::to_string(local) + " straddles " +
                           std::to_string(racks.size()) + " racks");
      return;
    }
    if (!used.insert(*racks.begin()).second) {
      violations.push_back("placement: " + label +
                           " two local groups share one rack");
      return;
    }
  }
  const int global_rack = topology.rack_of(
      group[static_cast<std::size_t>(code.global_node())]);
  if (used.contains(global_rack)) {
    violations.push_back("placement: " + label +
                         " global parity node shares a rack with a local "
                         "group");
  }
}

}  // namespace

void check_placement(const hdfs::MiniDfs& dfs, const TruthMap& truth,
                     std::vector<std::string>& violations) {
  const cluster::Topology& topology = dfs.topology();
  const cluster::PlacementPolicy policy = dfs.options().placement;

  for (const auto& [path, file] : truth) {
    const auto info = dfs.stat(path);
    if (!info.is_ok()) continue;  // durability checker reports this
    const auto code_result = dfs.code_for(path);
    if (!code_result.is_ok()) continue;  // durability checker reports this
    const ec::CodeScheme& code = **code_result;
    for (cluster::StripeId stripe : info->stripes) {
      const auto& group = dfs.catalog().stripe(stripe).group;
      const std::string label = stripe_label(path, stripe);

      if (group.size() != code.num_nodes()) {
        violations.push_back("placement: " + label + " group size " +
                             std::to_string(group.size()) + " != code length " +
                             std::to_string(code.num_nodes()));
        continue;
      }
      const std::set<cluster::NodeId> distinct(group.begin(), group.end());
      if (distinct.size() != group.size()) {
        violations.push_back("placement: " + label +
                             " places two code nodes on one cluster node");
        continue;
      }
      bool in_range = true;
      for (cluster::NodeId node : group) {
        if (node < 0 || static_cast<std::size_t>(node) >= topology.num_nodes) {
          in_range = false;
        }
      }
      if (!in_range) {
        violations.push_back("placement: " + label +
                             " references a node outside the topology");
        continue;
      }
      // Replicas of one symbol on distinct nodes -- the property that makes
      // "inherent double replication" tolerate any single failure.
      for (std::size_t symbol = 0; symbol < code.num_symbols(); ++symbol) {
        const auto replicas = dfs.catalog().replica_nodes(stripe, symbol);
        const std::set<cluster::NodeId> unique(replicas.begin(),
                                               replicas.end());
        if (unique.size() != replicas.size()) {
          violations.push_back("placement: " + label + " symbol " +
                               std::to_string(symbol) +
                               " has two replicas on one node");
        }
      }

      // Strict per-policy promises only hold for placements made against
      // the full cluster; under failures the policies degrade gracefully.
      if (!file.written_fully_live || topology.num_racks <= 1) continue;
      const auto* local = dynamic_cast<const ec::LocalPolygonCode*>(&code);
      if (policy == cluster::PlacementPolicy::kGroupPerRack &&
          local != nullptr &&
          group_per_rack_feasible(
              topology, static_cast<std::size_t>(local->n()))) {
        check_group_pinning(topology, *local, group, label, violations);
      } else if (policy == cluster::PlacementPolicy::kRackAware ||
                 policy == cluster::PlacementPolicy::kGroupPerRack) {
        check_rack_spread(topology, group, label, violations);
      }
    }
  }

  // Catalog <-> datanode consistency: every block an *up* node stores must
  // belong to a live stripe that maps that slot to this node. (An offline
  // node may hold blocks of a since-deleted stripe until it rejoins and is
  // garbage-collected -- that is the stale-replica window, not a bug.)
  for (std::size_t n = 0; n < topology.num_nodes; ++n) {
    const auto& dn = dfs.datanode(static_cast<cluster::NodeId>(n));
    if (!dn.is_up()) continue;
    for (const auto& address : dn.stored_addresses()) {
      if (!dfs.catalog().is_registered(address.stripe)) {
        violations.push_back(
            "catalog: node " + std::to_string(n) + " stores stripe " +
            std::to_string(address.stripe) + " slot " +
            std::to_string(address.slot) + " of an unregistered stripe");
        continue;
      }
      if (dfs.catalog().node_of(address) != static_cast<cluster::NodeId>(n)) {
        violations.push_back("catalog: node " + std::to_string(n) +
                             " stores stripe " +
                             std::to_string(address.stripe) + " slot " +
                             std::to_string(address.slot) +
                             " that the catalog maps elsewhere");
      }
    }
  }
}

void check_traffic_conservation(const hdfs::MiniDfs& dfs,
                                std::vector<std::string>& violations) {
  const auto& meter = dfs.traffic();
  const double total = meter.total_bytes();
  const double intra = meter.intra_rack_bytes();
  const double cross = meter.cross_rack_bytes();
  const double client = meter.client_bytes();

  const auto report = [&](const std::string& what) {
    std::ostringstream os;
    os << "traffic: " << what << " (total=" << total << " intra=" << intra
       << " cross=" << cross << " client=" << client << ")";
    violations.push_back(os.str());
  };

  if (intra < 0 || cross < 0 || client < 0 || total < 0) {
    report("negative bucket");
    return;
  }
  // Whole byte counts well below 2^53: sums are exact, equality is exact.
  if (intra + cross + client != total) {
    report("buckets do not sum to total");
  }
  double sent = 0, received = 0;
  for (std::size_t n = 0; n < dfs.topology().num_nodes; ++n) {
    sent += meter.node_sent_bytes(static_cast<cluster::NodeId>(n));
    received += meter.node_received_bytes(static_cast<cluster::NodeId>(n));
  }
  if (sent != total) {
    std::ostringstream os;
    os << "per-node sent sum " << sent << " != total " << total;
    report(os.str());
  }
  if (received != intra + cross) {
    std::ostringstream os;
    os << "per-node received sum " << received
       << " != node-to-node bytes " << intra + cross;
    report(os.str());
  }
}

void check_catalog_recovery(const hdfs::MiniDfs& dfs,
                            std::vector<std::string>& violations) {
  const hdfs::NameNode& live = dfs.namenode();
  // Open writes are rolled back by recovery by design; the crash-point
  // fuzzer in recovery_test owns that regime.
  if (live.has_pending_writes()) return;

  // The scratch NameNode outlives this call only through its restore():
  // own the schemes it resolves so the catalog's raw pointers stay valid
  // for the fingerprint below.
  auto schemes = std::make_shared<
      std::map<std::string, std::unique_ptr<ec::CodeScheme>>>();
  hdfs::SchemeResolver resolver =
      [schemes](const std::string& spec) -> Result<const ec::CodeScheme*> {
    auto it = schemes->find(spec);
    if (it == schemes->end()) {
      auto code = ec::make_code(spec);
      if (!code.is_ok()) return code.status();
      it = schemes->emplace(spec, std::move(*code)).first;
    }
    return it->second.get();
  };

  hdfs::NameNode scratch(
      dfs.topology(), resolver,
      hdfs::NameNodeOptions{.shards = live.num_shards(),
                            .snapshot_every = 0});
  std::vector<Buffer> snapshots, journals;
  for (std::size_t s = 0; s < live.num_shards(); ++s) {
    snapshots.push_back(live.snapshot_bytes(s));
    journals.push_back(live.journal_bytes(s));
  }
  const auto report =
      scratch.restore(std::move(snapshots), std::move(journals));
  if (!report.is_ok()) {
    violations.push_back("catalog recovery: restore failed: " +
                         report.status().to_string());
    return;
  }
  if (scratch.fingerprint() != live.fingerprint()) {
    std::ostringstream os;
    os << "catalog recovery: rebuilt fingerprint "
       << scratch.fingerprint() << " != live fingerprint "
       << live.fingerprint() << " (replayed "
       << report->journal_records_replayed << " records over "
       << live.num_shards() << " shards)";
    violations.push_back(os.str());
  }
}

void check_network_conservation(const net::NetworkModel& model,
                                std::vector<std::string>& violations,
                                bool expect_drained) {
  const auto report = [&](const std::string& what) {
    violations.push_back("network: " + what);
  };

  // Global books: injected, delivered, and in-flight are independently
  // accumulated, so their balance is a real check. All values are sums of
  // whole byte counts far below 2^53 -- equality is exact.
  const double injected = model.injected_bytes();
  const double delivered = model.delivered_bytes();
  const double in_flight = model.in_flight_bytes();
  if (in_flight < 0) {
    std::ostringstream os;
    os << "negative in-flight bytes " << in_flight;
    report(os.str());
  }
  if (delivered + in_flight != injected) {
    std::ostringstream os;
    os << "bytes leak: injected " << injected << " != delivered " << delivered
       << " + in-flight " << in_flight;
    report(os.str());
  }
  if (model.transfers_delivered() > model.transfers_injected()) {
    std::ostringstream os;
    os << "delivered " << model.transfers_delivered()
       << " transfers but only " << model.transfers_injected()
       << " were injected";
    report(os.str());
  }
  double per_class = 0;
  for (std::size_t c = 0; c < net::kNumTransferClasses; ++c) {
    per_class +=
        model.delivered_class_bytes(static_cast<net::TransferClass>(c));
  }
  if (per_class != delivered) {
    std::ostringstream os;
    os << "per-class delivered sum " << per_class << " != delivered total "
       << delivered;
    report(os.str());
  }

  // Per-link books: every byte that entered a link either left it or is
  // still held there.
  for (std::size_t id = 0; id < model.num_links(); ++id) {
    const net::LinkStats& link = model.link(id);
    if (link.held_bytes < 0) {
      std::ostringstream os;
      os << "link " << link.name << " holds negative bytes "
         << link.held_bytes;
      report(os.str());
    }
    if (link.bytes_out + link.held_bytes != link.bytes_in) {
      std::ostringstream os;
      os << "link " << link.name << " leaks: in " << link.bytes_in
         << " != out " << link.bytes_out << " + held " << link.held_bytes;
      report(os.str());
    }
    if (expect_drained && (link.held_bytes != 0 || link.queue_depth != 0)) {
      std::ostringstream os;
      os << "link " << link.name << " not drained: held " << link.held_bytes
         << " depth " << link.queue_depth;
      report(os.str());
    }
  }
  if (expect_drained &&
      (in_flight != 0 || model.transfers_in_flight() != 0)) {
    std::ostringstream os;
    os << "queue drained but " << in_flight << " bytes / "
       << model.transfers_in_flight() << " transfers still in flight";
    report(os.str());
  }
}

void check_tier_hygiene(const hdfs::MiniDfs& dfs,
                        std::vector<std::string>& violations) {
  for (const std::string& path : dfs.list_files()) {
    if (path.ends_with(".raid-tmp")) {
      violations.push_back("tier: orphaned transition temp file " + path);
    }
  }
}

void check_all(const hdfs::MiniDfs& dfs, const TruthMap& truth,
               std::vector<std::string>& violations) {
  check_durability(dfs, truth, violations);
  check_placement(dfs, truth, violations);
  check_catalog_recovery(dfs, violations);
  check_tier_hygiene(dfs, violations);
  check_traffic_conservation(dfs, violations);
}

}  // namespace dblrep::chaos
