// Terasort MapReduce simulator reproducing the paper's Figs. 4 and 5.
//
// The paper runs Terasort at load points 25..100% on two testbeds and
// reports job execution time, network traffic, and data locality per
// coding scheme. This simulator models exactly the mechanisms those
// metrics depend on:
//
//  * map tasks are assigned by Hadoop's delay scheduler over the block
//    placement the chosen code induces (sched/);
//  * a map task reads its block from local disk, or -- when remote -- from
//    a replica holder's disk across the shared switch; disks and the
//    switch are fluid processor-sharing resources, so remote fetches slow
//    both the fetching task and the serving node's local readers;
//  * remote task launches also pay a fixed streaming/setup penalty
//    (observed in the paper's laptop-class testbed);
//  * "network traffic" counts map-input bytes that crossed the network
//    (remote fetches and on-the-fly degraded reads) plus control-plane
//    overhead; Terasort's shuffle is simulated for job time and reported
//    separately, matching the scale of the paper's traffic panels;
//  * with injected node failures, a task whose every replica holder is
//    down performs an on-the-fly repair (Section 3.1): its read volume is
//    the repair plan's network_bytes -- 3 blocks for a pentagon
//    doubly-lost block vs 9 for (10,9) RAID+m.
//
// Absolute seconds depend on service-time calibration (documented in
// docs/paper_map.md); the cross-code comparisons do not.
#pragma once

#include <set>
#include <string>

#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/code.h"
#include "sched/schedulers.h"

namespace dblrep::mapred {

struct JobConfig {
  cluster::Topology topology;
  int map_slots = 2;
  int reduce_slots = 1;
  double block_bytes = 128e6;
  double load = 1.0;

  // Service model (calibrated to the paper's set-up 1 band of 70-110 s).
  double startup_seconds = 20.0;       // job submission + JVM spin-up
  double map_cpu_seconds = 45.0;       // sort/spill per 128 MB block
  double reduce_tail_seconds = 15.0;   // merge + write after shuffle
  double remote_penalty_seconds = 12.0;  // per-task remote streaming cost
  double task_stagger_seconds = 1.0;   // heartbeat launch spacing per node
  double overhead_traffic_bytes = 100e6;  // control-plane chatter per job

  /// Cluster nodes that are down during the job (failure injection).
  std::set<cluster::NodeId> down_nodes;

  int trials = 5;
  std::uint64_t seed = 42;
};

struct JobMetrics {
  double job_seconds = 0;
  double map_input_traffic_bytes = 0;  // the paper's "network traffic"
  double shuffle_traffic_bytes = 0;    // reported separately
  double locality = 0;                 // fraction of local map tasks
  double degraded_read_tasks = 0;      // served via on-the-fly repair
  double degraded_read_bytes = 0;      // network bytes of those repairs
  double unrunnable_tasks = 0;         // block unrecoverable (data loss)
};

/// Runs `trials` independent simulations of a Terasort job over a
/// `code`-encoded input using `scheduler` for map-task assignment, and
/// returns per-metric means.
JobMetrics run_terasort(const ec::CodeScheme& code, sched::Scheduler& scheduler,
                        const JobConfig& config);

/// The paper's experimental configurations.
JobConfig setup1_config();  // 25 nodes, 2 map + 1 reduce slots, 128 MB
JobConfig setup2_config();  // 9 nodes, 4 map + 2 reduce slots, 512 MB

}  // namespace dblrep::mapred
