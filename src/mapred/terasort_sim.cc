#include "mapred/terasort_sim.h"

#include <algorithm>
#include <limits>

#include "sched/workload.h"

namespace dblrep::mapred {

namespace {

/// One map task's input-read phase as a fluid flow: it draws on a source
/// disk (shared with that node's other readers) and, when crossing the
/// network, on the switch fabric (shared with all other remote flows).
struct ReadFlow {
  std::size_t task = 0;
  double start_time = 0;
  double remaining_bytes = 0;
  cluster::NodeId disk_node = 0;  // whose disk serves the bytes
  bool uses_net = false;
  bool active = false;
  bool done = false;
  double finish_time = 0;
};

/// Advances the fluid processor-sharing system until all flows finish.
/// Rates: disk share = disk_bps / readers(disk); network flows additionally
/// capped by nic and switch_bps / active_net_flows.
void run_fluid_reads(std::vector<ReadFlow>& flows,
                     const cluster::Topology& topology) {
  double now = 0;
  for (;;) {
    // Activate flows whose start time has arrived.
    std::size_t disk_readers_total = 0;
    std::vector<int> disk_readers(topology.num_nodes, 0);
    int net_flows = 0;
    double next_activation = std::numeric_limits<double>::infinity();
    bool any_pending = false;
    for (auto& flow : flows) {
      if (flow.done) continue;
      if (!flow.active) {
        if (flow.start_time <= now) {
          flow.active = true;
        } else {
          next_activation = std::min(next_activation, flow.start_time);
          any_pending = true;
          continue;
        }
      }
      ++disk_readers[static_cast<std::size_t>(flow.disk_node)];
      ++disk_readers_total;
      if (flow.uses_net) ++net_flows;
    }
    if (disk_readers_total == 0) {
      if (!any_pending) return;  // all done
      now = next_activation;
      continue;
    }
    // Per-flow rates under the current population.
    auto rate_of = [&](const ReadFlow& flow) {
      double rate = topology.disk_bytes_per_sec /
                    disk_readers[static_cast<std::size_t>(flow.disk_node)];
      if (flow.uses_net) {
        rate = std::min(rate, topology.nic_bytes_per_sec);
        rate = std::min(rate, topology.switch_bytes_per_sec / net_flows);
      }
      return rate;
    };
    // Next event: earliest flow completion or activation.
    double next_event = next_activation;
    for (const auto& flow : flows) {
      if (flow.done || !flow.active) continue;
      next_event =
          std::min(next_event, now + flow.remaining_bytes / rate_of(flow));
    }
    // Advance everyone to the event time.
    const double dt = next_event - now;
    for (auto& flow : flows) {
      if (flow.done || !flow.active) continue;
      flow.remaining_bytes -= dt * rate_of(flow);
      if (flow.remaining_bytes <= 1e-6) {
        flow.done = true;
        flow.finish_time = next_event;
      }
    }
    now = next_event;
  }
}

}  // namespace

JobMetrics run_terasort(const ec::CodeScheme& code, sched::Scheduler& scheduler,
                        const JobConfig& config) {
  DBLREP_CHECK_GT(config.trials, 0);
  Rng rng(config.seed);
  JobMetrics totals;

  const std::size_t num_nodes = config.topology.num_nodes;
  const std::size_t num_tasks =
      sched::tasks_for_load(config.load, num_nodes, config.map_slots);

  for (int trial = 0; trial < config.trials; ++trial) {
    Rng trial_rng = rng.fork();
    sched::Workload workload =
        sched::make_workload(code, num_nodes, config.map_slots, num_tasks,
                             trial_rng);

    // Apply failure injection: down nodes serve no replicas and run no
    // tasks. Remember the original replica holders for degraded reads.
    std::vector<std::vector<sched::NodeId>> all_locations;
    all_locations.reserve(workload.problem.tasks.size());
    for (auto& task : workload.problem.tasks) {
      all_locations.push_back(task.locations);
      if (!config.down_nodes.empty()) {
        std::erase_if(task.locations, [&](sched::NodeId n) {
          return config.down_nodes.contains(n);
        });
      }
    }
    if (!config.down_nodes.empty()) {
      workload.problem.node_slots.assign(num_nodes, config.map_slots);
      for (cluster::NodeId n : config.down_nodes) {
        workload.problem.node_slots[static_cast<std::size_t>(n)] = 0;
      }
    }

    // Classify tasks up front: directly servable, degraded (on-the-fly
    // repair, Section 3.1), or unrunnable (data loss).
    double input_traffic = config.overhead_traffic_bytes;
    double degraded = 0;
    double degraded_bytes = 0;
    double unrunnable = 0;
    struct TaskPlanInfo {
      bool runnable = true;
      bool is_degraded = false;
      double read_bytes = 0;
      cluster::NodeId remote_source = 0;  // disk serving a non-local read
    };
    std::vector<TaskPlanInfo> task_plan(workload.problem.tasks.size());
    for (std::size_t t = 0; t < workload.problem.tasks.size(); ++t) {
      auto& info = task_plan[t];
      info.read_bytes = config.block_bytes;
      const auto& task = workload.problem.tasks[t];
      if (!task.locations.empty()) {
        info.remote_source = task.locations[0];
        continue;
      }
      // Every replica holder is down: plan the on-the-fly repair.
      const auto& placement = workload.stripes[task.stripe];
      std::set<ec::NodeIndex> failed;
      for (std::size_t i = 0; i < placement.group.size(); ++i) {
        if (config.down_nodes.contains(placement.group[i])) {
          failed.insert(static_cast<ec::NodeIndex>(i));
        }
      }
      const auto plan = code.plan_degraded_read(task.symbol, failed);
      if (!plan.is_ok()) {
        info.runnable = false;  // data loss: the block is unrecoverable
        ++unrunnable;
        continue;
      }
      info.is_degraded = true;
      ++degraded;
      info.read_bytes = static_cast<double>(
          plan->network_bytes(config.block_bytes, code.sub_chunks()));
      // Approximation: charge the read against the first contributing
      // node's disk (the fan-in of partial parities is spread thinner).
      info.remote_source = placement.group[static_cast<std::size_t>(
          plan->aggregates[0].from_node)];
    }

    // Execute in waves: when failures shrink capacity below the task
    // count, leftover tasks run after the current wave drains (as Hadoop
    // does); each wave is an assignment plus a fluid read simulation.
    std::vector<std::size_t> pending;
    for (std::size_t t = 0; t < workload.problem.tasks.size(); ++t) {
      if (task_plan[t].runnable) pending.push_back(t);
    }
    double map_makespan = 0;
    std::size_t local_tasks = 0;
    std::size_t assigned_tasks = 0;
    while (!pending.empty()) {
      sched::AssignmentProblem wave_problem;
      wave_problem.num_nodes = workload.problem.num_nodes;
      wave_problem.slots_per_node = workload.problem.slots_per_node;
      wave_problem.node_slots = workload.problem.node_slots;
      for (std::size_t t : pending) {
        wave_problem.tasks.push_back(workload.problem.tasks[t]);
      }
      const sched::Assignment assignment =
          scheduler.assign(wave_problem, trial_rng);

      std::vector<ReadFlow> flows;
      std::vector<double> penalties;
      std::vector<int> launched_on(num_nodes, 0);
      std::vector<std::size_t> still_pending;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const std::size_t t = pending[i];
        const sched::NodeId node = assignment.task_node[i];
        if (node == sched::kUnassignedNode) {
          still_pending.push_back(t);
          continue;
        }
        ++assigned_tasks;
        if (assignment.is_local[i]) ++local_tasks;
        ReadFlow flow;
        flow.task = t;
        flow.start_time = config.task_stagger_seconds *
                          launched_on[static_cast<std::size_t>(node)]++;
        flow.remaining_bytes = task_plan[t].read_bytes;
        if (assignment.is_local[i]) {
          flow.disk_node = node;
          flow.uses_net = false;
          penalties.push_back(0.0);
        } else {
          flow.disk_node = task_plan[t].remote_source;
          flow.uses_net = true;
          input_traffic += task_plan[t].read_bytes;
          if (task_plan[t].is_degraded) {
            degraded_bytes += task_plan[t].read_bytes;
          }
          penalties.push_back(config.remote_penalty_seconds);
        }
        flows.push_back(flow);
      }
      if (flows.empty()) {
        // No capacity at all (the whole cluster is down): the remaining
        // tasks can never run.
        unrunnable += static_cast<double>(still_pending.size());
        break;
      }
      run_fluid_reads(flows, config.topology);
      double wave_makespan = 0;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        wave_makespan =
            std::max(wave_makespan, flows[i].finish_time +
                                        config.map_cpu_seconds + penalties[i]);
      }
      map_makespan += wave_makespan;
      pending = std::move(still_pending);
    }
    const double locality_fraction =
        assigned_tasks > 0
            ? static_cast<double>(local_tasks) / static_cast<double>(assigned_tasks)
            : 1.0;

    // Terasort shuffle: map output == input, spread across reducers on
    // every live node; the (1 - 1/live) fraction crosses the switch.
    const std::size_t live_nodes = num_nodes - config.down_nodes.size();
    const double input_bytes =
        static_cast<double>(num_tasks) * config.block_bytes;
    const double shuffle_bytes =
        live_nodes > 0
            ? input_bytes * (1.0 - 1.0 / static_cast<double>(live_nodes))
            : 0.0;
    const double shuffle_seconds =
        shuffle_bytes / config.topology.switch_bytes_per_sec;

    totals.job_seconds += config.startup_seconds + map_makespan +
                          shuffle_seconds + config.reduce_tail_seconds;
    totals.map_input_traffic_bytes += input_traffic;
    totals.shuffle_traffic_bytes += shuffle_bytes;
    totals.locality += locality_fraction;
    totals.degraded_read_tasks += degraded;
    totals.degraded_read_bytes += degraded_bytes;
    totals.unrunnable_tasks += unrunnable;
  }

  const double n = config.trials;
  totals.job_seconds /= n;
  totals.map_input_traffic_bytes /= n;
  totals.shuffle_traffic_bytes /= n;
  totals.locality /= n;
  totals.degraded_read_tasks /= n;
  totals.degraded_read_bytes /= n;
  totals.unrunnable_tasks /= n;
  return totals;
}

JobConfig setup1_config() {
  JobConfig config;
  config.topology = cluster::setup1_topology();
  config.map_slots = 2;
  config.reduce_slots = 1;
  config.block_bytes = 128e6;
  config.map_cpu_seconds = 45.0;   // dual-core laptops sorting 128 MB
  config.startup_seconds = 20.0;
  config.remote_penalty_seconds = 12.0;
  return config;
}

JobConfig setup2_config() {
  JobConfig config;
  config.topology = cluster::setup2_topology();
  config.map_slots = 4;
  config.reduce_slots = 2;
  config.block_bytes = 512e6;
  config.map_cpu_seconds = 60.0;   // 4-core servers sorting 512 MB
  config.startup_seconds = 20.0;
  // Server-class machines stream remote blocks with far less overhead
  // than the laptops of set-up 1.
  config.remote_penalty_seconds = 8.0;
  return config;
}

}  // namespace dblrep::mapred
