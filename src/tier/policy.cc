#include "tier/policy.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace dblrep::tier {

namespace {

double env_double(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) return parsed;
  }
  return fallback;
}

/// Options override > DBLREP_TIER_HOT / DBLREP_TIER_COLD > {4096, 1024}.
/// With a ladder longer than three rungs the extra thresholds interpolate
/// geometrically between hot and cold.
std::vector<double> resolve_thresholds(const TieringPolicyOptions& options,
                                       std::size_t rungs) {
  if (options.demote_below.size() == rungs) return options.demote_below;
  const double hot = env_double("DBLREP_TIER_HOT", 4096.0);
  const double cold = env_double("DBLREP_TIER_COLD", 1024.0);
  std::vector<double> out(rungs, hot);
  if (rungs >= 2) {
    const double ratio =
        rungs > 1 ? std::pow(cold / hot, 1.0 / static_cast<double>(rungs - 1))
                  : 1.0;
    for (std::size_t t = 1; t < rungs; ++t) out[t] = out[t - 1] * ratio;
    out.back() = cold;
  }
  return out;
}

}  // namespace

TieringPolicy::TieringPolicy(TieringPolicyOptions options)
    : ladder_(options.ladder.empty()
                  ? TieringPolicyOptions{}.ladder
                  : std::move(options.ladder)),
      demote_below_(resolve_thresholds(options, ladder_.size() - 1)),
      hysteresis_(std::max(options.promote_hysteresis, 1.0)),
      min_residency_s_(std::max(options.min_residency_s, 0.0)) {}

Result<std::size_t> TieringPolicy::tier_of(const std::string& code_spec) const {
  const auto it = std::find(ladder_.begin(), ladder_.end(), code_spec);
  if (it == ladder_.end()) {
    return invalid_argument_error("code spec off the tier ladder: " +
                                  code_spec);
  }
  return static_cast<std::size_t>(it - ladder_.begin());
}

std::size_t TieringPolicy::target_tier(double heat,
                                       std::size_t current) const {
  std::size_t t = std::min(current, ladder_.size() - 1);
  // Demote rung by rung while the heat sits below the current rung's
  // threshold; a stone-cold file falls all the way to the coldest tier in
  // one decision.
  while (t + 1 < ladder_.size() && heat < demote_below_[t]) ++t;
  // Promote while the heat clears the band above (threshold x hysteresis).
  // The two loops cannot both move: demotion required heat <
  // demote_below_[t - 1] at the rung it left, and hysteresis_ >= 1.
  while (t > 0 && heat >= demote_below_[t - 1] * hysteresis_) --t;
  return t;
}

}  // namespace dblrep::tier
