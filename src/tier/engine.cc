#include "tier/engine.h"

#include <algorithm>
#include <cstdlib>

namespace dblrep::tier {

namespace {

/// Options override > DBLREP_TIER_MAX_BYTES > unlimited.
std::size_t resolve_max_bytes(const TieringEngineOptions& options) {
  if (options.max_bytes_per_pass > 0) return options.max_bytes_per_pass;
  if (const char* env = std::getenv("DBLREP_TIER_MAX_BYTES")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;  // unlimited
}

bool is_temp_path(const std::string& path) {
  return path.ends_with(".raid-tmp");
}

}  // namespace

TieringEngine::TieringEngine(hdfs::MiniDfs& dfs, HeatTracker& heat,
                             TieringPolicy policy,
                             TieringEngineOptions options)
    : dfs_(&dfs),
      heat_(&heat),
      policy_(std::move(policy)),
      options_(options),
      raid_(dfs) {
  options_.max_bytes_per_pass = resolve_max_bytes(options);
}

PassReport TieringEngine::run_once(double now_s) {
  heat_->advance_to(now_s);
  PassReport report;

  // Snapshot the namespace in sorted order: the scan (and therefore the
  // transition sequence) is deterministic regardless of shard layout.
  std::vector<std::string> paths = dfs_->list_files();
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    if (is_temp_path(path)) continue;  // a transition's own scaffolding
    auto info = dfs_->stat(path);
    if (!info.is_ok() || !info->sealed) continue;
    const auto current = policy_.tier_of(info->code_spec);
    if (!current.is_ok()) continue;  // off-ladder layout: not ours to move
    ++report.considered;

    const std::size_t target = policy_.target_tier(heat_->heat(path), *current);
    if (target == *current) continue;

    // Residency gate: a file that just moved stays put, whatever the heat
    // says -- re-encode churn costs a full stream per move.
    const auto last = last_transition_s_.find(path);
    if (last != last_transition_s_.end() &&
        now_s - last->second < policy_.min_residency_s()) {
      ++report.skipped_residency;
      continue;
    }

    // Pass budgets: count, then bytes. Byte-budget skips keep scanning --
    // a smaller file later in the order may still fit.
    if (options_.max_transitions_per_pass > 0 &&
        report.transitions + report.errors >=
            options_.max_transitions_per_pass) {
      ++report.skipped_budget;
      continue;
    }
    if (options_.max_bytes_per_pass > 0 &&
        report.bytes_streamed + info->length > options_.max_bytes_per_pass) {
      ++report.skipped_budget;
      continue;
    }

    TransitionRecord record;
    record.path = path;
    record.from_spec = info->code_spec;
    record.to_spec = policy_.ladder()[target];
    record.promoted = target < *current;
    record.bytes = info->length;
    auto raided = raid_.raid_file(path, record.to_spec);
    record.status = raided.is_ok() ? Status::ok() : raided.status();
    if (record.status.is_ok()) {
      ++report.transitions;
      if (record.promoted) {
        ++report.promotions;
      } else {
        ++report.demotions;
      }
      report.bytes_streamed += record.bytes;
      last_transition_s_[path] = now_s;
    } else {
      // Lost a race (delete/rename during the stream) or hit an
      // environmental failure; the file is untouched or already gone.
      ++report.errors;
    }
    report.records.push_back(std::move(record));
  }
  return report;
}

Result<hdfs::RaidReport> TieringEngine::force_transition(
    const std::string& path, const std::string& target_spec) {
  DBLREP_RETURN_IF_ERROR(policy_.tier_of(target_spec).status());
  auto report = raid_.raid_file(path, target_spec);
  if (report.is_ok()) last_transition_s_[path] = heat_->now_s();
  return report;
}

}  // namespace dblrep::tier
