// TieringEngine: the actuator connecting heat (tier/heat.h) and policy
// (tier/policy.h) to RaidNode's streaming re-encode -- the background
// process that keeps a mixed-tier cluster converged on the policy's
// placement of every file.
//
// A pass (run_once) scans the published namespace in sorted path order,
// asks the policy for each on-ladder file's target tier, and executes the
// due transitions via RaidNode::raid_file: pread-stream the old layout
// into a temp file on the new layout, then publish-then-delete swap
// (MiniDfs::replace_file), so the file is readable and recoverable at
// every instant -- chaos tests crash nodes mid-stream to enforce exactly
// that. Transition traffic runs under net::TransferClass::kRetier, so a
// replay harness can throttle it like repair; pacing inside a pass is a
// transition-count and byte budget, so one pass can never starve
// foreground traffic for longer than its budget.
//
// Transitions racing deletes resolve by construction: replace_file returns
// NOT_FOUND if the target path vanished, RaidNode drops its temp file, and
// the engine just counts the error -- the delete won.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"
#include "tier/heat.h"
#include "tier/policy.h"

namespace dblrep::tier {

struct TieringEngineOptions {
  /// Most transitions one pass will execute (0 = unlimited).
  std::size_t max_transitions_per_pass = 4;

  /// Most logical bytes one pass will re-encode. 0 defers to
  /// DBLREP_TIER_MAX_BYTES (default: unlimited).
  std::size_t max_bytes_per_pass = 0;
};

/// One executed (or attempted) transition.
struct TransitionRecord {
  std::string path;
  std::string from_spec;
  std::string to_spec;
  bool promoted = false;  ///< moved toward replication
  std::size_t bytes = 0;  ///< logical bytes streamed
  Status status;
};

struct PassReport {
  std::size_t considered = 0;          ///< on-ladder files scanned
  std::size_t transitions = 0;         ///< executed successfully
  std::size_t promotions = 0;
  std::size_t demotions = 0;
  std::size_t skipped_residency = 0;   ///< due but moved too recently
  std::size_t skipped_budget = 0;      ///< due but over the pass budget
  std::size_t errors = 0;              ///< attempted and failed (races etc.)
  std::size_t bytes_streamed = 0;      ///< logical bytes re-encoded
  std::vector<TransitionRecord> records;
};

class TieringEngine {
 public:
  /// `dfs` and `heat` are not owned and must outlive the engine. The
  /// tracker is normally the same object wired into the DFS as its
  /// access observer.
  TieringEngine(hdfs::MiniDfs& dfs, HeatTracker& heat, TieringPolicy policy,
                TieringEngineOptions options = {});

  /// One background pass at logical time `now_s`: advances the heat clock,
  /// scans the namespace, and executes due transitions (serially, in
  /// sorted path order -- deterministic per op sequence).
  PassReport run_once(double now_s);

  /// Operator override (dfsctl `tier --target=`): re-encodes `path` to
  /// `target_spec` immediately, policy and budgets bypassed. The target
  /// must be on the ladder.
  Result<hdfs::RaidReport> force_transition(const std::string& path,
                                            const std::string& target_spec);

  /// Test hook: fires once per transition, mid-stream (after the first
  /// chunk of the re-encode landed). Chaos uses it to interleave node
  /// failures with a transition in flight.
  void set_mid_transition_hook(std::function<void()> hook) {
    raid_.set_mid_stream_hook(std::move(hook));
  }

  const TieringPolicy& policy() const { return policy_; }
  HeatTracker& heat() { return *heat_; }

 private:
  hdfs::MiniDfs* dfs_;
  HeatTracker* heat_;
  TieringPolicy policy_;
  TieringEngineOptions options_;
  hdfs::RaidNode raid_;
  /// Logical time of each path's last transition (residency gate). Entries
  /// follow renames implicitly -- a renamed file simply restarts residency.
  std::map<std::string, double> last_transition_s_;
};

}  // namespace dblrep::tier
