// Per-file heat tracking: the sensor half of the adaptive tiering engine.
//
// "XORing Elephants" (PAPERS.md) motivates lifecycle tiering with access
// skew: a small hot set takes most reads and must stay replicated for
// locality, while the cold tail can be erasure-coded down. The HeatTracker
// measures exactly that signal from real client traffic -- it implements
// hdfs::AccessObserver and is wired into a MiniDfs via
// MiniDfsOptions::access_observer, so every foreground read/write feeds a
// per-file exponentially-decayed byte counter. Background traffic (repair,
// scrub, kRetier re-encode streams) never reaches it: a transition cannot
// keep the file it is cooling hot.
//
// Time is a logical clock in seconds, advanced explicitly by the caller
// (advance_to). Simulation harnesses drive it off their event index, so
// every heat value -- and therefore every tiering decision -- is a
// deterministic function of the op sequence, never of wall-clock.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "hdfs/minidfs.h"

namespace dblrep::tier {

struct HeatOptions {
  /// Exponential half-life of the per-file byte counter, in logical
  /// seconds. 0 defers to the DBLREP_TIER_HALF_LIFE_S environment knob
  /// (default 60).
  double half_life_s = 0;
};

/// One file's decayed state, as of the tracker's clock.
struct HeatSample {
  std::string path;
  double heat = 0;   ///< decayed access bytes
  double age_s = 0;  ///< clock - first time the tracker saw the path
};

class HeatTracker : public hdfs::AccessObserver {
 public:
  explicit HeatTracker(const HeatOptions& options = {});

  /// Advances the logical clock (monotonic: earlier times are ignored).
  /// Decay is evaluated lazily against this clock.
  void advance_to(double now_s);
  double now_s() const;

  /// Decayed heat of `path` (0 for untracked paths).
  double heat(const std::string& path) const;

  /// Seconds since the tracker first saw `path`; negative if untracked.
  double age_s(const std::string& path) const;

  bool tracked(const std::string& path) const;
  std::size_t size() const;

  /// Every tracked file, hottest first (ties broken by path, so the order
  /// is deterministic).
  std::vector<HeatSample> snapshot() const;

  /// Adds `bytes` of access heat to `path` at the current clock.
  void record_access(const std::string& path, std::size_t bytes);

  // ------------------------------------------- hdfs::AccessObserver hooks
  void on_read(const std::string& path, std::size_t bytes) override;
  void on_write(const std::string& path, std::size_t bytes) override;
  void on_delete(const std::string& path) override;
  void on_rename(const std::string& from, const std::string& to) override;
  void on_replace(const std::string& from, const std::string& to) override;

 private:
  struct Entry {
    double heat = 0;    // decayed to last_s
    double last_s = 0;  // clock of the last decay evaluation
    double born_s = 0;  // clock when the path was first seen
  };

  double decayed_locked(const Entry& entry) const;

  mutable std::mutex mu_;
  double half_life_s_;
  double now_ = 0;
  std::map<std::string, Entry> entries_;
};

}  // namespace dblrep::tier
