#include "tier/heat.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace dblrep::tier {

namespace {

/// HeatOptions override > DBLREP_TIER_HALF_LIFE_S > 60s.
double resolve_half_life(const HeatOptions& options) {
  if (options.half_life_s > 0) return options.half_life_s;
  if (const char* env = std::getenv("DBLREP_TIER_HALF_LIFE_S")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) return parsed;
  }
  return 60.0;
}

}  // namespace

HeatTracker::HeatTracker(const HeatOptions& options)
    : half_life_s_(resolve_half_life(options)) {}

void HeatTracker::advance_to(double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  now_ = std::max(now_, now_s);
}

double HeatTracker::now_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

double HeatTracker::decayed_locked(const Entry& entry) const {
  const double dt = now_ - entry.last_s;
  if (dt <= 0) return entry.heat;
  return entry.heat * std::exp2(-dt / half_life_s_);
}

double HeatTracker::heat(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(path);
  return it == entries_.end() ? 0.0 : decayed_locked(it->second);
}

double HeatTracker::age_s(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(path);
  return it == entries_.end() ? -1.0 : now_ - it->second.born_s;
}

bool HeatTracker::tracked(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.contains(path);
}

std::size_t HeatTracker::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<HeatSample> HeatTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HeatSample> out;
  out.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) {
    out.push_back({path, decayed_locked(entry), now_ - entry.born_s});
  }
  std::sort(out.begin(), out.end(),
            [](const HeatSample& a, const HeatSample& b) {
              if (a.heat != b.heat) return a.heat > b.heat;
              return a.path < b.path;
            });
  return out;
}

void HeatTracker::record_access(const std::string& path, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(path);
  Entry& entry = it->second;
  if (inserted) {
    entry.born_s = now_;
    entry.last_s = now_;
    entry.heat = static_cast<double>(bytes);
    return;
  }
  entry.heat = decayed_locked(entry) + static_cast<double>(bytes);
  entry.last_s = std::max(entry.last_s, now_);
}

void HeatTracker::on_read(const std::string& path, std::size_t bytes) {
  record_access(path, bytes);
}

void HeatTracker::on_write(const std::string& path, std::size_t bytes) {
  record_access(path, bytes);
}

void HeatTracker::on_delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(path);
}

void HeatTracker::on_rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(from);
  if (it == entries_.end()) return;
  const Entry entry = it->second;
  entries_.erase(it);
  entries_.insert_or_assign(to, entry);
}

void HeatTracker::on_replace(const std::string& from, const std::string& to) {
  // The temp layout's tracking state (its commit's on_write heat) dies with
  // the temp path; `to` keeps the heat the clients actually generated.
  (void)to;
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(from);
}

}  // namespace dblrep::tier
