// Tiering policy: heat -> target tier on the replication/erasure ladder.
//
// The ladder orders layouts from hottest to coldest -- by default
// 3-rep (full locality, 3.0x storage) -> heptagon-local (inherent double
// replication, ~2.6x) -> rs-10-4 (1.4x, no inherent replication) -- the
// lifecycle the paper's Section 2 codes were designed for. The policy is a
// pure function of (heat, current tier): files whose decayed heat drops
// below a tier's demotion threshold move down one or more rungs; files
// re-heating past the threshold times a hysteresis factor promote back.
// The hysteresis band keeps a file whose heat sits near a threshold from
// thrashing demote/promote cycles (each costs a full re-encode stream).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace dblrep::tier {

struct TieringPolicyOptions {
  /// Hottest to coldest code specs. Every entry must name a registered
  /// scheme; transitions only ever move along this ladder.
  std::vector<std::string> ladder = {"3-rep", "heptagon-local", "rs-10-4"};

  /// demote_below[t]: a file in tier t demotes to t+1 while its heat is
  /// below this (one entry per ladder rung except the last). Empty defers
  /// to DBLREP_TIER_HOT / DBLREP_TIER_COLD (defaults 4096 / 1024 bytes of
  /// decayed access).
  std::vector<double> demote_below;

  /// Promote from tier t to t-1 once heat >= demote_below[t-1] times this
  /// factor (>= 1; the width of the anti-thrash band).
  double promote_hysteresis = 4.0;

  /// Minimum logical seconds a file stays put after a transition before
  /// the engine will move it again.
  double min_residency_s = 0;
};

class TieringPolicy {
 public:
  /// INVALID_ARGUMENT is surfaced lazily by tier_of / construction checks
  /// are cheap: an empty ladder or a threshold-count mismatch falls back
  /// to the defaults.
  explicit TieringPolicy(TieringPolicyOptions options = {});

  const std::vector<std::string>& ladder() const { return ladder_; }
  std::size_t num_tiers() const { return ladder_.size(); }

  /// Ladder index of a code spec; INVALID_ARGUMENT for specs off the
  /// ladder (the engine skips such files entirely).
  Result<std::size_t> tier_of(const std::string& code_spec) const;

  /// Target ladder index for a file with `heat` currently in tier
  /// `current`. Pure and deterministic; promotion and demotion cannot both
  /// apply (hysteresis >= 1 separates the bands).
  std::size_t target_tier(double heat, std::size_t current) const;

  /// Demotion threshold of rung `t` (t < num_tiers() - 1).
  double demote_threshold(std::size_t t) const { return demote_below_[t]; }
  double promote_hysteresis() const { return hysteresis_; }
  double min_residency_s() const { return min_residency_s_; }

 private:
  std::vector<std::string> ladder_;
  std::vector<double> demote_below_;  // ladder_.size() - 1 entries
  double hysteresis_;
  double min_residency_s_;
};

}  // namespace dblrep::tier
