#include "sim/event_queue.h"

#include <utility>

namespace dblrep::sim {

void EventQueue::schedule_at(SimTime when, Callback fn) {
  DBLREP_CHECK_GE(when, now_);
  events_.push({when, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(SimTime delay, Callback fn) {
  DBLREP_CHECK_GE(delay, 0.0);
  schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // alternative: copy the callback. Events are small; copy the struct.
  Event event = events_.top();
  events_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

std::size_t EventQueue::run(SimTime deadline) {
  std::size_t executed = 0;
  while (!events_.empty()) {
    if (deadline != kNoDeadline && events_.top().when > deadline) break;
    step();
    ++executed;
  }
  return executed;
}

}  // namespace dblrep::sim
