// Minimal discrete-event simulation kernel.
//
// The MapReduce simulator, the cluster repair engine, and the Monte-Carlo
// reliability runs all advance a virtual clock through a priority queue of
// (time, sequence, callback) events. Sequence numbers break ties FIFO so
// runs are deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace dblrep::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now).
  void schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` seconds (>= 0).
  void schedule_after(SimTime delay, Callback fn);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Runs the next event, advancing the clock. Returns false if empty.
  bool step();

  /// Runs events until the queue empties or `deadline` would be passed
  /// (events scheduled after the deadline stay queued). Returns the number
  /// of events executed.
  std::size_t run(SimTime deadline = kNoDeadline);

  static constexpr SimTime kNoDeadline = -1.0;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace dblrep::sim
