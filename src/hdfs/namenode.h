// Sharded NameNode: the scale-out metadata plane of MiniDfs.
//
// The striped per-path namespace locks of the concurrent data plane (PR 2)
// promoted to N real metadata shards: each shard owns a slice of the
// namespace (path -> FileInfo, selected by path hash), its own
// cluster::BlockCatalog, its own write-ahead Journal + snapshot, and its
// own lock domain (one shard mutex for the namespace + journal, a
// StripedSharedMutex for per-path data-plane exclusion). Metadata
// operations on paths in different shards never contend.
//
// Identity across shard counts: stripe ids come from ONE global atomic
// counter and the mutation sequence from another, so the id a stripe gets
// -- and therefore every block address, every placement draw, every byte
// on every datanode -- is identical whether the namespace runs 1, 4, or 16
// shards. A StripeRouter (striped hash map id -> shard) routes catalog
// reads; a stripe lives forever in the catalog of the shard that allocated
// it, even if its file is later renamed into another shard.
//
// Cross-shard operations take their shard locks in shard-index order
// (deterministic, deadlock-free):
//  * rename across shards journals a three-record intent protocol
//    (RenameOut in the source shard, RenameIn in the destination,
//    RenameAck back in the source) inside one double-locked critical
//    section -- recovery completes any intent a crash left dangling.
//  * delete of a renamed file journals kDelete in the namespace shard and
//    kGcStripes in each shard whose catalog owns the file's stripes; the
//    locks are taken sequentially (never nested), and recovery's orphan
//    sweep covers a crash between the two.
//
// Durability model: "disk" is the per-shard snapshot + journal byte
// buffers. A NameNode crash (MiniDfs::crash_namenode, the chaos
// kNameNodeCrash event) discards every in-memory table and rebuilds from
// those buffers via restore() -- byte-identical catalog fingerprint, open
// writes rolled back. See hdfs/recovery.h for the replay semantics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/catalog.h"
#include "cluster/topology.h"
#include "common/status.h"
#include "ec/code.h"
#include "exec/striped_mutex.h"
#include "hdfs/journal.h"

namespace dblrep::hdfs {

struct FileInfo {
  std::string code_spec;
  std::size_t block_size = 0;
  std::size_t length = 0;  // logical bytes
  std::vector<cluster::StripeId> stripes;
  /// False while an open write transaction (a live FileWriter) still owns
  /// the path: stat() reports such files with their bytes-so-far, but they
  /// are invisible to readers until commit_write publishes them.
  bool sealed = true;
};

/// Resolves a code spec to its (long-lived) scheme. The NameNode keeps no
/// schemes of its own: MiniDfs passes its runtime table, standalone tests
/// pass an ec::make_code cache. Must be thread-safe and return pointers
/// that outlive the NameNode.
using SchemeResolver =
    std::function<Result<const ec::CodeScheme*>(const std::string&)>;

struct NameNodeOptions {
  /// Metadata shard count. 0 = the DBLREP_META_SHARDS environment knob,
  /// falling back to 4. Clamped to [1, 256].
  std::size_t shards = 0;
  /// Auto-snapshot a shard once its journal holds this many records
  /// (0 = manual snapshots only). Snapshots absorb the journal, bounding
  /// both memory and recovery replay length.
  std::size_t snapshot_every = 0;
};

/// What recovery did, and what the caller must clean up (MiniDfs drops
/// the datanode blocks of rolled-back writes).
struct RecoveryReport {
  std::size_t shards = 0;
  std::size_t snapshot_files = 0;   // files + pending loaded from snapshots
  std::size_t snapshot_stripes = 0;
  std::size_t journal_records_replayed = 0;
  std::size_t journal_bytes_discarded = 0;  // torn / corrupt tails
  std::size_t open_writes_rolled_back = 0;
  std::size_t rename_intents_completed = 0;
  std::size_t orphan_stripes_gced = 0;
};

/// Placement of one stripe handed back to the data plane when metadata is
/// dropped (delete / abort): enough to find every block without the
/// catalog entry, which no longer exists.
struct StripePlacement {
  cluster::StripeId id = 0;
  std::string code_spec;
  std::vector<cluster::NodeId> group;
};

struct RemovedFile {
  FileInfo info;
  std::vector<StripePlacement> stripes;
};

/// FileInfo <-> journal FileState (the serialized form drops the sealed
/// flag; the containing snapshot/record section implies it).
FileState to_file_state(const FileInfo& info);
FileInfo to_file_info(const FileState& state, bool sealed);

class NameNode {
 public:
  NameNode(const cluster::Topology& topology, SchemeResolver resolver,
           const NameNodeOptions& options);

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(const std::string& path) const;

  // ------------------------------------------------- journaled mutations
  //
  // Each call appends its records and applies its state change inside one
  // shard-locked critical section, so the journal is always a
  // serialization of the shard's history.

  /// Reserves `path` for an open write (ALREADY_EXISTS if taken).
  Status begin_write(const std::string& path, const std::string& code_spec,
                     std::size_t block_size);

  /// Registers `groups` as new stripes of the open write at `path`,
  /// assigning ids from the global counter in order. The caller draws the
  /// placements (serially -- that is what makes ids and layouts
  /// deterministic) and resolves `code` for the transaction's spec.
  Result<std::vector<cluster::StripeId>> attach_stripes(
      const std::string& path, const ec::CodeScheme& code,
      const std::vector<std::vector<cluster::NodeId>>& groups);

  /// Accounts `bytes` of stored payload to the open write (stat()
  /// progress; rolled back with the transaction on crash or abort).
  Status record_store(const std::string& path, cluster::StripeId stripe,
                      std::size_t bytes);

  /// Seals every stripe and publishes the path in one critical section.
  Status commit_write(const std::string& path);

  /// Drops the open write's metadata; the caller erases its blocks.
  Result<RemovedFile> abort_write(const std::string& path);

  /// Drops a published file's metadata (journaling kGcStripes into any
  /// foreign shard whose catalog owns stripes of a renamed file); the
  /// caller erases the blocks.
  Result<RemovedFile> remove_file(const std::string& path);

  /// Namespace move. Cross-shard renames run the three-record intent
  /// protocol under both shard locks (taken in shard-index order).
  Status rename(const std::string& from, const std::string& to);

  /// Atomic publish-then-delete swap for tier transitions: `from` (a
  /// published file, typically a freshly re-encoded temp) takes over path
  /// `to`, whose metadata is removed and returned for block GC. Journaled
  /// as kDelete(to) + the rename records, under both path locks, so `to`
  /// always resolves to a complete layout. NOT_FOUND if either path is not
  /// published -- a transition racing a delete of `to` loses cleanly.
  Result<RemovedFile> replace(const std::string& from, const std::string& to);

  // --------------------------------------------------------------- reads

  /// Published files only (readers): NOT_FOUND while a write is open.
  Result<FileInfo> lookup(const std::string& path) const;
  /// Published or in-flight (then sealed == false).
  Result<FileInfo> stat(const std::string& path) const;
  std::vector<std::string> list_files() const;  // sorted across shards
  /// Sorted (path, info) snapshot of every published file.
  std::vector<std::pair<std::string, FileInfo>> snapshot_files() const;
  std::size_t num_files() const;
  bool has_pending_writes() const;

  // -------------------------------- catalog view (BlockCatalog-shaped)
  //
  // The read surface every data-plane consumer of dfs.catalog() uses,
  // routed through the stripe router to the owning shard's catalog.

  const cluster::StripeInfo& stripe(cluster::StripeId id) const;
  cluster::NodeId node_of(cluster::SlotAddress address) const;
  std::vector<cluster::NodeId> replica_nodes(cluster::StripeId id,
                                             std::size_t symbol) const;
  bool is_registered(cluster::StripeId id) const;
  bool is_sealed(cluster::StripeId id) const;
  std::size_t num_stripes() const;  // live stripes across all shards
  std::vector<cluster::SlotAddress> slots_on_node(cluster::NodeId node) const;
  std::vector<cluster::StripeId> stripes_on_node(cluster::NodeId node) const;
  std::set<ec::NodeIndex> failed_in_stripe(
      cluster::StripeId id, const std::set<cluster::NodeId>& down_nodes) const;

  /// Repair lease on the owning shard's catalog: pins the stripe so a
  /// concurrent delete/rename-driven unregistration waits for the lease to
  /// drain (or the repair aborts cleanly with ABORTED if the delete got
  /// there first). NOT_FOUND if the stripe is unknown anywhere.
  Status begin_repair(cluster::StripeId id);
  void end_repair(cluster::StripeId id);

  /// Per-path data-plane exclusion lock (shared for reads, exclusive for
  /// delete), from the owning shard's striped mutex.
  std::shared_mutex& path_mutex(const std::string& path) const;

  // ------------------------------------------- journal / snapshot / crash

  /// Snapshots every shard: serializes its image and clears its journal.
  void snapshot();

  /// Durable artifacts of one shard (copies -- what a crash would find).
  Buffer snapshot_bytes(std::size_t shard) const;
  Buffer journal_bytes(std::size_t shard) const;
  std::size_t journal_record_count(std::size_t shard) const;
  std::size_t total_journal_records() const;

  /// Order- and shard-count-independent fingerprint of the full metadata
  /// plane: files and pending entries (sorted by path), live stripes
  /// (sorted by id, with spec, seal state, and placement). Excludes
  /// tombstones and id/seq watermarks, so a rolled-back mutation
  /// fingerprints identically to one that never ran.
  std::uint64_t fingerprint() const;

  /// Rebuilds the whole metadata plane from per-shard artifacts (sizes
  /// must equal num_shards()): decode snapshot, replay journal (torn tails
  /// discarded), then reconcile -- complete rename intents, roll back open
  /// writes, sweep orphan stripes. Defined in hdfs/recovery.cc.
  Result<RecoveryReport> restore(std::vector<Buffer> snapshots,
                                 std::vector<Buffer> journals);

  /// Crash simulation: restore() from the current artifacts, exactly as if
  /// the process had died after its last journal append.
  Result<RecoveryReport> crash_and_recover();

  /// TEST ONLY: forget shard `shard`'s most recent journal record (a lost
  /// append) -- the injected fault the chaos true-positive coverage uses.
  Status testonly_drop_last_journal_record(std::size_t shard);

 private:
  friend struct NameNodeRestore;  // recovery.cc implementation helper

  struct Shard {
    mutable std::shared_mutex mu;  // namespace + journal + specs
    std::map<std::string, FileInfo> files;
    std::map<std::string, FileInfo> pending;
    cluster::BlockCatalog catalog;
    /// Spec of every live stripe in `catalog` (catalog stores scheme
    /// pointers; snapshots and fingerprints need the durable spec string).
    std::map<cluster::StripeId, std::string> stripe_specs;
    Journal journal;
    Buffer snapshot;
    mutable exec::StripedSharedMutex path_locks;

    explicit Shard(const cluster::Topology& topology) : catalog(topology) {}
  };

  /// Striped id -> shard map: catalog reads hash the id to a bucket and
  /// hit one small shared mutex, never a global one.
  struct RouterBucket {
    mutable std::shared_mutex mu;
    std::unordered_map<cluster::StripeId, std::uint32_t> shard;
  };
  static constexpr std::size_t kRouterBuckets = 64;

  std::uint32_t route(cluster::StripeId id) const;  // CHECKs on unknown id
  bool try_route(cluster::StripeId id, std::uint32_t& shard) const;
  void router_insert(cluster::StripeId id, std::uint32_t shard);
  void router_erase(cluster::StripeId id);
  void router_reset();

  std::uint64_t next_seq_locked() { return seq_.fetch_add(1) + 1; }

  /// Serializes `shard`'s image and clears its journal; caller holds the
  /// shard's unique lock.
  void snapshot_shard_locked(std::size_t index);
  /// Auto-snapshot check, run at the END of a public mutation (never
  /// between the records of a compound op -- a mid-op snapshot would
  /// absorb half the op). Caller holds the unique lock.
  void maybe_snapshot_locked(std::size_t index);

  /// Unregisters `id` from `shard`'s catalog, returning its placement for
  /// the data plane. Caller holds the unique lock.
  StripePlacement unregister_locked(Shard& shard, cluster::StripeId id);

  cluster::Topology topology_;
  SchemeResolver resolver_;
  NameNodeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<RouterBucket, kRouterBuckets> router_;
  /// Global counters: stripe ids and mutation seqs are shard-independent.
  std::atomic<std::uint64_t> next_stripe_id_{0};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace dblrep::hdfs
