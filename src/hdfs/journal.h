// Write-ahead journal of the sharded NameNode's metadata plane.
//
// Every namespace/catalog mutation appends one framed record to the owning
// shard's journal *inside the same critical section that applies it*, so a
// shard's journal is always a serialization of the state changes it has
// made. Records are framed as
//
//   [u32 payload_len] [u32 crc32c(payload)] [payload]
//
// with the payload an explicit little-endian field-by-field encoding
// (kind, global sequence number, then every record field). The CRC is what
// makes crash truncation detectable: a torn final record -- cut mid-frame,
// or CRC-mismatched -- is discarded by parse_journal, never replayed, and
// replay stops at the first bad frame (everything after a corrupt record
// is unordered debris). Snapshots serialize a whole shard image
// (namespace + pending writes + catalog stripes) with the same framing
// idea -- magic, version, length, CRC -- and clear the journal: recovery
// is snapshot + replay of the remaining records (see hdfs/recovery.h).
//
// Sequence numbers are drawn from one global counter across shards, so a
// crash point is a single number S: "every shard keeps exactly its records
// with seq < S". Per-shard journals are seq-monotone (the seq is drawn
// under the shard lock), which is what makes prefix-truncation at a global
// cut well defined -- the crash-point fuzzer in tests/recovery_test.cc
// enumerates every such S plus mid-record cuts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dblrep::hdfs {

/// The ~8 mutation kinds of the metadata plane (plus the cross-shard
/// rename intent protocol, which needs three records because the two
/// shards journal independently).
enum class JournalRecordKind : std::uint16_t {
  kCreate = 1,  // begin_write reserved `path`        (path, code_spec, bs)
  kAllocate,    // stripes placed for an open write   (path, ids, groups)
  kStore,       // bytes landed for an open write     (path, stripe, length)
  kSeal,        // stripe became durable at commit    (stripe)
  kCommit,      // open write published               (path, final length)
  kAbort,       // open write rolled back             (path)
  kDelete,      // published file removed             (path)
  kRename,      // same-shard rename                  (path -> path2)
  kRenameOut,   // cross-shard rename intent, source  (path -> path2, file)
  kRenameIn,    // cross-shard rename, dest applied   (path2, file)
  kRenameAck,   // cross-shard rename, source closed  (path)
  kGcStripes,   // stripes of a remote delete / orphan sweep (ids)
};

const char* to_string(JournalRecordKind kind);

/// Serialized file metadata (rename payloads, snapshots). Mirrors
/// hdfs::FileInfo minus the sealed flag, which the containing section
/// implies (files sealed, pending open).
struct FileState {
  std::string code_spec;
  std::uint64_t block_size = 0;
  std::uint64_t length = 0;
  std::vector<std::uint64_t> stripes;

  bool operator==(const FileState&) const = default;
};

/// One journal record. All fields are encoded for every kind (uniform
/// layout: simpler, and round-trip equality is field-exact); which fields
/// are meaningful depends on `kind` as annotated above.
struct JournalRecord {
  JournalRecordKind kind = JournalRecordKind::kCreate;
  std::uint64_t seq = 0;  // global mutation sequence number
  std::string path;
  std::string path2;      // rename target
  std::string code_spec;
  std::uint64_t block_size = 0;
  std::uint64_t length = 0;  // kStore delta / kCommit final length
  std::uint64_t stripe = 0;  // kStore / kSeal subject
  std::vector<std::uint64_t> stripes;                // kAllocate / kGcStripes
  std::vector<std::vector<std::int32_t>> groups;     // kAllocate placements
  FileState file;                                    // kRenameOut / kRenameIn

  bool operator==(const JournalRecord&) const = default;
};

/// One framed record: length + CRC32C header, then the payload.
Buffer encode_record(const JournalRecord& record);

struct ParsedJournal {
  /// The valid prefix, in append order.
  std::vector<JournalRecord> records;
  /// Byte offset of the last valid record boundary (== input size iff the
  /// journal ends cleanly).
  std::size_t clean_bytes = 0;
  std::size_t discarded_bytes = 0;
  /// Empty when the journal parsed to the end; otherwise why the tail was
  /// discarded (torn frame, CRC mismatch, undecodable payload).
  std::string tail_error;

  bool clean() const { return tail_error.empty(); }
};

/// Decodes a journal byte stream, stopping at (and discarding) the first
/// torn or corrupt frame. Never fails: a damaged journal is a shorter one.
ParsedJournal parse_journal(ByteSpan bytes);

/// Everything a snapshot captures for one metadata shard.
struct ShardImage {
  /// Highest global seq folded into this image (0 = none): replay resumes
  /// strictly after it.
  std::uint64_t last_seq = 0;
  /// Global stripe-id watermark at snapshot time (ids below it may exist
  /// on disk even if since aborted -- recovery must never reuse them).
  std::uint64_t next_stripe_id = 0;
  std::vector<std::pair<std::string, FileState>> files;    // sorted by path
  std::vector<std::pair<std::string, FileState>> pending;  // sorted by path
  /// Live catalog stripes of this shard, sorted by id.
  struct Stripe {
    std::uint64_t id = 0;
    std::string code_spec;
    bool sealed = false;
    std::vector<std::int32_t> group;

    bool operator==(const Stripe&) const = default;
  };
  std::vector<Stripe> stripes;

  bool operator==(const ShardImage&) const = default;
};

/// Magic + version + length + CRC framed shard image.
Buffer encode_snapshot(const ShardImage& image);

/// Strict decode: a snapshot is written atomically (it is not a log), so
/// any damage is CORRUPTION, not a shorter snapshot. An empty input is the
/// legitimate "never snapshotted" state and decodes to an empty image.
Result<ShardImage> decode_snapshot(ByteSpan bytes);

/// The in-memory append log of one metadata shard. Not thread-safe: the
/// owning shard's mutex serializes appends with the state changes they
/// describe.
class Journal {
 public:
  /// Appends one framed record and returns its index.
  std::size_t append(const JournalRecord& record);

  ByteSpan bytes() const { return buf_; }
  std::size_t num_records() const { return boundaries_.size(); }
  /// Byte offset after each record (boundaries()[i] ends record i).
  const std::vector<std::size_t>& boundaries() const { return boundaries_; }
  /// Seq of the most recent record (0 when empty).
  std::uint64_t last_seq() const { return last_seq_; }

  /// Truncates after a snapshot has absorbed every record.
  void clear();

  /// Restores the seq watermark on a freshly rebuilt (empty) journal so a
  /// later snapshot records the right last_seq. Recovery only.
  void set_last_seq(std::uint64_t seq) { last_seq_ = seq; }

  /// TEST ONLY: forgets the most recent record -- the "append never made
  /// it to disk" fault the chaos true-positive coverage injects. FAILED_
  /// PRECONDITION when empty.
  Status drop_last_record();

 private:
  Buffer buf_;
  std::vector<std::size_t> boundaries_;
  std::uint64_t last_seq_ = 0;
};

}  // namespace dblrep::hdfs
