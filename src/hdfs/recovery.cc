#include "hdfs/recovery.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dblrep::hdfs {

Buffer truncate_journal_at_seq(ByteSpan journal, std::uint64_t cut_seq) {
  const ParsedJournal parsed = parse_journal(journal);
  Buffer out;
  for (const JournalRecord& rec : parsed.records) {
    if (rec.seq >= cut_seq) break;  // seq-monotone: a prefix cut
    const Buffer framed = encode_record(rec);
    out.insert(out.end(), framed.begin(), framed.end());
  }
  return out;
}

namespace {

std::vector<cluster::NodeId> group_from_i32(
    const std::vector<std::int32_t>& group) {
  return std::vector<cluster::NodeId>(group.begin(), group.end());
}

}  // namespace

Result<RecoveryReport> NameNode::restore(std::vector<Buffer> snapshots,
                                         std::vector<Buffer> journals) {
  // Caller guarantees quiescence: a crash has no concurrent clients.
  if (snapshots.size() != shards_.size() ||
      journals.size() != shards_.size()) {
    return invalid_argument_error(
        "restore artifacts do not match the shard count");
  }

  RecoveryReport report;
  report.shards = shards_.size();

  struct Rebuilt {
    std::unique_ptr<Shard> shard;
    /// Dangling cross-shard rename sources: RenameOut replayed, RenameAck
    /// not (yet) seen. from -> (to, serialized file).
    std::map<std::string, std::pair<std::string, FileState>> intents;
  };
  std::vector<Rebuilt> rebuilt;
  rebuilt.reserve(shards_.size());

  std::uint64_t max_seq = 0;
  std::uint64_t next_id = 0;
  const auto saw_stripe = [&next_id](std::uint64_t id) {
    next_id = std::max(next_id, id + 1);
  };

  // Phase 1: per shard, snapshot image + journal replay.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Rebuilt r;
    r.shard = std::make_unique<Shard>(topology_);
    Shard& shard = *r.shard;

    DBLREP_ASSIGN_OR_RETURN(const ShardImage image,
                            decode_snapshot(snapshots[i]));
    max_seq = std::max(max_seq, image.last_seq);
    next_id = std::max(next_id, image.next_stripe_id);
    report.snapshot_files += image.files.size() + image.pending.size();
    report.snapshot_stripes += image.stripes.size();
    for (const ShardImage::Stripe& s : image.stripes) {
      DBLREP_ASSIGN_OR_RETURN(const ec::CodeScheme* code,
                              resolver_(s.code_spec));
      DBLREP_RETURN_IF_ERROR(shard.catalog.register_stripe_at(
          s.id, *code, group_from_i32(s.group), s.sealed));
      shard.stripe_specs.emplace(s.id, s.code_spec);
      saw_stripe(s.id);
    }
    for (const auto& [path, state] : image.files) {
      for (std::uint64_t id : state.stripes) saw_stripe(id);
      shard.files.emplace(path, to_file_info(state, /*sealed=*/true));
    }
    for (const auto& [path, state] : image.pending) {
      for (std::uint64_t id : state.stripes) saw_stripe(id);
      shard.pending.emplace(path, to_file_info(state, /*sealed=*/false));
    }
    shard.snapshot = std::move(snapshots[i]);

    const ParsedJournal parsed = parse_journal(journals[i]);
    report.journal_bytes_discarded += parsed.discarded_bytes;
    for (const JournalRecord& rec : parsed.records) {
      max_seq = std::max(max_seq, rec.seq);
      switch (rec.kind) {
        case JournalRecordKind::kCreate: {
          FileInfo info;
          info.code_spec = rec.code_spec;
          info.block_size = static_cast<std::size_t>(rec.block_size);
          info.sealed = false;
          shard.pending.emplace(rec.path, std::move(info));
          break;
        }
        case JournalRecordKind::kAllocate: {
          const auto it = shard.pending.find(rec.path);
          if (it == shard.pending.end()) {
            return internal_error("replay: kAllocate without open write: " +
                                  rec.path);
          }
          if (rec.groups.size() != rec.stripes.size()) {
            return internal_error("replay: kAllocate ids/groups mismatch");
          }
          DBLREP_ASSIGN_OR_RETURN(const ec::CodeScheme* code,
                                  resolver_(it->second.code_spec));
          for (std::size_t g = 0; g < rec.stripes.size(); ++g) {
            const cluster::StripeId id = rec.stripes[g];
            DBLREP_RETURN_IF_ERROR(shard.catalog.register_stripe_at(
                id, *code, group_from_i32(rec.groups[g]), /*sealed=*/false));
            shard.stripe_specs.emplace(id, it->second.code_spec);
            it->second.stripes.push_back(id);
            saw_stripe(id);
          }
          break;
        }
        case JournalRecordKind::kStore: {
          const auto it = shard.pending.find(rec.path);
          if (it == shard.pending.end()) {
            return internal_error("replay: kStore without open write: " +
                                  rec.path);
          }
          it->second.length += static_cast<std::size_t>(rec.length);
          break;
        }
        case JournalRecordKind::kSeal: {
          DBLREP_RETURN_IF_ERROR(shard.catalog.seal_stripe(rec.stripe));
          break;
        }
        case JournalRecordKind::kCommit: {
          const auto it = shard.pending.find(rec.path);
          if (it == shard.pending.end()) {
            return internal_error("replay: kCommit without open write: " +
                                  rec.path);
          }
          FileInfo info = std::move(it->second);
          info.length = static_cast<std::size_t>(rec.length);
          info.sealed = true;
          // Idempotent with the kSeal records that precede the commit.
          for (cluster::StripeId id : info.stripes) {
            DBLREP_RETURN_IF_ERROR(shard.catalog.seal_stripe(id));
          }
          shard.pending.erase(it);
          shard.files.emplace(rec.path, std::move(info));
          break;
        }
        case JournalRecordKind::kAbort: {
          const auto it = shard.pending.find(rec.path);
          if (it == shard.pending.end()) {
            return internal_error("replay: kAbort without open write: " +
                                  rec.path);
          }
          for (cluster::StripeId id : it->second.stripes) {
            DBLREP_RETURN_IF_ERROR(shard.catalog.unregister_stripe(id));
            shard.stripe_specs.erase(id);
          }
          shard.pending.erase(it);
          break;
        }
        case JournalRecordKind::kDelete: {
          const auto it = shard.files.find(rec.path);
          if (it == shard.files.end()) {
            return internal_error("replay: kDelete of unknown file: " +
                                  rec.path);
          }
          // Foreign-owned stripes (renamed files) are not in this shard's
          // catalog; their owners' kGcStripes -- or the orphan sweep --
          // cover them.
          for (cluster::StripeId id : it->second.stripes) {
            if (shard.catalog.is_registered(id)) {
              DBLREP_RETURN_IF_ERROR(shard.catalog.unregister_stripe(id));
              shard.stripe_specs.erase(id);
            }
          }
          shard.files.erase(it);
          break;
        }
        case JournalRecordKind::kRename: {
          const auto it = shard.files.find(rec.path);
          if (it == shard.files.end()) {
            return internal_error("replay: kRename of unknown file: " +
                                  rec.path);
          }
          FileInfo info = std::move(it->second);
          shard.files.erase(it);
          shard.files.emplace(rec.path2, std::move(info));
          break;
        }
        case JournalRecordKind::kRenameOut: {
          shard.files.erase(rec.path);
          r.intents[rec.path] = {rec.path2, rec.file};
          for (std::uint64_t id : rec.file.stripes) saw_stripe(id);
          break;
        }
        case JournalRecordKind::kRenameIn: {
          shard.files.insert_or_assign(rec.path2,
                                       to_file_info(rec.file, true));
          for (std::uint64_t id : rec.file.stripes) saw_stripe(id);
          break;
        }
        case JournalRecordKind::kRenameAck: {
          r.intents.erase(rec.path);
          break;
        }
        case JournalRecordKind::kGcStripes: {
          for (cluster::StripeId id : rec.stripes) {
            if (shard.catalog.is_registered(id)) {
              DBLREP_RETURN_IF_ERROR(shard.catalog.unregister_stripe(id));
              shard.stripe_specs.erase(id);
            }
          }
          break;
        }
      }
      shard.journal.append(rec);  // the surviving prefix IS the new journal
      ++report.journal_records_replayed;
    }
    if (shard.journal.num_records() == 0) {
      shard.journal.set_last_seq(image.last_seq);
    }
    rebuilt.push_back(std::move(r));
  }

  // Reconciliation seqs resume past everything the artifacts mention.
  std::uint64_t seq = max_seq;
  const auto next_recovery_seq = [&seq]() { return ++seq; };

  // Phase 2a: finish dangling cross-shard renames. Runs before the orphan
  // sweep so completed renames anchor their stripes as referenced.
  for (std::size_t a = 0; a < rebuilt.size(); ++a) {
    for (const auto& [from, intent] : rebuilt[a].intents) {
      const auto& [to, state] = intent;
      const std::size_t d = shard_of(to);
      Shard& dst = *rebuilt[d].shard;
      if (!dst.files.contains(to) && !dst.pending.contains(to)) {
        // The destination's RenameIn was lost: re-apply and re-journal it.
        dst.files.emplace(to, to_file_info(state, /*sealed=*/true));
        JournalRecord in;
        in.kind = JournalRecordKind::kRenameIn;
        in.seq = next_recovery_seq();
        in.path2 = to;
        in.file = state;
        dst.journal.append(in);
      }
      JournalRecord ack;
      ack.kind = JournalRecordKind::kRenameAck;
      ack.seq = next_recovery_seq();
      ack.path = from;
      rebuilt[a].shard->journal.append(ack);
      ++report.rename_intents_completed;
    }
    rebuilt[a].intents.clear();
  }

  // Phase 2b: roll back every open write -- its client died with us.
  for (Rebuilt& r : rebuilt) {
    Shard& shard = *r.shard;
    while (!shard.pending.empty()) {
      const auto it = shard.pending.begin();
      for (cluster::StripeId id : it->second.stripes) {
        if (shard.catalog.is_registered(id)) {
          DBLREP_RETURN_IF_ERROR(shard.catalog.unregister_stripe(id));
          shard.stripe_specs.erase(id);
        }
      }
      JournalRecord abort;
      abort.kind = JournalRecordKind::kAbort;
      abort.seq = next_recovery_seq();
      abort.path = it->first;
      shard.journal.append(abort);
      shard.pending.erase(it);
      ++report.open_writes_rolled_back;
    }
  }

  // Phase 2c: orphan sweep. A stripe no file references is the debris of
  // a delete whose foreign kGcStripes never hit disk.
  std::set<cluster::StripeId> referenced;
  for (const Rebuilt& r : rebuilt) {
    for (const auto& [path, info] : r.shard->files) {
      referenced.insert(info.stripes.begin(), info.stripes.end());
    }
  }
  for (Rebuilt& r : rebuilt) {
    Shard& shard = *r.shard;
    std::vector<cluster::StripeId> orphans;
    for (cluster::StripeId id : shard.catalog.live_stripe_ids()) {
      if (!referenced.contains(id)) orphans.push_back(id);
    }
    if (orphans.empty()) continue;
    for (cluster::StripeId id : orphans) {
      DBLREP_RETURN_IF_ERROR(shard.catalog.unregister_stripe(id));
      shard.stripe_specs.erase(id);
    }
    JournalRecord gc;
    gc.kind = JournalRecordKind::kGcStripes;
    gc.seq = next_recovery_seq();
    gc.stripes.assign(orphans.begin(), orphans.end());
    shard.journal.append(gc);
    report.orphan_stripes_gced += orphans.size();
  }

  // Phase 3: install. Rebuild the router; counters resume past every id
  // and seq the artifacts mention (ids are never reused -- even ids only
  // a rolled-back write consumed may still label stale datanode blocks).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i] = std::move(rebuilt[i].shard);
  }
  router_reset();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    for (cluster::StripeId id : shards_[i]->catalog.live_stripe_ids()) {
      router_insert(id, static_cast<std::uint32_t>(i));
    }
  }
  next_stripe_id_.store(next_id);
  seq_.store(seq);
  return report;
}

}  // namespace dblrep::hdfs
