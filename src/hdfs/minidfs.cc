#include "hdfs/minidfs.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>

#include "ec/layering.h"
#include "ec/registry.h"

namespace dblrep::hdfs {

MiniDfs::MiniDfs(const cluster::Topology& topology, std::uint64_t seed)
    : MiniDfs(topology, seed, &exec::default_pool()) {}

MiniDfs::MiniDfs(const cluster::Topology& topology, std::uint64_t seed,
                 exec::ThreadPool* pool)
    : MiniDfs(topology, seed, pool, MiniDfsOptions{}) {}

MiniDfs::MiniDfs(const cluster::Topology& topology, std::uint64_t seed,
                 exec::ThreadPool* pool, const MiniDfsOptions& options)
    : topology_(topology),
      options_(options),
      namenode_(
          topology_,
          // The NameNode resolves code specs through the DFS's runtime
          // table (one scheme + codec pool per spec, created on demand).
          [this](const std::string& spec) { return this->scheme(spec); },
          NameNodeOptions{options.meta_shards, options.meta_snapshot_every}),
      traffic_(topology_),
      pool_(pool != nullptr ? pool : &exec::inline_pool()),
      rng_(seed) {
  for (std::size_t n = 0; n < topology_.num_nodes; ++n) {
    datanodes_.emplace_back(static_cast<cluster::NodeId>(n));
  }
}

std::vector<int> MiniDfs::group_racks(
    const std::vector<cluster::NodeId>& group) const {
  std::vector<int> racks(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    racks[i] = topology_.rack_of(group[i]);
  }
  return racks;
}

Result<MiniDfs::SchemeRuntime*> MiniDfs::runtime(const std::string& code_spec) {
  {
    std::shared_lock<std::shared_mutex> lock(scheme_mu_);
    const auto it = schemes_.find(code_spec);
    if (it != schemes_.end()) return &it->second;
  }
  auto made = ec::make_code(code_spec);
  if (!made.is_ok()) return made.status();
  std::unique_lock<std::shared_mutex> lock(scheme_mu_);
  const auto it = schemes_.find(code_spec);
  if (it != schemes_.end()) return &it->second;  // lost the creation race
  SchemeRuntime rt;
  rt.code = std::move(*made);
  rt.runtimes = std::make_unique<exec::RuntimePool>(*rt.code);
  auto* placed = &schemes_.emplace(code_spec, std::move(rt)).first->second;
  pools_by_code_.emplace(placed->code.get(), placed->runtimes.get());
  return placed;
}

Result<const ec::CodeScheme*> MiniDfs::scheme(const std::string& code_spec) {
  auto rt = runtime(code_spec);
  if (!rt.is_ok()) return rt.status();
  return (*rt)->code.get();
}

exec::RuntimePool& MiniDfs::runtime_pool_for(const ec::CodeScheme& code) const {
  std::shared_lock<std::shared_mutex> lock(scheme_mu_);
  const auto it = pools_by_code_.find(&code);
  // Every registered stripe's code was created through runtime().
  DBLREP_CHECK_MSG(it != pools_by_code_.end(),
                   "no runtime pool for code " << code.params().name);
  return *it->second;
}

Result<const ec::RepairPlan*> MiniDfs::cached_repair_plan(
    const ec::CodeScheme& code, const std::set<ec::NodeIndex>& failed) {
  const PlanKey key{&code, failed};
  {
    std::shared_lock<std::shared_mutex> lock(plan_mu_);
    const auto it = plan_cache_.find(key);
    if (it != plan_cache_.end()) return &it->second;
  }
  // Planning (the basis solve) runs outside any lock; losing the insertion
  // race just discards a duplicate plan. Single failures route through the
  // virtual plan_node_repair so sub-packetized schemes (Clay, piggyback)
  // can serve their bandwidth-optimal sub-chunk plans; for every other
  // scheme that call delegates straight back to plan_multi_node_repair.
  auto plan = failed.size() == 1
                  ? code.plan_node_repair(*failed.begin())
                  : code.plan_multi_node_repair(failed);
  if (!plan.is_ok()) return plan.status();
  std::unique_lock<std::shared_mutex> lock(plan_mu_);
  return &plan_cache_.try_emplace(key, std::move(*plan)).first->second;
}

Status MiniDfs::begin_write(const std::string& path,
                            const std::string& code_spec,
                            std::size_t block_size) {
  if (block_size == 0) return invalid_argument_error("zero block size");
  auto rt_result = runtime(code_spec);  // validates the spec
  if (!rt_result.is_ok()) return rt_result.status();
  const ec::CodeScheme& code = *(*rt_result)->code;
  // Sub-packetized schemes slice every block into α sub-chunks; a block
  // size that does not divide evenly would silently change the stripe
  // geometry, so reject it at transaction open.
  if (block_size % code.sub_chunks() != 0) {
    return invalid_argument_error(
        "block size " + std::to_string(block_size) + " not divisible by " +
        code_spec + "'s " + std::to_string(code.sub_chunks()) +
        " sub-chunks");
  }

  // Enough live nodes to place a stripe? Checked here so an impossible
  // transaction fails fast, and re-checked per allocation (membership can
  // change while a streaming write is open).
  std::size_t live = 0;
  for (const auto& dn : datanodes_) {
    if (dn.is_up()) ++live;
  }
  if (live < code.num_nodes()) {
    return resource_exhausted_error("not enough live nodes for " + code_spec);
  }

  // Reserve the path (journaled): concurrent creators of the same name
  // fail fast, and readers see nothing until commit_write publishes.
  return namenode_.begin_write(path, code_spec, block_size);
}

Result<std::vector<cluster::StripeId>> MiniDfs::allocate_stripes(
    const std::string& path, std::size_t count) {
  const auto open = namenode_.stat(path);
  if (!open.is_ok() || open->sealed) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  auto code_result = scheme(open->code_spec);
  if (!code_result.is_ok()) return code_result.status();
  const ec::CodeScheme& code = **code_result;

  // One live-node scan per batch: the bulk write path allocates a whole
  // file's stripes in one call, so this costs what the pre-transaction
  // write_file paid, not once per stripe.
  std::vector<cluster::NodeId> live;
  for (const auto& dn : datanodes_) {
    if (dn.is_up()) live.push_back(dn.id());
  }
  if (live.size() < code.num_nodes()) {
    return resource_exhausted_error("not enough live nodes for " +
                                    open->code_spec);
  }

  // Placement is serial: one rng draw sequence per stripe in allocation
  // order, so the layout is a deterministic function of the seed and
  // byte-identical between serial and parallel executions. The
  // construction-time policy decides the rack structure: flat (rack-blind
  // uniform), rack_aware spreading, or group_per_rack, which pins each
  // local code group to its own rack. attach_stripes runs under the same
  // lock hold, so stripe ids are assigned in draw order -- which is what
  // makes the layout independent of the metadata shard count -- and
  // registration is atomic with the open-transaction check (a concurrent
  // abort closing the transaction cannot leak stripes).
  std::vector<std::vector<cluster::NodeId>> groups;
  groups.reserve(count);
  std::lock_guard<std::mutex> lock(place_mu_);
  for (std::size_t s = 0; s < count; ++s) {
    auto group_result = cluster::place_stripe_group(options_.placement,
                                                    topology_, code, live,
                                                    rng_);
    if (!group_result.is_ok()) return group_result.status();
    groups.push_back(std::move(*group_result));
  }
  // Unsealed until commit_write publishes the file: a concurrent repair
  // pass must not mistake a write in flight for mass failure (nor race an
  // abort of one).
  return namenode_.attach_stripes(path, code, groups);
}

Result<cluster::StripeId> MiniDfs::allocate_stripe(const std::string& path) {
  auto stripes = allocate_stripes(path, 1);
  if (!stripes.is_ok()) return stripes.status();
  return stripes->front();
}

Status MiniDfs::store_stripe_bytes(SchemeRuntime& rt, std::size_t block_size,
                                   cluster::StripeId stripe,
                                   ByteSpan stripe_data,
                                   net::TransferClass cls) {
  const ec::CodeScheme& code = *rt.code;
  if (stripe_data.empty() ||
      stripe_data.size() > code.data_blocks() * block_size) {
    return invalid_argument_error("stripe data must cover (0, stripe] bytes");
  }
  // Encode + store: the caller's worker checks out its own codec;
  // systematic symbols are zero-copy views into `stripe_data`, parities
  // come out of the leased codec's arena. The stripe stays *unsealed*
  // until commit_write: sealing per stripe here would expose it to
  // concurrent repair/scrub passes while the transaction can still abort,
  // and abort_write unregistering a stripe a repair is persisting is
  // exactly the dangling-reference race the seal flag exists to prevent.
  auto lease = rt.runtimes->acquire();
  const auto symbols = lease->codec.encode_stripe(stripe_data, block_size);
  const auto& layout = code.layout();
  for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
    const cluster::NodeId node = namenode_.node_of({stripe, slot});
    DBLREP_RETURN_IF_ERROR(datanodes_[static_cast<std::size_t>(node)].put(
        {stripe, slot}, symbols[layout.symbol_of_slot(slot)]));
    // Client -> datanode transfer (the client is off-cluster), charged at
    // the slot payload size: a full block for α == 1, one sub-chunk for
    // sub-packetized schemes.
    account_upload(node,
                   static_cast<double>(
                       symbols[layout.symbol_of_slot(slot)].size()),
                   cls);
  }
  return Status::ok();
}

Status MiniDfs::store_stripe_batch(SchemeRuntime& rt, std::size_t block_size,
                                   std::span<const cluster::StripeId> stripes,
                                   ByteSpan data) {
  const ec::CodeScheme& code = *rt.code;
  if (data.empty()) {
    return invalid_argument_error("stripe batch data must be non-empty");
  }
  // One codec lease for the whole range: encode_batch fuses the parity
  // passes of up to StripeCodec::kMaxBatchStripes stripes into single
  // coefficient-block walks, and the sink below persists each stripe's
  // symbol views before the next batch recycles the arena. Store semantics
  // (unsealed until commit, per-slot traffic accounting) match
  // store_stripe_bytes exactly; the sink's stripe index is relative to
  // `data`, so stripes[s] maps it back to the allocated id.
  auto lease = rt.runtimes->acquire();
  DBLREP_CHECK_EQ(stripes.size(),
                  lease->codec.stripe_count(data.size(), block_size));
  const auto& layout = code.layout();
  return lease->codec.encode_batch(
      data, block_size,
      [&](std::size_t s, std::span<const ByteSpan> symbols) -> Status {
        const cluster::StripeId stripe = stripes[s];
        for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
          const cluster::NodeId node = namenode_.node_of({stripe, slot});
          DBLREP_RETURN_IF_ERROR(
              datanodes_[static_cast<std::size_t>(node)].put(
                  {stripe, slot}, symbols[layout.symbol_of_slot(slot)]));
          account_upload(node,
                         static_cast<double>(
                             symbols[layout.symbol_of_slot(slot)].size()),
                         net::TransferClass::kClientWrite);
        }
        return Status::ok();
      });
}

Status MiniDfs::store_stripe(const std::string& path,
                             cluster::StripeId stripe, ByteSpan stripe_data,
                             net::TransferClass cls) {
  const auto open = namenode_.stat(path);
  if (!open.is_ok() || open->sealed) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  auto rt_result = runtime(open->code_spec);
  if (!rt_result.is_ok()) return rt_result.status();
  DBLREP_RETURN_IF_ERROR(store_stripe_bytes(**rt_result, open->block_size,
                                            stripe, stripe_data, cls));

  // Progress accounting (journaled) for stat() of the open write.
  return namenode_.record_store(path, stripe, stripe_data.size());
}

Status MiniDfs::commit_write(const std::string& path) {
  // Seal-at-commit: the NameNode seals every stripe and publishes the path
  // in one journaled critical section, so no stripe is ever both sealed
  // and abortable.
  DBLREP_RETURN_IF_ERROR(namenode_.commit_write(path));
  if (options_.access_observer != nullptr) {
    const auto info = namenode_.lookup(path);
    options_.access_observer->on_write(path, info.is_ok() ? info->length : 0);
  }
  return Status::ok();
}

Status MiniDfs::abort_write(const std::string& path) {
  // Failed writes must not leak: the NameNode drops the metadata (journaled
  // kAbort) and hands back each stripe's placement so the blocks that
  // landed can be dropped here (all still possible -- unsealed stripes are
  // invisible to repair, and the unpublished path is invisible to readers).
  auto removed = namenode_.abort_write(path);
  if (!removed.is_ok()) return removed.status();
  for (const StripePlacement& placement : removed->stripes) {
    auto code_result = scheme(placement.code_spec);
    if (!code_result.is_ok()) return code_result.status();
    const auto& layout = (*code_result)->layout();
    for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
      const cluster::NodeId node = placement.group[static_cast<std::size_t>(
          layout.node_of_slot(slot))];
      auto& dn = datanodes_[static_cast<std::size_t>(node)];
      if (dn.has({placement.id, slot})) (void)dn.drop({placement.id, slot});
    }
  }
  return Status::ok();
}

Status MiniDfs::write_file(const std::string& path, ByteSpan data,
                           const std::string& code_spec,
                           std::size_t block_size) {
  // Thin wrapper over the write transaction: allocate every stripe up
  // front (serial draws), then encode + store them fanned out across the
  // pool, zero-copy from `data`. parallel_for_all: on failure every stripe
  // still runs (then abort_write drops them all), so the returned status
  // -- lowest failing stripe -- does not depend on pool scheduling.
  DBLREP_RETURN_IF_ERROR(begin_write(path, code_spec, block_size));
  // RAII rollback: every exit below -- error returns and stack unwinding
  // alike -- releases the path reservation and drops landed stripes,
  // unless the commit disarms it. (A leaked pending entry would poison
  // the path with ALREADY_EXISTS for the process lifetime.)
  struct AbortGuard {
    MiniDfs* dfs;
    const std::string& path;
    bool armed = true;
    ~AbortGuard() {
      if (armed) (void)dfs->abort_write(path);
    }
  } guard{this, path};

  auto rt_result = runtime(code_spec);
  if (!rt_result.is_ok()) return rt_result.status();
  SchemeRuntime& rt = **rt_result;
  const std::size_t stripe_bytes = rt.code->data_blocks() * block_size;
  const std::size_t num_stripes =
      data.empty() ? 0 : (data.size() + stripe_bytes - 1) / stripe_bytes;

  auto stripes = allocate_stripes(path, num_stripes);
  if (!stripes.is_ok()) return stripes.status();

  // The runtime and block size are resolved once for the whole file, and
  // the length is published once below -- the workers touch no namespace
  // state, unlike a FileWriter's store_stripe calls (which pay per-stripe
  // lookups to keep stat() progress live). Each pool task owns a
  // contiguous run of batch_stripes() stripes so its leased codec can fuse
  // their parity passes; parallel_for_all still surfaces the
  // lowest-indexed failure, and store_stripe_batch stops at the first
  // failing stripe within a run, so the reported stripe stays the lowest
  // failing one regardless of pool scheduling.
  const std::size_t batch = ec::StripeCodec(*rt.code).batch_stripes(block_size);
  const std::size_t num_batches = (num_stripes + batch - 1) / batch;
  const Status write_status = exec::parallel_for_all(
      *pool_, num_batches, [&](std::size_t b) -> Status {
        const std::size_t first = b * batch;
        const std::size_t count = std::min(batch, num_stripes - first);
        const std::size_t begin = first * stripe_bytes;
        const std::size_t len =
            std::min(count * stripe_bytes, data.size() - begin);
        return store_stripe_batch(
            rt, block_size,
            std::span<const cluster::StripeId>(stripes->data() + first, count),
            data.subspan(begin, len));
      });
  if (!write_status.is_ok()) return write_status;
  // One journaled length record for the whole file (the batch store path
  // bypasses the per-stripe record_store that FileWriter handles pay).
  if (!data.empty()) {
    DBLREP_RETURN_IF_ERROR(
        namenode_.record_store(path, stripes->front(), data.size()));
  }
  const Status committed = commit_write(path);
  if (committed.is_ok()) guard.armed = false;
  return committed;
}

Result<FileInfo> MiniDfs::lookup_copy(const std::string& path) const {
  return namenode_.lookup(path);
}

ec::SlotStore MiniDfs::gather_stripe(cluster::StripeId stripe) const {
  const auto& info = namenode_.stripe(stripe);
  ec::SlotStore store;
  for (std::size_t slot = 0; slot < info.code->layout().num_slots(); ++slot) {
    const cluster::NodeId node = namenode_.node_of({stripe, slot});
    const auto& dn = datanodes_[static_cast<std::size_t>(node)];
    auto bytes = dn.get({stripe, slot});
    if (bytes.is_ok()) store[slot] = std::move(*bytes);
  }
  return store;
}

Result<Buffer> MiniDfs::read_data_block(const FileInfo& file,
                                        cluster::StripeId stripe,
                                        std::size_t block,
                                        net::TransferClass cls) {
  const ec::CodeScheme& code = *namenode_.stripe(stripe).code;
  const std::size_t alpha = code.sub_chunks();
  // Fast path: every sub-chunk of the block served from a replica. Gather
  // all α units first and account the deliveries only once the whole block
  // is in hand -- a miss on any unit means the block is served degraded
  // instead, and the abandoned replica reads must not be charged. For
  // α == 1 this is exactly the old single-replica block read.
  {
    std::vector<std::pair<cluster::NodeId, Buffer>> units;
    units.reserve(alpha);
    for (std::size_t unit = block * alpha; unit < (block + 1) * alpha;
         ++unit) {
      // Try each replica in turn; CRC failures and down nodes fall through.
      bool got = false;
      for (std::size_t slot : code.layout().slots_of_symbol(unit)) {
        const cluster::NodeId node = namenode_.node_of({stripe, slot});
        auto bytes =
            datanodes_[static_cast<std::size_t>(node)].get({stripe, slot});
        if (bytes.is_ok()) {
          units.emplace_back(node, std::move(*bytes));
          got = true;
          break;
        }
      }
      if (!got) break;
    }
    if (units.size() == alpha) {
      Buffer out;
      out.reserve(file.block_size);
      for (auto& [node, bytes] : units) {
        account_delivery(node, static_cast<double>(bytes.size()), cls);
        out.insert(out.end(), bytes.begin(), bytes.end());
      }
      return out;
    }
  }
  // On-the-fly repair (Section 3.1): gather the verifiably-good bytes of
  // the stripe, then treat every code-local node with an unreadable slot
  // as failed for planning. Probing actual availability (rather than the
  // cluster's down set) covers down nodes, nodes restarted-but-still-empty
  // while a repair is in flight, and CRC-broken replicas on live nodes --
  // and executing over the gathered copies keeps the read stable even if
  // the stripe changes under it.
  ec::SlotStore store = gather_stripe(stripe);
  std::set<ec::NodeIndex> failed;
  const std::size_t group_size = namenode_.stripe(stripe).group.size();
  for (std::size_t i = 0; i < group_size; ++i) {
    for (std::size_t slot :
         code.layout().slots_on_node(static_cast<ec::NodeIndex>(i))) {
      if (!store.contains(slot)) {
        failed.insert(static_cast<ec::NodeIndex>(i));
        break;
      }
    }
  }
  auto plan_result = code.plan_degraded_block(block, failed);
  if (!plan_result.is_ok()) return plan_result.status();
  ec::RepairPlan plan = std::move(*plan_result);
  const auto& group = namenode_.stripe(stripe).group;
  // Layered mode: each rack combines its partials locally and sends the
  // client one payload per rack instead of one per helper.
  if (options_.layered_repair) {
    plan = ec::layer_plan(plan, group_racks(group));
  }
  auto lease = runtime_pool_for(code).acquire();
  auto delivered = lease->executor.execute(plan, store);
  if (!delivered.is_ok()) return delivered.status();
  if (delivered->size() != alpha) {
    return internal_error("degraded read returned unexpected unit count");
  }
  // Account every aggregate that crossed the wire, at the unit payload
  // size the stripe actually stores (block_size / α; the full block for
  // α == 1 schemes).
  const double unit_bytes =
      store.empty() ? 0.0 : static_cast<double>(store.begin()->second.size());
  for (const auto& send : plan.aggregates) {
    const cluster::NodeId from =
        group[static_cast<std::size_t>(send.from_node)];
    if (send.to_node == ec::kClientNode) {
      account_delivery(from, unit_bytes, cls);
    } else {
      account(from, group[static_cast<std::size_t>(send.to_node)],
              unit_bytes, cls);
    }
  }
  // One degraded read = one dependency-chained flow in a captured replay.
  if (options_.transfer_log != nullptr) options_.transfer_log->mark();
  // plan_degraded_block delivers the α client units in unit order, so they
  // concatenate straight back into the logical block.
  Buffer out;
  out.reserve(file.block_size);
  for (Buffer& unit : *delivered) {
    out.insert(out.end(), unit.begin(), unit.end());
  }
  return out;
}

Result<Buffer> MiniDfs::read_block(const std::string& path,
                                   std::size_t block_index,
                                   net::TransferClass cls) {
  std::shared_lock<std::shared_mutex> path_lock(namenode_.path_mutex(path));
  DBLREP_ASSIGN_OR_RETURN(const FileInfo info, lookup_copy(path));
  auto code_result = scheme(info.code_spec);
  if (!code_result.is_ok()) return code_result.status();
  const ec::CodeScheme& code = **code_result;
  const std::size_t total_blocks =
      (info.length + info.block_size - 1) / info.block_size;
  if (block_index >= total_blocks) {
    return invalid_argument_error("block index beyond end of file");
  }
  const std::size_t stripe_index = block_index / code.data_blocks();
  const std::size_t block = block_index % code.data_blocks();
  auto out = read_data_block(info, info.stripes[stripe_index], block, cls);
  if (out.is_ok() && options_.access_observer != nullptr &&
      cls == net::TransferClass::kClientRead) {
    options_.access_observer->on_read(path, out->size());
  }
  return out;
}

Result<Buffer> MiniDfs::pread_span(const FileInfo& info,
                                   const ec::CodeScheme& code,
                                   std::size_t offset, std::size_t len,
                                   net::TransferClass cls) {
  // Reads past EOF are clamped; a zero-length window is an empty buffer
  // that touches no datanode (and therefore moves no bytes).
  const std::size_t want = std::min(len, info.length - offset);
  Buffer out(want);
  if (want == 0) return out;

  const std::size_t k = code.data_blocks();
  const std::size_t block_size = info.block_size;
  const std::size_t first_block = offset / block_size;
  const std::size_t last_block = (offset + want - 1) / block_size;
  const std::size_t first_stripe = first_block / k;
  const std::size_t last_stripe = last_block / k;

  // Only the covering stripes resolve; they stream in parallel straight
  // into the result buffer (each block writes a disjoint byte range), with
  // the first and last block trimmed to the requested window.
  const Status read_status = exec::parallel_for_all(
      *pool_, last_stripe - first_stripe + 1, [&](std::size_t i) -> Status {
        const std::size_t si = first_stripe + i;
        const std::size_t blk_lo = si == first_stripe ? first_block % k : 0;
        const std::size_t blk_hi = si == last_stripe ? last_block % k : k - 1;
        for (std::size_t blk = blk_lo; blk <= blk_hi; ++blk) {
          auto block = read_data_block(info, info.stripes[si], blk, cls);
          if (!block.is_ok()) return block.status();
          const std::size_t block_begin = (si * k + blk) * block_size;
          const std::size_t copy_begin = std::max(block_begin, offset);
          const std::size_t copy_end =
              std::min(block_begin + block_size, offset + want);
          std::memcpy(out.data() + (copy_begin - offset),
                      block->data() + (copy_begin - block_begin),
                      copy_end - copy_begin);
        }
        return Status::ok();
      });
  if (!read_status.is_ok()) return read_status;
  return out;
}

Result<Buffer> MiniDfs::pread(const std::string& path, std::size_t offset,
                              std::size_t len, net::TransferClass cls) {
  std::shared_lock<std::shared_mutex> path_lock(namenode_.path_mutex(path));
  // Resolve once: one namespace lookup and one scheme resolution for the
  // whole range, then pread_span moves the bytes.
  DBLREP_ASSIGN_OR_RETURN(const FileInfo info, lookup_copy(path));
  auto code_result = scheme(info.code_spec);
  if (!code_result.is_ok()) return code_result.status();
  if (offset > info.length) {
    return invalid_argument_error(
        "pread offset " + std::to_string(offset) + " beyond EOF of " + path +
        " (" + std::to_string(info.length) + " bytes)");
  }
  auto out = pread_span(info, **code_result, offset, len, cls);
  // Heat tracking sees foreground reads only: a re-encode streaming the
  // file under kRetier must not keep it hot.
  if (out.is_ok() && options_.access_observer != nullptr &&
      cls == net::TransferClass::kClientRead) {
    options_.access_observer->on_read(path, out->size());
  }
  return out;
}

Result<Buffer> MiniDfs::read_file(const std::string& path,
                                  net::TransferClass cls) {
  return pread(path, 0, std::numeric_limits<std::size_t>::max(), cls);
}

Status MiniDfs::delete_file(const std::string& path) {
  // Exclusive path lock first (excludes in-flight readers), then the
  // journaled metadata removal, then the block drops -- sourced from the
  // placements the NameNode hands back, since the catalog entries are gone.
  std::unique_lock<std::shared_mutex> path_lock(namenode_.path_mutex(path));
  auto removed = namenode_.remove_file(path);
  if (!removed.is_ok()) return removed.status();
  for (const StripePlacement& placement : removed->stripes) {
    auto code_result = scheme(placement.code_spec);
    if (!code_result.is_ok()) return code_result.status();
    const auto& layout = (*code_result)->layout();
    for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
      const cluster::NodeId node = placement.group[static_cast<std::size_t>(
          layout.node_of_slot(slot))];
      auto& dn = datanodes_[static_cast<std::size_t>(node)];
      if (dn.has({placement.id, slot})) (void)dn.drop({placement.id, slot});
    }
  }
  if (options_.access_observer != nullptr) {
    options_.access_observer->on_delete(path);
  }
  return Status::ok();
}

Status MiniDfs::rename(const std::string& from, const std::string& to) {
  // Fully a metadata operation: the NameNode takes both path locks and --
  // cross-shard -- runs the journaled rename intent protocol.
  DBLREP_RETURN_IF_ERROR(namenode_.rename(from, to));
  if (options_.access_observer != nullptr) {
    options_.access_observer->on_rename(from, to);
  }
  return Status::ok();
}

Status MiniDfs::replace_file(const std::string& from, const std::string& to) {
  // The tiering transition's commit: publish-then-delete in one journaled
  // metadata step (NameNode::replace takes both path locks, drops `to`'s
  // old stripes, and moves `from` over it), then drop the old layout's
  // blocks from the datanodes using the placements handed back. Readers
  // either resolve the old layout (complete until the swap) or the new one
  // (complete since its commit_write) -- never a torn mix.
  auto removed = namenode_.replace(from, to);
  if (!removed.is_ok()) return removed.status();
  for (const StripePlacement& placement : removed->stripes) {
    auto code_result = scheme(placement.code_spec);
    if (!code_result.is_ok()) return code_result.status();
    const auto& layout = (*code_result)->layout();
    for (std::size_t slot = 0; slot < layout.num_slots(); ++slot) {
      const cluster::NodeId node = placement.group[static_cast<std::size_t>(
          layout.node_of_slot(slot))];
      auto& dn = datanodes_[static_cast<std::size_t>(node)];
      if (dn.has({placement.id, slot})) (void)dn.drop({placement.id, slot});
    }
  }
  if (options_.access_observer != nullptr) {
    options_.access_observer->on_replace(from, to);
  }
  return Status::ok();
}

Result<FileInfo> MiniDfs::stat(const std::string& path) const {
  // A write in flight is visible to stat (sealed == false, length == bytes
  // stored so far) but not to readers.
  return namenode_.stat(path);
}

std::vector<std::string> MiniDfs::list_files() const {
  return namenode_.list_files();
}

Status MiniDfs::fail_node(cluster::NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= datanodes_.size()) {
    return invalid_argument_error("no such node");
  }
  datanodes_[static_cast<std::size_t>(node)].fail();
  return Status::ok();
}

Status MiniDfs::offline_node(cluster::NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= datanodes_.size()) {
    return invalid_argument_error("no such node");
  }
  datanodes_[static_cast<std::size_t>(node)].offline();
  return Status::ok();
}

Status MiniDfs::restart_node(cluster::NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= datanodes_.size()) {
    return invalid_argument_error("no such node");
  }
  auto& dn = datanodes_[static_cast<std::size_t>(node)];
  dn.restart();
  gc_stale_replicas(dn);
  return Status::ok();
}

void MiniDfs::gc_stale_replicas(DataNode& dn) {
  for (const auto& address : dn.stored_addresses()) {
    if (!namenode_.is_registered(address.stripe)) (void)dn.drop(address);
  }
}

Result<RecoveryReport> MiniDfs::crash_namenode() {
  auto report = namenode_.crash_and_recover();
  if (!report.is_ok()) return report;
  // Block reports: recovery rolled back open writes and finished
  // half-done deletes, so drop every block whose stripe no longer exists
  // -- the same GC a rejoining datanode runs.
  for (auto& dn : datanodes_) {
    if (dn.is_up()) gc_stale_replicas(dn);
  }
  return report;
}

void MiniDfs::account(cluster::NodeId from, cluster::NodeId to, double bytes,
                      net::TransferClass cls) {
  traffic_.record(from, to, bytes);
  if (options_.transfer_log != nullptr) {
    options_.transfer_log->record(from, to, bytes, cls);
  }
}

void MiniDfs::account_upload(cluster::NodeId node, double bytes,
                             net::TransferClass cls) {
  traffic_.record_to_client(node, bytes);
  if (options_.transfer_log != nullptr) {
    options_.transfer_log->record(net::kClientEndpoint, node, bytes, cls);
  }
}

void MiniDfs::account_delivery(cluster::NodeId node, double bytes,
                               net::TransferClass cls) {
  traffic_.record_to_client(node, bytes);
  if (options_.transfer_log != nullptr) {
    options_.transfer_log->record(node, net::kClientEndpoint, bytes, cls);
  }
}

std::set<cluster::NodeId> MiniDfs::down_nodes() const {
  std::set<cluster::NodeId> down;
  for (const auto& dn : datanodes_) {
    if (!dn.is_up()) down.insert(dn.id());
  }
  return down;
}

Status MiniDfs::repair_stripe(cluster::StripeId stripe) {
  // Pin the stripe against deletion for the whole pass: a delete or rename
  // arriving mid-repair now drain-waits on this lease instead of pulling
  // the catalog entry out from under us. A delete that announced itself
  // first (ABORTED) or already finished (NOT_FOUND) makes this repair a
  // clean no-op -- there is nothing left worth rebuilding.
  const Status lease_status = namenode_.begin_repair(stripe);
  if (lease_status.code() == StatusCode::kAborted ||
      lease_status.code() == StatusCode::kNotFound) {
    return Status::ok();
  }
  DBLREP_RETURN_IF_ERROR(lease_status);
  struct LeaseGuard {
    NameNode* nn;
    cluster::StripeId id;
    ~LeaseGuard() { nn->end_repair(id); }
  } lease_guard{&namenode_, stripe};

  // Skip unsealed stripes (writes in flight).
  if (!namenode_.is_sealed(stripe)) return Status::ok();
  const auto& info = namenode_.stripe(stripe);
  const ec::CodeScheme& code = *info.code;

  // Which code-local nodes have missing/unreadable slots for this stripe?
  // The probe is CRC-aware (get(), not has()): a corrupted replica on a
  // live node is as unusable to a plan as a missing one, and treating it
  // as failed both keeps the executor from tripping over it and lets the
  // repair rewrite it -- the chaos sweeps drive exactly this mix of
  // crashes and bit rot. Different stripes touch disjoint (stripe, slot)
  // addresses, so this probe never races with a concurrent repair of
  // another stripe.
  std::set<ec::NodeIndex> failed;
  for (std::size_t i = 0; i < info.group.size(); ++i) {
    const auto& holder = datanodes_[static_cast<std::size_t>(info.group[i])];
    if (!holder.is_up()) {
      failed.insert(static_cast<ec::NodeIndex>(i));
      continue;
    }
    for (std::size_t slot :
         code.layout().slots_on_node(static_cast<ec::NodeIndex>(i))) {
      if (!holder.get({stripe, slot}).is_ok()) {
        failed.insert(static_cast<ec::NodeIndex>(i));
        break;
      }
    }
  }
  if (failed.empty()) return Status::ok();

  // The (code, failure-pattern) pair almost always repeats across stripes,
  // so the basis solve behind plan_multi_node_repair runs once per distinct
  // pattern and is replayed -- across threads -- for every affected stripe.
  DBLREP_ASSIGN_OR_RETURN(const ec::RepairPlan* plan,
                          cached_repair_plan(code, failed));
  // Layering depends on this stripe's rack assignment, so it happens per
  // stripe over the shared cached plan (a cheap list rewrite -- the GF
  // work on actual blocks dwarfs it).
  ec::RepairPlan layered;
  if (options_.layered_repair) {
    layered = ec::layer_plan(*plan, group_racks(info.group));
    plan = &layered;
  }
  auto lease = runtime_pool_for(code).acquire();
  ec::SlotStore store = gather_stripe(stripe);
  auto run = lease->executor.execute(*plan, store);
  if (!run.is_ok()) return run.status();

  // Always-on guards (Status, not DCHECK): a malformed plan or a stripe
  // mutated under the repair must surface as an error in Release builds --
  // a chaos sweep that only runs Debug-checked paths proves nothing.
  if (store.empty() && !plan->aggregates.empty()) {
    return internal_error("repair plan executed over an empty slot store");
  }
  const std::size_t repair_block_size =
      store.empty() ? 0 : store.begin()->second.size();

  // Persist only what landed on *live* nodes; still-down nodes get theirs
  // when they are repaired. Account traffic per aggregate send.
  for (const auto& send : plan->aggregates) {
    if (static_cast<std::size_t>(send.from_node) >= info.group.size() ||
        static_cast<std::size_t>(send.to_node) >= info.group.size()) {
      return internal_error("repair plan send references a node outside the "
                            "stripe's placement group");
    }
    account(info.group[static_cast<std::size_t>(send.from_node)],
            info.group[static_cast<std::size_t>(send.to_node)],
            static_cast<double>(repair_block_size),
            net::TransferClass::kRepair);
  }
  // One stripe's repair = one dependency-chained flow; stripes of a larger
  // repair run independently (and that parallelism is the storm a captured
  // replay must reproduce).
  if (options_.transfer_log != nullptr) options_.transfer_log->mark();
  // Re-check the seal before persisting. The repair lease already excludes
  // deletion, so this is a backstop against plan or state corruption: if
  // it ever fires, fail loudly rather than resurrect dropped blocks.
  if (!namenode_.is_sealed(stripe)) {
    return failed_precondition_error(
        "stripe " + std::to_string(stripe) +
        " was unsealed or deleted while its repair was executing");
  }
  for (const auto& rec : plan->reconstructions) {
    const auto rebuilt = store.find(rec.dest_slot);
    if (rebuilt == store.end()) {
      return internal_error("repair plan left dest slot " +
                            std::to_string(rec.dest_slot) + " unbuilt");
    }
    if (rebuilt->second.size() != repair_block_size) {
      return corruption_error("rebuilt block size mismatch on stripe " +
                              std::to_string(stripe) + " slot " +
                              std::to_string(rec.dest_slot));
    }
    const cluster::NodeId dest = info.group[static_cast<std::size_t>(
        code.layout().node_of_slot(rec.dest_slot))];
    auto& dest_dn = datanodes_[static_cast<std::size_t>(dest)];
    if (dest_dn.is_up()) {
      DBLREP_RETURN_IF_ERROR(
          dest_dn.put({stripe, rec.dest_slot}, rebuilt->second));
    }
  }
  return Status::ok();
}

Status MiniDfs::repair_node(cluster::NodeId node) {
  if (node < 0 || static_cast<std::size_t>(node) >= datanodes_.size()) {
    return invalid_argument_error("no such node");
  }
  auto& dn = datanodes_[static_cast<std::size_t>(node)];
  if (!dn.is_up()) dn.restart();
  gc_stale_replicas(dn);

  // One pass over the node's stripes, fanned out across the pool: each
  // stripe independently probes its holes, fetches the shared cached plan
  // for its failure pattern, and executes with a checked-out executor.
  // parallel_for_all: an unrecoverable stripe must not stop the others
  // from healing, and the set of healed stripes (plus the reported error)
  // must be identical whether the pass runs serial or parallel.
  const auto stripes = namenode_.stripes_on_node(node);
  return exec::parallel_for_all(*pool_, stripes.size(), [&](std::size_t i) {
    return repair_stripe(stripes[i]);
  });
}

Status MiniDfs::repair_all() {
  // Restart everyone first so repairs can land replicas on all nodes, then
  // rebuild node by node (plans see the remaining holes shrink); each
  // node's stripes are repaired in parallel. A node whose repair fails
  // (e.g. an unrecoverable stripe) does not stop the sweep: every
  // recoverable stripe still heals, and the first error -- by node order,
  // not completion order -- is reported.
  for (auto& dn : datanodes_) {
    if (!dn.is_up()) dn.restart();
  }
  Status first_error;
  for (auto& dn : datanodes_) {
    Status status = repair_node(dn.id());
    if (!status.is_ok() && first_error.is_ok()) {
      first_error = std::move(status);
    }
  }
  return first_error;
}

Status MiniDfs::scrub() {
  for (const auto& [path, info] : namenode_.snapshot_files()) {
    auto code_result = scheme(info.code_spec);
    if (!code_result.is_ok()) return code_result.status();
    const ec::CodeScheme& code = **code_result;
    for (cluster::StripeId stripe : info.stripes) {
      ec::SlotStore store;
      for (std::size_t slot = 0; slot < code.layout().num_slots(); ++slot) {
        const cluster::NodeId node = namenode_.node_of({stripe, slot});
        const auto& dn = datanodes_[static_cast<std::size_t>(node)];
        if (!dn.is_up()) continue;
        auto bytes = dn.get({stripe, slot});
        if (bytes.status().code() == StatusCode::kNotFound) {
          return corruption_error(path + ": stripe " + std::to_string(stripe) +
                                  " slot " + std::to_string(slot) +
                                  " missing on live node");
        }
        if (!bytes.is_ok()) return bytes.status();
        store[slot] = std::move(*bytes);
      }
      DBLREP_RETURN_IF_ERROR(code.verify_codeword(store, info.block_size));
    }
  }
  return Status::ok();
}

Result<std::size_t> MiniDfs::scrub_repair() {
  // Snapshot the namespace, then heal file by file with the stripes of
  // each file fanned out across the pool.
  const std::vector<std::pair<std::string, FileInfo>> snapshot =
      namenode_.snapshot_files();
  std::atomic<std::size_t> healed{0};
  for (const auto& [path, info] : snapshot) {
    std::shared_lock<std::shared_mutex> path_lock(namenode_.path_mutex(path));
    auto code_result = scheme(info.code_spec);
    if (!code_result.is_ok()) return code_result.status();
    const ec::CodeScheme& code = **code_result;
    const Status file_status = exec::parallel_for_all(
        *pool_, info.stripes.size(), [&](std::size_t si) -> Status {
          const cluster::StripeId stripe = info.stripes[si];
          // Gather the verifiably-good slots, then decode once and rewrite
          // every bad or missing slot on a live node from the re-encoded
          // stripe. (Replica-copy would be cheaper per block; decoding
          // keeps this path simple and also heals parity-vs-data
          // inconsistency.)
          ec::SlotStore good = gather_stripe(stripe);
          const std::size_t slot_count = code.layout().num_slots();
          std::vector<std::size_t> bad_slots;
          for (std::size_t slot = 0; slot < slot_count; ++slot) {
            const cluster::NodeId node = namenode_.node_of({stripe, slot});
            const auto& dn = datanodes_[static_cast<std::size_t>(node)];
            if (!dn.is_up()) continue;  // node repair handles down nodes
            if (!good.contains(slot)) bad_slots.push_back(slot);
          }
          if (bad_slots.empty()) return Status::ok();
          auto data = code.decode(good, info.block_size);
          if (!data.is_ok()) return data.status();
          const auto symbols = code.encode_symbols(*data);
          for (std::size_t slot : bad_slots) {
            const cluster::NodeId node = namenode_.node_of({stripe, slot});
            DBLREP_RETURN_IF_ERROR(
                datanodes_[static_cast<std::size_t>(node)].put(
                    {stripe, slot},
                    symbols[code.layout().symbol_of_slot(slot)]));
            // The rewrite is sourced from the decoding site; count the
            // slot's payload (one unit) of traffic per healed replica.
            account_upload(
                node,
                static_cast<double>(
                    symbols[code.layout().symbol_of_slot(slot)].size()),
                net::TransferClass::kScrub);
            healed.fetch_add(1);
          }
          return Status::ok();
        });
    if (!file_status.is_ok()) return file_status;
  }
  return healed.load();
}

DataNode& MiniDfs::datanode(cluster::NodeId node) {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), datanodes_.size());
  return datanodes_[static_cast<std::size_t>(node)];
}

const DataNode& MiniDfs::datanode(cluster::NodeId node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), datanodes_.size());
  return datanodes_[static_cast<std::size_t>(node)];
}

Result<const ec::CodeScheme*> MiniDfs::code_for(
    const std::string& path) const {
  const auto file = lookup_copy(path);
  if (!file.is_ok()) return file.status();
  std::shared_lock<std::shared_mutex> lock(scheme_mu_);
  const auto it = schemes_.find(file->code_spec);
  if (it == schemes_.end()) {
    // Every published file's scheme was created through runtime(); a miss
    // means the namespace and scheme table disagree.
    return internal_error("no scheme runtime for " + file->code_spec);
  }
  return it->second.code.get();
}

std::size_t MiniDfs::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& dn : datanodes_) total += dn.bytes_stored();
  return total;
}

}  // namespace dblrep::hdfs
