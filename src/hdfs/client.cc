#include "hdfs/client.h"

#include <algorithm>
#include <cstdlib>

namespace dblrep::hdfs {

namespace {

/// ClientOptions override > DBLREP_CLIENT_INFLIGHT > 2 * (workers + 1).
/// The "+ 1" counts the appending thread itself; doubling keeps every
/// worker fed while the client encodes ahead.
std::size_t resolve_max_inflight(const MiniDfs& dfs,
                                 const ClientOptions& options) {
  if (options.max_inflight_stripes > 0) return options.max_inflight_stripes;
  const auto parsed =
      exec::ThreadPool::parse_worker_count(std::getenv("DBLREP_CLIENT_INFLIGHT"));
  if (parsed.has_value() && *parsed > 0) return *parsed;
  return 2 * (dfs.pool().num_workers() + 1);
}

}  // namespace

// ----------------------------------------------------------- FileWriter

FileWriter::FileWriter(MiniDfs* dfs, std::string path,
                       std::size_t stripe_bytes, std::size_t max_inflight,
                       net::TransferClass write_class)
    : dfs_(dfs),
      path_(std::move(path)),
      stripe_bytes_(stripe_bytes),
      max_inflight_(std::max<std::size_t>(max_inflight, 1)),
      write_class_(write_class),
      open_(true) {}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : dfs_(other.dfs_),
      path_(std::move(other.path_)),
      stripe_bytes_(other.stripe_bytes_),
      max_inflight_(other.max_inflight_),
      write_class_(other.write_class_),
      buffer_(std::move(other.buffer_)),
      inflight_(std::move(other.inflight_)),
      deferred_(std::move(other.deferred_)),
      appended_(other.appended_),
      stats_(other.stats_),
      open_(other.open_) {
  // views_inflight_ is always false between calls (append drains its
  // zero-copy stores before returning), so there is no borrowed span to
  // hand over.
  other.open_ = false;
  other.inflight_.clear();
}

FileWriter::~FileWriter() {
  if (open_) (void)finish(/*commit=*/false);
}

void FileWriter::drain(std::size_t allow) {
  while (inflight_.size() > allow) {
    Status done = inflight_.front().get();
    inflight_.pop_front();
    // Front-first draining makes the recorded error the lowest-stripe
    // failure, independent of pool scheduling.
    if (!done.is_ok() && deferred_.is_ok()) deferred_ = std::move(done);
  }
}

Result<cluster::StripeId> FileWriter::prepare_dispatch() {
  // Bound the pipeline (and with it ingest memory): wait for the oldest
  // store before adding another.
  drain(max_inflight_ - 1);
  if (!deferred_.is_ok()) return deferred_;

  auto stripe_id = dfs_->allocate_stripe(path_);
  if (!stripe_id.is_ok()) deferred_ = stripe_id.status();
  return stripe_id;
}

Status FileWriter::dispatch(Buffer stripe_data) {
  auto stripe_id = prepare_dispatch();
  if (!stripe_id.is_ok()) return deferred_;
  MiniDfs* dfs = dfs_;
  const std::string path = path_;
  const cluster::StripeId stripe = *stripe_id;
  const net::TransferClass cls = write_class_;
  inflight_.push_back(exec::spawn(
      dfs_->pool(), [dfs, path, stripe, cls, data = std::move(stripe_data)] {
        return dfs->store_stripe(path, stripe, data, cls);
      }));
  return Status::ok();
}

Status FileWriter::dispatch_view(ByteSpan stripe_data) {
  auto stripe_id = prepare_dispatch();
  if (!stripe_id.is_ok()) return deferred_;
  // Zero-copy: the store task encodes straight out of the caller's span
  // (the codec's systematic symbols are views into it), so append() must
  // drain this store before returning control to the caller.
  MiniDfs* dfs = dfs_;
  const std::string path = path_;
  const cluster::StripeId stripe = *stripe_id;
  const net::TransferClass cls = write_class_;
  inflight_.push_back(
      exec::spawn(dfs_->pool(), [dfs, path, stripe, cls, stripe_data] {
        return dfs->store_stripe(path, stripe, stripe_data, cls);
      }));
  views_inflight_ = true;
  return Status::ok();
}

Status FileWriter::append(ByteSpan data) {
  if (!open_) {
    return failed_precondition_error("append on closed writer for " + path_);
  }
  if (!deferred_.is_ok()) return deferred_;
  append_impl(data);
  if (views_inflight_) {
    // Zero-copy stores borrow `data`; finish them before the caller
    // reclaims the span. (Owned-buffer stores keep pipelining across
    // appends; only span-borrowing ones force this barrier.)
    drain(0);
    views_inflight_ = false;
  }
  return deferred_;
}

void FileWriter::append_impl(ByteSpan data) {
  // Ragged bytes are copied exactly once, into the pre-reserved sub-stripe
  // buffer; stripe-aligned runs of the span skip even that and are encoded
  // zero-copy by dispatch_view. buffer_ holds strictly less than one
  // stripe between calls: top it up first, then dispatch full stripes
  // straight from the span, then stash the sub-stripe tail. appended_
  // counts only accepted bytes -- a failed dispatch returns early and its
  // stripe (and the span's unconsumed tail) never count.
  std::size_t pos = 0;
  if (!buffer_.empty()) {
    const std::size_t take =
        std::min(stripe_bytes_ - buffer_.size(), data.size());
    buffer_.insert(buffer_.end(), data.begin(),
                   data.begin() + static_cast<std::ptrdiff_t>(take));
    pos = take;
    appended_ += take;
    stats_.buffered_bytes += take;
    if (buffer_.size() == stripe_bytes_) {
      Buffer stripe = std::move(buffer_);
      buffer_ = Buffer();
      if (!dispatch(std::move(stripe)).is_ok()) return;
    }
  }
  while (data.size() - pos >= stripe_bytes_) {
    if (!dispatch_view(data.subspan(pos, stripe_bytes_)).is_ok()) return;
    pos += stripe_bytes_;
    appended_ += stripe_bytes_;
    stats_.zero_copy_bytes += stripe_bytes_;
  }
  const std::size_t tail = data.size() - pos;
  if (tail > 0) {
    // One up-front reservation per buffer lifetime: the buffer grows to at
    // most stripe_bytes_ before it is dispatched, so reserving the full
    // stripe here avoids the log(stripe_bytes) doubling reallocations a
    // drip-fed ingest would otherwise pay per stripe.
    buffer_.reserve(stripe_bytes_);
    buffer_.insert(buffer_.end(),
                   data.begin() + static_cast<std::ptrdiff_t>(pos),
                   data.end());
    appended_ += tail;
    stats_.buffered_bytes += tail;
  }
}

Status FileWriter::finish(bool commit) {
  open_ = false;
  drain(0);
  if (commit && deferred_.is_ok()) {
    const Status committed = dfs_->commit_write(path_);
    if (!committed.is_ok()) (void)dfs_->abort_write(path_);
    return committed;
  }
  const Status aborted = dfs_->abort_write(path_);
  if (!deferred_.is_ok()) return deferred_;
  return aborted;
}

Status FileWriter::close() {
  if (!open_) {
    return failed_precondition_error("close on closed writer for " + path_);
  }
  if (deferred_.is_ok() && !buffer_.empty()) {
    Buffer tail = std::move(buffer_);
    buffer_ = Buffer();
    (void)dispatch(std::move(tail));  // failure lands in deferred_
  }
  return finish(/*commit=*/true);
}

Status FileWriter::abort() {
  if (!open_) {
    return failed_precondition_error("abort on closed writer for " + path_);
  }
  return finish(/*commit=*/false);
}

// --------------------------------------------------------------- Client

Client::Client(MiniDfs& dfs, ClientOptions options)
    : dfs_(&dfs),
      max_inflight_(resolve_max_inflight(dfs, options)),
      read_class_(options.read_class),
      write_class_(options.write_class) {}

Result<FileWriter> Client::create(const std::string& path,
                                  const std::string& code_spec,
                                  std::size_t block_size) {
  DBLREP_RETURN_IF_ERROR(dfs_->begin_write(path, code_spec, block_size));
  auto code_result = dfs_->scheme(code_spec);
  if (!code_result.is_ok()) {
    (void)dfs_->abort_write(path);
    return code_result.status();
  }
  return FileWriter(dfs_, path, (*code_result)->data_blocks() * block_size,
                    max_inflight_, write_class_);
}

Status Client::write(const std::string& path, ByteSpan data,
                     const std::string& code_spec, std::size_t block_size) {
  return dfs_->write_file(path, data, code_spec, block_size);
}

Result<Buffer> Client::read(const std::string& path) {
  return dfs_->read_file(path, read_class_);
}

Result<Buffer> Client::pread(const std::string& path, std::size_t offset,
                             std::size_t len) {
  return dfs_->pread(path, offset, len, read_class_);
}

Result<Buffer> Client::read_block(const std::string& path,
                                  std::size_t block_index) {
  return dfs_->read_block(path, block_index, read_class_);
}

exec::Future<Status> Client::write_async(std::string path, Buffer data,
                                         std::string code_spec,
                                         std::size_t block_size) {
  MiniDfs* dfs = dfs_;
  return exec::spawn(dfs_->pool(),
                     [dfs, path = std::move(path), data = std::move(data),
                      code_spec = std::move(code_spec), block_size] {
                       return dfs->write_file(path, data, code_spec,
                                              block_size);
                     });
}

exec::Future<Result<Buffer>> Client::read_async(std::string path) {
  MiniDfs* dfs = dfs_;
  const net::TransferClass cls = read_class_;
  return exec::spawn(dfs_->pool(), [dfs, cls, path = std::move(path)] {
    return dfs->read_file(path, cls);
  });
}

exec::Future<Result<Buffer>> Client::pread_async(std::string path,
                                                 std::size_t offset,
                                                 std::size_t len) {
  MiniDfs* dfs = dfs_;
  const net::TransferClass cls = read_class_;
  return exec::spawn(dfs_->pool(),
                     [dfs, cls, path = std::move(path), offset, len] {
                       return dfs->pread(path, offset, len, cls);
                     });
}

}  // namespace dblrep::hdfs
