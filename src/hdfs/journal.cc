#include "hdfs/journal.h"

#include <cstring>
#include <limits>

namespace dblrep::hdfs {

namespace {

// Explicit little-endian field codec: the journal is a durability format,
// so the byte layout must not depend on host struct layout or endianness.

class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) u64(x);
  }
  void vec_i32(const std::vector<std::int32_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::int32_t x : v) u32(static_cast<std::uint32_t>(x));
  }

  Buffer take() { return std::move(out_); }

 private:
  void raw(const void* p, std::size_t n) {
    // Serialize byte-by-byte little-endian regardless of host order.
    const auto* bytes = static_cast<const std::uint8_t*>(p);
    std::uint64_t v = 0;
    std::memcpy(&v, bytes, n);
    for (std::size_t i = 0; i < n; ++i) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }

  Buffer out_;
};

class Decoder {
 public:
  explicit Decoder(ByteSpan in) : in_(in) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(raw(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(raw(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw(4)); }
  std::uint64_t u64() { return raw(8); }
  std::string str() {
    const std::uint32_t n = u32();
    if (!take(n)) return {};
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_ - n), n);
    return s;
  }
  std::vector<std::uint64_t> vec_u64() {
    const std::uint32_t n = u32();
    std::vector<std::uint64_t> v;
    if (!ok_ || n > in_.size()) {  // count can't exceed remaining bytes
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) v.push_back(u64());
    return v;
  }
  std::vector<std::int32_t> vec_i32() {
    const std::uint32_t n = u32();
    std::vector<std::int32_t> v;
    if (!ok_ || n > in_.size()) {
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (std::uint32_t i = 0; i < n && ok_; ++i) {
      v.push_back(static_cast<std::int32_t>(u32()));
    }
    return v;
  }

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == in_.size(); }

 private:
  std::uint64_t raw(std::size_t n) {
    if (!take(n)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(in_[pos_ - n + i]) << (8 * i);
    }
    return v;
  }
  bool take(std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  ByteSpan in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encode_file_state(Encoder& enc, const FileState& file) {
  enc.str(file.code_spec);
  enc.u64(file.block_size);
  enc.u64(file.length);
  enc.vec_u64(file.stripes);
}

FileState decode_file_state(Decoder& dec) {
  FileState file;
  file.code_spec = dec.str();
  file.block_size = dec.u64();
  file.length = dec.u64();
  file.stripes = dec.vec_u64();
  return file;
}

Buffer encode_payload(const JournalRecord& record) {
  Encoder enc;
  enc.u16(static_cast<std::uint16_t>(record.kind));
  enc.u64(record.seq);
  enc.str(record.path);
  enc.str(record.path2);
  enc.str(record.code_spec);
  enc.u64(record.block_size);
  enc.u64(record.length);
  enc.u64(record.stripe);
  enc.vec_u64(record.stripes);
  enc.u32(static_cast<std::uint32_t>(record.groups.size()));
  for (const auto& group : record.groups) enc.vec_i32(group);
  encode_file_state(enc, record.file);
  return enc.take();
}

bool decode_payload(ByteSpan payload, JournalRecord& record) {
  Decoder dec(payload);
  const std::uint16_t kind = dec.u16();
  if (kind < static_cast<std::uint16_t>(JournalRecordKind::kCreate) ||
      kind > static_cast<std::uint16_t>(JournalRecordKind::kGcStripes)) {
    return false;
  }
  record.kind = static_cast<JournalRecordKind>(kind);
  record.seq = dec.u64();
  record.path = dec.str();
  record.path2 = dec.str();
  record.code_spec = dec.str();
  record.block_size = dec.u64();
  record.length = dec.u64();
  record.stripe = dec.u64();
  record.stripes = dec.vec_u64();
  const std::uint32_t num_groups = dec.u32();
  if (!dec.ok() || num_groups > payload.size()) return false;
  record.groups.clear();
  record.groups.reserve(num_groups);
  for (std::uint32_t g = 0; g < num_groups && dec.ok(); ++g) {
    record.groups.push_back(dec.vec_i32());
  }
  record.file = decode_file_state(dec);
  return dec.done();
}

constexpr std::size_t kFrameHeader = 8;  // u32 length + u32 crc
/// Upper bound on a single record's payload: a frame claiming more is
/// certainly garbage (a torn length field must not trigger a huge read).
constexpr std::size_t kMaxPayload = 1u << 28;

constexpr std::uint32_t kSnapshotMagic = 0x4e535244;  // "DRSN"
constexpr std::uint32_t kSnapshotVersion = 1;

}  // namespace

const char* to_string(JournalRecordKind kind) {
  switch (kind) {
    case JournalRecordKind::kCreate:    return "create";
    case JournalRecordKind::kAllocate:  return "allocate";
    case JournalRecordKind::kStore:     return "store";
    case JournalRecordKind::kSeal:      return "seal";
    case JournalRecordKind::kCommit:    return "commit";
    case JournalRecordKind::kAbort:     return "abort";
    case JournalRecordKind::kDelete:    return "delete";
    case JournalRecordKind::kRename:    return "rename";
    case JournalRecordKind::kRenameOut: return "rename_out";
    case JournalRecordKind::kRenameIn:  return "rename_in";
    case JournalRecordKind::kRenameAck: return "rename_ack";
    case JournalRecordKind::kGcStripes: return "gc_stripes";
  }
  return "unknown";
}

Buffer encode_record(const JournalRecord& record) {
  const Buffer payload = encode_payload(record);
  Encoder enc;
  enc.u32(static_cast<std::uint32_t>(payload.size()));
  enc.u32(crc32c(payload));
  Buffer framed = enc.take();
  framed.insert(framed.end(), payload.begin(), payload.end());
  return framed;
}

ParsedJournal parse_journal(ByteSpan bytes) {
  ParsedJournal out;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeader) {
      out.tail_error = "torn frame header (" +
                       std::to_string(bytes.size() - pos) + " bytes)";
      break;
    }
    std::uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
      crc |= static_cast<std::uint32_t>(bytes[pos + 4 + i]) << (8 * i);
    }
    if (len > kMaxPayload) {
      out.tail_error = "frame length " + std::to_string(len) + " implausible";
      break;
    }
    if (bytes.size() - pos - kFrameHeader < len) {
      out.tail_error = "torn payload (have " +
                       std::to_string(bytes.size() - pos - kFrameHeader) +
                       " of " + std::to_string(len) + " bytes)";
      break;
    }
    const ByteSpan payload = bytes.subspan(pos + kFrameHeader, len);
    if (crc32c(payload) != crc) {
      out.tail_error = "payload CRC mismatch at offset " + std::to_string(pos);
      break;
    }
    JournalRecord record;
    if (!decode_payload(payload, record)) {
      out.tail_error = "undecodable payload at offset " + std::to_string(pos);
      break;
    }
    out.records.push_back(std::move(record));
    pos += kFrameHeader + len;
    out.clean_bytes = pos;
  }
  out.discarded_bytes = bytes.size() - out.clean_bytes;
  return out;
}

Buffer encode_snapshot(const ShardImage& image) {
  Encoder body;
  body.u64(image.last_seq);
  body.u64(image.next_stripe_id);
  body.u64(image.files.size());
  for (const auto& [path, file] : image.files) {
    body.str(path);
    encode_file_state(body, file);
  }
  body.u64(image.pending.size());
  for (const auto& [path, file] : image.pending) {
    body.str(path);
    encode_file_state(body, file);
  }
  body.u64(image.stripes.size());
  for (const auto& stripe : image.stripes) {
    body.u64(stripe.id);
    body.str(stripe.code_spec);
    body.u8(stripe.sealed ? 1 : 0);
    body.vec_i32(stripe.group);
  }
  const Buffer payload = body.take();

  Encoder framed;
  framed.u32(kSnapshotMagic);
  framed.u32(kSnapshotVersion);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u32(crc32c(payload));
  Buffer out = framed.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<ShardImage> decode_snapshot(ByteSpan bytes) {
  ShardImage image;
  if (bytes.empty()) return image;  // never snapshotted
  if (bytes.size() < 16) {
    return corruption_error("snapshot shorter than its header");
  }
  Decoder header(bytes.subspan(0, 16));
  if (header.u32() != kSnapshotMagic) {
    return corruption_error("snapshot magic mismatch");
  }
  if (header.u32() != kSnapshotVersion) {
    return corruption_error("unsupported snapshot version");
  }
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  if (bytes.size() - 16 != len) {
    return corruption_error("snapshot length mismatch");
  }
  const ByteSpan payload = bytes.subspan(16, len);
  if (crc32c(payload) != crc) {
    return corruption_error("snapshot CRC mismatch");
  }

  Decoder dec(payload);
  image.last_seq = dec.u64();
  image.next_stripe_id = dec.u64();
  const std::uint64_t num_files = dec.u64();
  for (std::uint64_t i = 0; i < num_files && dec.ok(); ++i) {
    std::string path = dec.str();
    image.files.emplace_back(std::move(path), decode_file_state(dec));
  }
  const std::uint64_t num_pending = dec.u64();
  for (std::uint64_t i = 0; i < num_pending && dec.ok(); ++i) {
    std::string path = dec.str();
    image.pending.emplace_back(std::move(path), decode_file_state(dec));
  }
  const std::uint64_t num_stripes = dec.u64();
  for (std::uint64_t i = 0; i < num_stripes && dec.ok(); ++i) {
    ShardImage::Stripe stripe;
    stripe.id = dec.u64();
    stripe.code_spec = dec.str();
    stripe.sealed = dec.u8() != 0;
    stripe.group = dec.vec_i32();
    image.stripes.push_back(std::move(stripe));
  }
  if (!dec.done()) {
    return corruption_error("snapshot payload undecodable");
  }
  return image;
}

std::size_t Journal::append(const JournalRecord& record) {
  const Buffer framed = encode_record(record);
  buf_.insert(buf_.end(), framed.begin(), framed.end());
  boundaries_.push_back(buf_.size());
  last_seq_ = record.seq;
  return boundaries_.size() - 1;
}

void Journal::clear() {
  buf_.clear();
  boundaries_.clear();
  // last_seq_ survives: it reports the newest mutation this shard has
  // journaled, snapshotted or not.
}

Status Journal::drop_last_record() {
  if (boundaries_.empty()) {
    return failed_precondition_error("journal has no record to drop");
  }
  boundaries_.pop_back();
  buf_.resize(boundaries_.empty() ? 0 : boundaries_.back());
  // Recompute last_seq_ from what remains (test-only path; cost is fine).
  const ParsedJournal parsed = parse_journal(buf_);
  last_seq_ = parsed.records.empty() ? 0 : parsed.records.back().seq;
  return Status::ok();
}

}  // namespace dblrep::hdfs
