#include "hdfs/raidnode.h"

#include <algorithm>

#include "hdfs/client.h"

namespace dblrep::hdfs {

Result<RaidReport> RaidNode::raid_file(const std::string& path,
                                       const std::string& target_code_spec) {
  auto info = dfs_->stat(path);
  if (!info.is_ok()) return info.status();
  if (info->code_spec == target_code_spec) {
    return failed_precondition_error("file already encoded with " +
                                     target_code_spec);
  }

  RaidReport report;
  report.bytes_before = dfs_->stored_bytes();

  // Stream through the client path: pread stripe-sized chunks of the old
  // layout (degraded stripes decode on the fly) into a FileWriter on the
  // new layout, so the re-encode never holds more than the in-flight
  // window in memory -- files larger than memory RAID fine. The handle is
  // classed kRetier on both directions: re-encode bytes show up as
  // background (repair-class) traffic, and the reads do not feed heat
  // tracking.
  Client client(*dfs_, {.read_class = net::TransferClass::kRetier,
                        .write_class = net::TransferClass::kRetier});
  const std::string temp_path = path + ".raid-tmp";
  auto writer = client.create(temp_path, target_code_spec, info->block_size);
  if (!writer.is_ok()) return writer.status();
  const std::size_t chunk =
      std::max<std::size_t>(info->block_size, 1) * 16;
  std::size_t offset = 0;
  bool hook_fired = false;
  while (offset < info->length) {
    auto piece = client.pread(path, offset, chunk);
    if (!piece.is_ok()) {
      (void)writer->abort();
      return piece.status();
    }
    const Status appended = writer->append(*piece);
    if (!appended.is_ok()) {
      (void)writer->abort();
      return appended;
    }
    offset += piece->size();
    if (!hook_fired && mid_stream_hook_) {
      hook_fired = true;
      mid_stream_hook_();
    }
  }
  // Publish-then-delete: close() publishes the complete new layout under
  // the temp name, then replace_file atomically swaps it over `path` and
  // hands the old layout's blocks to GC. The original serves every read
  // until the swap; the swap itself excludes readers via both path locks.
  // If `path` was deleted while we streamed, replace_file loses with
  // NOT_FOUND and the temp layout is dropped -- the delete wins cleanly.
  DBLREP_RETURN_IF_ERROR(writer->close());
  const Status swapped = dfs_->replace_file(temp_path, path);
  if (!swapped.is_ok()) {
    (void)dfs_->delete_file(temp_path);
    return swapped;
  }

  auto raided = dfs_->stat(path);
  if (!raided.is_ok()) return raided.status();
  report.stripes_written = raided->stripes.size();
  report.bytes_after = dfs_->stored_bytes();
  return report;
}

}  // namespace dblrep::hdfs
