#include "hdfs/raidnode.h"

namespace dblrep::hdfs {

Result<RaidReport> RaidNode::raid_file(const std::string& path,
                                       const std::string& target_code_spec) {
  auto info = dfs_->stat(path);
  if (!info.is_ok()) return info.status();
  if (info->code_spec == target_code_spec) {
    return failed_precondition_error("file already encoded with " +
                                     target_code_spec);
  }

  RaidReport report;
  report.bytes_before = dfs_->stored_bytes();

  // Read through the client path (handles degraded stripes), then rewrite
  // under a temporary name and swap.
  auto data = dfs_->read_file(path);
  if (!data.is_ok()) return data.status();

  // Write the new layout under a temporary name first, then swap -- the
  // original survives any failure during re-encode.
  const std::string temp_path = path + ".raid-tmp";
  DBLREP_RETURN_IF_ERROR(dfs_->write_file(temp_path, *data, target_code_spec,
                                          info->block_size));
  DBLREP_RETURN_IF_ERROR(dfs_->delete_file(path));
  DBLREP_RETURN_IF_ERROR(dfs_->rename(temp_path, path));

  auto raided = dfs_->stat(path);
  if (!raided.is_ok()) return raided.status();
  report.stripes_written = raided->stripes.size();
  report.bytes_after = dfs_->stored_bytes();
  return report;
}

}  // namespace dblrep::hdfs
