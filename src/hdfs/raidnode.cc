#include "hdfs/raidnode.h"

#include <algorithm>

#include "hdfs/client.h"

namespace dblrep::hdfs {

Result<RaidReport> RaidNode::raid_file(const std::string& path,
                                       const std::string& target_code_spec) {
  auto info = dfs_->stat(path);
  if (!info.is_ok()) return info.status();
  if (info->code_spec == target_code_spec) {
    return failed_precondition_error("file already encoded with " +
                                     target_code_spec);
  }

  RaidReport report;
  report.bytes_before = dfs_->stored_bytes();

  // Stream through the client path: pread stripe-sized chunks of the old
  // layout (degraded stripes decode on the fly) into a FileWriter on the
  // new layout, so the re-encode never holds more than the in-flight
  // window in memory -- files larger than memory RAID fine.
  Client client(*dfs_);
  const std::string temp_path = path + ".raid-tmp";
  auto writer = client.create(temp_path, target_code_spec, info->block_size);
  if (!writer.is_ok()) return writer.status();
  const std::size_t chunk =
      std::max<std::size_t>(info->block_size, 1) * 16;
  std::size_t offset = 0;
  while (offset < info->length) {
    auto piece = client.pread(path, offset, chunk);
    if (!piece.is_ok()) {
      (void)writer->abort();
      return piece.status();
    }
    const Status appended = writer->append(*piece);
    if (!appended.is_ok()) {
      (void)writer->abort();
      return appended;
    }
    offset += piece->size();
  }
  // The new layout lands under a temporary name first, then swaps -- the
  // original survives any failure during re-encode.
  DBLREP_RETURN_IF_ERROR(writer->close());
  DBLREP_RETURN_IF_ERROR(dfs_->delete_file(path));
  DBLREP_RETURN_IF_ERROR(dfs_->rename(temp_path, path));

  auto raided = dfs_->stat(path);
  if (!raided.is_ok()) return raided.status();
  report.stripes_written = raided->stripes.size();
  report.bytes_after = dfs_->stored_bytes();
  return report;
}

}  // namespace dblrep::hdfs
