// WorkloadDriver: closed-loop client traffic against a MiniDfs.
//
// The paper's deployment context -- and the regime "XORing Elephants"
// (Sathiamoorthy et al.) and "Optimal Repair Layering" (Hu et al.) evaluate
// -- is an HDFS-RAID cluster serving foreground read/write traffic while
// node repairs run in the background. The driver reproduces that: N client
// threads each issue a closed loop of operations (read / write / degraded
// read / byte-range pread / streaming append, mixed by configurable
// fractions) through an hdfs::Client against the shared DFS, optionally
// while repair_all() executes on a background thread. Each client collects
// per-op latency into private RunningStat/Histogram instances that are
// merged lock-free at join time.
//
// Degraded reads are real ones: before the run the driver crash-fails
// `fail_nodes` nodes and indexes every block whose replicas were all lost;
// the degraded mix then reads exactly those blocks, exercising the
// on-the-fly ec::RepairPlan path under concurrency. The pread mix reads
// random sub-file byte ranges (the MapReduce-task access pattern); the
// append mix streams each new file through a FileWriter handle across
// several append ops before sealing it -- the chunks partition the shared
// payload, so a file that received its full complement of appends holds
// exactly the payload bytes (a handle still open when the loop ends seals
// as a prefix of it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"

namespace dblrep::hdfs {

struct WorkloadOptions {
  std::size_t clients = 4;
  std::size_t ops_per_client = 50;

  /// Op mix; fractions are normalized by their sum. "degraded" falls back
  /// to a plain read when no block is actually degraded (healthy cluster).
  /// pread reads a random byte range of a preloaded file; append streams a
  /// new file through a FileWriter handle, one append op at a time, and
  /// seals it after `appends_per_file` ops. The new mixes default to zero
  /// so existing drivers (and chaos replays) are unchanged.
  double read_fraction = 0.6;
  double write_fraction = 0.2;
  double degraded_fraction = 0.2;
  double pread_fraction = 0.0;
  double append_fraction = 0.0;

  /// Append ops a streaming file spreads over before close(); the chunks
  /// partition the shared payload, so a sealed append file holds exactly
  /// the same bytes as a written one.
  std::size_t appends_per_file = 4;

  std::string code_spec = "rs-10-4";
  std::size_t block_size = 4096;
  std::size_t stripes_per_file = 2;
  std::size_t preload_files = 8;

  /// Namespace root for every path the driver creates. Give each driver its
  /// own prefix to run several against one DFS (the chaos harness fires
  /// many bursts into a long-lived cluster).
  std::string path_prefix = "/wl";

  /// Nodes crash-failed before the clients start (picked deterministically
  /// from the first stripe's placement so data is actually lost).
  std::size_t fail_nodes = 0;

  /// Run repair_all() on a background thread concurrently with the
  /// clients -- the workload-under-repair scenario.
  bool repair_concurrently = false;

  /// Zipf exponent of the preloaded-file popularity distribution the read
  /// and pread mixes draw from. 0 (the default) keeps the original uniform
  /// pick -- and the exact per-seed RNG draw sequence, so existing mixes
  /// and chaos replays are byte-identical. s > 0 skews toward the first
  /// preloaded files (rank 0 = hottest), the access pattern tiering is
  /// built for; s around 1 matches the classic web/MapReduce skew.
  double zipf_s = 0;

  std::uint64_t seed = 1;
};

/// Inverse-CDF sampler over ranks {0, ..., n-1} with probability
/// proportional to 1 / (rank + 1)^s. One next_double per sample, so
/// swapping it in for a uniform pick consumes the same RNG budget per op.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank (0 = most popular).
  std::size_t sample(Rng& rng) const;

  /// P(rank) under the distribution.
  double probability(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r), last entry 1.0
};

/// Per-operation-type latency record. Latencies are microseconds.
struct OpStats {
  RunningStat latency_us;
  Histogram latency_hist = Histogram::log_spaced(1.0, 1e7, 4);
  std::size_t errors = 0;

  void record(double us, bool ok);
  void merge(const OpStats& other);

  // Tail quantiles off the log-spaced histogram. p999 is the paper-regime
  // headline: repair storms show up in the extreme tail long before they
  // move the mean.
  double p50_us() const { return latency_hist.quantile(0.50); }
  double p99_us() const { return latency_hist.quantile(0.99); }
  double p999_us() const { return latency_hist.quantile(0.999); }

  /// JSON object: count/errors/mean/min/max/p50/p99/p999 plus the raw
  /// histogram counts (underflow and overflow buckets included).
  std::string to_json() const;
};

struct WorkloadReport {
  OpStats read;
  OpStats write;
  OpStats degraded;
  OpStats pread;
  OpStats append;

  double wall_s = 0;
  double ops_per_s = 0;

  /// Wall time of the concurrent repair_all(), 0 when not requested.
  double repair_s = 0;
  Status repair_status;

  /// Wire traffic the run generated (TrafficMeter delta over the run):
  /// node-to-node bytes split intra- vs cross-rack per the topology, plus
  /// client-facing bytes in either direction (write uploads as well as
  /// read deliveries). total = intra + cross + client.
  double traffic_total_bytes = 0;
  double traffic_intra_rack_bytes = 0;
  double traffic_cross_rack_bytes = 0;
  double traffic_client_bytes = 0;

  std::size_t total_ops() const {
    return read.latency_us.count() + write.latency_us.count() +
           degraded.latency_us.count() + pread.latency_us.count() +
           append.latency_us.count();
  }
  std::size_t total_errors() const {
    return read.errors + write.errors + degraded.errors + pread.errors +
           append.errors;
  }

  /// Full report as one JSON object: per-op OpStats (histograms included),
  /// throughput, repair wall time, and the traffic split -- the `--json`
  /// export surface of the workload benches.
  std::string to_json() const;
};

class WorkloadDriver {
 public:
  WorkloadDriver(MiniDfs& dfs, WorkloadOptions options);

  /// Writes the initial file population the read mix will target. Must be
  /// called (successfully) before run().
  Status preload();

  /// Fails nodes, spawns the clients (and the background repair when
  /// configured), joins everything, and returns the merged report.
  Result<WorkloadReport> run();

  /// The shared payload every write stores -- callers (the chaos harness)
  /// use it as the ground-truth contents of driver-created files.
  const Buffer& payload() const { return payload_; }
  const std::vector<std::string>& preloaded_paths() const {
    return preloaded_;
  }

 private:
  struct ClientStats {
    OpStats read, write, degraded, pread, append;
  };

  void client_loop(std::size_t client_index, Rng rng, ClientStats& stats);

  MiniDfs* dfs_;
  WorkloadOptions options_;
  std::vector<std::string> preloaded_;
  Buffer payload_;  // shared immutable write payload
  std::vector<std::pair<std::string, std::size_t>> degraded_blocks_;
};

}  // namespace dblrep::hdfs
