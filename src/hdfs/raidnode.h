// RaidNode: the background re-encoder of Facebook's HDFS-RAID module,
// which the paper uses as its implementation baseline. A freshly ingested
// file lives as plain replicas; the RaidNode later converts it to an
// erasure-coded layout (here: pentagon/heptagon/heptagon-local/RAID+m/RS)
// and drops the now-redundant replicas, reclaiming storage while keeping
// -- for the codes of this paper -- an inherent double replica of every
// block.
#pragma once

#include <string>

#include "common/status.h"
#include "hdfs/minidfs.h"

namespace dblrep::hdfs {

struct RaidReport {
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
  std::size_t stripes_written = 0;

  double overhead_before(std::size_t logical) const {
    return logical ? static_cast<double>(bytes_before) / logical : 0.0;
  }
  double overhead_after(std::size_t logical) const {
    return logical ? static_cast<double>(bytes_after) / logical : 0.0;
  }
};

class RaidNode {
 public:
  explicit RaidNode(MiniDfs& dfs) : dfs_(&dfs) {}

  /// Re-encodes `path` with `target_code_spec` (e.g. a 3-rep file into a
  /// pentagon file). The file keeps its path and block size; on success
  /// the old layout is deleted. Reads go through the normal client path,
  /// so raiding a file with failed nodes exercises degraded reads.
  Result<RaidReport> raid_file(const std::string& path,
                               const std::string& target_code_spec);

 private:
  MiniDfs* dfs_;
};

}  // namespace dblrep::hdfs
