// RaidNode: the background re-encoder of Facebook's HDFS-RAID module,
// which the paper uses as its implementation baseline. A freshly ingested
// file lives as plain replicas; the RaidNode later converts it to an
// erasure-coded layout (here: pentagon/heptagon/heptagon-local/RAID+m/RS)
// and drops the now-redundant replicas, reclaiming storage while keeping
// -- for the codes of this paper -- an inherent double replica of every
// block. The tiering engine (src/tier/engine.h) drives the same streaming
// re-encode in both directions (demote to coded layouts, promote back to
// replication).
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "hdfs/minidfs.h"

namespace dblrep::hdfs {

struct RaidReport {
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
  std::size_t stripes_written = 0;

  double overhead_before(std::size_t logical) const {
    return logical ? static_cast<double>(bytes_before) / logical : 0.0;
  }
  double overhead_after(std::size_t logical) const {
    return logical ? static_cast<double>(bytes_after) / logical : 0.0;
  }
};

class RaidNode {
 public:
  explicit RaidNode(MiniDfs& dfs) : dfs_(&dfs) {}

  /// Re-encodes `path` with `target_code_spec` (e.g. a 3-rep file into a
  /// pentagon file). The file keeps its path and block size. Reads go
  /// through the normal client path (degraded stripes decode on the fly),
  /// and every byte the re-encode moves is accounted under the kRetier
  /// transfer class -- throttleable like repair, distinguishable from
  /// client traffic in TrafficMeter captures.
  ///
  /// Safety: the new layout lands under `path + ".raid-tmp"` and takes
  /// over the path via MiniDfs::replace_file -- publish-then-delete, so
  /// `path` resolves to a complete, readable layout at every instant. A
  /// delete (or rename) of `path` racing the re-encode wins: replace_file
  /// returns NOT_FOUND, the temp file is dropped, and the error surfaces.
  Result<RaidReport> raid_file(const std::string& path,
                               const std::string& target_code_spec);

  /// Test hook: invoked once mid-stream, after the first chunk is appended
  /// to the temp layout (chaos uses it to land node failures and crashes
  /// in the middle of a transition).
  void set_mid_stream_hook(std::function<void()> hook) {
    mid_stream_hook_ = std::move(hook);
  }

 private:
  MiniDfs* dfs_;
  std::function<void()> mid_stream_hook_;
};

}  // namespace dblrep::hdfs
