// DataNode: per-node block store with CRC-32C integrity, the byte-level
// half of the mini-HDFS data plane. The paper's implementation lives
// inside Facebook's HDFS-RAID (hadoop-0.20); this in-process analogue keeps
// the same responsibilities: store block replicas, serve reads, detect
// corruption, lose everything on node failure.
//
// Thread-safe: each DataNode guards its block map with its own mutex, so
// the node is one shard of the DFS-wide store -- operations on different
// nodes never contend, operations on the same node serialize exactly as a
// real datanode's disk queue would. Liveness is a separate atomic so
// is_up() probes never touch the block-map lock.
#pragma once

#include <atomic>
#include <map>
#include <mutex>

#include "cluster/catalog.h"
#include "common/bytes.h"
#include "common/status.h"

namespace dblrep::hdfs {

class DataNode {
 public:
  explicit DataNode(cluster::NodeId id) : id_(id) {}

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  cluster::NodeId id() const { return id_; }
  bool is_up() const { return up_.load(std::memory_order_acquire); }

  /// Stores a block replica (overwrites an existing one).
  Status put(cluster::SlotAddress address, Buffer bytes);

  /// View overload for arena-backed writers (the stripe codec hands out
  /// views into scratch memory); copies into node-owned storage.
  Status put(cluster::SlotAddress address, ByteSpan bytes) {
    return put(address, Buffer(bytes.begin(), bytes.end()));
  }

  /// Reads a block replica, verifying its checksum.
  Result<Buffer> get(cluster::SlotAddress address) const;

  bool has(cluster::SlotAddress address) const;
  Status drop(cluster::SlotAddress address);

  std::size_t block_count() const;
  std::size_t bytes_stored() const;

  /// Crash: the node goes down and its disk contents are gone.
  void fail();
  /// Transient outage (Ford et al.'s dominant failure class): the node is
  /// unreachable but its disk survives. restart() ends the outage with
  /// every block still present -- no repair needed, unlike fail().
  void offline();
  /// The node returns: empty after fail(), blocks intact after offline().
  void restart();

  /// Test hook: flips one byte of a stored block so CRC verification and
  /// the read fallback paths can be exercised.
  Status corrupt(cluster::SlotAddress address, std::size_t byte_index);

  /// Diagnostic hook: raw stored bytes, ignoring liveness and skipping CRC
  /// verification. The chaos fingerprints use it to cover offline disks and
  /// corrupted blocks; data-plane reads must go through get().
  Result<Buffer> peek(cluster::SlotAddress address) const;

  /// Addresses of every block currently stored.
  std::vector<cluster::SlotAddress> stored_addresses() const;

 private:
  struct StoredBlock {
    Buffer bytes;
    std::uint32_t crc = 0;
  };

  cluster::NodeId id_;
  std::atomic<bool> up_{true};
  mutable std::mutex mu_;  // guards blocks_
  std::map<cluster::SlotAddress, StoredBlock> blocks_;
};

}  // namespace dblrep::hdfs
