// hdfs::Client: the handle-based client half of the data plane.
//
// MiniDfs plays the NameNode + storage-core role (namespace, placement,
// stripe transactions, range reads); this layer is what application code
// holds -- the paper's Section 4 workloads (HDFS-RAID under MapReduce) are
// driven by clients that append blocks incrementally and read byte ranges
// at task granularity, not whole files:
//
//  * FileWriter -- open -> append(ByteSpan)* -> close(). Appends buffer
//    sub-stripe data; every full stripe is placed on the caller's thread
//    (placement draws stay deterministic in append order) and then encoded
//    + stored asynchronously on the DFS pool, with a bounded number of
//    stripes in flight -- so multi-call ingest pipelines and a file larger
//    than memory streams through a fixed-size window. Stripe-aligned spans
//    take a zero-copy fast path: full stripes are encoded straight from
//    the caller's memory (the codec's systematic symbols are views into
//    it) instead of being staged through the writer's buffer; append then
//    waits for those stores before returning, since the caller reclaims
//    the span. Only ragged heads/tails are copied into the (pre-reserved)
//    sub-stripe buffer. close() flushes the zero-padded tail, waits for
//    the pipeline, and publishes the path (readers see nothing earlier);
//    any failure rolls the whole file back.
//  * pread(path, offset, len) -- byte-range reads resolving only the
//    stripes covering the range, with per-block degraded-read fallback.
//  * *_async variants -- the same operations returning exec::Future,
//    composed on the DFS's ThreadPool so a single caller can keep hundreds
//    of operations in flight without burning a thread per call.
//
// A Client is a cheap stateless facade over a MiniDfs and is safe to share
// or recreate freely; a FileWriter handle is single-owner and not
// thread-safe (one writer per path by construction -- begin_write reserves
// the name). MiniDfs::write_file / read_file remain as thin wrappers over
// the same primitives.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "exec/future.h"
#include "hdfs/minidfs.h"

namespace dblrep::hdfs {

/// Client-side knobs (per handle; construction-time).
struct ClientOptions {
  /// Stripe stores a FileWriter keeps in flight before append blocks on
  /// the oldest one. Bounds ingest memory to max_inflight_stripes stripe
  /// buffers. 0 = auto: DBLREP_CLIENT_INFLIGHT when set, else
  /// 2 * (pool workers + 1).
  std::size_t max_inflight_stripes = 0;

  /// Transfer classes this handle's traffic is accounted under. Foreground
  /// clients keep the defaults; the tiering re-encode path constructs its
  /// Client with both set to kRetier, making transition bytes visible to
  /// the QoS throttler and the TransferLog like repair bytes.
  net::TransferClass read_class = net::TransferClass::kClientRead;
  net::TransferClass write_class = net::TransferClass::kClientWrite;
};

/// Byte-accounting probe for the append path: how much of the ingested
/// data was staged through the writer's sub-stripe buffer versus encoded
/// zero-copy straight from caller spans. Stripe-aligned appends must show
/// buffered_bytes == 0 (tests assert this).
struct WriterStats {
  std::size_t buffered_bytes = 0;   ///< copied into the sub-stripe buffer
  std::size_t zero_copy_bytes = 0;  ///< encoded directly from caller spans
};

/// Handle for one streaming write. Move-only, single-owner, not
/// thread-safe. Destroying a still-open writer aborts the write (the path
/// and every stored stripe roll back).
class FileWriter {
 public:
  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&&) = delete;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  ~FileWriter();

  /// Appends logical bytes. Completed stripes are dispatched to the pool;
  /// the call blocks only when max_inflight_stripes stores are already in
  /// flight -- except that full stripes taken zero-copy from `data` must
  /// finish before append returns (the caller may reuse the span
  /// immediately after). After any failure the writer is poisoned: the
  /// first error (in stripe order -- independent of pool scheduling) is
  /// returned from every subsequent append/close.
  Status append(ByteSpan data);

  /// Flushes the partial tail stripe, waits for every in-flight store,
  /// and publishes the file; on any recorded failure rolls back instead
  /// and returns that first error. The writer is closed either way.
  Status close();

  /// Waits for in-flight stores, then rolls the whole write back.
  Status abort();

  bool is_open() const { return open_; }
  const std::string& path() const { return path_; }

  /// Logical bytes accepted so far (buffered + dispatched). The tail of
  /// an append that failed partway is not counted.
  std::size_t bytes_appended() const { return appended_; }

  /// Copy-vs-zero-copy accounting for the bytes accepted so far.
  const WriterStats& stats() const { return stats_; }

 private:
  friend class Client;
  FileWriter(MiniDfs* dfs, std::string path, std::size_t stripe_bytes,
             std::size_t max_inflight, net::TransferClass write_class);

  /// append() body; leaves zero-copy stores in flight (views_inflight_)
  /// for append() to drain before the caller reclaims its span.
  void append_impl(ByteSpan data);

  /// Allocates a stripe (serially, on this thread) and spawns its encode +
  /// store on the pool, first draining to keep the pipeline bounded. The
  /// owning overload moves the stripe bytes into the store task; the view
  /// overload encodes straight from `stripe_data`, which must stay valid
  /// until the store is drained.
  Status dispatch(Buffer stripe_data);
  Status dispatch_view(ByteSpan stripe_data);

  /// Shared dispatch prologue: drains the window down to one free slot and
  /// allocates the next stripe id (serially, in append order). Failures
  /// land in deferred_ and are returned as an error status.
  Result<cluster::StripeId> prepare_dispatch();

  /// Waits for in-flight stores (front first, i.e. stripe order) until at
  /// most `allow` remain; records the first failure in deferred_.
  void drain(std::size_t allow);

  /// Common close/abort tail: drains everything, then commits or aborts.
  Status finish(bool commit);

  MiniDfs* dfs_;
  std::string path_;
  std::size_t stripe_bytes_;
  std::size_t max_inflight_;
  net::TransferClass write_class_;
  Buffer buffer_;  // the partial stripe not yet dispatched
  std::deque<exec::Future<Status>> inflight_;  // stores, in stripe order
  Status deferred_;  // first failure; poisons the writer
  std::size_t appended_ = 0;
  WriterStats stats_;
  bool views_inflight_ = false;  // zero-copy stores borrow a caller span
  bool open_ = false;
};

class Client {
 public:
  explicit Client(MiniDfs& dfs, ClientOptions options = {});

  MiniDfs& dfs() const { return *dfs_; }

  // --------------------------------------------------------------- write

  /// Opens a streaming writer for a new file. The path is reserved
  /// immediately (concurrent creators fail with ALREADY_EXISTS) and
  /// published only by close().
  Result<FileWriter> create(const std::string& path,
                            const std::string& code_spec,
                            std::size_t block_size);

  /// Bulk write of an in-memory buffer: the same transaction a FileWriter
  /// runs, but with all stripes allocated up front and encoded zero-copy
  /// from `data` in parallel (MiniDfs::write_file is this same path).
  Status write(const std::string& path, ByteSpan data,
               const std::string& code_spec, std::size_t block_size);

  // ---------------------------------------------------------------- read

  Result<Buffer> read(const std::string& path);

  /// Byte-range read; see MiniDfs::pread for the EOF/clamping contract.
  Result<Buffer> pread(const std::string& path, std::size_t offset,
                       std::size_t len);

  Result<Buffer> read_block(const std::string& path, std::size_t block_index);

  // --------------------------------------------------------------- async
  //
  // Futures resolve on the DFS pool; with a zero-worker (inline) pool the
  // operation runs inside the call and the future returns ready, so async
  // and sync paths execute identical byte and traffic sequences. Don't
  // block on these futures from inside a task running on the same pool.

  exec::Future<Status> write_async(std::string path, Buffer data,
                                   std::string code_spec,
                                   std::size_t block_size);
  exec::Future<Result<Buffer>> read_async(std::string path);
  exec::Future<Result<Buffer>> pread_async(std::string path,
                                           std::size_t offset,
                                           std::size_t len);

 private:
  MiniDfs* dfs_;
  std::size_t max_inflight_;
  net::TransferClass read_class_;
  net::TransferClass write_class_;
};

}  // namespace dblrep::hdfs
