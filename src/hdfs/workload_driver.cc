#include "hdfs/workload_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <sstream>
#include <thread>

#include "ec/registry.h"

namespace dblrep::hdfs {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  cdf_.reserve(std::max<std::size_t>(n, 1));
  double total = 0;
  for (std::size_t r = 0; r < std::max<std::size_t>(n, 1); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against fp round-down at the tail
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

void OpStats::record(double us, bool ok) {
  latency_us.add(us);
  latency_hist.add(us);
  if (!ok) ++errors;
}

void OpStats::merge(const OpStats& other) {
  latency_us.merge(other.latency_us);
  latency_hist.merge(other.latency_hist);
  errors += other.errors;
}

std::string OpStats::to_json() const {
  std::ostringstream out;
  out << "{\"count\": " << latency_us.count()
      << ", \"errors\": " << errors
      << ", \"mean_us\": " << latency_us.mean()
      << ", \"min_us\": " << latency_us.min()
      << ", \"max_us\": " << latency_us.max()
      << ", \"p50_us\": " << p50_us()
      << ", \"p99_us\": " << p99_us()
      << ", \"p999_us\": " << p999_us()
      << ", \"hist_counts\": [";
  const auto& counts = latency_hist.counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) out << ", ";
    out << counts[i];
  }
  out << "]}";
  return out.str();
}

std::string WorkloadReport::to_json() const {
  std::ostringstream out;
  out << "{\"read\": " << read.to_json()
      << ",\n \"write\": " << write.to_json()
      << ",\n \"degraded\": " << degraded.to_json()
      << ",\n \"pread\": " << pread.to_json()
      << ",\n \"append\": " << append.to_json()
      << ",\n \"wall_s\": " << wall_s
      << ", \"ops_per_s\": " << ops_per_s
      << ", \"repair_s\": " << repair_s
      << ", \"total_ops\": " << total_ops()
      << ", \"total_errors\": " << total_errors()
      << ",\n \"traffic_total_bytes\": " << traffic_total_bytes
      << ", \"traffic_intra_rack_bytes\": " << traffic_intra_rack_bytes
      << ", \"traffic_cross_rack_bytes\": " << traffic_cross_rack_bytes
      << ", \"traffic_client_bytes\": " << traffic_client_bytes << "}";
  return out.str();
}

WorkloadDriver::WorkloadDriver(MiniDfs& dfs, WorkloadOptions options)
    : dfs_(&dfs), options_(std::move(options)) {}

Status WorkloadDriver::preload() {
  if (options_.preload_files == 0 || options_.stripes_per_file == 0 ||
      options_.block_size == 0) {
    return invalid_argument_error(
        "workload needs preload_files, stripes_per_file, block_size > 0");
  }
  auto code = ec::make_code(options_.code_spec);
  if (!code.is_ok()) return code.status();
  const std::size_t file_bytes = options_.stripes_per_file *
                                 (*code)->data_blocks() * options_.block_size;
  payload_ = random_buffer(file_bytes, options_.seed ^ 0x9e3779b9u);
  for (std::size_t f = 0; f < options_.preload_files; ++f) {
    const std::string path = options_.path_prefix + "/preload/" + std::to_string(f);
    DBLREP_RETURN_IF_ERROR(dfs_->write_file(path, payload_,
                                            options_.code_spec,
                                            options_.block_size));
    preloaded_.push_back(path);
  }
  return Status::ok();
}

void WorkloadDriver::client_loop(std::size_t client_index, Rng rng,
                                 ClientStats& stats) {
  Client client(*dfs_);
  const double mix_total = options_.read_fraction + options_.write_fraction +
                           options_.degraded_fraction +
                           options_.pread_fraction + options_.append_fraction;
  // Category regions in [0, 1): read | write | degraded | pread | append.
  // With the pread/append fractions at zero the cuts reduce to the
  // original three-way split, so legacy drivers draw identical op
  // sequences per seed.
  const double read_cut = options_.read_fraction / mix_total;
  const double write_cut = read_cut + options_.write_fraction / mix_total;
  const double degraded_cut =
      write_cut + options_.degraded_fraction / mix_total;
  const double pread_cut = degraded_cut + options_.pread_fraction / mix_total;
  const double append_cut = pread_cut + options_.append_fraction / mix_total;
  const std::size_t blocks_per_file =
      payload_.size() / options_.block_size;
  // Streaming-append state: one open handle at a time per client, fed one
  // chunk per append op. The chunks partition payload_, so a sealed append
  // file is byte-identical to a written one.
  const std::size_t appends_per_file =
      std::max<std::size_t>(options_.appends_per_file, 1);
  const std::size_t append_chunk =
      (payload_.size() + appends_per_file - 1) / appends_per_file;
  std::optional<FileWriter> writer;
  std::size_t append_files = 0;
  std::size_t append_offset = 0;
  // Zipf-skewed popularity over the preloaded files (rank 0 = hottest).
  // Constructed -- and consulted -- only when zipf_s > 0: the uniform path
  // below keeps its original next_below draws, so per-seed op sequences of
  // existing mixes and chaos replays are byte-identical.
  std::optional<ZipfSampler> zipf;
  if (options_.zipf_s > 0 && !preloaded_.empty()) {
    zipf.emplace(preloaded_.size(), options_.zipf_s);
  }

  for (std::size_t op = 0; op < options_.ops_per_client; ++op) {
    const double pick = rng.next_double();
    if (pick >= read_cut && pick < write_cut) {
      const std::string path = options_.path_prefix + "/client" +
                               std::to_string(client_index) + "/f" +
                               std::to_string(op);
      const auto start = Clock::now();
      const Status status = client.write(path, payload_, options_.code_spec,
                                         options_.block_size);
      stats.write.record(micros_since(start), status.is_ok());
      continue;
    }
    if (pick >= degraded_cut && pick < pread_cut) {
      // Byte-range read: a random window of a random preloaded file, sized
      // around a couple of blocks -- the split-granularity access pattern
      // MapReduce tasks issue.
      const auto& path =
          preloaded_[zipf.has_value()
                         ? zipf->sample(rng)
                         : static_cast<std::size_t>(
                               rng.next_below(preloaded_.size()))];
      const std::size_t offset =
          static_cast<std::size_t>(rng.next_below(payload_.size()));
      const std::size_t len = 1 + static_cast<std::size_t>(rng.next_below(
                                      2 * options_.block_size));
      const auto start = Clock::now();
      const auto result = client.pread(path, offset, len);
      stats.pread.record(micros_since(start), result.is_ok());
      continue;
    }
    // Append gets an explicit region (not the catch-all): under fp
    // rounding append_cut can sit a few ulps below 1.0, and those stray
    // picks must fall through to the legacy read/degraded catch-all so a
    // driver with the new fractions at zero draws the exact pre-handle-API
    // op sequence per seed.
    if (pick >= pread_cut && pick < append_cut) {
      const auto start = Clock::now();
      Status status;
      if (!writer.has_value()) {
        const std::string path = options_.path_prefix + "/client" +
                                 std::to_string(client_index) + "/a" +
                                 std::to_string(append_files++);
        auto created = client.create(path, options_.code_spec,
                                     options_.block_size);
        if (created.is_ok()) {
          writer.emplace(std::move(*created));
          append_offset = 0;
        } else {
          status = created.status();
        }
      }
      if (writer.has_value()) {
        const std::size_t len =
            std::min(append_chunk, payload_.size() - append_offset);
        status = writer->append(
            ByteSpan(payload_).subspan(append_offset, len));
        append_offset += len;
        if (status.is_ok() && append_offset >= payload_.size()) {
          status = writer->close();
          writer.reset();
        } else if (!status.is_ok()) {
          (void)writer->abort();
          writer.reset();
        }
      }
      stats.append.record(micros_since(start), status.is_ok());
      continue;
    }
    const bool want_degraded = pick >= write_cut;
    if (want_degraded && !degraded_blocks_.empty()) {
      const auto& [path, block] = degraded_blocks_[static_cast<std::size_t>(
          rng.next_below(degraded_blocks_.size()))];
      const auto start = Clock::now();
      const auto result = client.read_block(path, block);
      stats.degraded.record(micros_since(start), result.is_ok());
      continue;
    }
    // Plain read (also the fallback when nothing is degraded). Note the
    // block may still be served degraded while the cluster has failures --
    // categories describe intent, the DFS decides the path.
    const auto& path =
        preloaded_[zipf.has_value()
                       ? zipf->sample(rng)
                       : static_cast<std::size_t>(
                             rng.next_below(preloaded_.size()))];
    const std::size_t block =
        static_cast<std::size_t>(rng.next_below(blocks_per_file));
    const auto start = Clock::now();
    const auto result = client.read_block(path, block);
    (want_degraded ? stats.degraded : stats.read)
        .record(micros_since(start), result.is_ok());
  }
  // A handle still open at loop end seals its partial file (legal: append
  // files are published with however many chunks landed).
  if (writer.has_value()) {
    const auto start = Clock::now();
    const Status status = writer->close();
    writer.reset();
    stats.append.record(micros_since(start), status.is_ok());
  }
}

Result<WorkloadReport> WorkloadDriver::run() {
  if (preloaded_.empty()) {
    DBLREP_RETURN_IF_ERROR(preload());
  }
  auto code = ec::make_code(options_.code_spec);
  if (!code.is_ok()) return code.status();
  const std::size_t k = (*code)->data_blocks();

  // Crash-fail nodes out of the first preloaded stripe's placement group,
  // so the failures are guaranteed to hit stored data.
  if (options_.fail_nodes > 0) {
    const auto info = dfs_->stat(preloaded_.front());
    if (!info.is_ok()) return info.status();
    const auto group = dfs_->catalog().stripe(info->stripes.front()).group;
    for (std::size_t i = 0; i < options_.fail_nodes && i < group.size(); ++i) {
      DBLREP_RETURN_IF_ERROR(dfs_->fail_node(group[i]));
    }
  }

  // Index the blocks whose replicas are all gone: the degraded-read mix.
  degraded_blocks_.clear();
  const auto down = dfs_->down_nodes();
  if (!down.empty()) {
    for (const auto& path : preloaded_) {
      const auto info = dfs_->stat(path);
      if (!info.is_ok()) return info.status();
      for (std::size_t si = 0; si < info->stripes.size(); ++si) {
        for (std::size_t symbol = 0; symbol < k; ++symbol) {
          const auto replicas =
              dfs_->catalog().replica_nodes(info->stripes[si], symbol);
          const bool all_lost =
              std::all_of(replicas.begin(), replicas.end(),
                          [&](cluster::NodeId n) { return down.contains(n); });
          if (all_lost) {
            degraded_blocks_.emplace_back(path, si * k + symbol);
          }
        }
      }
    }
  }

  // Forked deterministic streams, one per client (forked serially so the
  // set of streams is a function of the seed alone).
  Rng root(options_.seed);
  std::vector<Rng> client_rngs;
  client_rngs.reserve(options_.clients);
  for (std::size_t c = 0; c < options_.clients; ++c) {
    client_rngs.push_back(root.fork());
  }

  WorkloadReport report;
  std::vector<ClientStats> per_client(options_.clients);
  const auto& meter = dfs_->traffic();
  const double traffic_total0 = meter.total_bytes();
  const double traffic_cross0 = meter.cross_rack_bytes();
  const double traffic_client0 = meter.client_bytes();
  const auto start = Clock::now();

  std::thread repair_thread;
  if (options_.repair_concurrently) {
    repair_thread = std::thread([&] {
      const auto repair_start = Clock::now();
      report.repair_status = dfs_->repair_all();
      report.repair_s = micros_since(repair_start) / 1e6;
    });
  }
  std::vector<std::thread> clients;
  clients.reserve(options_.clients);
  for (std::size_t c = 0; c < options_.clients; ++c) {
    clients.emplace_back([this, c, &per_client, &client_rngs] {
      client_loop(c, client_rngs[c], per_client[c]);
    });
  }
  for (auto& t : clients) t.join();
  if (repair_thread.joinable()) repair_thread.join();

  report.wall_s = micros_since(start) / 1e6;
  report.traffic_total_bytes = meter.total_bytes() - traffic_total0;
  report.traffic_cross_rack_bytes = meter.cross_rack_bytes() - traffic_cross0;
  report.traffic_client_bytes = meter.client_bytes() - traffic_client0;
  report.traffic_intra_rack_bytes = report.traffic_total_bytes -
                                    report.traffic_cross_rack_bytes -
                                    report.traffic_client_bytes;
  for (const auto& stats : per_client) {
    report.read.merge(stats.read);
    report.write.merge(stats.write);
    report.degraded.merge(stats.degraded);
    report.pread.merge(stats.pread);
    report.append.merge(stats.append);
  }
  report.ops_per_s =
      report.wall_s > 0
          ? static_cast<double>(report.total_ops()) / report.wall_s
          : 0.0;
  return report;
}

}  // namespace dblrep::hdfs
