// NameNode crash recovery: snapshot + journal replay + reconciliation.
//
// restore() (declared on NameNode, defined here) rebuilds the whole
// metadata plane from per-shard durable artifacts:
//
//  1. Per shard: decode the snapshot image (strict -- a damaged snapshot
//     is CORRUPTION), then parse the journal with parse_journal (lenient
//     -- a torn or CRC-bad tail is discarded) and replay each record in
//     order onto the image. Replay is pure bookkeeping: kCreate opens a
//     pending entry, kAllocate re-registers stripes under their original
//     ids, kStore accumulates length, kSeal/kCommit seal and publish,
//     kAbort/kDelete/kGcStripes unregister, the rename records move
//     entries and track cross-shard intents.
//
//  2. Across shards: reconcile what a crash can leave half-done.
//      * A RenameOut without its RenameAck is a dangling intent: the file
//        is inserted at the destination if the destination shard's journal
//        lost the RenameIn, and the ack is re-journaled. (Applied before
//        the orphan sweep so the referenced-stripe set is already right.)
//      * Every surviving pending entry is an open write whose client died
//        with the NameNode: its stripes are unregistered, a kAbort is
//        journaled, and the entry dropped -- open writes roll back.
//      * Stripes referenced by no file on any shard (a delete's kDelete
//        survived but a foreign kGcStripes did not) are unregistered and
//        a kGcStripes journaled -- the orphan sweep.
//
//  3. Install: the rebuilt shards replace the live ones, the stripe
//     router is rebuilt, and the global id/seq counters resume past every
//     id and seq the artifacts mention (ids are never reused, even ids
//     only a rolled-back write consumed).
//
// The result is fingerprint-identical to the pre-crash NameNode whenever
// no records were lost, and lands on a consistent pre-/post-mutation
// boundary for every record that was: tests/recovery_test.cc's crash-point
// fuzzer enumerates every such cut.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "hdfs/namenode.h"

namespace dblrep::hdfs {

/// The crash-point fuzzer's knife: keeps exactly the records with
/// seq < cut_seq (journals are seq-monotone, so this is a prefix), then
/// re-frames them. Applying the same cut to every shard's journal
/// reproduces the global crash point "nothing from seq cut_seq onward
/// reached disk".
Buffer truncate_journal_at_seq(ByteSpan journal, std::uint64_t cut_seq);

}  // namespace dblrep::hdfs
