#include "hdfs/namenode.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <tuple>
#include <utility>

namespace dblrep::hdfs {

namespace {

// FNV-1a: stable across runs and libraries (std::hash is not guaranteed
// to be), so shard assignment -- and with it every shard-local journal --
// is reproducible.
std::uint64_t fnv1a(std::uint64_t h, ByteSpan bytes) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_str(std::uint64_t h, const std::string& s) {
  return fnv1a(h, ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                           s.size()));
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return fnv1a(h, ByteSpan(bytes, 8));
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

std::size_t resolve_shards(std::size_t requested) {
  std::size_t shards = requested;
  if (shards == 0) {
    shards = 4;
    if (const char* env = std::getenv("DBLREP_META_SHARDS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) shards = static_cast<std::size_t>(parsed);
    }
  }
  return std::clamp<std::size_t>(shards, 1, 256);
}

std::vector<std::int32_t> group_to_i32(const std::vector<cluster::NodeId>& g) {
  return std::vector<std::int32_t>(g.begin(), g.end());
}

}  // namespace

FileState to_file_state(const FileInfo& info) {
  FileState state;
  state.code_spec = info.code_spec;
  state.block_size = info.block_size;
  state.length = info.length;
  state.stripes.assign(info.stripes.begin(), info.stripes.end());
  return state;
}

FileInfo to_file_info(const FileState& state, bool sealed) {
  FileInfo info;
  info.code_spec = state.code_spec;
  info.block_size = static_cast<std::size_t>(state.block_size);
  info.length = static_cast<std::size_t>(state.length);
  info.stripes.assign(state.stripes.begin(), state.stripes.end());
  info.sealed = sealed;
  return info;
}

NameNode::NameNode(const cluster::Topology& topology, SchemeResolver resolver,
                   const NameNodeOptions& options)
    : topology_(topology), resolver_(std::move(resolver)), options_(options) {
  options_.shards = resolve_shards(options.shards);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(topology_));
  }
}

std::size_t NameNode::shard_of(const std::string& path) const {
  return fnv1a_str(kFnvOffset, path) % shards_.size();
}

// ----------------------------------------------------------------- router

std::uint32_t NameNode::route(cluster::StripeId id) const {
  std::uint32_t shard = 0;
  DBLREP_CHECK_MSG(try_route(id, shard), "stripe " << id << " unknown");
  return shard;
}

bool NameNode::try_route(cluster::StripeId id, std::uint32_t& shard) const {
  const RouterBucket& bucket = router_[id % kRouterBuckets];
  std::shared_lock<std::shared_mutex> lock(bucket.mu);
  const auto it = bucket.shard.find(id);
  if (it == bucket.shard.end()) return false;
  shard = it->second;
  return true;
}

void NameNode::router_insert(cluster::StripeId id, std::uint32_t shard) {
  RouterBucket& bucket = router_[id % kRouterBuckets];
  std::unique_lock<std::shared_mutex> lock(bucket.mu);
  bucket.shard[id] = shard;
}

void NameNode::router_erase(cluster::StripeId id) {
  RouterBucket& bucket = router_[id % kRouterBuckets];
  std::unique_lock<std::shared_mutex> lock(bucket.mu);
  bucket.shard.erase(id);
}

void NameNode::router_reset() {
  for (RouterBucket& bucket : router_) {
    std::unique_lock<std::shared_mutex> lock(bucket.mu);
    bucket.shard.clear();
  }
}

// -------------------------------------------------------------- mutations

Status NameNode::begin_write(const std::string& path,
                             const std::string& code_spec,
                             std::size_t block_size) {
  Shard& shard = *shards_[shard_of(path)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  if (shard.files.contains(path) || shard.pending.contains(path)) {
    return already_exists_error(path);
  }
  JournalRecord rec;
  rec.kind = JournalRecordKind::kCreate;
  rec.seq = next_seq_locked();
  rec.path = path;
  rec.code_spec = code_spec;
  rec.block_size = block_size;
  shard.journal.append(rec);
  FileInfo info;
  info.code_spec = code_spec;
  info.block_size = block_size;
  info.sealed = false;
  shard.pending.emplace(path, std::move(info));
  maybe_snapshot_locked(shard_of(path));
  return Status::ok();
}

Result<std::vector<cluster::StripeId>> NameNode::attach_stripes(
    const std::string& path, const ec::CodeScheme& code,
    const std::vector<std::vector<cluster::NodeId>>& groups) {
  const std::size_t index = shard_of(path);
  Shard& shard = *shards_[index];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.pending.find(path);
  if (it == shard.pending.end()) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  // Register first (validation may fail), then journal + publish: the
  // journal must only describe changes that actually took hold.
  std::vector<cluster::StripeId> ids;
  ids.reserve(groups.size());
  for (const auto& group : groups) {
    const cluster::StripeId id = next_stripe_id_.fetch_add(1);
    const Status registered =
        shard.catalog.register_stripe_at(id, code, group, /*sealed=*/false);
    if (!registered.is_ok()) {
      for (cluster::StripeId done : ids) {
        (void)shard.catalog.unregister_stripe(done);
        shard.stripe_specs.erase(done);
        router_erase(done);
      }
      return registered;
    }
    shard.stripe_specs.emplace(id, it->second.code_spec);
    router_insert(id, static_cast<std::uint32_t>(index));
    ids.push_back(id);
  }
  JournalRecord rec;
  rec.kind = JournalRecordKind::kAllocate;
  rec.seq = next_seq_locked();
  rec.path = path;
  rec.stripes.assign(ids.begin(), ids.end());
  rec.groups.reserve(groups.size());
  for (const auto& group : groups) rec.groups.push_back(group_to_i32(group));
  shard.journal.append(rec);
  it->second.stripes.insert(it->second.stripes.end(), ids.begin(), ids.end());
  maybe_snapshot_locked(index);
  return ids;
}

Status NameNode::record_store(const std::string& path,
                              cluster::StripeId stripe, std::size_t bytes) {
  const std::size_t index = shard_of(path);
  Shard& shard = *shards_[index];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.pending.find(path);
  if (it == shard.pending.end()) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  JournalRecord rec;
  rec.kind = JournalRecordKind::kStore;
  rec.seq = next_seq_locked();
  rec.path = path;
  rec.stripe = stripe;
  rec.length = bytes;
  shard.journal.append(rec);
  it->second.length += bytes;
  maybe_snapshot_locked(index);
  return Status::ok();
}

Status NameNode::commit_write(const std::string& path) {
  const std::size_t index = shard_of(path);
  Shard& shard = *shards_[index];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.pending.find(path);
  if (it == shard.pending.end()) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  // Seal every stripe, then publish, all in one critical section: readers
  // never observe a published file with unsealed stripes.
  for (cluster::StripeId id : it->second.stripes) {
    JournalRecord seal;
    seal.kind = JournalRecordKind::kSeal;
    seal.seq = next_seq_locked();
    seal.stripe = id;
    shard.journal.append(seal);
    DBLREP_RETURN_IF_ERROR(shard.catalog.seal_stripe(id));
  }
  JournalRecord rec;
  rec.kind = JournalRecordKind::kCommit;
  rec.seq = next_seq_locked();
  rec.path = path;
  rec.length = it->second.length;
  shard.journal.append(rec);
  FileInfo info = std::move(it->second);
  info.sealed = true;
  shard.pending.erase(it);
  shard.files.emplace(path, std::move(info));
  maybe_snapshot_locked(index);
  return Status::ok();
}

StripePlacement NameNode::unregister_locked(Shard& shard,
                                            cluster::StripeId id) {
  StripePlacement placement;
  placement.id = id;
  const auto spec = shard.stripe_specs.find(id);
  if (spec != shard.stripe_specs.end()) placement.code_spec = spec->second;
  placement.group = shard.catalog.stripe(id).group;
  DBLREP_CHECK(shard.catalog.unregister_stripe(id).is_ok());
  shard.stripe_specs.erase(id);
  router_erase(id);
  return placement;
}

Result<RemovedFile> NameNode::abort_write(const std::string& path) {
  const std::size_t index = shard_of(path);
  Shard& shard = *shards_[index];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.pending.find(path);
  if (it == shard.pending.end()) {
    return failed_precondition_error("no write transaction open for " + path);
  }
  JournalRecord rec;
  rec.kind = JournalRecordKind::kAbort;
  rec.seq = next_seq_locked();
  rec.path = path;
  shard.journal.append(rec);
  RemovedFile removed;
  removed.info = std::move(it->second);
  // An open write's stripes were all allocated by this shard (allocation
  // shard == namespace shard; only a later rename can split them).
  for (cluster::StripeId id : removed.info.stripes) {
    removed.stripes.push_back(unregister_locked(shard, id));
  }
  shard.pending.erase(it);
  maybe_snapshot_locked(index);
  return removed;
}

Result<RemovedFile> NameNode::remove_file(const std::string& path) {
  const std::size_t index = shard_of(path);
  Shard& shard = *shards_[index];
  RemovedFile removed;
  // Foreign-owned stripes (the file was renamed into this shard) are
  // GC-journaled per owner shard after the namespace shard is released --
  // delete never holds two shard locks at once.
  std::map<std::uint32_t, std::vector<cluster::StripeId>> foreign;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.files.find(path);
    if (it == shard.files.end()) {
      return not_found_error(path);
    }
    JournalRecord rec;
    rec.kind = JournalRecordKind::kDelete;
    rec.seq = next_seq_locked();
    rec.path = path;
    shard.journal.append(rec);
    removed.info = std::move(it->second);
    shard.files.erase(it);
    for (cluster::StripeId id : removed.info.stripes) {
      const std::uint32_t owner = route(id);
      if (owner == index) {
        removed.stripes.push_back(unregister_locked(shard, id));
      } else {
        foreign[owner].push_back(id);
      }
    }
    maybe_snapshot_locked(index);
  }
  for (const auto& [owner, ids] : foreign) {
    Shard& other = *shards_[owner];
    std::unique_lock<std::shared_mutex> lock(other.mu);
    JournalRecord rec;
    rec.kind = JournalRecordKind::kGcStripes;
    rec.seq = next_seq_locked();
    rec.stripes.assign(ids.begin(), ids.end());
    other.journal.append(rec);
    for (cluster::StripeId id : ids) {
      removed.stripes.push_back(unregister_locked(other, id));
    }
    maybe_snapshot_locked(owner);
  }
  return removed;
}

Status NameNode::rename(const std::string& from, const std::string& to) {
  if (from == to) return Status::ok();
  const std::size_t a = shard_of(from);
  const std::size_t b = shard_of(to);
  // Data-plane path locks first (excludes in-flight readers of either
  // path), ordered by (shard, stripe) -- globally consistent with every
  // single-path locker.
  const std::size_t stripe_a = shards_[a]->path_locks.stripe_of(from);
  const std::size_t stripe_b = shards_[b]->path_locks.stripe_of(to);
  std::unique_lock<std::shared_mutex> path_first;
  std::unique_lock<std::shared_mutex> path_second;
  if (a == b && stripe_a == stripe_b) {
    path_first = std::unique_lock(shards_[a]->path_locks.of(from));
  } else if (std::pair(a, stripe_a) < std::pair(b, stripe_b)) {
    path_first = std::unique_lock(shards_[a]->path_locks.of(from));
    path_second = std::unique_lock(shards_[b]->path_locks.of(to));
  } else {
    path_first = std::unique_lock(shards_[b]->path_locks.of(to));
    path_second = std::unique_lock(shards_[a]->path_locks.of(from));
  }

  if (a == b) {
    Shard& shard = *shards_[a];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const auto it = shard.files.find(from);
    if (it == shard.files.end()) {
      return not_found_error(from);
    }
    if (shard.files.contains(to) || shard.pending.contains(to)) {
      return already_exists_error(to);
    }
    JournalRecord rec;
    rec.kind = JournalRecordKind::kRename;
    rec.seq = next_seq_locked();
    rec.path = from;
    rec.path2 = to;
    shard.journal.append(rec);
    FileInfo info = std::move(it->second);
    shard.files.erase(it);
    shard.files.emplace(to, std::move(info));
    maybe_snapshot_locked(a);
    return Status::ok();
  }

  // Cross-shard: both shard locks in index order, then the three-record
  // intent protocol (RenameOut in the source, RenameIn in the destination,
  // RenameAck closing the source). A crash between any two records leaves
  // an intent recovery can finish from the journals alone.
  Shard& src = *shards_[a];
  Shard& dst = *shards_[b];
  std::unique_lock<std::shared_mutex> lock_lo(a < b ? src.mu : dst.mu);
  std::unique_lock<std::shared_mutex> lock_hi(a < b ? dst.mu : src.mu);
  const auto it = src.files.find(from);
  if (it == src.files.end()) {
    return not_found_error(from);
  }
  if (dst.files.contains(to) || dst.pending.contains(to)) {
    return already_exists_error(to);
  }
  const FileState state = to_file_state(it->second);
  JournalRecord out;
  out.kind = JournalRecordKind::kRenameOut;
  out.seq = next_seq_locked();
  out.path = from;
  out.path2 = to;
  out.file = state;
  src.journal.append(out);
  JournalRecord in;
  in.kind = JournalRecordKind::kRenameIn;
  in.seq = next_seq_locked();
  in.path2 = to;
  in.file = state;
  dst.journal.append(in);
  JournalRecord ack;
  ack.kind = JournalRecordKind::kRenameAck;
  ack.seq = next_seq_locked();
  ack.path = from;
  src.journal.append(ack);
  FileInfo info = std::move(it->second);
  src.files.erase(it);
  dst.files.emplace(to, std::move(info));
  maybe_snapshot_locked(a);
  maybe_snapshot_locked(b);
  return Status::ok();
}

Result<RemovedFile> NameNode::replace(const std::string& from,
                                      const std::string& to) {
  if (from == to) {
    return invalid_argument_error("replace: from == to: " + from);
  }
  const std::size_t a = shard_of(from);
  const std::size_t b = shard_of(to);
  // Both data-plane path locks, exclusive, ordered by (shard, stripe) --
  // the same global order as rename and every single-path locker. Readers
  // of `to` are excluded for the duration of the swap.
  const std::size_t stripe_a = shards_[a]->path_locks.stripe_of(from);
  const std::size_t stripe_b = shards_[b]->path_locks.stripe_of(to);
  std::unique_lock<std::shared_mutex> path_first;
  std::unique_lock<std::shared_mutex> path_second;
  if (a == b && stripe_a == stripe_b) {
    path_first = std::unique_lock(shards_[a]->path_locks.of(from));
  } else if (std::pair(a, stripe_a) < std::pair(b, stripe_b)) {
    path_first = std::unique_lock(shards_[a]->path_locks.of(from));
    path_second = std::unique_lock(shards_[b]->path_locks.of(to));
  } else {
    path_first = std::unique_lock(shards_[b]->path_locks.of(to));
    path_second = std::unique_lock(shards_[a]->path_locks.of(from));
  }

  RemovedFile removed;
  // Stripes of the outgoing layout owned by neither namespace shard are
  // GC-journaled per owner after the shard locks drop -- like remove_file,
  // no extra shard lock is ever nested.
  std::map<std::uint32_t, std::vector<cluster::StripeId>> foreign;

  if (a == b) {
    Shard& shard = *shards_[a];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    const auto it_from = shard.files.find(from);
    if (it_from == shard.files.end()) return not_found_error(from);
    const auto it_to = shard.files.find(to);
    if (it_to == shard.files.end()) return not_found_error(to);
    // Delete the outgoing layout, then move `from` over the path -- both
    // under one lock hold, so no reader can observe the gap.
    JournalRecord del;
    del.kind = JournalRecordKind::kDelete;
    del.seq = next_seq_locked();
    del.path = to;
    shard.journal.append(del);
    removed.info = std::move(it_to->second);
    shard.files.erase(it_to);
    for (cluster::StripeId id : removed.info.stripes) {
      const std::uint32_t owner = route(id);
      if (owner == a) {
        removed.stripes.push_back(unregister_locked(shard, id));
      } else {
        foreign[owner].push_back(id);
      }
    }
    JournalRecord rec;
    rec.kind = JournalRecordKind::kRename;
    rec.seq = next_seq_locked();
    rec.path = from;
    rec.path2 = to;
    shard.journal.append(rec);
    FileInfo info = std::move(it_from->second);
    shard.files.erase(it_from);
    shard.files.emplace(to, std::move(info));
    maybe_snapshot_locked(a);
  } else {
    // Cross-shard: both shard locks in index order, kDelete journaled in
    // the destination, then the rename intent protocol -- all before any
    // lock drops, so the namespace never shows the path missing.
    Shard& src = *shards_[a];
    Shard& dst = *shards_[b];
    std::unique_lock<std::shared_mutex> lock_lo(a < b ? src.mu : dst.mu);
    std::unique_lock<std::shared_mutex> lock_hi(a < b ? dst.mu : src.mu);
    const auto it_from = src.files.find(from);
    if (it_from == src.files.end()) return not_found_error(from);
    const auto it_to = dst.files.find(to);
    if (it_to == dst.files.end()) return not_found_error(to);
    JournalRecord del;
    del.kind = JournalRecordKind::kDelete;
    del.seq = next_seq_locked();
    del.path = to;
    dst.journal.append(del);
    removed.info = std::move(it_to->second);
    dst.files.erase(it_to);
    std::vector<cluster::StripeId> src_owned;
    for (cluster::StripeId id : removed.info.stripes) {
      const std::uint32_t owner = route(id);
      if (owner == b) {
        removed.stripes.push_back(unregister_locked(dst, id));
      } else if (owner == a) {
        src_owned.push_back(id);  // src lock already held: GC inline
      } else {
        foreign[owner].push_back(id);
      }
    }
    if (!src_owned.empty()) {
      JournalRecord gc;
      gc.kind = JournalRecordKind::kGcStripes;
      gc.seq = next_seq_locked();
      gc.stripes.assign(src_owned.begin(), src_owned.end());
      src.journal.append(gc);
      for (cluster::StripeId id : src_owned) {
        removed.stripes.push_back(unregister_locked(src, id));
      }
    }
    const FileState state = to_file_state(it_from->second);
    JournalRecord out;
    out.kind = JournalRecordKind::kRenameOut;
    out.seq = next_seq_locked();
    out.path = from;
    out.path2 = to;
    out.file = state;
    src.journal.append(out);
    JournalRecord in;
    in.kind = JournalRecordKind::kRenameIn;
    in.seq = next_seq_locked();
    in.path2 = to;
    in.file = state;
    dst.journal.append(in);
    JournalRecord ack;
    ack.kind = JournalRecordKind::kRenameAck;
    ack.seq = next_seq_locked();
    ack.path = from;
    src.journal.append(ack);
    FileInfo info = std::move(it_from->second);
    src.files.erase(it_from);
    dst.files.emplace(to, std::move(info));
    maybe_snapshot_locked(a);
    maybe_snapshot_locked(b);
  }

  for (const auto& [owner, ids] : foreign) {
    Shard& other = *shards_[owner];
    std::unique_lock<std::shared_mutex> lock(other.mu);
    JournalRecord rec;
    rec.kind = JournalRecordKind::kGcStripes;
    rec.seq = next_seq_locked();
    rec.stripes.assign(ids.begin(), ids.end());
    other.journal.append(rec);
    for (cluster::StripeId id : ids) {
      removed.stripes.push_back(unregister_locked(other, id));
    }
    maybe_snapshot_locked(owner);
  }
  return removed;
}

// ------------------------------------------------------------------ reads

Result<FileInfo> NameNode::lookup(const std::string& path) const {
  const Shard& shard = *shards_[shard_of(path)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  const auto it = shard.files.find(path);
  if (it == shard.files.end()) {
    return not_found_error(path);
  }
  return it->second;
}

Result<FileInfo> NameNode::stat(const std::string& path) const {
  const Shard& shard = *shards_[shard_of(path)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  if (const auto it = shard.files.find(path); it != shard.files.end()) {
    return it->second;
  }
  if (const auto it = shard.pending.find(path); it != shard.pending.end()) {
    return it->second;
  }
  return not_found_error(path);
}

std::vector<std::string> NameNode::list_files() const {
  std::vector<std::string> names;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& [path, info] : shard->files) names.push_back(path);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::pair<std::string, FileInfo>> NameNode::snapshot_files()
    const {
  std::vector<std::pair<std::string, FileInfo>> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& entry : shard->files) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  return out;
}

std::size_t NameNode::num_files() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->files.size();
  }
  return n;
}

bool NameNode::has_pending_writes() const {
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    if (!shard->pending.empty()) return true;
  }
  return false;
}

// ----------------------------------------------------------- catalog view

const cluster::StripeInfo& NameNode::stripe(cluster::StripeId id) const {
  return shards_[route(id)]->catalog.stripe(id);
}

cluster::NodeId NameNode::node_of(cluster::SlotAddress address) const {
  return shards_[route(address.stripe)]->catalog.node_of(address);
}

std::vector<cluster::NodeId> NameNode::replica_nodes(cluster::StripeId id,
                                                     std::size_t symbol)
    const {
  return shards_[route(id)]->catalog.replica_nodes(id, symbol);
}

bool NameNode::is_registered(cluster::StripeId id) const {
  std::uint32_t shard = 0;
  if (!try_route(id, shard)) return false;
  return shards_[shard]->catalog.is_registered(id);
}

bool NameNode::is_sealed(cluster::StripeId id) const {
  std::uint32_t shard = 0;
  if (!try_route(id, shard)) return false;
  return shards_[shard]->catalog.is_sealed(id);
}

std::size_t NameNode::num_stripes() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->catalog.num_stripes();
  return n;
}

std::vector<cluster::SlotAddress> NameNode::slots_on_node(
    cluster::NodeId node) const {
  std::vector<cluster::SlotAddress> slots;
  for (const auto& shard : shards_) {
    const auto part = shard->catalog.slots_on_node(node);
    slots.insert(slots.end(), part.begin(), part.end());
  }
  std::sort(slots.begin(), slots.end());
  return slots;
}

std::vector<cluster::StripeId> NameNode::stripes_on_node(
    cluster::NodeId node) const {
  std::vector<cluster::StripeId> out;
  for (const auto& shard : shards_) {
    const auto part = shard->catalog.stripes_on_node(node);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::set<ec::NodeIndex> NameNode::failed_in_stripe(
    cluster::StripeId id, const std::set<cluster::NodeId>& down_nodes) const {
  return shards_[route(id)]->catalog.failed_in_stripe(id, down_nodes);
}

Status NameNode::begin_repair(cluster::StripeId id) {
  std::uint32_t shard = 0;
  if (!try_route(id, shard)) {
    return not_found_error("stripe " + std::to_string(id) + " unknown");
  }
  return shards_[shard]->catalog.begin_repair(id);
}

void NameNode::end_repair(cluster::StripeId id) {
  shards_[route(id)]->catalog.end_repair(id);
}

std::shared_mutex& NameNode::path_mutex(const std::string& path) const {
  return shards_[shard_of(path)]->path_locks.of(path);
}

// --------------------------------------------------- snapshots / artifacts

void NameNode::snapshot() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::shared_mutex> lock(shards_[i]->mu);
    snapshot_shard_locked(i);
  }
}

void NameNode::snapshot_shard_locked(std::size_t index) {
  Shard& shard = *shards_[index];
  ShardImage image;
  image.last_seq = shard.journal.last_seq();
  image.next_stripe_id = next_stripe_id_.load();
  for (const auto& [path, info] : shard.files) {
    image.files.emplace_back(path, to_file_state(info));
  }
  for (const auto& [path, info] : shard.pending) {
    image.pending.emplace_back(path, to_file_state(info));
  }
  for (cluster::StripeId id : shard.catalog.live_stripe_ids()) {
    ShardImage::Stripe stripe;
    stripe.id = id;
    stripe.code_spec = shard.stripe_specs.at(id);
    stripe.sealed = shard.catalog.is_sealed(id);
    stripe.group = group_to_i32(shard.catalog.stripe(id).group);
    image.stripes.push_back(std::move(stripe));
  }
  shard.snapshot = encode_snapshot(image);
  shard.journal.clear();
}

void NameNode::maybe_snapshot_locked(std::size_t index) {
  if (options_.snapshot_every == 0) return;
  if (shards_[index]->journal.num_records() >= options_.snapshot_every) {
    snapshot_shard_locked(index);
  }
}

Buffer NameNode::snapshot_bytes(std::size_t shard) const {
  DBLREP_CHECK_LT(shard, shards_.size());
  std::shared_lock<std::shared_mutex> lock(shards_[shard]->mu);
  return shards_[shard]->snapshot;
}

Buffer NameNode::journal_bytes(std::size_t shard) const {
  DBLREP_CHECK_LT(shard, shards_.size());
  std::shared_lock<std::shared_mutex> lock(shards_[shard]->mu);
  const ByteSpan bytes = shards_[shard]->journal.bytes();
  return Buffer(bytes.begin(), bytes.end());
}

std::size_t NameNode::journal_record_count(std::size_t shard) const {
  DBLREP_CHECK_LT(shard, shards_.size());
  std::shared_lock<std::shared_mutex> lock(shards_[shard]->mu);
  return shards_[shard]->journal.num_records();
}

std::size_t NameNode::total_journal_records() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    n += journal_record_count(i);
  }
  return n;
}

std::uint64_t NameNode::fingerprint() const {
  // Entry order must not depend on the shard count, so gather-then-sort.
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  std::vector<std::tuple<std::uint64_t, std::string, bool,
                         std::vector<cluster::NodeId>>>
      stripes;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    const auto mix_file = [](std::uint64_t tag, const std::string& path,
                             const FileInfo& info) {
      std::uint64_t h = fnv1a_u64(kFnvOffset, tag);
      h = fnv1a_str(h, path);
      h = fnv1a_str(h, info.code_spec);
      h = fnv1a_u64(h, info.block_size);
      h = fnv1a_u64(h, info.length);
      for (cluster::StripeId id : info.stripes) h = fnv1a_u64(h, id);
      return h;
    };
    for (const auto& [path, info] : shard->files) {
      entries.emplace_back(path, mix_file(1, path, info));
    }
    for (const auto& [path, info] : shard->pending) {
      entries.emplace_back(path, mix_file(2, path, info));
    }
    for (cluster::StripeId id : shard->catalog.live_stripe_ids()) {
      stripes.emplace_back(id, shard->stripe_specs.at(id),
                           shard->catalog.is_sealed(id),
                           shard->catalog.stripe(id).group);
    }
  }
  std::sort(entries.begin(), entries.end());
  std::sort(stripes.begin(), stripes.end());
  std::uint64_t h = kFnvOffset;
  for (const auto& [path, entry_hash] : entries) h = fnv1a_u64(h, entry_hash);
  for (const auto& [id, spec, sealed, group] : stripes) {
    h = fnv1a_u64(h, id);
    h = fnv1a_str(h, spec);
    h = fnv1a_u64(h, sealed ? 1 : 0);
    for (cluster::NodeId node : group) {
      h = fnv1a_u64(h, static_cast<std::uint64_t>(node));
    }
  }
  return h;
}

Result<RecoveryReport> NameNode::crash_and_recover() {
  std::vector<Buffer> snapshots;
  std::vector<Buffer> journals;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    snapshots.push_back(snapshot_bytes(i));
    journals.push_back(journal_bytes(i));
  }
  return restore(std::move(snapshots), std::move(journals));
}

Status NameNode::testonly_drop_last_journal_record(std::size_t shard) {
  DBLREP_CHECK_LT(shard, shards_.size());
  std::unique_lock<std::shared_mutex> lock(shards_[shard]->mu);
  return shards_[shard]->journal.drop_last_record();
}

}  // namespace dblrep::hdfs
