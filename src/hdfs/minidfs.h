// MiniDfs: an in-process distributed file system exercising the coding
// layer end to end with real bytes -- the role HDFS + HDFS-RAID play in the
// paper's Section 4 testbeds.
//
// Components (all in-process):
//  * NameNode state: file namespace (path -> stripes) + the cluster
//    BlockCatalog (stripe placements); placement runs through a selectable
//    cluster::PlacementPolicy -- flat (the paper's single-rack testbeds),
//    rack_aware replica spreading, or group_per_rack, which pins each
//    heptagon-local group to its own rack (Section 2.2).
//  * DataNodes: per-node CRC-checked block stores, each its own lock shard.
//  * Client operations: a streaming write transaction (begin_write /
//    allocate_stripe / store_stripe / commit_write / abort_write) that the
//    handle-based hdfs::Client::FileWriter drives incrementally --
//    write_file is the bulk wrapper over the same primitives -- plus
//    pread (byte-range reads resolving only the covering stripes),
//    read_file / read_block (replica read, with corruption fallback and
//    on-the-fly degraded reads through ec::RepairPlan when every replica
//    is lost).
//  * Repair engine: node repair driven by the same RepairPlan objects,
//    including multi-failure partial-parity recovery; with layered_repair
//    enabled, every plan is rewritten through ec::layer_plan so each rack
//    relays one combined block instead of per-helper sends.
//  * TrafficMeter: every byte that crosses the (simulated) wire is
//    accounted -- split into intra-rack, cross-rack, and client-bound --
//    so tests can assert the paper's repair-bandwidth numbers end to end.
//
// Concurrency model (the paper's real deployment regime: many clients
// reading and writing while repairs run in the background):
//  * Byte-heavy operations -- write_file, read_file, pread, repair_node,
//    repair_all, scrub_repair -- fan their stripes out across an
//    exec::ThreadPool, and FileWriter handles dispatch store_stripe calls
//    onto the same pool; placement stays serial (allocate_stripe draws in
//    allocation order) so the stripe layout (and therefore every byte and
//    traffic total) is identical to the zero-worker serial execution.
//  * DataNode stores are per-node lock shards; the namespace is guarded by
//    a striped per-path shared mutex (concurrent readers, exclusive
//    delete/rename) plus a map-structure mutex.
//  * Mutable codec scratch (ec::StripeCodec / ec::PlanExecutor) is checked
//    out per worker from an exec::RuntimePool per scheme.
//  * Repair plans are cached per (code, failure-pattern) under a
//    shared-read lock and replayed across stripes and threads.
//  * Deletes and renames are safe to run concurrently with repair and
//    scrub: each repair pass pins its stripe with a catalog repair lease
//    (NameNode::begin_repair), so a racing delete drain-waits for the
//    lease -- or, if it wins the race, the repair aborts cleanly and
//    skips the stripe. Scrub passes hold the per-path shared lock, which
//    a delete's exclusive acquisition already excludes.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <utility>

#include "cluster/catalog.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "cluster/traffic.h"
#include "common/rng.h"
#include "ec/code.h"
#include "exec/runtime_pool.h"
#include "exec/striped_mutex.h"
#include "exec/thread_pool.h"
#include "hdfs/datanode.h"
#include "hdfs/namenode.h"
#include "net/transfer.h"

namespace dblrep::hdfs {

/// Observer of namespace-level client access, for heat tracking (the
/// tiering layer's tier::HeatTracker implements this; the hdfs layer only
/// knows the interface, keeping the dependency arrow tier -> hdfs).
///
/// Callbacks fire from client read/commit/delete/rename paths, possibly
/// concurrently -- implementations must be thread-safe. Reads under a
/// background TransferClass (repair, scrub, retier) never call on_read, so
/// a re-encode does not heat the file it is cooling; the re-encode's temp
/// file does accrue an on_write at its commit, which on_replace tells the
/// observer to discard.
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  /// A client read delivered `bytes` logical bytes of `path`.
  virtual void on_read(const std::string& path, std::size_t bytes) {
    (void)path;
    (void)bytes;
  }
  /// A client write committed `path` at `bytes` logical bytes.
  virtual void on_write(const std::string& path, std::size_t bytes) {
    (void)path;
    (void)bytes;
  }
  virtual void on_delete(const std::string& path) { (void)path; }
  virtual void on_rename(const std::string& from, const std::string& to) {
    (void)from;
    (void)to;
  }
  /// replace_file(from, to) succeeded: `from`'s bytes now serve `to`. The
  /// temp path's tracking state should be dropped, `to`'s kept.
  virtual void on_replace(const std::string& from, const std::string& to) {
    (void)from;
    (void)to;
  }
};

/// Data-plane knobs fixed at construction.
struct MiniDfsOptions {
  /// How stripe groups map onto cluster nodes (and therefore racks).
  cluster::PlacementPolicy placement =
      cluster::PlacementPolicy::kGroupPerRack;

  /// Rewrite every repair / degraded-read plan into two-stage layered form
  /// (ec::layer_plan): helpers send to an intra-rack aggregator, one
  /// combined block crosses the rack boundary. Rebuilt bytes are identical
  /// either way; only the traffic's rack split changes.
  bool layered_repair = false;

  /// Link-level network model shim (off by default): when set, every byte
  /// the TrafficMeter accounts is also captured as a classed, directed
  /// net::TransferRecord, so a harness can replay the exact transfer
  /// pattern into a net::NetworkModel for contention/latency simulation.
  /// Not owned; must outlive the DFS. Capture only -- no data-plane
  /// behavior (bytes, placement, traffic totals) changes.
  net::TransferLog* transfer_log = nullptr;

  /// Metadata shard count of the sharded NameNode. 0 defers to the
  /// DBLREP_META_SHARDS environment knob (default 4). Stripe ids come from
  /// a global counter, so placement, bytes, and traffic are identical for
  /// every shard count -- only metadata-plane contention changes.
  std::size_t meta_shards = 0;

  /// Auto-snapshot a metadata shard once its write-ahead journal holds
  /// this many records (0 = manual snapshot_namenode() only).
  std::size_t meta_snapshot_every = 0;

  /// Access observer for heat tracking (see AccessObserver). Not owned;
  /// must outlive the DFS. nullptr (the default) changes nothing.
  AccessObserver* access_observer = nullptr;
};

class MiniDfs {
 public:
  /// Runs parallel operations on exec::default_pool() (DBLREP_THREADS
  /// override applies).
  MiniDfs(const cluster::Topology& topology, std::uint64_t seed);

  /// Pool injection for benchmarks and determinism tests. `pool` is not
  /// owned and must outlive the DFS; nullptr selects exec::inline_pool(),
  /// i.e. the fully serial execution order.
  MiniDfs(const cluster::Topology& topology, std::uint64_t seed,
          exec::ThreadPool* pool);

  MiniDfs(const cluster::Topology& topology, std::uint64_t seed,
          exec::ThreadPool* pool, const MiniDfsOptions& options);

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  // ----------------------------------------- streaming write transaction
  //
  // The storage-core half of the handle-based client API (hdfs::Client /
  // FileWriter compose these; write_file is the bulk wrapper):
  //
  //   begin_write -> { allocate_stripe -> store_stripe }* -> commit_write
  //
  // with abort_write rolling every landed block and registered stripe back
  // on any failure. The transaction is single-owner: allocate_stripe must
  // be called from one thread per transaction, in stripe order --
  // placement draws stay a deterministic function of allocation order --
  // while store_stripe is safe to run from many threads concurrently for
  // distinct stripes of the same transaction. commit_write / abort_write
  // must not overlap in-flight allocate/store calls of the same
  // transaction: the owner drains its stores first (FileWriter does) --
  // the primitives do not guard against it. Until commit, the path is
  // visible only to stat() (with FileInfo::sealed == false); readers get
  // NOT_FOUND.

  /// Opens a write transaction: reserves `path` (concurrent creators fail
  /// fast with ALREADY_EXISTS) and validates the code spec and block size.
  Status begin_write(const std::string& path, const std::string& code_spec,
                     std::size_t block_size);

  /// Places and registers (unsealed) the transaction's next stripe.
  Result<cluster::StripeId> allocate_stripe(const std::string& path);

  /// Batch form: `count` stripes placed under one lock hold and one
  /// live-node scan -- what the bulk write_file wrapper uses. Draw order
  /// is identical to `count` single allocations.
  Result<std::vector<cluster::StripeId>> allocate_stripes(
      const std::string& path, std::size_t count);

  /// Encodes up to one stripe of logical bytes (shorter spans are
  /// zero-padded), stores every slot on its placed node, and charges the
  /// upload traffic under `cls` (client write by default; the tiering
  /// re-encode path passes kRetier so its bytes are throttleable like
  /// repair). The stripe stays unsealed -- invisible to repair and scrub --
  /// until commit_write.
  Status store_stripe(const std::string& path, cluster::StripeId stripe,
                      ByteSpan stripe_data,
                      net::TransferClass cls = net::TransferClass::kClientWrite);

  /// Seals every stored stripe and publishes the path: repair, scrub, and
  /// readers all see the file from here on. Sealing and publishing happen
  /// in one step so no stripe is ever both sealed and abortable.
  Status commit_write(const std::string& path);

  /// Rolls the transaction back: drops every landed block, unregisters
  /// every allocated stripe, and releases the path.
  Status abort_write(const std::string& path);

  // ------------------------------------------------------------ client

  /// Writes `data` as a new file encoded with `code_spec`, striping into
  /// blocks of `block_size` bytes. Thin wrapper over the write transaction
  /// above: stripes are placed serially (so layout is deterministic per
  /// seed) and encoded/stored in parallel, zero-copy from `data`.
  Status write_file(const std::string& path, ByteSpan data,
                    const std::string& code_spec, std::size_t block_size);

  /// Whole-file read: pread of [0, length). `cls` classes the delivery
  /// traffic (client read by default; kRetier for tiering re-encode
  /// streams).
  Result<Buffer> read_file(
      const std::string& path,
      net::TransferClass cls = net::TransferClass::kClientRead);

  /// Byte-range read: resolves only the stripes covering
  /// [offset, offset + len) and streams them in parallel, with the same
  /// per-block replica fallbacks and on-the-fly degraded reads as
  /// read_file. Reads are clamped at EOF (the result carries
  /// min(len, length - offset) bytes; len may overshoot); an offset beyond
  /// EOF is INVALID_ARGUMENT, and a zero-length range is an empty buffer.
  Result<Buffer> pread(const std::string& path, std::size_t offset,
                       std::size_t len,
                       net::TransferClass cls = net::TransferClass::kClientRead);

  /// Reads one data block (index within the file). Indices at or past the
  /// file's last logical block are INVALID_ARGUMENT.
  Result<Buffer> read_block(
      const std::string& path, std::size_t block_index,
      net::TransferClass cls = net::TransferClass::kClientRead);

  Status delete_file(const std::string& path);
  Status rename(const std::string& from, const std::string& to);

  /// Atomic publish-then-delete swap: `from` (a fully written temp file)
  /// takes over path `to`, whose old stripes and blocks are dropped. This
  /// is the tiering transition's commit step -- at every instant `to`
  /// resolves to a complete, readable layout (the old one until the swap,
  /// the new one after). NOT_FOUND if either path is missing, so a
  /// transition racing a delete of `to` loses cleanly and can drop its
  /// temp file.
  Status replace_file(const std::string& from, const std::string& to);

  /// Metadata of a published file, or of a write in flight (then with
  /// sealed == false and length == bytes stored so far).
  Result<FileInfo> stat(const std::string& path) const;
  std::vector<std::string> list_files() const;

  // -------------------------------------------------------- membership

  /// Crash-fails a node (its stored bytes are gone).
  Status fail_node(cluster::NodeId node);

  /// Transient outage: the node becomes unreachable but keeps its disk.
  /// restart_node (or any repair) brings it back with all blocks intact --
  /// the failure class HDFS's repair timeout exists to mask.
  Status offline_node(cluster::NodeId node);

  /// Brings a node back up: empty after fail_node, intact after
  /// offline_node. Call repair_node to refill any holes.
  Status restart_node(cluster::NodeId node);

  /// Rebuilds everything the (restarted) node should host, using the
  /// cheapest repair plans available under the current failure set. The
  /// node's stripes are repaired in parallel across the pool.
  Status repair_node(cluster::NodeId node);

  /// Restarts and repairs every down node (multi-failure aware: plans are
  /// computed against the full failed set, partial parities and all).
  Status repair_all();

  std::set<cluster::NodeId> down_nodes() const;

  // ------------------------------------------------------------- scrub

  /// Verifies CRCs and full codeword consistency of every stripe.
  Status scrub();

  /// Scrubs and *heals*: corrupted or missing replicas on live nodes are
  /// rewritten from a healthy replica or decoded from the stripe, stripes
  /// fanned out across the pool. Returns the number of blocks repaired, or
  /// an error if a stripe is beyond recovery.
  Result<std::size_t> scrub_repair();

  // ------------------------------------------------------------ access

  const cluster::TrafficMeter& traffic() const { return traffic_; }
  cluster::TrafficMeter& traffic() { return traffic_; }
  const MiniDfsOptions& options() const { return options_; }
  /// The metadata plane's catalog view (BlockCatalog-shaped read surface,
  /// routed across the NameNode's shards).
  const NameNode& catalog() const { return namenode_; }
  const NameNode& namenode() const { return namenode_; }
  NameNode& namenode() { return namenode_; }

  /// Snapshots every metadata shard (absorbing its journal) -- the
  /// checkpoint half of the durability story.
  void snapshot_namenode() { namenode_.snapshot(); }

  /// Kills and recovers the NameNode from its durable artifacts (snapshot
  /// + write-ahead journal per shard): every in-memory table is rebuilt,
  /// open writes roll back, and datanode blocks whose stripes died with
  /// them (rolled-back writes, half-finished deletes) are dropped via the
  /// usual block-report GC. Requires quiescence -- no concurrent clients --
  /// exactly like a real crash.
  Result<RecoveryReport> crash_namenode();

  /// Order- and shard-count-independent metadata fingerprint (namespace +
  /// pending writes + live stripes); the chaos recovery invariant compares
  /// it across a crash.
  std::uint64_t catalog_fingerprint() const { return namenode_.fingerprint(); }

  DataNode& datanode(cluster::NodeId node);
  const DataNode& datanode(cluster::NodeId node) const;
  const cluster::Topology& topology() const { return topology_; }

  /// Scheme of a published file. NOT_FOUND for unknown paths -- a legal
  /// race when concurrent clients look up files being created or deleted,
  /// not a programming error.
  Result<const ec::CodeScheme*> code_for(const std::string& path) const;
  exec::ThreadPool& pool() const { return *pool_; }

  /// Total stored bytes across all datanodes (for overhead assertions).
  std::size_t stored_bytes() const;

 private:
  /// The client half of the API (handle-based writers, async wrappers)
  /// composes the transaction primitives and scheme lookups directly.
  friend class Client;

  /// Everything the data plane keeps warm per code spec: the immutable
  /// scheme plus a RuntimePool of per-worker StripeCodec/PlanExecutor
  /// instances (mutable scratch is never shared between threads).
  struct SchemeRuntime {
    std::unique_ptr<ec::CodeScheme> code;
    std::unique_ptr<exec::RuntimePool> runtimes;
  };

  /// Repair plans keyed by (code, code-local failure pattern); shared
  /// across stripes, repair rounds, and threads.
  using PlanKey = std::pair<const ec::CodeScheme*, std::set<ec::NodeIndex>>;

  /// Snapshot of a file's metadata under the namespace lock. FileInfo is
  /// immutable once published, so the copy stays valid without holding any
  /// lock while bytes move.
  Result<FileInfo> lookup_copy(const std::string& path) const;

  Result<SchemeRuntime*> runtime(const std::string& code_spec);
  Result<const ec::CodeScheme*> scheme(const std::string& code_spec);
  exec::RuntimePool& runtime_pool_for(const ec::CodeScheme& code) const;

  /// Encode + store core of store_stripe, with the runtime and block size
  /// already resolved: the bulk write_file path calls this straight from
  /// its workers so they touch no namespace state.
  Status store_stripe_bytes(SchemeRuntime& rt, std::size_t block_size,
                            cluster::StripeId stripe, ByteSpan stripe_data,
                            net::TransferClass cls);

  /// Batched form: encodes every stripe covering `data` through one leased
  /// codec (cross-stripe fused parity passes, see StripeCodec::encode_batch)
  /// and stores stripes[i] from the i-th stripe of `data`. `stripes` must
  /// have exactly as many entries as stripes of `data`.
  Status store_stripe_batch(SchemeRuntime& rt, std::size_t block_size,
                            std::span<const cluster::StripeId> stripes,
                            ByteSpan data);

  /// Plan for `failed` under `code`, computed once per distinct pattern and
  /// served under a shared-read lock afterwards. The returned pointer stays
  /// valid for the lifetime of the DFS (entries are never evicted).
  Result<const ec::RepairPlan*> cached_repair_plan(
      const ec::CodeScheme& code, const std::set<ec::NodeIndex>& failed);

  /// Gathers the live slots of a stripe into a SlotStore (skipping
  /// corrupted blocks), for decode/repair.
  ec::SlotStore gather_stripe(cluster::StripeId stripe) const;

  /// Rack of each code-local node of a placement group, per the topology.
  std::vector<int> group_racks(
      const std::vector<cluster::NodeId>& group) const;

  /// Reads one data block (all α sub-chunk units) of one stripe with all
  /// fallbacks -- replica reads first, then a degraded read through
  /// plan_degraded_block; records traffic at unit granularity.
  Result<Buffer> read_data_block(const FileInfo& file,
                                 cluster::StripeId stripe, std::size_t block,
                                 net::TransferClass cls);

  /// Range-read core shared by pread and read_file: fans the covering
  /// stripes out across the pool, trimming the first and last block to the
  /// requested window. `offset` must be <= info.length.
  Result<Buffer> pread_span(const FileInfo& info, const ec::CodeScheme& code,
                            std::size_t offset, std::size_t len,
                            net::TransferClass cls);

  /// Repairs one stripe's holes as part of repair_node(node).
  Status repair_stripe(cluster::StripeId stripe);

  /// Block-report semantics on rejoin: a node returning from a transient
  /// outage may hold replicas of stripes deleted while it was away; drop
  /// them so the catalog and the disks agree again.
  void gc_stale_replicas(DataNode& dn);

  // Traffic accounting shims: each feeds the TrafficMeter exactly as
  // before and, when options_.transfer_log is set, also captures a classed
  // net::TransferRecord for link-level replay.
  /// Node-to-node transfer (repair helper sends, relay hops, ...).
  void account(cluster::NodeId from, cluster::NodeId to, double bytes,
               net::TransferClass cls);
  /// Client -> node upload (write fan-out, scrub re-injection).
  void account_upload(cluster::NodeId node, double bytes,
                      net::TransferClass cls);
  /// Node -> client delivery (read / pread / degraded-read results).
  void account_delivery(cluster::NodeId node, double bytes,
                        net::TransferClass cls);

  cluster::Topology topology_;
  MiniDfsOptions options_;
  /// The sharded metadata plane: namespace, pending writes, block catalog,
  /// per-path locks, write-ahead journals, and snapshots all live here.
  NameNode namenode_;
  cluster::TrafficMeter traffic_;
  exec::ThreadPool* pool_;
  std::deque<DataNode> datanodes_;  // deque: DataNode is pinned (own mutex)

  mutable std::mutex place_mu_;  // guards rng_ + placement decisions
  Rng rng_;

  mutable std::shared_mutex scheme_mu_;  // guards schemes_ + pools_by_code_
  std::map<std::string, SchemeRuntime> schemes_;
  std::map<const ec::CodeScheme*, exec::RuntimePool*> pools_by_code_;

  mutable std::shared_mutex plan_mu_;  // guards plan_cache_
  std::map<PlanKey, ec::RepairPlan> plan_cache_;
};

}  // namespace dblrep::hdfs
