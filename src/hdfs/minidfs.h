// MiniDfs: an in-process distributed file system exercising the coding
// layer end to end with real bytes -- the role HDFS + HDFS-RAID play in the
// paper's Section 4 testbeds.
//
// Components (all in-process, synchronous):
//  * NameNode state: file namespace (path -> stripes) + the cluster
//    BlockCatalog (stripe placements); placement picks uniformly random
//    live nodes per stripe, like the paper's single-rack testbeds.
//  * DataNodes: per-node CRC-checked block stores.
//  * Client operations: write_file (stripe + encode + place), read_file /
//    read_block (replica read, with corruption fallback and on-the-fly
//    degraded reads through ec::RepairPlan when every replica is lost).
//  * Repair engine: node repair driven by the same RepairPlan objects,
//    including multi-failure partial-parity recovery.
//  * TrafficMeter: every byte that crosses the (simulated) wire is
//    accounted, so tests can assert the paper's repair-bandwidth numbers
//    end to end.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "cluster/catalog.h"
#include "cluster/topology.h"
#include "cluster/traffic.h"
#include "common/rng.h"
#include "ec/code.h"
#include "ec/stripe_codec.h"
#include "hdfs/datanode.h"

namespace dblrep::hdfs {

struct FileInfo {
  std::string code_spec;
  std::size_t block_size = 0;
  std::size_t length = 0;  // logical bytes
  std::vector<cluster::StripeId> stripes;
};

class MiniDfs {
 public:
  MiniDfs(const cluster::Topology& topology, std::uint64_t seed);

  // ------------------------------------------------------------ client

  /// Writes `data` as a new file encoded with `code_spec`, striping into
  /// blocks of `block_size` bytes.
  Status write_file(const std::string& path, ByteSpan data,
                    const std::string& code_spec, std::size_t block_size);

  /// Whole-file read; degraded reads kick in automatically for blocks with
  /// no healthy replica.
  Result<Buffer> read_file(const std::string& path);

  /// Reads one data block (index within the file).
  Result<Buffer> read_block(const std::string& path, std::size_t block_index);

  Status delete_file(const std::string& path);
  Status rename(const std::string& from, const std::string& to);
  Result<FileInfo> stat(const std::string& path) const;
  std::vector<std::string> list_files() const;

  // -------------------------------------------------------- membership

  /// Crash-fails a node (its stored bytes are gone).
  Status fail_node(cluster::NodeId node);

  /// Brings a node back empty; call repair_node to refill it.
  Status restart_node(cluster::NodeId node);

  /// Rebuilds everything the (restarted) node should host, using the
  /// cheapest repair plans available under the current failure set.
  Status repair_node(cluster::NodeId node);

  /// Restarts and repairs every down node (multi-failure aware: plans are
  /// computed against the full failed set, partial parities and all).
  Status repair_all();

  std::set<cluster::NodeId> down_nodes() const;

  // ------------------------------------------------------------- scrub

  /// Verifies CRCs and full codeword consistency of every stripe.
  Status scrub();

  /// Scrubs and *heals*: corrupted or missing replicas on live nodes are
  /// rewritten from a healthy replica or decoded from the stripe. Returns
  /// the number of blocks repaired, or an error if a stripe is beyond
  /// recovery.
  Result<std::size_t> scrub_repair();

  // ------------------------------------------------------------ access

  const cluster::TrafficMeter& traffic() const { return traffic_; }
  cluster::TrafficMeter& traffic() { return traffic_; }
  const cluster::BlockCatalog& catalog() const { return catalog_; }
  DataNode& datanode(cluster::NodeId node);
  const ec::CodeScheme& code_for(const std::string& path) const;

  /// Total stored bytes across all datanodes (for overhead assertions).
  std::size_t stored_bytes() const;

 private:
  /// Everything the data plane keeps warm per code spec: the immutable
  /// scheme, the arena-backed stripe codec for batch encodes, and a plan
  /// executor whose scratch is recycled across repair/degraded-read
  /// executions. Codec and executor carry mutable scratch, which is safe
  /// because MiniDfs is single-threaded by design (like the rest of the
  /// in-process simulator); a concurrent DFS would need one runtime per
  /// worker thread.
  struct SchemeRuntime {
    std::unique_ptr<ec::CodeScheme> code;
    std::unique_ptr<ec::StripeCodec> codec;
    std::unique_ptr<ec::PlanExecutor> executor;
  };

  Result<const FileInfo*> lookup(const std::string& path) const;
  Result<const ec::CodeScheme*> scheme(const std::string& code_spec);
  Result<SchemeRuntime*> runtime(const std::string& code_spec);

  /// Gathers the live slots of a stripe into a SlotStore (skipping
  /// corrupted blocks), for decode/repair.
  ec::SlotStore gather_stripe(cluster::StripeId stripe) const;

  /// Reads one symbol of one stripe with all fallbacks; records traffic.
  Result<Buffer> read_symbol(const FileInfo& file, cluster::StripeId stripe,
                             std::size_t symbol);

  cluster::Topology topology_;
  cluster::BlockCatalog catalog_;
  cluster::TrafficMeter traffic_;
  Rng rng_;
  std::vector<DataNode> datanodes_;
  std::map<std::string, FileInfo> files_;
  std::map<std::string, SchemeRuntime> schemes_;
};

}  // namespace dblrep::hdfs
