#include "hdfs/datanode.h"

namespace dblrep::hdfs {

Status DataNode::put(cluster::SlotAddress address, Buffer bytes) {
  if (!is_up()) return unavailable_error("datanode down");
  StoredBlock block;
  block.crc = crc32c(bytes);
  block.bytes = std::move(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  blocks_[address] = std::move(block);
  return Status::ok();
}

Result<Buffer> DataNode::get(cluster::SlotAddress address) const {
  if (!is_up()) return unavailable_error("datanode down");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(address);
  if (it == blocks_.end()) {
    return not_found_error("block not on this datanode");
  }
  if (crc32c(it->second.bytes) != it->second.crc) {
    return corruption_error("checksum mismatch on stripe " +
                            std::to_string(address.stripe) + " slot " +
                            std::to_string(address.slot));
  }
  return it->second.bytes;
}

bool DataNode::has(cluster::SlotAddress address) const {
  if (!is_up()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.contains(address);
}

Status DataNode::drop(cluster::SlotAddress address) {
  if (!is_up()) return unavailable_error("datanode down");
  std::lock_guard<std::mutex> lock(mu_);
  if (blocks_.erase(address) == 0) {
    return not_found_error("block not on this datanode");
  }
  return Status::ok();
}

std::size_t DataNode::block_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

std::size_t DataNode::bytes_stored() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [address, block] : blocks_) {
    (void)address;
    total += block.bytes.size();
  }
  return total;
}

void DataNode::fail() {
  up_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.clear();
}

void DataNode::offline() { up_.store(false, std::memory_order_release); }

void DataNode::restart() { up_.store(true, std::memory_order_release); }

Status DataNode::corrupt(cluster::SlotAddress address, std::size_t byte_index) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(address);
  if (it == blocks_.end()) {
    return not_found_error("block not on this datanode");
  }
  if (byte_index >= it->second.bytes.size()) {
    return invalid_argument_error("corrupt index out of range");
  }
  it->second.bytes[byte_index] ^= 0xff;  // CRC left stale on purpose
  return Status::ok();
}

Result<Buffer> DataNode::peek(cluster::SlotAddress address) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = blocks_.find(address);
  if (it == blocks_.end()) {
    return not_found_error("block not on this datanode");
  }
  return it->second.bytes;
}

std::vector<cluster::SlotAddress> DataNode::stored_addresses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<cluster::SlotAddress> out;
  out.reserve(blocks_.size());
  for (const auto& [address, block] : blocks_) {
    (void)block;
    out.push_back(address);
  }
  return out;
}

}  // namespace dblrep::hdfs
