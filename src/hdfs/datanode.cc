#include "hdfs/datanode.h"

namespace dblrep::hdfs {

Status DataNode::put(cluster::SlotAddress address, Buffer bytes) {
  if (!up_) return unavailable_error("datanode down");
  StoredBlock block;
  block.crc = crc32c(bytes);
  block.bytes = std::move(bytes);
  blocks_[address] = std::move(block);
  return Status::ok();
}

Result<Buffer> DataNode::get(cluster::SlotAddress address) const {
  if (!up_) return unavailable_error("datanode down");
  const auto it = blocks_.find(address);
  if (it == blocks_.end()) {
    return not_found_error("block not on this datanode");
  }
  if (crc32c(it->second.bytes) != it->second.crc) {
    return corruption_error("checksum mismatch on stripe " +
                            std::to_string(address.stripe) + " slot " +
                            std::to_string(address.slot));
  }
  return it->second.bytes;
}

bool DataNode::has(cluster::SlotAddress address) const {
  return up_ && blocks_.contains(address);
}

Status DataNode::drop(cluster::SlotAddress address) {
  if (!up_) return unavailable_error("datanode down");
  if (blocks_.erase(address) == 0) {
    return not_found_error("block not on this datanode");
  }
  return Status::ok();
}

std::size_t DataNode::bytes_stored() const {
  std::size_t total = 0;
  for (const auto& [address, block] : blocks_) {
    (void)address;
    total += block.bytes.size();
  }
  return total;
}

void DataNode::fail() {
  up_ = false;
  blocks_.clear();
}

void DataNode::restart() { up_ = true; }

Status DataNode::corrupt(cluster::SlotAddress address, std::size_t byte_index) {
  const auto it = blocks_.find(address);
  if (it == blocks_.end()) {
    return not_found_error("block not on this datanode");
  }
  if (byte_index >= it->second.bytes.size()) {
    return invalid_argument_error("corrupt index out of range");
  }
  it->second.bytes[byte_index] ^= 0xff;  // CRC left stale on purpose
  return Status::ok();
}

std::vector<cluster::SlotAddress> DataNode::stored_addresses() const {
  std::vector<cluster::SlotAddress> out;
  out.reserve(blocks_.size());
  for (const auto& [address, block] : blocks_) {
    (void)block;
    out.push_back(address);
  }
  return out;
}

}  // namespace dblrep::hdfs
