// Repair QoS: hierarchical token buckets pacing repair-class transfers
// against foreground client traffic.
//
// "Network Traffic Driven Storage Repair" (PAPERS.md) argues repair
// scheduling must react to link load; YTsaurus ships a distributed
// throttler doing exactly this for its replicator. The model here is the
// simulation-side equivalent: before a repair-class transfer may enter its
// first link, it reserves its byte count from
//
//   1. the cluster-wide repair bucket (one global bytes/s budget), and
//   2. the per-link bucket of its entry link (a fraction of that link's
//      bandwidth, so repair can never monopolize any single NIC even when
//      the global budget would allow it).
//
// The grant time is the later of the two; reservations debit immediately
// and FIFO-queue when the bucket is dry, so a storm of reservations spreads
// out at exactly the refill rate. Foreground classes are never throttled.
//
// Load-adaptive mode: the driver feeds the throttler the measured hottest
// link utilization before each admission; refill scales linearly from
// `adaptive_boost x` the base rate on an idle network down to 1x when any
// link is saturated -- repair soaks up headroom without a standing cost to
// the foreground tail.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/event_queue.h"

namespace dblrep::net {

/// Continuous-refill token bucket over simulated time. Reservations may
/// exceed the burst capacity: the bucket then runs a deficit paid off at
/// the refill rate, which makes grants FIFO and exact.
class TokenBucket {
 public:
  TokenBucket(double rate_bytes_per_sec, double burst_bytes);

  /// Earliest time >= now at which `bytes` tokens are available; debits
  /// them. Successive calls are granted FIFO.
  sim::SimTime reserve(double bytes, sim::SimTime now);

  /// Changes the refill rate (tokens accrued up to `now` at the old rate
  /// are kept).
  void set_rate(double rate_bytes_per_sec, sim::SimTime now);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(sim::SimTime now);

  double rate_;
  double burst_;
  double tokens_;  // may go negative (deficit of an oversized reservation)
  sim::SimTime last_ = 0.0;
};

struct QosConfig {
  /// Cluster-wide repair budget refill (bytes/s) and burst.
  double cluster_rate = 125e6;  // 1 Gbps worth of repair, cluster-wide
  double cluster_burst = 256 * 1024;

  /// Per-entry-link repair cap, as a fraction of that link's bandwidth.
  double link_fraction = 0.2;
  double link_burst = 128 * 1024;

  /// Load-adaptive refill: scale the cluster rate by up to adaptive_boost
  /// when the measured hottest-link utilization is low.
  bool adaptive = false;
  double adaptive_boost = 4.0;
};

class QosThrottler {
 public:
  explicit QosThrottler(const QosConfig& config);

  /// Registers link `link_id`'s bandwidth (ids are dense, model-assigned).
  void add_link(std::size_t link_id, double bandwidth_bytes_per_sec);

  /// Reserves `bytes` from the cluster bucket and `entry_link`'s bucket;
  /// returns the admission time (>= now).
  sim::SimTime admit(std::size_t entry_link, double bytes, sim::SimTime now);

  /// Feeds the adaptive controller the current hottest-link utilization in
  /// [0, 1]. No-op unless config.adaptive.
  void observe_utilization(double utilization, sim::SimTime now);

  /// Current cluster refill rate (post-adaptation).
  double cluster_rate() const { return cluster_.rate(); }
  const QosConfig& config() const { return config_; }

 private:
  QosConfig config_;
  TokenBucket cluster_;
  std::vector<TokenBucket> per_link_;
};

}  // namespace dblrep::net
