// Transfer records and the capture shim between the data plane and the
// link-level network model.
//
// The MiniDfs data plane moves real bytes synchronously; the network model
// (net/model.h) simulates *time*. The bridge is deliberately thin: every
// data-moving path in MiniDfs calls TransferLog::record right next to its
// TrafficMeter accounting, tagging the transfer with a class (client write
// upload, client read delivery, repair, scrub heal) and a direction -- the
// off-cluster client endpoint is kClientEndpoint. A driver (bench_repair_qos,
// dfsctl --net) drains the captured records and replays them into a
// NetworkModel, where contention, queueing, and QoS pacing happen.
//
// Capture is thread-safe (store paths run on the pool), but the *order* of
// records is only deterministic when the DFS runs on the inline pool -- the
// simulation harnesses that replay captures do exactly that.
#pragma once

#include <mutex>
#include <vector>

#include "cluster/topology.h"

namespace dblrep::net {

/// The off-cluster client endpoint. It attaches at the spine: client bytes
/// enter/leave the cluster through a rack's ToR uplink and the spine, never
/// through another node's NIC.
inline constexpr cluster::NodeId kClientEndpoint = -1;

/// Traffic class of a transfer; repair-class traffic (kRepair, kScrub,
/// kRetier) is what the QosThrottler paces against the foreground classes.
enum class TransferClass {
  kClientWrite = 0,  // client -> node block upload
  kClientRead = 1,   // node -> client delivery (incl. degraded-read helpers)
  kRepair = 2,       // helper/aggregator/destination repair chain sends
  kScrub = 3,        // scrub-heal rewrites
  kRetier = 4,       // tier re-encode streams (TieringEngine / RaidNode)
};
inline constexpr std::size_t kNumTransferClasses = 5;

const char* to_string(TransferClass cls);

/// True for the background classes the QoS throttler paces.
inline bool is_repair_class(TransferClass cls) {
  return cls == TransferClass::kRepair || cls == TransferClass::kScrub ||
         cls == TransferClass::kRetier;
}

struct TransferRecord {
  cluster::NodeId from = kClientEndpoint;
  cluster::NodeId to = kClientEndpoint;
  double bytes = 0;
  TransferClass cls = TransferClass::kClientRead;
};

/// Thread-safe capture shim. MiniDfs records into it (when attached via
/// MiniDfsOptions::transfer_log); harnesses drain it between operations to
/// learn the exact per-op transfer pattern.
///
/// Flow boundaries: NetworkModel::start_flow dependency-chains the records
/// of ONE operation; chaining records of unrelated operations would
/// manufacture false dependencies (every reused node id becomes an edge)
/// and serialize a storm that is really parallel. MiniDfs therefore calls
/// mark() after each multi-send operation (one repaired stripe, one
/// degraded read), and drain_flows() hands the harness the capture
/// pre-split at those marks.
class TransferLog {
 public:
  void record(cluster::NodeId from, cluster::NodeId to, double bytes,
              TransferClass cls);

  /// Ends the current flow: the records captured since the previous mark
  /// form one dependency-chained operation. No-op when that span is empty.
  void mark();

  /// Returns all records captured since the last drain, in capture order.
  std::vector<TransferRecord> drain();

  /// Like drain(), but split at the mark() boundaries; records after the
  /// last mark form a final flow. Flows are never empty.
  std::vector<std::vector<TransferRecord>> drain_flows();

  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TransferRecord> records_;
  std::vector<std::size_t> marks_;  // indices into records_, increasing
};

}  // namespace dblrep::net
