// Link-level discrete-event network model, layered on sim::EventQueue.
//
// TrafficMeter counts bytes; this model gives those bytes a *cost*. The
// cluster fabric is the classic two-tier datacenter tree:
//
//       client ──┐
//                ▼
//            [ spine ]                    one shared fabric link
//            ▲       ▲
//      tor_up│       │tor_down            per-rack ToR uplink/downlink
//            │       ▼
//        [ rack r ToR switch ]            non-blocking within the rack
//        ▲               │
//  nic_up│               ▼nic_down        per-node duplex NIC
//      [node a]        [node b]
//
// Every link is an independent FIFO store-and-forward queue with a
// configurable bandwidth and latency: a transfer arriving at a link waits
// for everything queued ahead of it, occupies the link for bytes/bandwidth
// seconds, then propagates to the next hop after the link latency. Routes:
//
//   intra-rack a->b : nic_up(a) -> nic_down(b)           (ToR non-blocking)
//   cross-rack a->b : nic_up(a) -> tor_up(rack a) -> spine
//                        -> tor_down(rack b) -> nic_down(b)
//   a -> client     : nic_up(a) -> tor_up(rack a) -> spine
//   client -> b     : spine -> tor_down(rack b) -> nic_down(b)
//
// Repair-class transfers (TransferClass kRepair/kScrub) are paced by the
// QosThrottler before they may enter their first link (when
// NetworkConfig::throttle_repair is set); foreground client traffic is
// never throttled.
//
// Conservation is accounted with independent accumulators so it is a
// checkable invariant rather than a definition: bytes injected, bytes
// delivered (also split per class), and bytes in flight are each summed on
// their own, and every link independently tracks bytes entering, leaving,
// and currently held. chaos::check_network_conservation asserts the books
// balance at any instant, mid-flight included.
//
// Single-threaded by design, like the EventQueue it runs on: harnesses
// capture transfers from the (possibly parallel) data plane through the
// TransferLog shim and replay them here deterministically.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/stats.h"
#include "net/qos.h"
#include "net/transfer.h"
#include "sim/event_queue.h"

namespace dblrep::net {

/// One directed link: sustained bandwidth plus per-hop latency
/// (propagation + switching).
struct LinkConfig {
  double bandwidth = 1.25e9;  // bytes/s (10 Gbps, the paper's testbeds)
  double latency = 20e-6;     // seconds
};

struct NetworkConfig {
  LinkConfig nic;                              // per-node duplex NIC
  LinkConfig tor{4 * 1.25e9, 20e-6};           // per-rack ToR up/downlink
  LinkConfig spine{8 * 1.25e9, 30e-6};         // shared spine fabric
  /// Pace repair-class transfers through the QosThrottler.
  bool throttle_repair = false;
  QosConfig qos;
};

/// Observable per-link accounting. bytes_in/bytes_out/held_bytes are
/// independently accumulated so `in == out + held` is a meaningful check.
struct LinkStats {
  std::string name;
  double bandwidth = 0;
  double bytes_in = 0;    // entered the link's queue
  double bytes_out = 0;   // finished serialization and left
  double held_bytes = 0;  // queued or in service right now
  double busy_s = 0;      // cumulative serialization time
  std::size_t transfers = 0;
  std::size_t queue_depth = 0;      // current (incl. in service)
  std::size_t max_queue_depth = 0;  // high-water mark
  RunningStat queue_delay_s;        // wait before serialization started

  /// Fraction of [0, now] the serializer was busy.
  double utilization(sim::SimTime now) const {
    return now > 0.0 ? busy_s / now : 0.0;
  }
};

class NetworkModel {
 public:
  using DeliveryCallback = std::function<void(sim::SimTime delivered)>;

  NetworkModel(sim::EventQueue& queue, const cluster::Topology& topology,
               const NetworkConfig& config);

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  /// Injects `t` at time `when` (>= queue.now()); the transfer traverses
  /// its route store-and-forward and `done` (optional) fires at final
  /// delivery. Repair-class transfers first clear the throttler.
  void start_transfer(const TransferRecord& t, sim::SimTime when,
                      DeliveryCallback done = nullptr);

  /// Injects a whole operation's transfer list as a dependency-chained
  /// flow: record j waits for record i when j.from == i.to (an aggregator
  /// forwards only after its inputs arrive -- the repair
  /// helper->aggregator->destination chains); independent records run in
  /// parallel. `done` fires when every record has delivered.
  void start_flow(std::vector<TransferRecord> records, sim::SimTime when,
                  DeliveryCallback done);

  // ---------------------------------------------------- conservation books
  double injected_bytes() const { return injected_bytes_; }
  double delivered_bytes() const { return delivered_bytes_; }
  double in_flight_bytes() const { return in_flight_bytes_; }
  double delivered_class_bytes(TransferClass cls) const {
    return delivered_class_bytes_[static_cast<std::size_t>(cls)];
  }
  std::size_t transfers_injected() const { return transfers_injected_; }
  std::size_t transfers_delivered() const { return transfers_delivered_; }
  std::size_t transfers_in_flight() const {
    return transfers_injected_ - transfers_delivered_;
  }

  // ---------------------------------------------------------- observability
  std::size_t num_links() const { return links_.size(); }
  const LinkStats& link(std::size_t id) const { return links_[id].stats; }
  /// Hottest-link utilization over the window since the last call (the
  /// congestion signal fed to the adaptive throttler).
  double hottest_link_utilization();

  sim::EventQueue& queue() { return *queue_; }
  const cluster::Topology& topology() const { return topology_; }
  QosThrottler* throttler() {
    return throttler_.has_value() ? &*throttler_ : nullptr;
  }

 private:
  struct LinkState {
    LinkStats stats;
    double latency = 0;
    sim::SimTime busy_until = 0.0;
    // Window accounting for hottest_link_utilization.
    double window_busy_s = 0;
  };

  std::size_t add_link(std::string name, const LinkConfig& config);
  /// Ordered link ids a transfer from->to traverses (empty for from==to).
  std::vector<std::size_t> route(cluster::NodeId from,
                                 cluster::NodeId to) const;
  void arrive(const std::shared_ptr<struct ActiveTransfer>& transfer,
              std::size_t hop);
  void deliver(const std::shared_ptr<struct ActiveTransfer>& transfer,
               sim::SimTime when);
  /// Injects flow record `j` (dependencies met) and wires its delivery to
  /// release the records waiting on it.
  void release_flow_record(const std::shared_ptr<struct FlowState>& flow,
                           std::size_t j);

  sim::EventQueue* queue_;
  cluster::Topology topology_;
  NetworkConfig config_;

  std::vector<LinkState> links_;
  std::vector<std::size_t> nic_up_, nic_down_;  // by node
  std::vector<std::size_t> tor_up_, tor_down_;  // by rack
  std::size_t spine_ = 0;

  std::optional<QosThrottler> throttler_;

  double injected_bytes_ = 0;
  double delivered_bytes_ = 0;
  double in_flight_bytes_ = 0;
  double delivered_class_bytes_[kNumTransferClasses] = {};
  std::size_t transfers_injected_ = 0;
  std::size_t transfers_delivered_ = 0;

  sim::SimTime util_window_start_ = 0.0;
};

}  // namespace dblrep::net
