#include "net/model.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dblrep::net {

/// One transfer moving through its route. Heap-allocated and shared by the
/// per-hop events so the record outlives every scheduled callback.
struct ActiveTransfer {
  TransferRecord record;
  std::vector<std::size_t> route;
  NetworkModel::DeliveryCallback done;
};

NetworkModel::NetworkModel(sim::EventQueue& queue,
                           const cluster::Topology& topology,
                           const NetworkConfig& config)
    : queue_(&queue), topology_(topology), config_(config) {
  if (config_.throttle_repair) throttler_.emplace(config_.qos);
  nic_up_.reserve(topology_.num_nodes);
  nic_down_.reserve(topology_.num_nodes);
  for (std::size_t n = 0; n < topology_.num_nodes; ++n) {
    nic_up_.push_back(add_link("nic_up[" + std::to_string(n) + "]",
                               config_.nic));
    nic_down_.push_back(add_link("nic_down[" + std::to_string(n) + "]",
                                 config_.nic));
  }
  for (std::size_t r = 0; r < topology_.num_racks; ++r) {
    tor_up_.push_back(add_link("tor_up[" + std::to_string(r) + "]",
                               config_.tor));
    tor_down_.push_back(add_link("tor_down[" + std::to_string(r) + "]",
                                 config_.tor));
  }
  spine_ = add_link("spine", config_.spine);
}

std::size_t NetworkModel::add_link(std::string name,
                                   const LinkConfig& config) {
  DBLREP_CHECK_GT(config.bandwidth, 0.0);
  DBLREP_CHECK_GE(config.latency, 0.0);
  LinkState link;
  link.stats.name = std::move(name);
  link.stats.bandwidth = config.bandwidth;
  link.latency = config.latency;
  const std::size_t id = links_.size();
  links_.push_back(std::move(link));
  if (throttler_.has_value()) throttler_->add_link(id, config.bandwidth);
  return id;
}

std::vector<std::size_t> NetworkModel::route(cluster::NodeId from,
                                             cluster::NodeId to) const {
  const auto check_node = [&](cluster::NodeId node) {
    DBLREP_CHECK_GE(node, kClientEndpoint);
    DBLREP_CHECK_LT(node, static_cast<cluster::NodeId>(topology_.num_nodes));
  };
  check_node(from);
  check_node(to);
  if (from == to) return {};  // degenerate; delivered instantly

  if (from == kClientEndpoint) {
    // Client upload: enters at the spine, down through the target's rack.
    const std::size_t rack = static_cast<std::size_t>(topology_.rack_of(to));
    return {spine_, tor_down_[rack], nic_down_[static_cast<std::size_t>(to)]};
  }
  const std::size_t from_rack =
      static_cast<std::size_t>(topology_.rack_of(from));
  if (to == kClientEndpoint) {
    // Delivery to the off-cluster client: up and out through the spine.
    return {nic_up_[static_cast<std::size_t>(from)], tor_up_[from_rack],
            spine_};
  }
  const std::size_t to_rack = static_cast<std::size_t>(topology_.rack_of(to));
  if (from_rack == to_rack) {
    // The ToR switch itself is non-blocking: intra-rack transfers contend
    // only on the two NICs.
    return {nic_up_[static_cast<std::size_t>(from)],
            nic_down_[static_cast<std::size_t>(to)]};
  }
  return {nic_up_[static_cast<std::size_t>(from)], tor_up_[from_rack], spine_,
          tor_down_[to_rack], nic_down_[static_cast<std::size_t>(to)]};
}

void NetworkModel::start_transfer(const TransferRecord& t, sim::SimTime when,
                                  DeliveryCallback done) {
  DBLREP_CHECK_GE(t.bytes, 0.0);
  DBLREP_CHECK_GE(when, queue_->now());
  auto transfer = std::make_shared<ActiveTransfer>();
  transfer->record = t;
  transfer->route = route(t.from, t.to);
  transfer->done = std::move(done);

  // The transfer is in flight from injection on -- a repair transfer
  // waiting for tokens has entered the system even though no link holds
  // it yet.
  injected_bytes_ += t.bytes;
  in_flight_bytes_ += t.bytes;
  ++transfers_injected_;

  sim::SimTime enter = when;
  if (throttler_.has_value() && is_repair_class(t.cls) &&
      !transfer->route.empty()) {
    if (config_.qos.adaptive) {
      throttler_->observe_utilization(hottest_link_utilization(), when);
    }
    enter = throttler_->admit(transfer->route.front(), t.bytes, when);
  }
  if (transfer->route.empty()) {
    queue_->schedule_at(enter, [this, transfer] {
      deliver(transfer, queue_->now());
    });
    return;
  }
  queue_->schedule_at(enter, [this, transfer] { arrive(transfer, 0); });
}

void NetworkModel::arrive(const std::shared_ptr<ActiveTransfer>& transfer,
                          std::size_t hop) {
  const sim::SimTime now = queue_->now();
  LinkState& link = links_[transfer->route[hop]];
  const double bytes = transfer->record.bytes;

  link.stats.bytes_in += bytes;
  link.stats.held_bytes += bytes;
  ++link.stats.queue_depth;
  link.stats.max_queue_depth =
      std::max(link.stats.max_queue_depth, link.stats.queue_depth);
  ++link.stats.transfers;

  // FIFO store-and-forward: wait for the serializer, occupy it for the
  // transmission time, then propagate.
  const sim::SimTime start = std::max(now, link.busy_until);
  const double tx = bytes / link.stats.bandwidth;
  link.busy_until = start + tx;
  link.stats.busy_s += tx;
  link.window_busy_s += tx;
  link.stats.queue_delay_s.add(start - now);

  const sim::SimTime depart = start + tx + link.latency;
  const bool last_hop = hop + 1 == transfer->route.size();
  queue_->schedule_at(depart, [this, transfer, hop, last_hop, bytes] {
    LinkState& done_link = links_[transfer->route[hop]];
    done_link.stats.bytes_out += bytes;
    done_link.stats.held_bytes -= bytes;
    --done_link.stats.queue_depth;
    if (last_hop) {
      deliver(transfer, queue_->now());
    } else {
      arrive(transfer, hop + 1);
    }
  });
}

void NetworkModel::deliver(const std::shared_ptr<ActiveTransfer>& transfer,
                           sim::SimTime when) {
  const double bytes = transfer->record.bytes;
  delivered_bytes_ += bytes;
  in_flight_bytes_ -= bytes;
  delivered_class_bytes_[static_cast<std::size_t>(transfer->record.cls)] +=
      bytes;
  ++transfers_delivered_;
  if (transfer->done) transfer->done(when);
}

/// A dependency-chained operation in flight. Shared by the per-record
/// delivery callbacks; dropped when the last one fires.
struct FlowState {
  std::vector<TransferRecord> records;
  std::vector<std::size_t> pending;      // unmet dependency count
  std::vector<sim::SimTime> ready_time;  // max dep delivery time
  std::size_t remaining = 0;
  sim::SimTime last_delivery = 0.0;
  NetworkModel::DeliveryCallback done;
};

void NetworkModel::start_flow(std::vector<TransferRecord> records,
                              sim::SimTime when, DeliveryCallback done) {
  if (records.empty()) {
    queue_->schedule_at(when, [done = std::move(done), this] {
      if (done) done(queue_->now());
    });
    return;
  }
  // Dependency rule: record j waits for every *earlier* record i whose
  // destination node is j's source (an aggregator or relay can only forward
  // after its inputs arrive). Capture order is topological -- PlanExecutor
  // records a relay after the sends it folds -- so "earlier" keeps the
  // graph acyclic even when unrelated records share node ids. The client
  // endpoint never gates anything: uploads don't wait for deliveries.
  auto flow = std::make_shared<FlowState>();
  flow->records = std::move(records);
  const std::size_t n = flow->records.size();
  flow->pending.assign(n, 0);
  flow->ready_time.assign(n, when);
  flow->remaining = n;
  flow->done = std::move(done);

  for (std::size_t j = 0; j < n; ++j) {
    const cluster::NodeId source = flow->records[j].from;
    if (source == kClientEndpoint) continue;
    for (std::size_t i = 0; i < j; ++i) {
      if (flow->records[i].to == source) ++flow->pending[j];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (flow->pending[j] == 0) release_flow_record(flow, j);
  }
}

void NetworkModel::release_flow_record(const std::shared_ptr<FlowState>& flow,
                                       std::size_t j) {
  start_transfer(
      flow->records[j], flow->ready_time[j],
      [this, flow, j](sim::SimTime delivered) {
        flow->last_delivery = std::max(flow->last_delivery, delivered);
        const cluster::NodeId dest = flow->records[j].to;
        if (dest != kClientEndpoint) {
          for (std::size_t k = j + 1; k < flow->records.size(); ++k) {
            if (flow->records[k].from != dest) continue;
            flow->ready_time[k] = std::max(flow->ready_time[k], delivered);
            DBLREP_CHECK_GT(flow->pending[k], 0u);
            if (--flow->pending[k] == 0) release_flow_record(flow, k);
          }
        }
        if (--flow->remaining == 0 && flow->done) {
          flow->done(flow->last_delivery);
        }
      });
}

double NetworkModel::hottest_link_utilization() {
  const sim::SimTime now = queue_->now();
  const double dt = now - util_window_start_;
  double hottest = 0.0;
  for (auto& link : links_) {
    if (dt > 0.0) {
      hottest = std::max(hottest, std::min(1.0, link.window_busy_s / dt));
    }
    link.window_busy_s = 0.0;
  }
  util_window_start_ = now;
  return hottest;
}

}  // namespace dblrep::net
