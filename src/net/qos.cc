#include "net/qos.h"

#include <algorithm>

#include "common/check.h"

namespace dblrep::net {

TokenBucket::TokenBucket(double rate_bytes_per_sec, double burst_bytes)
    : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {
  DBLREP_CHECK_GT(rate_, 0.0);
  DBLREP_CHECK_GT(burst_, 0.0);
}

void TokenBucket::refill(sim::SimTime now) {
  DBLREP_CHECK_GE(now, last_);
  tokens_ = std::min(burst_, tokens_ + rate_ * (now - last_));
  last_ = now;
}

sim::SimTime TokenBucket::reserve(double bytes, sim::SimTime now) {
  DBLREP_CHECK_GE(bytes, 0.0);
  // A pending deficit grant leaves last_ in the future; later reservations
  // queue behind it (FIFO by construction), never before.
  const sim::SimTime at = std::max(now, last_);
  refill(at);
  tokens_ -= bytes;
  if (tokens_ >= 0.0) return at;
  // Deficit: the grant lands when refill pays it off; last_ advances to
  // the grant time with the bucket empty there.
  const sim::SimTime grant = at + (-tokens_) / rate_;
  tokens_ = 0.0;
  last_ = grant;
  return grant;
}

void TokenBucket::set_rate(double rate_bytes_per_sec, sim::SimTime now) {
  DBLREP_CHECK_GT(rate_bytes_per_sec, 0.0);
  if (now >= last_) refill(now);  // accrue at the old rate first
  rate_ = rate_bytes_per_sec;
}

QosThrottler::QosThrottler(const QosConfig& config)
    : config_(config), cluster_(config.cluster_rate, config.cluster_burst) {}

void QosThrottler::add_link(std::size_t link_id, double bandwidth) {
  DBLREP_CHECK_EQ(link_id, per_link_.size());
  per_link_.emplace_back(std::max(1.0, bandwidth * config_.link_fraction),
                         config_.link_burst);
}

sim::SimTime QosThrottler::admit(std::size_t entry_link, double bytes,
                                 sim::SimTime now) {
  DBLREP_CHECK_LT(entry_link, per_link_.size());
  const sim::SimTime cluster_grant = cluster_.reserve(bytes, now);
  return per_link_[entry_link].reserve(bytes, cluster_grant);
}

void QosThrottler::observe_utilization(double utilization, sim::SimTime now) {
  if (!config_.adaptive) return;
  const double u = std::clamp(utilization, 0.0, 1.0);
  const double scale = 1.0 + (config_.adaptive_boost - 1.0) * (1.0 - u);
  cluster_.set_rate(config_.cluster_rate * scale, now);
}

}  // namespace dblrep::net
