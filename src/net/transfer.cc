#include "net/transfer.h"

#include <utility>

namespace dblrep::net {

const char* to_string(TransferClass cls) {
  switch (cls) {
    case TransferClass::kClientWrite:
      return "client_write";
    case TransferClass::kClientRead:
      return "client_read";
    case TransferClass::kRepair:
      return "repair";
    case TransferClass::kScrub:
      return "scrub";
    case TransferClass::kRetier:
      return "retier";
  }
  return "unknown";
}

void TransferLog::record(cluster::NodeId from, cluster::NodeId to,
                         double bytes, TransferClass cls) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back({from, to, bytes, cls});
}

void TransferLog::mark() {
  std::lock_guard<std::mutex> lock(mu_);
  if (marks_.empty() ? records_.empty() : marks_.back() == records_.size()) {
    return;  // nothing captured since the previous boundary
  }
  marks_.push_back(records_.size());
}

std::vector<TransferRecord> TransferLog::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  marks_.clear();
  return std::exchange(records_, {});
}

std::vector<std::vector<TransferRecord>> TransferLog::drain_flows() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<TransferRecord>> flows;
  std::size_t begin = 0;
  marks_.push_back(records_.size());
  for (const std::size_t end : marks_) {
    if (end > begin) {
      flows.emplace_back(records_.begin() + static_cast<std::ptrdiff_t>(begin),
                         records_.begin() + static_cast<std::ptrdiff_t>(end));
    }
    begin = end;
  }
  marks_.clear();
  records_.clear();
  return flows;
}

std::size_t TransferLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void TransferLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  marks_.clear();
}

}  // namespace dblrep::net
