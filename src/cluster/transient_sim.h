// Transient-failure repair-traffic simulation.
//
// Section 1 of the paper motivates codes with inherent replication partly
// by repair economics: transient node failures "are the norm" in large
// systems (Ford et al.), and HDFS only re-replicates a node's blocks after
// a timeout. A code's repair-traffic multiplier -- how many blocks cross
// the network per block rebuilt -- then directly scales the bandwidth bill:
// repair-by-transfer polygon codes and mirrored schemes pay 1x, while a
// Reed-Solomon code pays k x (the "XORing elephants" problem).
//
// This discrete-event simulation (built on sim::EventQueue) models a
// cluster over a configurable horizon: nodes suffer transient outages of
// random duration; outages that outlive the repair timeout trigger a full
// node rebuild whose traffic is computed from the code's actual repair
// plans. Reported metrics: repair events, repair bytes, and node-down
// hours (degraded-read exposure).
#pragma once

#include <cstdint>

#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/code.h"

namespace dblrep::cluster {

struct TransientSimConfig {
  std::size_t num_nodes = 25;
  double horizon_hours = 24.0 * 365;   // one simulated year
  double outage_rate_per_hour = 1.0 / (24.0 * 30);  // ~1 outage/node/month
  double mean_outage_hours = 0.25;     // most outages are minutes
  double repair_timeout_hours = 0.25;  // HDFS-style grace period
  double node_data_bytes = 1.0e12;
  std::uint64_t seed = 1;
};

struct TransientSimReport {
  std::size_t outages = 0;
  std::size_t repairs_triggered = 0;   // outages that outlived the timeout
  double repair_network_bytes = 0;
  double node_down_hours = 0;          // integral of down-node count

  /// Fraction of outages that healed within the timeout (no repair cost).
  double masked_fraction() const {
    if (outages == 0) return 1.0;
    return 1.0 - static_cast<double>(repairs_triggered) /
                     static_cast<double>(outages);
  }
};

/// Average network blocks transferred per block rebuilt when one node of
/// `code` is repaired (1.0 for repair-by-transfer/replication/mirroring,
/// k for Reed-Solomon).
double repair_traffic_multiplier(const ec::CodeScheme& code);

/// Runs the simulation for one code.
TransientSimReport simulate_transient_failures(const ec::CodeScheme& code,
                                               const TransientSimConfig& config);

}  // namespace dblrep::cluster
