#include "cluster/transient_sim.h"

#include "sim/event_queue.h"

namespace dblrep::cluster {

double repair_traffic_multiplier(const ec::CodeScheme& code) {
  const auto plan = code.plan_node_repair(0);
  DBLREP_CHECK_MSG(plan.is_ok(), "single-node repair must always be plannable");
  const double rebuilt =
      static_cast<double>(code.layout().slots_on_node(0).size());
  // Units transferred per unit rebuilt: both scale by the sub-chunk count,
  // so the ratio is a byte ratio for sub-packetized schemes too.
  return static_cast<double>(plan->network_units()) / rebuilt;
}

TransientSimReport simulate_transient_failures(
    const ec::CodeScheme& code, const TransientSimConfig& config) {
  DBLREP_CHECK_GT(config.num_nodes, 0u);
  Rng rng(config.seed);
  sim::EventQueue queue;
  TransientSimReport report;

  const double multiplier = repair_traffic_multiplier(code);
  const double repair_bytes_per_node = config.node_data_bytes * multiplier;

  struct NodeState {
    bool down = false;
    std::uint64_t outage_id = 0;  // guards stale timeout events
  };
  std::vector<NodeState> nodes(config.num_nodes);

  // Per-node outage arrival processes. Each callback schedules the node's
  // next outage, the outage end, and the repair-timeout check.
  std::function<void(std::size_t)> schedule_next_outage =
      [&](std::size_t node) {
        const double gap = rng.exponential(config.outage_rate_per_hour);
        queue.schedule_after(gap, [&, node] {
          if (queue.now() > config.horizon_hours) return;
          if (nodes[node].down) {
            schedule_next_outage(node);  // already down; try again later
            return;
          }
          ++report.outages;
          nodes[node].down = true;
          const std::uint64_t outage = ++nodes[node].outage_id;
          const double duration = rng.exponential(1.0 / config.mean_outage_hours);
          report.node_down_hours += duration;
          queue.schedule_after(duration, [&, node] {
            nodes[node].down = false;
            schedule_next_outage(node);
          });
          // Timeout check: if the node is still in *this* outage when the
          // grace period expires, the NameNode starts re-replication.
          queue.schedule_after(config.repair_timeout_hours, [&, node, outage] {
            if (nodes[node].down && nodes[node].outage_id == outage) {
              ++report.repairs_triggered;
              report.repair_network_bytes += repair_bytes_per_node;
            }
          });
        });
      };
  for (std::size_t node = 0; node < config.num_nodes; ++node) {
    schedule_next_outage(node);
  }

  queue.run(config.horizon_hours);
  return report;
}

}  // namespace dblrep::cluster
