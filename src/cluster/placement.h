// Stripe placement policies: which cluster nodes host a stripe's group.
//
// The paper's testbeds are single-rack, but its heptagon-local code exists
// precisely so each local group can live in its own rack (Section 2.2) --
// and in real Hadoop clusters cross-rack bytes, not total bytes, are the
// scarce repair resource (Sathiamoorthy et al. 2013; Hu et al. 2017). The
// placement policy decides how much of that structure the data plane can
// exploit:
//
//  * kFlat          -- uniform random over live nodes, rack-blind. The
//                      paper's single-rack testbeds, and the baseline every
//                      rack-aware number is compared against.
//  * kRackAware     -- spreads the group round-robin across racks as evenly
//                      as the live set allows, so no rack concentrates a
//                      stripe (HDFS's classic block-placement goal).
//  * kGroupPerRack  -- maps code *locality groups* onto racks: for local
//                      polygon codes, each local lands wholly in its own
//                      rack and the global parity node in a third, so local
//                      repairs never cross racks. Codes without locality
//                      structure -- and topologies that cannot honor the
//                      constraint -- fall back to kRackAware.
//
// Policies are pure functions of (topology, code, live set, rng): MiniDfs
// calls them under its serial placement lock, so placement stays a
// deterministic function of the seed.
#pragma once

#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/rng.h"
#include "common/status.h"
#include "ec/code.h"

namespace dblrep::cluster {

enum class PlacementPolicy {
  kFlat,
  kRackAware,
  kGroupPerRack,
};

/// "flat" | "rack_aware" | "group_per_rack".
const char* to_string(PlacementPolicy policy);
Result<PlacementPolicy> parse_placement_policy(const std::string& name);

/// All policies benches and the CLI can sweep, in stable order.
std::vector<PlacementPolicy> all_placement_policies();

/// Picks the cluster nodes hosting one stripe of `code` from `live`
/// (distinct nodes, group[i] hosts code-local node i). Fails only when
/// `live` has fewer nodes than the code needs; a kGroupPerRack request
/// whose rack constraint is infeasible degrades gracefully to kRackAware
/// (which cannot fail given enough live nodes) rather than erroring.
Result<std::vector<NodeId>> place_stripe_group(PlacementPolicy policy,
                                               const Topology& topology,
                                               const ec::CodeScheme& code,
                                               const std::vector<NodeId>& live,
                                               Rng& rng);

}  // namespace dblrep::cluster
