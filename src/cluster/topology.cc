#include "cluster/topology.h"

namespace dblrep::cluster {

Topology setup1_topology() {
  Topology t;
  t.num_nodes = 25;
  t.num_racks = 1;
  // Laptop-class disks are slower than server drives.
  t.disk_bytes_per_sec = 60e6;
  t.nic_bytes_per_sec = 1.25e9;
  t.switch_bytes_per_sec = 4 * 1.25e9;
  return t;
}

Topology setup2_topology() {
  Topology t;
  t.num_nodes = 9;
  t.num_racks = 1;
  t.disk_bytes_per_sec = 120e6;
  t.nic_bytes_per_sec = 1.25e9;
  t.switch_bytes_per_sec = 4 * 1.25e9;
  return t;
}

}  // namespace dblrep::cluster
