// Cluster-level block catalog: which stripe's slots live on which node.
//
// The catalog is the NameNode's structural view (no bytes): every stripe
// registered here carries its code scheme and a placement group mapping
// code-local node indices to cluster nodes. The HDFS layer stores the
// actual block payloads; the repair engine and the MapReduce simulator
// both consult the catalog for replica locations.
//
// Stripe ids come from two sources: register_stripe draws from an internal
// counter (standalone use: one catalog, ids 0, 1, 2, ...), while
// register_stripe_at takes an explicit id -- the sharded NameNode assigns
// ids from one global counter so a stripe's id is independent of which
// metadata shard's catalog records it (and therefore of the shard count).
//
// Thread-safe: all methods synchronize on an internal shared mutex, and
// stripe records live in a node-based map so the references stripe() hands
// out stay valid across concurrent registrations. Unregistration is
// coordinated through repair leases: a repair pass pins its stripe with
// begin_repair() before touching it, and unregister_stripe() announces the
// deletion (so new repairs abort cleanly) and then drain-waits for live
// leases before tombstoning the record. A stripe() reference held without
// a lease is still invalidated by a concurrent unregister_stripe().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "cluster/topology.h"
#include "ec/code.h"

namespace dblrep::cluster {

using StripeId = std::size_t;

/// Globally unique block-slot address.
struct SlotAddress {
  StripeId stripe = 0;
  std::size_t slot = 0;  // code-local slot index

  auto operator<=>(const SlotAddress&) const = default;
};

struct StripeInfo {
  const ec::CodeScheme* code = nullptr;  // not owned
  std::vector<NodeId> group;             // code node i -> cluster node
  /// A stripe is sealed once all its blocks are durably stored. Repair and
  /// scrub skip unsealed stripes: their holes are writes in flight (or the
  /// debris of a failed write), not failures to recover.
  bool sealed = true;
};

class BlockCatalog {
 public:
  explicit BlockCatalog(const Topology& topology) : topology_(&topology) {}

  /// Registers a stripe placed on `group` (one cluster node per code node,
  /// all distinct). Returns its id, drawn from the internal counter. Pass
  /// sealed=false for a stripe whose bytes are still being written, then
  /// seal_stripe() when they land.
  Result<StripeId> register_stripe(const ec::CodeScheme& code,
                                   std::vector<NodeId> group,
                                   bool sealed = true);

  /// Registers a stripe under a caller-assigned id (the sharded NameNode's
  /// global id space, and snapshot/journal replay). The id must not be in
  /// use -- live or tombstoned -- in this catalog.
  Status register_stripe_at(StripeId id, const ec::CodeScheme& code,
                            std::vector<NodeId> group, bool sealed);

  /// Marks a stripe's bytes durable (visible to repair and scrub).
  Status seal_stripe(StripeId id);
  bool is_sealed(StripeId id) const;

  /// Removes a stripe (file deletion); its id becomes a tombstone and its
  /// slots disappear from every node's listing. Blocks until every repair
  /// lease on the stripe (begin_repair) has been released; repairs that
  /// arrive after the call has announced itself abort with ABORTED instead
  /// of racing the deletion.
  Status unregister_stripe(StripeId id);

  /// Pins a stripe against deletion for the duration of a repair pass.
  /// Returns NOT_FOUND if the stripe is unknown or already tombstoned, and
  /// ABORTED if a deletion has announced itself and is draining leases --
  /// repair callers treat both as "skip this stripe cleanly". On OK the
  /// caller must balance with end_repair(); leases nest (refcounted).
  Status begin_repair(StripeId id);
  void end_repair(StripeId id);

  /// Ids of live (non-tombstoned) stripes. num_stripes counts live only.
  bool is_registered(StripeId id) const;
  std::size_t num_stripes() const;
  const StripeInfo& stripe(StripeId id) const;

  /// Live stripe ids in ascending order (snapshot / fingerprint walks).
  std::vector<StripeId> live_stripe_ids() const;

  /// Cluster node hosting a slot.
  NodeId node_of(SlotAddress address) const;

  /// Cluster nodes holding replicas of (stripe, symbol), in slot order.
  std::vector<NodeId> replica_nodes(StripeId id, std::size_t symbol) const;

  /// All slots a cluster node hosts (across stripes), in address order.
  /// Returns a snapshot by value: the per-node listings mutate under
  /// concurrent registration.
  std::vector<SlotAddress> slots_on_node(NodeId node) const;

  /// Code-local failed set for a stripe, given cluster-level down nodes.
  std::set<ec::NodeIndex> failed_in_stripe(
      StripeId id, const std::set<NodeId>& down_nodes) const;

  /// Stripes that have at least one slot on `node`, ascending.
  std::vector<StripeId> stripes_on_node(NodeId node) const;

 private:
  Status register_locked(StripeId id, const ec::CodeScheme& code,
                         std::vector<NodeId> group, bool sealed);
  const StripeInfo& stripe_unlocked(StripeId id) const;
  NodeId node_of_unlocked(SlotAddress address) const;

  const Topology* topology_;
  mutable std::shared_mutex mu_;
  /// Live stripes and tombstones (code == nullptr); node-based map so
  /// references stay stable across registration, ids stable forever.
  std::map<StripeId, StripeInfo> stripes_;
  StripeId next_id_ = 0;  // register_stripe draws; register_stripe_at bumps
  /// Ordered per-node slot sets: enumeration order is (stripe, slot) --
  /// identical to registration order in the single-catalog case (ids are
  /// assigned monotonically) and deterministic under sharding.
  std::map<NodeId, std::set<SlotAddress>> node_slots_;
  /// Repair-lease state lives under its own mutex: unregister_stripe must
  /// be able to drain-wait on leases *before* taking mu_, so a leased
  /// repair can keep reading catalog state (which needs mu_ shared) while
  /// the deleter waits.
  mutable std::mutex lease_mu_;
  std::condition_variable lease_cv_;
  std::map<StripeId, std::size_t> repair_leases_;
  std::set<StripeId> pending_delete_;
};

}  // namespace dblrep::cluster
