// Cluster-level block catalog: which stripe's slots live on which node.
//
// The catalog is the NameNode's structural view (no bytes): every stripe
// registered here carries its code scheme and a placement group mapping
// code-local node indices to cluster nodes. The HDFS layer stores the
// actual block payloads; the repair engine and the MapReduce simulator
// both consult the catalog for replica locations.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"
#include "cluster/topology.h"
#include "ec/code.h"

namespace dblrep::cluster {

using StripeId = std::size_t;

/// Globally unique block-slot address.
struct SlotAddress {
  StripeId stripe = 0;
  std::size_t slot = 0;  // code-local slot index

  auto operator<=>(const SlotAddress&) const = default;
};

struct StripeInfo {
  const ec::CodeScheme* code = nullptr;  // not owned
  std::vector<NodeId> group;             // code node i -> cluster node
};

class BlockCatalog {
 public:
  explicit BlockCatalog(const Topology& topology) : topology_(&topology) {}

  /// Registers a stripe placed on `group` (one cluster node per code node,
  /// all distinct). Returns its id.
  Result<StripeId> register_stripe(const ec::CodeScheme& code,
                                   std::vector<NodeId> group);

  /// Removes a stripe (file deletion); its id becomes a tombstone and its
  /// slots disappear from every node's listing.
  Status unregister_stripe(StripeId id);

  /// Ids of live (non-tombstoned) stripes. num_stripes counts live only.
  bool is_registered(StripeId id) const;
  std::size_t num_stripes() const;
  const StripeInfo& stripe(StripeId id) const;

  /// Cluster node hosting a slot.
  NodeId node_of(SlotAddress address) const;

  /// Cluster nodes holding replicas of (stripe, symbol), in slot order.
  std::vector<NodeId> replica_nodes(StripeId id, std::size_t symbol) const;

  /// All slots a cluster node hosts (across stripes).
  const std::vector<SlotAddress>& slots_on_node(NodeId node) const;

  /// Code-local failed set for a stripe, given cluster-level down nodes.
  std::set<ec::NodeIndex> failed_in_stripe(
      StripeId id, const std::set<NodeId>& down_nodes) const;

  /// Stripes that have at least one slot on `node`.
  std::vector<StripeId> stripes_on_node(NodeId node) const;

 private:
  const Topology* topology_;
  std::vector<StripeInfo> stripes_;
  std::map<NodeId, std::vector<SlotAddress>> node_slots_;
};

}  // namespace dblrep::cluster
