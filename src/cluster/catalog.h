// Cluster-level block catalog: which stripe's slots live on which node.
//
// The catalog is the NameNode's structural view (no bytes): every stripe
// registered here carries its code scheme and a placement group mapping
// code-local node indices to cluster nodes. The HDFS layer stores the
// actual block payloads; the repair engine and the MapReduce simulator
// both consult the catalog for replica locations.
//
// Thread-safe: all methods synchronize on an internal shared mutex, and
// stripe records live in a deque so the references stripe() hands out stay
// valid across concurrent registrations. The one caveat is unregistration:
// a reference obtained from stripe() is invalidated by unregister_stripe()
// of that same id, so callers must not delete a stripe while another
// thread still operates on it (MiniDfs enforces this with its per-path
// namespace locks).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "cluster/topology.h"
#include "ec/code.h"

namespace dblrep::cluster {

using StripeId = std::size_t;

/// Globally unique block-slot address.
struct SlotAddress {
  StripeId stripe = 0;
  std::size_t slot = 0;  // code-local slot index

  auto operator<=>(const SlotAddress&) const = default;
};

struct StripeInfo {
  const ec::CodeScheme* code = nullptr;  // not owned
  std::vector<NodeId> group;             // code node i -> cluster node
  /// A stripe is sealed once all its blocks are durably stored. Repair and
  /// scrub skip unsealed stripes: their holes are writes in flight (or the
  /// debris of a failed write), not failures to recover.
  bool sealed = true;
};

class BlockCatalog {
 public:
  explicit BlockCatalog(const Topology& topology) : topology_(&topology) {}

  /// Registers a stripe placed on `group` (one cluster node per code node,
  /// all distinct). Returns its id. Pass sealed=false for a stripe whose
  /// bytes are still being written, then seal_stripe() when they land.
  Result<StripeId> register_stripe(const ec::CodeScheme& code,
                                   std::vector<NodeId> group,
                                   bool sealed = true);

  /// Marks a stripe's bytes durable (visible to repair and scrub).
  Status seal_stripe(StripeId id);
  bool is_sealed(StripeId id) const;

  /// Removes a stripe (file deletion); its id becomes a tombstone and its
  /// slots disappear from every node's listing.
  Status unregister_stripe(StripeId id);

  /// Ids of live (non-tombstoned) stripes. num_stripes counts live only.
  bool is_registered(StripeId id) const;
  std::size_t num_stripes() const;
  const StripeInfo& stripe(StripeId id) const;

  /// Cluster node hosting a slot.
  NodeId node_of(SlotAddress address) const;

  /// Cluster nodes holding replicas of (stripe, symbol), in slot order.
  std::vector<NodeId> replica_nodes(StripeId id, std::size_t symbol) const;

  /// All slots a cluster node hosts (across stripes). Returns a snapshot
  /// by value: the per-node listings mutate under concurrent registration.
  std::vector<SlotAddress> slots_on_node(NodeId node) const;

  /// Code-local failed set for a stripe, given cluster-level down nodes.
  std::set<ec::NodeIndex> failed_in_stripe(
      StripeId id, const std::set<NodeId>& down_nodes) const;

  /// Stripes that have at least one slot on `node`.
  std::vector<StripeId> stripes_on_node(NodeId node) const;

 private:
  const StripeInfo& stripe_unlocked(StripeId id) const;
  NodeId node_of_unlocked(SlotAddress address) const;

  const Topology* topology_;
  mutable std::shared_mutex mu_;
  std::deque<StripeInfo> stripes_;  // deque: stable refs under push_back
  std::map<NodeId, std::vector<SlotAddress>> node_slots_;
};

}  // namespace dblrep::cluster
