#include "cluster/placement.h"

#include <algorithm>

#include "ec/local_polygon.h"

namespace dblrep::cluster {

namespace {

/// Live nodes bucketed by rack, each bucket in live order.
std::vector<std::vector<NodeId>> bucket_by_rack(
    const Topology& topology, const std::vector<NodeId>& live) {
  std::vector<std::vector<NodeId>> by_rack(topology.num_racks);
  for (NodeId node : live) {
    by_rack[static_cast<std::size_t>(topology.rack_of(node))].push_back(node);
  }
  return by_rack;
}

std::vector<NodeId> place_flat(const std::vector<NodeId>& live, std::size_t n,
                               Rng& rng) {
  std::vector<NodeId> group;
  group.reserve(n);
  for (auto index : rng.sample_without_replacement(live.size(), n)) {
    group.push_back(live[index]);
  }
  return group;
}

/// Round-robin over shuffled racks: every rack gives up one (shuffled) node
/// per cycle, so the group spans min(num_racks, n) racks and no rack holds
/// more than ceil(n / racks_with_nodes) of it.
std::vector<NodeId> place_rack_aware(const Topology& topology,
                                     const std::vector<NodeId>& live,
                                     std::size_t n, Rng& rng) {
  auto by_rack = bucket_by_rack(topology, live);
  std::vector<std::size_t> rack_order;
  for (std::size_t r = 0; r < by_rack.size(); ++r) {
    if (!by_rack[r].empty()) rack_order.push_back(r);
  }
  rng.shuffle(rack_order);
  for (std::size_t r : rack_order) rng.shuffle(by_rack[r]);

  std::vector<NodeId> group;
  group.reserve(n);
  while (group.size() < n) {
    for (std::size_t r : rack_order) {
      if (group.size() == n) break;
      auto& bucket = by_rack[r];
      if (bucket.empty()) continue;
      group.push_back(bucket.back());
      bucket.pop_back();
    }
  }
  return group;
}

/// Section 2.2 placement for local polygon codes: each local wholly in its
/// own rack, the global parity node in a third. Returns empty when the
/// topology cannot honor the constraint (fewer than 3 racks, or not enough
/// live nodes per rack); the caller then degrades to rack-aware.
std::vector<NodeId> place_local_groups_per_rack(
    const ec::LocalPolygonCode& code, const Topology& topology,
    const std::vector<NodeId>& live, Rng& rng) {
  if (topology.num_racks < 3) return {};
  auto by_rack = bucket_by_rack(topology, live);
  const auto n = static_cast<std::size_t>(code.n());
  // Pick two racks that can host a full local each, and a third (distinct)
  // for the global node; randomize the choice among feasible racks.
  std::vector<std::size_t> rack_order(topology.num_racks);
  for (std::size_t r = 0; r < rack_order.size(); ++r) rack_order[r] = r;
  rng.shuffle(rack_order);
  std::vector<std::size_t> locals;
  std::size_t global_rack = topology.num_racks;
  for (std::size_t rack : rack_order) {
    if (locals.size() < 2 && by_rack[rack].size() >= n) {
      locals.push_back(rack);
    } else if (global_rack == topology.num_racks && !by_rack[rack].empty()) {
      global_rack = rack;
    }
  }
  if (locals.size() < 2 || global_rack == topology.num_racks) return {};

  std::vector<NodeId> group;
  group.reserve(code.num_nodes());
  for (std::size_t rack : locals) {
    auto& pool = by_rack[rack];
    for (auto index : rng.sample_without_replacement(pool.size(), n)) {
      group.push_back(pool[index]);
    }
  }
  auto& pool = by_rack[global_rack];
  group.push_back(pool[rng.next_below(pool.size())]);
  return group;
}

}  // namespace

const char* to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFlat:
      return "flat";
    case PlacementPolicy::kRackAware:
      return "rack_aware";
    case PlacementPolicy::kGroupPerRack:
      return "group_per_rack";
  }
  return "unknown";
}

Result<PlacementPolicy> parse_placement_policy(const std::string& name) {
  if (name == "flat") return PlacementPolicy::kFlat;
  if (name == "rack_aware") return PlacementPolicy::kRackAware;
  if (name == "group_per_rack") return PlacementPolicy::kGroupPerRack;
  return invalid_argument_error("unknown placement policy: " + name);
}

std::vector<PlacementPolicy> all_placement_policies() {
  return {PlacementPolicy::kFlat, PlacementPolicy::kRackAware,
          PlacementPolicy::kGroupPerRack};
}

Result<std::vector<NodeId>> place_stripe_group(PlacementPolicy policy,
                                               const Topology& topology,
                                               const ec::CodeScheme& code,
                                               const std::vector<NodeId>& live,
                                               Rng& rng) {
  const std::size_t n = code.num_nodes();
  if (live.size() < n) {
    return resource_exhausted_error("not enough live nodes for " +
                                    code.params().name);
  }
  switch (policy) {
    case PlacementPolicy::kFlat:
      return place_flat(live, n, rng);
    case PlacementPolicy::kGroupPerRack:
      if (const auto* local =
              dynamic_cast<const ec::LocalPolygonCode*>(&code)) {
        auto group = place_local_groups_per_rack(*local, topology, live, rng);
        if (!group.empty()) return group;
      }
      // Codes without locality structure (and infeasible topologies)
      // degrade to rack-aware spreading.
      [[fallthrough]];
    case PlacementPolicy::kRackAware:
      return place_rack_aware(topology, live, n, rng);
  }
  return invalid_argument_error("unknown placement policy");
}

}  // namespace dblrep::cluster
