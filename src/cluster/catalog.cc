#include "cluster/catalog.h"

#include <algorithm>
#include <mutex>

namespace dblrep::cluster {

Status BlockCatalog::register_locked(StripeId id, const ec::CodeScheme& code,
                                     std::vector<NodeId> group, bool sealed) {
  if (group.size() != code.num_nodes()) {
    return invalid_argument_error("placement group size != code length");
  }
  std::set<NodeId> unique(group.begin(), group.end());
  if (unique.size() != group.size()) {
    return invalid_argument_error("placement group has duplicate nodes");
  }
  for (NodeId node : group) {
    if (node < 0 || static_cast<std::size_t>(node) >= topology_->num_nodes) {
      return invalid_argument_error("placement group node out of range");
    }
  }
  if (stripes_.contains(id)) {
    return already_exists_error("stripe id " + std::to_string(id) +
                                " already in use");
  }
  const auto [it, inserted] = stripes_.emplace(id, StripeInfo{&code, std::move(group), sealed});
  (void)inserted;
  const StripeInfo& info = it->second;
  for (std::size_t slot = 0; slot < code.layout().num_slots(); ++slot) {
    const NodeId node = info.group[static_cast<std::size_t>(
        code.layout().node_of_slot(slot))];
    node_slots_[node].insert({id, slot});
  }
  next_id_ = std::max(next_id_, id + 1);
  return Status::ok();
}

Result<StripeId> BlockCatalog::register_stripe(const ec::CodeScheme& code,
                                               std::vector<NodeId> group,
                                               bool sealed) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const StripeId id = next_id_;
  DBLREP_RETURN_IF_ERROR(register_locked(id, code, std::move(group), sealed));
  return id;
}

Status BlockCatalog::register_stripe_at(StripeId id,
                                        const ec::CodeScheme& code,
                                        std::vector<NodeId> group,
                                        bool sealed) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return register_locked(id, code, std::move(group), sealed);
}

Status BlockCatalog::unregister_stripe(StripeId id) {
  // Announce the deletion, then drain repair leases *before* taking mu_:
  // a leased repair keeps reading catalog state (mu_ shared) while we
  // wait, so waiting under mu_ exclusive would deadlock. New repairs see
  // pending_delete_ and abort instead of joining the drain.
  {
    std::unique_lock<std::mutex> lease_lock(lease_mu_);
    pending_delete_.insert(id);
    lease_cv_.wait(lease_lock,
                   [&] { return !repair_leases_.contains(id); });
  }
  Status removed = Status::ok();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const auto it = stripes_.find(id);
    if (it == stripes_.end() || it->second.code == nullptr) {
      removed = not_found_error("no such stripe");
    } else {
      const StripeInfo& info = it->second;
      for (std::size_t slot = 0; slot < info.code->layout().num_slots();
           ++slot) {
        const NodeId node = info.group[static_cast<std::size_t>(
            info.code->layout().node_of_slot(slot))];
        node_slots_[node].erase({id, slot});
      }
      it->second.code = nullptr;  // tombstone; ids stay stable
      it->second.group.clear();
    }
  }
  {
    std::lock_guard<std::mutex> lease_lock(lease_mu_);
    pending_delete_.erase(id);
  }
  return removed;
}

Status BlockCatalog::begin_repair(StripeId id) {
  // Take the lease first, then check liveness: unregister_stripe always
  // announces under lease_mu_ before tombstoning, so once we hold a lease
  // with no pending delete, the stripe cannot vanish until end_repair.
  {
    std::lock_guard<std::mutex> lease_lock(lease_mu_);
    if (pending_delete_.contains(id)) {
      return aborted_error("stripe " + std::to_string(id) +
                           " is being deleted");
    }
    ++repair_leases_[id];
  }
  if (!is_registered(id)) {
    end_repair(id);
    return not_found_error("no such stripe");
  }
  return Status::ok();
}

void BlockCatalog::end_repair(StripeId id) {
  std::lock_guard<std::mutex> lease_lock(lease_mu_);
  const auto it = repair_leases_.find(id);
  DBLREP_CHECK_MSG(it != repair_leases_.end() && it->second > 0,
                   "end_repair without matching begin_repair");
  if (--it->second == 0) {
    repair_leases_.erase(it);
    lease_cv_.notify_all();
  }
}

Status BlockCatalog::seal_stripe(StripeId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = stripes_.find(id);
  if (it == stripes_.end() || it->second.code == nullptr) {
    return not_found_error("no such stripe");
  }
  it->second.sealed = true;
  return Status::ok();
}

bool BlockCatalog::is_sealed(StripeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = stripes_.find(id);
  return it != stripes_.end() && it->second.code != nullptr &&
         it->second.sealed;
}

bool BlockCatalog::is_registered(StripeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = stripes_.find(id);
  return it != stripes_.end() && it->second.code != nullptr;
}

std::size_t BlockCatalog::num_stripes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t live = 0;
  for (const auto& [id, info] : stripes_) {
    if (info.code != nullptr) ++live;
  }
  return live;
}

std::vector<StripeId> BlockCatalog::live_stripe_ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<StripeId> ids;
  ids.reserve(stripes_.size());
  for (const auto& [id, info] : stripes_) {
    if (info.code != nullptr) ids.push_back(id);
  }
  return ids;
}

const StripeInfo& BlockCatalog::stripe_unlocked(StripeId id) const {
  const auto it = stripes_.find(id);
  DBLREP_CHECK_MSG(it != stripes_.end(), "stripe " << id << " unknown");
  DBLREP_CHECK_MSG(it->second.code != nullptr, "stripe " << id << " deleted");
  return it->second;
}

const StripeInfo& BlockCatalog::stripe(StripeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return stripe_unlocked(id);
}

NodeId BlockCatalog::node_of_unlocked(SlotAddress address) const {
  const StripeInfo& info = stripe_unlocked(address.stripe);
  return info.group[static_cast<std::size_t>(
      info.code->layout().node_of_slot(address.slot))];
}

NodeId BlockCatalog::node_of(SlotAddress address) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return node_of_unlocked(address);
}

std::vector<NodeId> BlockCatalog::replica_nodes(StripeId id,
                                                std::size_t symbol) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const StripeInfo& info = stripe_unlocked(id);
  std::vector<NodeId> nodes;
  for (std::size_t slot : info.code->layout().slots_of_symbol(symbol)) {
    nodes.push_back(node_of_unlocked({id, slot}));
  }
  return nodes;
}

std::vector<SlotAddress> BlockCatalog::slots_on_node(NodeId node) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = node_slots_.find(node);
  if (it == node_slots_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::set<ec::NodeIndex> BlockCatalog::failed_in_stripe(
    StripeId id, const std::set<NodeId>& down_nodes) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const StripeInfo& info = stripe_unlocked(id);
  std::set<ec::NodeIndex> failed;
  for (std::size_t i = 0; i < info.group.size(); ++i) {
    if (down_nodes.contains(info.group[i])) {
      failed.insert(static_cast<ec::NodeIndex>(i));
    }
  }
  return failed;
}

std::vector<StripeId> BlockCatalog::stripes_on_node(NodeId node) const {
  std::vector<StripeId> out;
  for (const auto& address : slots_on_node(node)) {
    if (out.empty() || out.back() != address.stripe) {
      out.push_back(address.stripe);
    }
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace dblrep::cluster
