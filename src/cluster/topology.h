// Physical cluster model: nodes, racks, and link/disk service rates.
//
// Mirrors the paper's two testbeds (Section 4): a single-rack private
// 10 Gbps LAN; set-up 1 has 25 dual-core data nodes with 128 MB blocks,
// set-up 2 has 9 four-core servers with 512 MB blocks. Rack awareness
// matters only for the heptagon-local code (its three groups map to three
// racks), so the topology supports multiple racks but defaults to one.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace dblrep::cluster {

using NodeId = int;

struct Topology {
  std::size_t num_nodes = 25;
  std::size_t num_racks = 1;

  /// Sustained sequential disk read rate per node (bytes/s). Commodity
  /// 2014-era SATA: ~100 MB/s.
  double disk_bytes_per_sec = 100e6;

  /// Per-node NIC line rate (bytes/s); 10 Gbps in both paper set-ups.
  double nic_bytes_per_sec = 1.25e9;

  /// Aggregate switch capacity (bytes/s) shared by all cross-node flows.
  double switch_bytes_per_sec = 4 * 1.25e9;

  /// Extra multiplicative cost for cross-rack transfers (1 = free).
  double cross_rack_penalty = 1.0;

  /// Round-robin rack assignment.
  int rack_of(NodeId node) const {
    DBLREP_CHECK_GE(node, 0);
    DBLREP_CHECK_LT(static_cast<std::size_t>(node), num_nodes);
    return static_cast<int>(static_cast<std::size_t>(node) % num_racks);
  }

  bool same_rack(NodeId a, NodeId b) const { return rack_of(a) == rack_of(b); }
};

/// The paper's experimental set-up 1: 25 data nodes, 2 map + 1 reduce
/// slots, 128 MB blocks, dual-core IBM laptops on 10 Gbps Ethernet.
Topology setup1_topology();

/// Set-up 2: 9 data nodes, 4 map + 2 reduce slots, 512 MB blocks,
/// 4-core servers.
Topology setup2_topology();

}  // namespace dblrep::cluster
