#include "cluster/traffic.h"

#include "common/check.h"

namespace dblrep::cluster {

namespace {

/// Relaxed CAS-loop accumulation. Relaxed is enough: readers only consume
/// the totals after the recording threads have been joined (or between
/// operations), and the meter carries no other data the stores would need
/// to publish.
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

TrafficMeter::TrafficMeter(const Topology& topology)
    : topology_(&topology),
      sent_(topology.num_nodes),
      received_(topology.num_nodes) {}

void TrafficMeter::record(NodeId from, NodeId to, double bytes) {
  DBLREP_CHECK_GE(bytes, 0.0);
  if (from == to) return;
  atomic_add(total_, bytes);
  if (topology_->same_rack(from, to)) {
    atomic_add(intra_rack_, bytes);
  } else {
    atomic_add(cross_rack_, bytes);
  }
  atomic_add(sent_[static_cast<std::size_t>(from)], bytes);
  atomic_add(received_[static_cast<std::size_t>(to)], bytes);
}

void TrafficMeter::record_to_client(NodeId from, double bytes) {
  DBLREP_CHECK_GE(bytes, 0.0);
  atomic_add(total_, bytes);
  atomic_add(client_, bytes);
  atomic_add(sent_[static_cast<std::size_t>(from)], bytes);
}

double TrafficMeter::node_sent_bytes(NodeId node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), sent_.size());
  return sent_[static_cast<std::size_t>(node)].load(std::memory_order_relaxed);
}

double TrafficMeter::node_received_bytes(NodeId node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), received_.size());
  return received_[static_cast<std::size_t>(node)].load(
      std::memory_order_relaxed);
}

void TrafficMeter::reset() {
  total_.store(0.0, std::memory_order_relaxed);
  intra_rack_.store(0.0, std::memory_order_relaxed);
  cross_rack_.store(0.0, std::memory_order_relaxed);
  client_.store(0.0, std::memory_order_relaxed);
  for (auto& v : sent_) v.store(0.0, std::memory_order_relaxed);
  for (auto& v : received_) v.store(0.0, std::memory_order_relaxed);
}

}  // namespace dblrep::cluster
