#include "cluster/traffic.h"

namespace dblrep::cluster {

TrafficMeter::TrafficMeter(const Topology& topology)
    : topology_(&topology),
      sent_(topology.num_nodes, 0.0),
      received_(topology.num_nodes, 0.0) {}

void TrafficMeter::record(NodeId from, NodeId to, double bytes) {
  DBLREP_CHECK_GE(bytes, 0.0);
  if (from == to) return;
  total_ += bytes;
  if (!topology_->same_rack(from, to)) cross_rack_ += bytes;
  sent_[static_cast<std::size_t>(from)] += bytes;
  received_[static_cast<std::size_t>(to)] += bytes;
}

void TrafficMeter::record_to_client(NodeId from, double bytes) {
  DBLREP_CHECK_GE(bytes, 0.0);
  total_ += bytes;
  sent_[static_cast<std::size_t>(from)] += bytes;
}

double TrafficMeter::node_sent_bytes(NodeId node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), sent_.size());
  return sent_[static_cast<std::size_t>(node)];
}

double TrafficMeter::node_received_bytes(NodeId node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), received_.size());
  return received_[static_cast<std::size_t>(node)];
}

void TrafficMeter::reset() {
  total_ = 0;
  cross_rack_ = 0;
  std::fill(sent_.begin(), sent_.end(), 0.0);
  std::fill(received_.begin(), received_.end(), 0.0);
}

}  // namespace dblrep::cluster
