// Network traffic accounting -- the middle panel of Fig. 4 and left panel
// of Fig. 5 report "network traffic (GB) during job execution".
//
// Concurrency-safe: parallel repairs and client operations account bytes
// from many threads, so the accumulators are atomic doubles updated with a
// CAS loop (portable across libstdc++ versions without fetch_add(double)).
// Every recorded value is a whole number of bytes well below 2^53, so the
// sums are exact and independent of accumulation order -- parallel and
// serial executions of the same work report bit-identical totals.
//
// Every recorded byte lands in exactly one of three buckets -- intra-rack,
// cross-rack, or client -- each its own accumulator, while the grand total
// is accumulated independently. Conservation (intra + cross + client ==
// total, exactly) is therefore a checkable invariant of the accounting
// rather than a definition; the chaos harness asserts it after every event.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "cluster/topology.h"

namespace dblrep::cluster {

class TrafficMeter {
 public:
  explicit TrafficMeter(const Topology& topology);

  TrafficMeter(const TrafficMeter&) = delete;
  TrafficMeter& operator=(const TrafficMeter&) = delete;

  /// Records `bytes` moving from `from` to `to`. Self-transfers (local
  /// reads) are ignored -- they never touch the network.
  void record(NodeId from, NodeId to, double bytes);

  /// Records bytes delivered to an off-cluster client (always network).
  void record_to_client(NodeId from, double bytes);

  double total_bytes() const { return total_.load(std::memory_order_relaxed); }
  double cross_rack_bytes() const {
    return cross_rack_.load(std::memory_order_relaxed);
  }
  /// Bytes exchanged with off-cluster clients in either direction (write
  /// uploads, read/degraded-read deliveries, scrub-heal rewrites). Neither
  /// intra- nor cross-rack: they leave the cluster regardless of topology.
  double client_bytes() const {
    return client_.load(std::memory_order_relaxed);
  }
  /// Node-to-node bytes that stayed inside one rack. Independently
  /// accumulated (not derived), so intra + cross + client == total is a
  /// meaningful conservation check.
  double intra_rack_bytes() const {
    return intra_rack_.load(std::memory_order_relaxed);
  }
  double node_sent_bytes(NodeId node) const;
  double node_received_bytes(NodeId node) const;

  void reset();

 private:
  const Topology* topology_;
  std::atomic<double> total_{0.0};
  std::atomic<double> intra_rack_{0.0};
  std::atomic<double> cross_rack_{0.0};
  std::atomic<double> client_{0.0};
  std::vector<std::atomic<double>> sent_;
  std::vector<std::atomic<double>> received_;
};

}  // namespace dblrep::cluster
