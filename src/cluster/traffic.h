// Network traffic accounting -- the middle panel of Fig. 4 and left panel
// of Fig. 5 report "network traffic (GB) during job execution".
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/topology.h"

namespace dblrep::cluster {

class TrafficMeter {
 public:
  explicit TrafficMeter(const Topology& topology);

  /// Records `bytes` moving from `from` to `to`. Self-transfers (local
  /// reads) are ignored -- they never touch the network.
  void record(NodeId from, NodeId to, double bytes);

  /// Records bytes delivered to an off-cluster client (always network).
  void record_to_client(NodeId from, double bytes);

  double total_bytes() const { return total_; }
  double cross_rack_bytes() const { return cross_rack_; }
  double node_sent_bytes(NodeId node) const;
  double node_received_bytes(NodeId node) const;

  void reset();

 private:
  const Topology* topology_;
  double total_ = 0;
  double cross_rack_ = 0;
  std::vector<double> sent_;
  std::vector<double> received_;
};

}  // namespace dblrep::cluster
