#include "common/status.h"

namespace dblrep {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status not_found_error(std::string message) {
  return {StatusCode::kNotFound, std::move(message)};
}
Status unavailable_error(std::string message) {
  return {StatusCode::kUnavailable, std::move(message)};
}
Status data_loss_error(std::string message) {
  return {StatusCode::kDataLoss, std::move(message)};
}
Status invalid_argument_error(std::string message) {
  return {StatusCode::kInvalidArgument, std::move(message)};
}
Status already_exists_error(std::string message) {
  return {StatusCode::kAlreadyExists, std::move(message)};
}
Status failed_precondition_error(std::string message) {
  return {StatusCode::kFailedPrecondition, std::move(message)};
}
Status corruption_error(std::string message) {
  return {StatusCode::kCorruption, std::move(message)};
}
Status resource_exhausted_error(std::string message) {
  return {StatusCode::kResourceExhausted, std::move(message)};
}
Status internal_error(std::string message) {
  return {StatusCode::kInternal, std::move(message)};
}
Status aborted_error(std::string message) {
  return {StatusCode::kAborted, std::move(message)};
}

}  // namespace dblrep
