#include "common/check.h"

namespace dblrep::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "contract violation at " << file << ":" << line << ": CHECK(" << expr
     << ")";
  if (!msg.empty()) os << " -- " << msg;
  throw ContractViolation(os.str());
}

}  // namespace dblrep::detail
