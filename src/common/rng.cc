#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace dblrep {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DBLREP_CHECK_GT(bound, 0u);
  // Lemire-style rejection: retry while in the biased zone.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  // 53 high bits -> [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DBLREP_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform(double lo, double hi) {
  DBLREP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double rate) {
  DBLREP_CHECK_GT(rate, 0.0);
  // Inverse CDF; 1 - U avoids log(0).
  return -std::log1p(-next_double()) / rate;
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  DBLREP_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector: O(n) setup, fine for the
  // cluster sizes used here (tens of nodes).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace dblrep
