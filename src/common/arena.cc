#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace dblrep {

MutableByteSpan StripeArena::alloc(std::size_t size) {
  MutableByteSpan out = alloc_uninit(size);
  if (size != 0) std::memset(out.data(), 0, size);
  return out;
}

MutableByteSpan StripeArena::alloc_uninit(std::size_t size) {
  if (chunks_.empty() || chunks_.back().size - chunks_.back().offset < size) {
    Chunk chunk;
    // Grow geometrically over the total so long multi-stripe runs converge
    // to one chunk quickly.
    chunk.size = std::max({size, kMinChunk, capacity()});
    chunk.bytes = std::make_unique<std::uint8_t[]>(chunk.size);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  std::uint8_t* out = chunk.bytes.get() + chunk.offset;
  chunk.offset += size;
  used_ += size;
  return {out, size};
}

void StripeArena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: one chunk covering everything we ever needed at once.
    Chunk merged;
    merged.size = capacity();
    merged.bytes = std::make_unique<std::uint8_t[]>(merged.size);
    chunks_.clear();
    chunks_.push_back(std::move(merged));
  } else if (!chunks_.empty()) {
    chunks_.back().offset = 0;
  }
  used_ = 0;
}

std::size_t StripeArena::capacity() const {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size;
  return total;
}

}  // namespace dblrep
