#include "common/arena.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace dblrep {

namespace {

std::size_t align_up(std::size_t n) {
  return (n + StripeArena::kAlignment - 1) & ~(StripeArena::kAlignment - 1);
}

std::uint8_t* new_aligned(std::size_t size) {
  return static_cast<std::uint8_t*>(
      ::operator new[](size, std::align_val_t{StripeArena::kAlignment}));
}

}  // namespace

MutableByteSpan StripeArena::alloc(std::size_t size) {
  MutableByteSpan out = alloc_uninit(size);
  if (size != 0) std::memset(out.data(), 0, size);
  return out;
}

MutableByteSpan StripeArena::alloc_uninit(std::size_t size) {
  // Reserve the aligned footprint so the *next* bump pointer stays
  // kAlignment-aligned too (chunk bases are aligned by construction).
  const std::size_t aligned_size = align_up(size);
  if (chunks_.empty() ||
      chunks_.back().size - chunks_.back().offset < aligned_size) {
    Chunk chunk;
    // Grow geometrically over the total so long multi-stripe runs converge
    // to one chunk quickly.
    chunk.size = std::max({aligned_size, kMinChunk, capacity()});
    chunk.bytes.reset(new_aligned(chunk.size));
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  std::uint8_t* out = chunk.bytes.get() + chunk.offset;
  chunk.offset += aligned_size;
  used_ += size;
  return {out, size};
}

void StripeArena::reset() {
  if (chunks_.size() > 1) {
    // Coalesce: one chunk covering everything we ever needed at once.
    Chunk merged;
    merged.size = capacity();
    merged.bytes.reset(new_aligned(merged.size));
    chunks_.clear();
    chunks_.push_back(std::move(merged));
  } else if (!chunks_.empty()) {
    chunks_.back().offset = 0;
  }
  used_ = 0;
}

std::size_t StripeArena::capacity() const {
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size;
  return total;
}

}  // namespace dblrep
