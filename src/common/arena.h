// StripeArena: bump allocator backing the stripe codec's scratch buffers.
//
// The coding hot path allocates the same shapes over and over (k data
// blocks, num_symbols symbol buffers, a handful of aggregate/partial-parity
// blocks per repair). A stripe's worth of buffers comes from one contiguous
// allocation here; reset() recycles the memory for the next stripe without
// returning it to the allocator, so a multi-stripe encode or node repair
// performs one real allocation total once the arena has warmed up.
//
// Every span is 64-byte aligned (kAlignment): parity buffers are written
// by the GF kernels' streaming-store path, and cache-line alignment lets
// the non-temporal interior cover the whole buffer instead of paying
// head/tail fixups per block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"

namespace dblrep {

class StripeArena {
 public:
  /// Alignment of every returned span (one cache line / one ZMM store).
  static constexpr std::size_t kAlignment = 64;

  StripeArena() = default;

  StripeArena(const StripeArena&) = delete;
  StripeArena& operator=(const StripeArena&) = delete;

  /// Returns a span of `size` bytes, zero-initialized. Spans stay valid
  /// until reset() or destruction -- never invalidated by later alloc()
  /// calls (growth appends a new chunk rather than reallocating).
  MutableByteSpan alloc(std::size_t size);

  /// Like alloc() but skips the zero-fill. For buffers a fused kernel pass
  /// fully overwrites (parity outputs, aggregate scratch): zeroing a parity
  /// block that matrix_apply immediately rewrites would tax the hot path.
  MutableByteSpan alloc_uninit(std::size_t size);

  /// Invalidates all outstanding spans and makes the capacity reusable.
  /// If allocation spilled into multiple chunks, they are coalesced into
  /// one so the steady state is a single contiguous block.
  void reset();

  /// Bytes handed out since the last reset() (excluding alignment padding).
  std::size_t used() const { return used_; }

  /// Bytes owned (high-water mark across resets).
  std::size_t capacity() const;

 private:
  /// Aligned chunk storage: operator new with alignment needs the matching
  /// aligned delete, which unique_ptr's default deleter does not call.
  struct AlignedFree {
    void operator()(std::uint8_t* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };

  struct Chunk {
    std::unique_ptr<std::uint8_t[], AlignedFree> bytes;
    std::size_t size = 0;      // capacity of this chunk
    std::size_t offset = 0;    // bump pointer (always kAlignment-aligned)
  };

  static constexpr std::size_t kMinChunk = 64 * 1024;

  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;
};

}  // namespace dblrep
