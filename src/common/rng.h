// Deterministic random-number generation for simulations and tests.
//
// All stochastic components (failure injection, scheduler tie-breaking,
// Monte-Carlo MTTDL) take an explicit Rng so every experiment is replayable
// from a seed printed in its report header.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace dblrep {

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, and good enough for
/// simulation; seeded via SplitMix64 so any 64-bit seed yields a full state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias (matters for small bounds sampled billions of times
  /// in Monte-Carlo reliability runs).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed with the given rate (mean 1/rate).
  double exponential(double rate);

  /// true with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child stream (for parallel experiment arms).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace dblrep
