#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dblrep {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ ? mean_ : 0.0; }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ ? min_ : 0.0; }
double RunningStat::max() const { return count_ ? max_ : 0.0; }

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DBLREP_CHECK(!bounds_.empty());
  DBLREP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DBLREP_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

double Histogram::quantile(double q) const {
  DBLREP_CHECK_GE(q, 0.0);
  DBLREP_CHECK_LE(q, 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate inside bucket i. Underflow/overflow clamp to boundary.
      if (i == 0) return bounds_.front();
      if (i == counts_.size() - 1) return bounds_.back();
      const double lo = bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / counts_[i];
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i == 0) {
      os << "(-inf," << bounds_.front() << ")";
    } else if (i == counts_.size() - 1) {
      os << "[" << bounds_.back() << ",inf)";
    } else {
      os << "[" << bounds_[i - 1] << "," << bounds_[i] << ")";
    }
    os << "=" << counts_[i];
    if (i + 1 < counts_.size()) os << " ";
  }
  return os.str();
}

}  // namespace dblrep
