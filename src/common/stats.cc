#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace dblrep {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::mean() const { return count_ ? mean_ : 0.0; }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ ? min_ : 0.0; }
double RunningStat::max() const { return count_ ? max_ : 0.0; }

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  DBLREP_CHECK(!bounds_.empty());
  DBLREP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    DBLREP_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

void Histogram::merge(const Histogram& other) {
  DBLREP_CHECK(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

Histogram Histogram::log_spaced(double lo, double hi, std::size_t per_decade) {
  DBLREP_CHECK_GT(lo, 0.0);
  DBLREP_CHECK_LT(lo, hi);
  DBLREP_CHECK_GT(per_decade, 0u);
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  for (double b = lo; b < hi * step; b *= step) bounds.push_back(b);
  return Histogram(std::move(bounds));
}

double Histogram::quantile(double q) const {
  DBLREP_CHECK_GE(q, 0.0);
  DBLREP_CHECK_LE(q, 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate inside bucket i. Underflow/overflow clamp to boundary.
      if (i == 0) return bounds_.front();
      if (i == counts_.size() - 1) return bounds_.back();
      const double lo = bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cumulative) / counts_[i];
      return lo + frac * (hi - lo);
    }
    cumulative = next;
  }
  return bounds_.back();
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i == 0) {
      os << "(-inf," << bounds_.front() << ")";
    } else if (i == counts_.size() - 1) {
      os << "[" << bounds_.back() << ",inf)";
    } else {
      os << "[" << bounds_[i - 1] << "," << bounds_[i] << ")";
    }
    os << "=" << counts_[i];
    if (i + 1 < counts_.size()) os << " ";
  }
  return os.str();
}

}  // namespace dblrep
