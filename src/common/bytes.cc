#include "common/bytes.h"

#include <array>
#include <cstdio>

#include "common/check.h"

namespace dblrep {

void xor_into(MutableByteSpan dst, ByteSpan src) {
  DBLREP_CHECK_EQ(dst.size(), src.size());
  // Word-at-a-time main loop; tails byte-wise. memcpy keeps it well-defined
  // under strict aliasing.
  std::size_t i = 0;
  const std::size_t n = dst.size();
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t a, b;
    __builtin_memcpy(&a, dst.data() + i, sizeof(a));
    __builtin_memcpy(&b, src.data() + i, sizeof(b));
    a ^= b;
    __builtin_memcpy(dst.data() + i, &a, sizeof(a));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

Buffer xor_buffers(ByteSpan a, ByteSpan b) {
  DBLREP_CHECK_EQ(a.size(), b.size());
  Buffer out(a.begin(), a.end());
  xor_into(out, b);
  return out;
}

Buffer random_buffer(std::size_t size, std::uint64_t seed) {
  // SplitMix64 stream; stable across platforms so tests can hard-code hashes.
  Buffer out(size);
  std::uint64_t state = seed;
  std::size_t i = 0;
  while (i < size) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    for (int b = 0; b < 8 && i < size; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(z >> (8 * b));
    }
  }
  return out;
}

namespace {

std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) {
  static const auto table = make_crc32c_table();
  std::uint32_t crc = ~seed;
  for (std::uint8_t byte : data) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xffu];
  }
  return ~crc;
}

std::string hex_preview(ByteSpan data, std::size_t max_bytes) {
  static const char* digits = "0123456789abcdef";
  const std::size_t n = std::min(data.size(), max_bytes);
  std::string out;
  out.reserve(2 * n + 3);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xf]);
  }
  if (n < data.size()) out += "...";
  return out;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

}  // namespace dblrep
