// Byte-buffer helpers shared by the coding and data-plane layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dblrep {

/// Owning byte buffer. Blocks are dense and fixed-size, so a plain vector is
/// the right representation; views are passed as std::span.
using Buffer = std::vector<std::uint8_t>;

using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// dst ^= src, element-wise. Sizes must match. The compiler vectorizes this
/// loop; it is the hot kernel for XOR parities and partial parities.
void xor_into(MutableByteSpan dst, ByteSpan src);

/// out = a ^ b into a fresh buffer.
Buffer xor_buffers(ByteSpan a, ByteSpan b);

/// Deterministic pseudo-random buffer (seeded), for tests and workloads.
Buffer random_buffer(std::size_t size, std::uint64_t seed);

/// CRC-32C (Castagnoli), the checksum HDFS uses per chunk. Software
/// slice-by-1 table implementation; speed is not critical here.
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0);

/// Lowercase hex of the first `max_bytes` bytes (debugging aid).
std::string hex_preview(ByteSpan data, std::size_t max_bytes = 16);

/// "1.5 GiB"-style rendering of byte counts for report tables.
std::string format_bytes(double bytes);

}  // namespace dblrep
