// Console table / CSV rendering for the benchmark harnesses.
//
// Every bench binary reproduces a table or figure from the paper; these
// helpers keep the output format uniform: an ASCII table for eyeballing and
// an optional CSV dump for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace dblrep {

/// Column-aligned ASCII table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a rule under the header.
  std::string to_string() const;

  /// RFC-4180-ish CSV (fields containing comma/quote/newline are quoted).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34").
std::string fmt_double(double value, int precision = 2);

/// Scientific notation with 2 mantissa digits ("1.20e+09"), matching the
/// paper's MTTDL rendering in Table 1.
std::string fmt_sci(double value);

/// Percentage with one decimal ("93.8%").
std::string fmt_pct(double fraction);

}  // namespace dblrep
