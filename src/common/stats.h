// Streaming statistics for experiment reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dblrep {

/// Welford-style running mean/variance plus min/max. Used to average metrics
/// over repeated simulation runs, as the paper averages over multiple
/// Terasort executions.
class RunningStat {
 public:
  void add(double x);

  /// Folds another stat into this one (Chan et al. parallel variance
  /// combination), exact for mean/min/max/sum. Lets worker threads collect
  /// into private stats that are merged lock-free at join time.
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_half_width() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-boundary histogram for latency/bandwidth distributions.
class Histogram {
 public:
  /// Buckets are [bounds[i-1], bounds[i]); an underflow and overflow bucket
  /// are added implicitly. Bounds must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void add(double x);

  /// Adds another histogram's counts; bucket bounds must be identical.
  void merge(const Histogram& other);

  /// Log-spaced bounds covering [lo, hi] with `per_decade` buckets per
  /// decade -- the standard latency-histogram shape.
  static Histogram log_spaced(double lo, double hi, std::size_t per_decade);

  std::size_t total() const { return total_; }
  /// counts()[0] is underflow, counts().back() overflow.
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Linear-interpolated quantile estimate, q in [0,1].
  double quantile(double q) const;

  std::string to_string() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace dblrep
