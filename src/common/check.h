// Contract-checking macros for programmer errors.
//
// These are for *bugs* (violated preconditions / invariants), not for
// recoverable storage errors -- those use Status / Result<T> (see status.h).
// A failed check throws dblrep::ContractViolation carrying file:line and the
// failed expression, so tests can assert on contract enforcement.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dblrep {

/// Thrown when a DBLREP_CHECK* contract fails. Deriving from logic_error
/// signals "programmer error" as opposed to runtime storage failure.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace dblrep

/// Always-on invariant check (storage code keeps checks in release builds;
/// silent corruption is worse than an abort).
#define DBLREP_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dblrep::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                   \
  } while (0)

/// Check with a streamed message: DBLREP_CHECK_MSG(a == b, "a=" << a).
#define DBLREP_CHECK_MSG(expr, stream_expr)                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      std::ostringstream dblrep_check_os_;                                   \
      dblrep_check_os_ << stream_expr;                                       \
      ::dblrep::detail::check_failed(#expr, __FILE__, __LINE__,              \
                                     dblrep_check_os_.str());                \
    }                                                                        \
  } while (0)

/// Debug-only contract check, compiled out in NDEBUG builds. For guards on
/// the hot data path (e.g. buffer-overlap preconditions in the GF kernels)
/// where an always-on check would cost measurable throughput.
#ifdef NDEBUG
// sizeof keeps the operands odr-referenced (no unused-variable warnings
// under -Werror) while guaranteeing they are never evaluated.
#define DBLREP_DCHECK(expr)    \
  do {                         \
    (void)sizeof((expr) ? 1 : 0); \
  } while (0)
#define DBLREP_DCHECK_MSG(expr, stream_expr) \
  do {                                       \
    (void)sizeof((expr) ? 1 : 0);            \
  } while (0)
#else
#define DBLREP_DCHECK(expr) DBLREP_CHECK(expr)
#define DBLREP_DCHECK_MSG(expr, stream_expr) DBLREP_CHECK_MSG(expr, stream_expr)
#endif

#define DBLREP_CHECK_EQ(a, b) \
  DBLREP_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define DBLREP_CHECK_NE(a, b) \
  DBLREP_CHECK_MSG((a) != (b), "lhs=" << (a) << " rhs=" << (b))
#define DBLREP_CHECK_LT(a, b) \
  DBLREP_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define DBLREP_CHECK_LE(a, b) \
  DBLREP_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define DBLREP_CHECK_GT(a, b) \
  DBLREP_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define DBLREP_CHECK_GE(a, b) \
  DBLREP_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))
