// Status / Result<T>: recoverable-error channel for the storage data plane.
//
// Storage operations fail for environmental reasons (node down, block
// missing, not enough survivors to decode). Those are normal outcomes, not
// bugs, so they are reported by value rather than thrown. This mirrors the
// Status/StatusOr idiom common in production storage codebases while staying
// dependency-free.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace dblrep {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // named entity does not exist
  kUnavailable,     // node/replica temporarily unreachable
  kDataLoss,        // erasure pattern not recoverable
  kInvalidArgument, // caller-supplied value out of domain
  kAlreadyExists,   // create of an existing entity
  kFailedPrecondition, // operation not valid in current state
  kCorruption,      // checksum mismatch / torn block
  kResourceExhausted, // out of capacity (slots, space)
  kInternal,        // invariant broke in a recoverable context
  kAborted,         // lost a concurrency race; caller may retry or skip
};

/// Human-readable name of a StatusCode ("OK", "NOT_FOUND", ...).
const char* status_code_name(StatusCode code);

/// Value-semantic error descriptor. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NOT_FOUND: block 17 has no live replica" or "OK".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status not_found_error(std::string message);
Status unavailable_error(std::string message);
Status data_loss_error(std::string message);
Status invalid_argument_error(std::string message);
Status already_exists_error(std::string message);
Status failed_precondition_error(std::string message);
Status corruption_error(std::string message);
Status resource_exhausted_error(std::string message);
Status internal_error(std::string message);
Status aborted_error(std::string message);

/// Result<T> holds either a T or a non-OK Status.
///
/// Accessors CHECK the state: calling value() on an error result is a
/// programmer error (the caller must branch on ok() first), and surfacing it
/// loudly beats silently reading garbage.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : payload_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    DBLREP_CHECK_MSG(!std::get<Status>(payload_).is_ok(),
                     "Result constructed from OK status without a value");
  }

  bool is_ok() const { return std::holds_alternative<T>(payload_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    DBLREP_CHECK_MSG(is_ok(), "value() on error result: " << status().to_string());
    return std::get<T>(payload_);
  }
  T& value() & {
    DBLREP_CHECK_MSG(is_ok(), "value() on error result: " << status().to_string());
    return std::get<T>(payload_);
  }
  T&& value() && {
    DBLREP_CHECK_MSG(is_ok(), "value() on error result: " << status().to_string());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// OK status when holding a value, the stored error otherwise.
  Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

  /// Value if present, otherwise `fallback`.
  T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Early-return helper: DBLREP_RETURN_IF_ERROR(some_status_expr);
#define DBLREP_RETURN_IF_ERROR(expr)                    \
  do {                                                  \
    ::dblrep::Status dblrep_status_ = (expr);           \
    if (!dblrep_status_.is_ok()) return dblrep_status_; \
  } while (0)

/// DBLREP_ASSIGN_OR_RETURN(auto v, result_expr): binds value or propagates
/// the error status to the caller (caller must return Status or Result).
#define DBLREP_ASSIGN_CONCAT_INNER(a, b) a##b
#define DBLREP_ASSIGN_CONCAT(a, b) DBLREP_ASSIGN_CONCAT_INNER(a, b)
#define DBLREP_ASSIGN_OR_RETURN(decl, expr)                              \
  auto DBLREP_ASSIGN_CONCAT(dblrep_result_, __LINE__) = (expr);          \
  if (!DBLREP_ASSIGN_CONCAT(dblrep_result_, __LINE__).is_ok())           \
    return DBLREP_ASSIGN_CONCAT(dblrep_result_, __LINE__).status();      \
  decl = std::move(DBLREP_ASSIGN_CONCAT(dblrep_result_, __LINE__)).value()

}  // namespace dblrep
