#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace dblrep {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DBLREP_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  DBLREP_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string fmt_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_sci(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", value);
  return buf;
}

std::string fmt_pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return buf;
}

}  // namespace dblrep
