// RuntimePool: per-worker checkout of the mutable-scratch codec objects.
//
// ec::StripeCodec and ec::PlanExecutor carry recycled arena scratch and are
// therefore documented non-thread-safe, while the CodeScheme they wrap is
// immutable and freely shared. The pool resolves that split for the
// concurrent data plane: each worker checks out a Runtime (one codec + one
// executor for a given scheme) for the duration of a stripe's work and
// returns it on scope exit. Checked-in runtimes are reused, so the steady
// state is one warm runtime per concurrently active worker per scheme --
// the same O(1)-allocation behavior the single-threaded path had, times
// the worker count.
//
// acquire() is const: checking out scratch is logically a read of the
// scheme (read paths like degraded reads need it), so the pool's internals
// are mutable and internally synchronized.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "ec/code.h"
#include "ec/repair.h"
#include "ec/stripe_codec.h"

namespace dblrep::exec {

class RuntimePool {
 public:
  /// One worker's private slice of a scheme's data plane.
  struct Runtime {
    explicit Runtime(const ec::CodeScheme& code)
        : codec(code), executor(code.layout()) {}
    ec::StripeCodec codec;
    ec::PlanExecutor executor;
  };

  /// RAII checkout: returns the runtime to the pool on destruction.
  class Lease {
   public:
    Lease(const RuntimePool* pool, Runtime* runtime)
        : pool_(pool), runtime_(runtime) {}
    ~Lease();

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), runtime_(other.runtime_) {
      other.pool_ = nullptr;
      other.runtime_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;

    Runtime& operator*() const { return *runtime_; }
    Runtime* operator->() const { return runtime_; }

   private:
    const RuntimePool* pool_;
    Runtime* runtime_;
  };

  explicit RuntimePool(const ec::CodeScheme& code) : code_(&code) {}

  RuntimePool(const RuntimePool&) = delete;
  RuntimePool& operator=(const RuntimePool&) = delete;

  const ec::CodeScheme& code() const { return *code_; }

  /// Checks out a free runtime, constructing a fresh one only when every
  /// existing runtime is currently leased.
  Lease acquire() const;

  /// Runtimes constructed so far (leased or free). Test/observability hook.
  std::size_t size() const;

 private:
  friend class Lease;
  void release(Runtime* runtime) const;

  const ec::CodeScheme* code_;
  mutable std::mutex mu_;
  mutable std::vector<std::unique_ptr<Runtime>> all_;  // stable ownership
  mutable std::vector<Runtime*> free_;
};

}  // namespace dblrep::exec
