// Execution subsystem: the concurrency substrate of the data plane.
//
// PR 1 made the byte-moving path fast per core; this layer spreads it
// across cores. Three pieces:
//
//  * ThreadPool -- a work-stealing pool with per-worker deques. Tasks
//    submitted from a worker thread go to that worker's own deque (popped
//    LIFO for cache locality); idle workers steal FIFO from their peers, so
//    an uneven fan-out (one giant stripe, many small ones) still keeps all
//    cores busy. submit() fire-and-forgets; async() returns a std::future.
//  * parallel_for -- the fork-join primitive the hdfs layer fans stripes
//    out with. The *calling* thread participates in the loop, which makes
//    the construct deadlock-free under nesting and means a pool with zero
//    workers degenerates to the plain serial loop (that is the "serial
//    path" the determinism tests compare against).
//  * default_pool()/inline_pool() -- process-wide pools. The default pool
//    sizes itself from DBLREP_THREADS when set, hardware_concurrency
//    otherwise; the inline pool has no workers and runs everything on the
//    caller.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace dblrep::exec {

class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads. Zero workers is legal and useful:
  /// submit() then runs tasks inline on the submitter, giving a pool that
  /// is bit-for-bit the serial execution order.
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues a task. From a worker thread the task lands on that worker's
  /// own deque; from outside, queues are fed round-robin.
  void submit(std::function<void()> task);

  /// submit() with a future for the task's result.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  /// Parses a thread-count override ("8" -> 8). Returns nullopt for null,
  /// empty, or non-numeric input. Exposed for tests; the env-reading
  /// wrapper is default_worker_count().
  static std::optional<std::size_t> parse_worker_count(const char* text);

  /// DBLREP_THREADS when set and valid, else hardware_concurrency (min 1).
  /// A value of N means N worker threads; 0 selects fully inline execution.
  static std::size_t default_worker_count();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(std::size_t index);
  bool try_pop(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
};

/// Process-wide pool sized by default_worker_count(). Created on first use.
ThreadPool& default_pool();

/// Process-wide zero-worker pool: everything runs on the calling thread in
/// loop order. The serial reference for the parallel paths.
ThreadPool& inline_pool();

/// Runs fn(0..n-1) across the pool and the calling thread, returning the
/// first non-OK Status (remaining iterations are skipped once one fails,
/// though in-flight ones complete). Blocks until every iteration has
/// finished executing. Safe to nest and safe to call concurrently from many
/// threads: the caller always drains iterations itself, so progress never
/// depends on a pool worker being free.
Status parallel_for(ThreadPool& pool, std::size_t n,
                    const std::function<Status(std::size_t)>& fn);

/// parallel_for without the early exit: every iteration runs even after a
/// failure, and the returned Status is the error of the *lowest-index*
/// failed iteration. Use when the post-failure state must be a
/// deterministic function of the inputs rather than of pool scheduling --
/// e.g. a repair pass that must heal every recoverable stripe even when an
/// unrecoverable one errors partway through (the fault-injection harness
/// replays such passes byte-for-byte across worker counts).
Status parallel_for_all(ThreadPool& pool, std::size_t n,
                        const std::function<Status(std::size_t)>& fn);

}  // namespace dblrep::exec
