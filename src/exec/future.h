// exec::Future / exec::Promise: one-shot value channels composed on the
// ThreadPool, the async layer of the client data plane.
//
// ThreadPool::async() hands back a std::future, which is enough for
// fire-and-wait but awkward for the client API: std::future has no cheap
// ready() probe (wait_for with a zero timeout allocates a clock read and
// throws on no-state), and a handle-based writer wants to park hundreds of
// in-flight stripe stores in a deque and poll/drain them in dispatch
// order. Future<T> is the minimal alternative: a shared state written
// exactly once by a Promise (or by spawn()'s task) and consumed exactly
// once by get().
//
// Deadlock rule: get() may block. Never call it from inside a pool task on
// the same pool the awaited task is queued on -- a saturated pool would
// have every worker waiting for a task nobody is free to run. The client
// code keeps to the rule by only blocking from caller threads; with the
// zero-worker inline pool, spawn() runs the task before returning, so
// get() never blocks at all and the serial execution order is preserved.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "exec/thread_pool.h"

namespace dblrep::exec {

namespace detail {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
};

}  // namespace detail

template <typename T>
class Promise;

/// One-shot handle to a value produced asynchronously. Move-only consume:
/// get() waits, moves the value out, and releases the state.
template <typename T>
class Future {
 public:
  Future() = default;  // invalid until assigned from Promise/spawn

  bool valid() const { return state_ != nullptr; }

  /// True once the producer has delivered. Non-blocking.
  bool ready() const {
    DBLREP_CHECK_MSG(valid(), "ready() on an invalid Future");
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the value is delivered (see the deadlock rule above).
  void wait() const {
    DBLREP_CHECK_MSG(valid(), "wait() on an invalid Future");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
  }

  /// wait() + move the value out. One-shot: the future is invalid after.
  T get() {
    DBLREP_CHECK_MSG(valid(), "get() on an invalid Future");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    T value = std::move(*state_->value);
    lock.unlock();
    state_.reset();
    return value;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Producer half. set_value() must be called exactly once; a Promise whose
/// future is never consumed is harmless (shared state just expires).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  void set_value(T value) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      DBLREP_CHECK_MSG(!state_->value.has_value(),
                       "Promise delivered twice");
      state_->value.emplace(std::move(value));
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Runs `fn` on the pool and returns a Future for its result. With the
/// zero-worker inline pool the task executes inside this call, so the
/// returned future is already ready -- the serial reference execution.
template <typename F>
auto spawn(ThreadPool& pool, F fn) -> Future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  static_assert(!std::is_void_v<R>,
                "spawn() needs a value-returning task; use submit() for "
                "fire-and-forget work");
  Promise<R> promise;
  Future<R> future = promise.future();
  pool.submit([promise = std::move(promise), fn = std::move(fn)]() mutable {
    promise.set_value(fn());
  });
  return future;
}

}  // namespace dblrep::exec
