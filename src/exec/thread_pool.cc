#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace dblrep::exec {

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
/// Lets submit() target the submitting worker's own deque, the part of
/// "work stealing" that keeps recursively spawned tasks cache-local.
struct WorkerIdentity {
  const void* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_workers) {
  queues_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true);
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();  // zero-worker pool: the submitter is the executor
    return;
  }
  std::size_t target;
  if (tls_worker.pool == this) {
    target = tls_worker.index;  // worker-local push (stolen FIFO by peers)
  } else {
    target = next_queue_.fetch_add(1) % queues_.size();
  }
  // Increment pending_ BEFORE publishing the task: a worker only
  // decrements after a successful pop, so the counter can never observe
  // the pop before the matching increment (which would wrap it to
  // SIZE_MAX and defeat the idle-wait predicate). A waiter that wakes in
  // the tiny window before the push lands simply re-polls.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_.fetch_add(1);
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest task first (LIFO: it is the hottest in cache)...
  {
    auto& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from a peer (FIFO: least likely to be in
  // the victim's cache, and the fairest under fork-join fan-outs).
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    auto& q = *queues_[(self + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_main(std::size_t index) {
  tls_worker = {this, index};
  std::function<void()> task;
  while (true) {
    if (try_pop(index, task)) {
      pending_.fetch_sub(1);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock,
                  [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

std::optional<std::size_t> ThreadPool::parse_worker_count(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return std::nullopt;
  return static_cast<std::size_t>(value);
}

std::size_t ThreadPool::default_worker_count() {
  if (const auto parsed = parse_worker_count(std::getenv("DBLREP_THREADS"))) {
    return *parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& default_pool() {
  static ThreadPool pool(ThreadPool::default_worker_count());
  return pool;
}

ThreadPool& inline_pool() {
  static ThreadPool pool(0);
  return pool;
}

namespace {

/// Heap-allocated so straggler helper tasks (submitted but never scheduled
/// before the loop finished) can still touch it safely after the caller
/// has returned.
struct ParallelForState {
  std::size_t n = 0;
  std::function<Status(std::size_t)> fn;
  /// run_all: never skip iterations after a failure, and report the error
  /// of the lowest-index failed iteration (parallel_for_all semantics).
  bool run_all = false;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t completed = 0;  // guarded by mu
  Status first_error;         // guarded by mu
  std::size_t first_error_index = static_cast<std::size_t>(-1);  // mu
};

void drain(const std::shared_ptr<ParallelForState>& state) {
  for (std::size_t i = state->next.fetch_add(1); i < state->n;
       i = state->next.fetch_add(1)) {
    Status status;  // without run_all, iterations after a failure are skipped
    if (state->run_all || !state->failed.load()) status = state->fn(i);
    std::lock_guard<std::mutex> lock(state->mu);
    if (!status.is_ok()) {
      const bool record = state->run_all ? i < state->first_error_index
                                         : state->first_error.is_ok();
      if (record) {
        state->first_error = status;
        state->first_error_index = i;
      }
      state->failed.store(true);
    }
    if (++state->completed == state->n) state->done_cv.notify_all();
  }
}

Status run_parallel(ThreadPool& pool, std::size_t n,
                    const std::function<Status(std::size_t)>& fn,
                    bool run_all) {
  if (n == 0) return Status::ok();
  if (n == 1 || pool.num_workers() == 0) {
    Status first_error;
    for (std::size_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (!status.is_ok()) {
        if (!run_all) return status;
        if (first_error.is_ok()) first_error = std::move(status);
      }
    }
    return first_error;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->fn = fn;
  state->run_all = run_all;
  // One helper per worker (never more than iterations); the caller is the
  // +1th participant and the only one anyone waits on.
  const std::size_t helpers = std::min(pool.num_workers(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([state] { drain(state); });
  }
  drain(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->completed == state->n; });
  return state->first_error;
}

}  // namespace

Status parallel_for(ThreadPool& pool, std::size_t n,
                    const std::function<Status(std::size_t)>& fn) {
  return run_parallel(pool, n, fn, /*run_all=*/false);
}

Status parallel_for_all(ThreadPool& pool, std::size_t n,
                        const std::function<Status(std::size_t)>& fn) {
  return run_parallel(pool, n, fn, /*run_all=*/true);
}

}  // namespace dblrep::exec
