#include "exec/runtime_pool.h"

namespace dblrep::exec {

RuntimePool::Lease::~Lease() {
  if (pool_ != nullptr && runtime_ != nullptr) pool_->release(runtime_);
}

RuntimePool::Lease RuntimePool::acquire() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      Runtime* runtime = free_.back();
      free_.pop_back();
      return Lease(this, runtime);
    }
  }
  // Construct outside the lock: codec/executor setup touches the scheme's
  // immutable tables only.
  auto fresh = std::make_unique<Runtime>(*code_);
  Runtime* runtime = fresh.get();
  std::lock_guard<std::mutex> lock(mu_);
  all_.push_back(std::move(fresh));
  return Lease(this, runtime);
}

std::size_t RuntimePool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return all_.size();
}

void RuntimePool::release(Runtime* runtime) const {
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(runtime);
}

}  // namespace dblrep::exec
