// StripedSharedMutex: a fixed array of shared mutexes indexed by key hash.
//
// The namespace lock of the concurrent MiniDfs: per-path operations hash
// the path to one of the stripes, so reads of different files proceed in
// parallel while a delete/rename of a file excludes readers of (at least)
// that file. Collisions are benign -- two paths sharing a stripe merely
// serialize against each other.
//
// Multi-key operations (rename) must lock stripes in index order to stay
// deadlock-free; lock_pair() encapsulates that, collapsing to a single
// lock when both keys collide.
#pragma once

#include <array>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string_view>

namespace dblrep::exec {

class StripedSharedMutex {
 public:
  static constexpr std::size_t kStripes = 16;

  std::size_t stripe_of(std::string_view key) const {
    return std::hash<std::string_view>{}(key) % kStripes;
  }

  std::shared_mutex& of(std::string_view key) {
    return stripes_[stripe_of(key)];
  }

  /// Exclusive locks over both keys' stripes, acquired in index order.
  class PairLock {
   public:
    PairLock(StripedSharedMutex& mu, std::string_view a, std::string_view b) {
      std::size_t lo = mu.stripe_of(a);
      std::size_t hi = mu.stripe_of(b);
      if (lo > hi) std::swap(lo, hi);
      first_ = std::unique_lock<std::shared_mutex>(mu.stripes_[lo]);
      if (hi != lo) {
        second_ = std::unique_lock<std::shared_mutex>(mu.stripes_[hi]);
      }
    }

   private:
    std::unique_lock<std::shared_mutex> first_;
    std::unique_lock<std::shared_mutex> second_;
  };

 private:
  std::array<std::shared_mutex, kStripes> stripes_;
};

}  // namespace dblrep::exec
