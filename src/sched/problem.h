// The map-task-assignment problem of Section 3.2.
//
// The paper models map-task assignment as matching on a bipartite graph:
// tasks on the left (one per data block the job must process), nodes on the
// right (each with mu map slots). A task's edges go to the nodes that hold
// a replica of its block -- so the placement rule of the chosen code fully
// determines the graph (Fig. 2): with 2-rep the two endpoints are random;
// with a polygon code both replicas sit on the stripe's placement group and
// up to n-1 co-located tasks share each node.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace dblrep::sched {

/// Cluster-level node id (0-based).
using NodeId = int;

struct TaskInfo {
  /// Nodes holding a live replica of this task's block (distinct; may be
  /// empty when every holder is down -- the task then runs remote with a
  /// degraded read).
  std::vector<NodeId> locations;
  /// Stripe the block belongs to (for stripe-aware schedulers/metrics).
  std::size_t stripe = 0;
  /// Symbol index of the block within its stripe (needed by degraded-read
  /// planning in the MapReduce simulator).
  std::size_t symbol = 0;
};

struct AssignmentProblem {
  std::size_t num_nodes = 0;
  int slots_per_node = 0;  // mu
  std::vector<TaskInfo> tasks;
  /// Optional per-node slot override (empty = uniform slots_per_node);
  /// used to model down nodes (0 slots) during failure injection.
  std::vector<int> node_slots;

  int capacity(NodeId node) const {
    DBLREP_CHECK_GE(node, 0);
    DBLREP_CHECK_LT(static_cast<std::size_t>(node), num_nodes);
    if (node_slots.empty()) return slots_per_node;
    DBLREP_CHECK_EQ(node_slots.size(), num_nodes);
    return node_slots[static_cast<std::size_t>(node)];
  }

  std::size_t total_slots() const {
    std::size_t total = 0;
    for (std::size_t n = 0; n < num_nodes; ++n) {
      total += static_cast<std::size_t>(capacity(static_cast<NodeId>(n)));
    }
    return total;
  }
  /// Offered load as defined in Section 3.2: tasks / (mu * nodes).
  double load() const {
    return static_cast<double>(tasks.size()) /
           static_cast<double>(total_slots());
  }
};

/// Task id of an assignment slot; kUnassigned marks tasks that could not be
/// placed (only possible above 100% load in a single wave).
inline constexpr NodeId kUnassignedNode = -1;

struct Assignment {
  /// task_node[i] = node running task i (kUnassignedNode if unplaced).
  std::vector<NodeId> task_node;
  /// is_local[i] = task i runs on a node holding its block.
  std::vector<bool> is_local;

  std::size_t local_count() const;
  std::size_t assigned_count() const;
  /// Fraction of *assigned* tasks that are data-local -- the y-axis of
  /// Fig. 3 and the locality panels of Figs. 4-5.
  double locality() const;
};

/// Validates slot capacities and location consistency; contract-checks on
/// violation (scheduler bugs must not silently skew experiment results).
void check_assignment(const AssignmentProblem& problem,
                      const Assignment& assignment);

}  // namespace dblrep::sched
