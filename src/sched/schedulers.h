// The three task-assignment algorithms of Section 3.2 / Fig. 3.
//
//  * DelayScheduler -- the heartbeat-driven algorithm Hadoop actually uses
//    (Zaharia et al., EuroSys 2010): a node asking for work gets a local
//    task if the job has one; otherwise the job "skips" this opportunity,
//    and only after D consecutive skips does it accept a remote launch.
//  * MaxMatchingScheduler -- optimal data locality via maximum bipartite
//    b-matching (a max-flow), the benchmark curve of Fig. 3. The paper
//    notes it is too computationally intensive for production use.
//  * PeelingScheduler -- the degree-guided algorithm of Xie & Lu (ISIT
//    2012) with the paper's modification for array codes: scarce tasks
//    (fewest live local options) are assigned first, ties broken toward
//    draining the most concentrated stripe, so a pentagon/heptagon node
//    never burns its slots on blocks that are replicated elsewhere.
//
// All schedulers place every task (remote if necessary) while any slot is
// free, and never overcommit a node.
#pragma once

#include "common/rng.h"
#include "sched/problem.h"

namespace dblrep::sched {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual Assignment assign(const AssignmentProblem& problem, Rng& rng) = 0;
  virtual std::string name() const = 0;
};

class DelayScheduler final : public Scheduler {
 public:
  /// skip_budget = D, the number of scheduling opportunities the job may
  /// decline before accepting a remote slot. The paper configures the delay
  /// "such that every node has a chance to assign two (four) local map
  /// tasks", i.e. on the order of one full heartbeat sweep; pass
  /// kSweepBudget to derive D = num_nodes automatically.
  static constexpr int kSweepBudget = -1;
  explicit DelayScheduler(int skip_budget = kSweepBudget)
      : skip_budget_(skip_budget) {}

  Assignment assign(const AssignmentProblem& problem, Rng& rng) override;
  std::string name() const override { return "delay-sched"; }

 private:
  int skip_budget_;
};

class MaxMatchingScheduler final : public Scheduler {
 public:
  Assignment assign(const AssignmentProblem& problem, Rng& rng) override;
  std::string name() const override { return "max-match"; }
};

class PeelingScheduler final : public Scheduler {
 public:
  /// stripe_aware enables the paper's modification for polygon codes.
  explicit PeelingScheduler(bool stripe_aware = true)
      : stripe_aware_(stripe_aware) {}

  Assignment assign(const AssignmentProblem& problem, Rng& rng) override;
  std::string name() const override {
    return stripe_aware_ ? "peeling" : "peeling-basic";
  }

 private:
  bool stripe_aware_;
};

/// Maximum number of tasks that *any* scheduler could run locally: the
/// value of the maximum bipartite b-matching. Used as the Fig. 3 benchmark
/// and in tests as an upper bound for every other scheduler.
std::size_t max_local_tasks(const AssignmentProblem& problem);

}  // namespace dblrep::sched
