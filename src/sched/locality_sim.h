// Locality simulation sweep reproducing Fig. 3: percentage of data-local
// map tasks vs offered load, per code and per scheduler, for a given
// number of map slots per node.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "ec/code.h"
#include "sched/schedulers.h"
#include "sched/workload.h"

namespace dblrep::sched {

struct LocalitySweepConfig {
  std::size_t num_nodes = 25;   // the paper's simulated system
  int slots_per_node = 2;      // mu
  std::vector<double> loads = {0.25, 0.50, 0.75, 1.00};
  int trials = 50;             // independent placements averaged per point
  std::uint64_t seed = 2014;   // HotStorage vintage
};

struct LocalityPoint {
  double load = 0;
  double mean_locality = 0;  // fraction in [0,1]
  double ci95 = 0;           // normal-approx half width
};

/// Runs `scheduler` over `trials` random placements of a `code`-encoded
/// workload at each load and reports mean locality.
std::vector<LocalityPoint> run_locality_sweep(const ec::CodeScheme& code,
                                              Scheduler& scheduler,
                                              const LocalitySweepConfig& config);

}  // namespace dblrep::sched
