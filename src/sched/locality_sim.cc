#include "sched/locality_sim.h"

namespace dblrep::sched {

std::vector<LocalityPoint> run_locality_sweep(
    const ec::CodeScheme& code, Scheduler& scheduler,
    const LocalitySweepConfig& config) {
  std::vector<LocalityPoint> points;
  Rng master(config.seed);
  for (double load : config.loads) {
    RunningStat stat;
    // Fork a per-point stream so adding loads does not perturb others.
    Rng point_rng = master.fork();
    const std::size_t tasks =
        tasks_for_load(load, config.num_nodes, config.slots_per_node);
    for (int trial = 0; trial < config.trials; ++trial) {
      Workload workload = make_workload(code, config.num_nodes,
                                        config.slots_per_node, tasks, point_rng);
      const Assignment assignment =
          scheduler.assign(workload.problem, point_rng);
      stat.add(assignment.locality());
    }
    points.push_back({load, stat.mean(), stat.ci95_half_width()});
  }
  return points;
}

}  // namespace dblrep::sched
