#include "sched/schedulers.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace dblrep::sched {

namespace {

/// Dinic max-flow on the unit-ish bipartite graph: source -> task (cap 1),
/// task -> holding node (cap 1), node -> sink (cap mu). Small graphs
/// (hundreds of tasks, tens of nodes), so no fancy optimizations needed.
class Dinic {
 public:
  explicit Dinic(std::size_t vertex_count)
      : adjacency_(vertex_count), level_(vertex_count), next_(vertex_count) {}

  void add_edge(std::size_t from, std::size_t to, int capacity) {
    adjacency_[from].push_back(edges_.size());
    edges_.push_back({to, capacity});
    adjacency_[to].push_back(edges_.size());
    edges_.push_back({from, 0});
  }

  int max_flow(std::size_t source, std::size_t sink) {
    int flow = 0;
    while (bfs(source, sink)) {
      std::fill(next_.begin(), next_.end(), 0u);
      while (int pushed = dfs(source, sink, std::numeric_limits<int>::max())) {
        flow += pushed;
      }
    }
    return flow;
  }

  /// Residual capacity of edge index e (edges are added in pairs; even
  /// indices are forward edges).
  int residual(std::size_t edge_index) const {
    return edges_[edge_index].capacity;
  }

 private:
  struct Edge {
    std::size_t to;
    int capacity;
  };

  bool bfs(std::size_t source, std::size_t sink) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<std::size_t> queue;
    level_[source] = 0;
    queue.push(source);
    while (!queue.empty()) {
      const std::size_t v = queue.front();
      queue.pop();
      for (std::size_t edge_index : adjacency_[v]) {
        const Edge& edge = edges_[edge_index];
        if (edge.capacity > 0 && level_[edge.to] < 0) {
          level_[edge.to] = level_[v] + 1;
          queue.push(edge.to);
        }
      }
    }
    return level_[sink] >= 0;
  }

  int dfs(std::size_t v, std::size_t sink, int limit) {
    if (v == sink) return limit;
    for (; next_[v] < adjacency_[v].size(); ++next_[v]) {
      const std::size_t edge_index = adjacency_[v][next_[v]];
      Edge& edge = edges_[edge_index];
      if (edge.capacity <= 0 || level_[edge.to] != level_[v] + 1) continue;
      const int pushed = dfs(edge.to, sink, std::min(limit, edge.capacity));
      if (pushed > 0) {
        edge.capacity -= pushed;
        edges_[edge_index ^ 1].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Edge> edges_;
  std::vector<int> level_;
  std::vector<std::size_t> next_;
};

struct FlowLayout {
  std::size_t source;
  std::size_t sink;
  std::size_t task_base;  // task t -> vertex task_base + t
  std::size_t node_base;  // node n -> vertex node_base + n
};

Dinic build_flow(const AssignmentProblem& problem, FlowLayout& layout,
                 std::vector<std::vector<std::size_t>>& task_edge_indices) {
  const std::size_t num_tasks = problem.tasks.size();
  layout.source = 0;
  layout.task_base = 1;
  layout.node_base = 1 + num_tasks;
  layout.sink = 1 + num_tasks + problem.num_nodes;
  Dinic dinic(layout.sink + 1);
  task_edge_indices.assign(num_tasks, {});
  std::size_t edge_counter = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    dinic.add_edge(layout.source, layout.task_base + t, 1);
    edge_counter += 2;
  }
  for (std::size_t t = 0; t < num_tasks; ++t) {
    for (NodeId node : problem.tasks[t].locations) {
      task_edge_indices[t].push_back(edge_counter);
      dinic.add_edge(layout.task_base + t,
                     layout.node_base + static_cast<std::size_t>(node), 1);
      edge_counter += 2;
    }
  }
  for (std::size_t n = 0; n < problem.num_nodes; ++n) {
    dinic.add_edge(layout.node_base + n, layout.sink,
                   problem.capacity(static_cast<NodeId>(n)));
    edge_counter += 2;
  }
  return dinic;
}


/// Initial free-slot vector honoring per-node overrides.
std::vector<int> initial_free_slots(const AssignmentProblem& problem) {
  std::vector<int> free_slots(problem.num_nodes);
  for (std::size_t n = 0; n < problem.num_nodes; ++n) {
    free_slots[n] = problem.capacity(static_cast<NodeId>(n));
  }
  return free_slots;
}
/// Assigns still-unplaced tasks to any remaining slots, round-robin.
void fill_remote(const AssignmentProblem& problem, Assignment& assignment,
                 std::vector<int>& free_slots) {
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < problem.tasks.size(); ++t) {
    if (assignment.task_node[t] != kUnassignedNode) continue;
    std::size_t scanned = 0;
    while (scanned < problem.num_nodes && free_slots[cursor] == 0) {
      cursor = (cursor + 1) % problem.num_nodes;
      ++scanned;
    }
    if (free_slots[cursor] == 0) return;  // cluster saturated (>100% load)
    --free_slots[cursor];
    assignment.task_node[t] = static_cast<NodeId>(cursor);
    const auto& locations = problem.tasks[t].locations;
    assignment.is_local[t] =
        std::find(locations.begin(), locations.end(),
                  static_cast<NodeId>(cursor)) != locations.end();
  }
}

}  // namespace

std::size_t max_local_tasks(const AssignmentProblem& problem) {
  FlowLayout layout{};
  std::vector<std::vector<std::size_t>> task_edges;
  Dinic dinic = build_flow(problem, layout, task_edges);
  return static_cast<std::size_t>(dinic.max_flow(layout.source, layout.sink));
}

Assignment MaxMatchingScheduler::assign(const AssignmentProblem& problem,
                                        Rng& rng) {
  (void)rng;  // deterministic
  FlowLayout layout{};
  std::vector<std::vector<std::size_t>> task_edges;
  Dinic dinic = build_flow(problem, layout, task_edges);
  dinic.max_flow(layout.source, layout.sink);

  Assignment assignment;
  assignment.task_node.assign(problem.tasks.size(), kUnassignedNode);
  assignment.is_local.assign(problem.tasks.size(), false);
  std::vector<int> free_slots = initial_free_slots(problem);
  for (std::size_t t = 0; t < problem.tasks.size(); ++t) {
    for (std::size_t i = 0; i < task_edges[t].size(); ++i) {
      // Saturated forward edge (residual 0) means the matching used it.
      if (dinic.residual(task_edges[t][i]) == 0) {
        const NodeId node = problem.tasks[t].locations[i];
        assignment.task_node[t] = node;
        assignment.is_local[t] = true;
        --free_slots[static_cast<std::size_t>(node)];
        break;
      }
    }
  }
  fill_remote(problem, assignment, free_slots);
  check_assignment(problem, assignment);
  return assignment;
}

Assignment DelayScheduler::assign(const AssignmentProblem& problem, Rng& rng) {
  const int budget = skip_budget_ == kSweepBudget
                         ? static_cast<int>(problem.num_nodes)
                         : skip_budget_;
  Assignment assignment;
  assignment.task_node.assign(problem.tasks.size(), kUnassignedNode);
  assignment.is_local.assign(problem.tasks.size(), false);
  std::vector<int> free_slots = initial_free_slots(problem);

  // Per-node lists of local tasks, consumed head-first the way Hadoop
  // scans a job's task list (a cursor skips entries assigned elsewhere).
  std::vector<std::vector<std::size_t>> local_tasks(problem.num_nodes);
  std::vector<std::size_t> local_cursor(problem.num_nodes, 0);
  for (std::size_t t = 0; t < problem.tasks.size(); ++t) {
    for (NodeId node : problem.tasks[t].locations) {
      local_tasks[static_cast<std::size_t>(node)].push_back(t);
    }
  }

  std::size_t unassigned = problem.tasks.size();
  int total_free = 0;
  for (int f : free_slots) total_free += f;
  std::size_t next_remote = 0;  // job task list cursor for remote launches
  int skips = 0;
  // Heartbeats arrive round-robin from a random starting node, one slot
  // grant per beat. Every beat either assigns a task or advances the skip
  // counter toward the budget, so the loop terminates.
  std::size_t beat = rng.next_below(problem.num_nodes);
  while (unassigned > 0 && total_free > 0) {
    const std::size_t node = beat % problem.num_nodes;
    beat = (beat + 1) % problem.num_nodes;
    if (free_slots[node] == 0) continue;
    // Try a data-local launch on this node.
    auto& queue = local_tasks[node];
    auto& cursor = local_cursor[node];
    while (cursor < queue.size() &&
           assignment.task_node[queue[cursor]] != kUnassignedNode) {
      ++cursor;
    }
    if (cursor < queue.size()) {
      const std::size_t task = queue[cursor++];
      assignment.task_node[task] = static_cast<NodeId>(node);
      assignment.is_local[task] = true;
      --free_slots[node];
      --total_free;
      --unassigned;
      skips = 0;
      continue;
    }
    // No local work here: the job skips, unless its patience ran out.
    if (skips < budget) {
      ++skips;
      continue;
    }
    while (next_remote < problem.tasks.size() &&
           assignment.task_node[next_remote] != kUnassignedNode) {
      ++next_remote;
    }
    if (next_remote == problem.tasks.size()) break;
    assignment.task_node[next_remote] = static_cast<NodeId>(node);
    // A "remote" launch can still be lucky if this node holds the block of
    // the head-of-line task.
    const auto& locations = problem.tasks[next_remote].locations;
    assignment.is_local[next_remote] =
        std::find(locations.begin(), locations.end(),
                  static_cast<NodeId>(node)) != locations.end();
    --free_slots[node];
    --total_free;
    --unassigned;
  }
  check_assignment(problem, assignment);
  return assignment;
}

Assignment PeelingScheduler::assign(const AssignmentProblem& problem,
                                    Rng& rng) {
  (void)rng;  // deterministic
  Assignment assignment;
  assignment.task_node.assign(problem.tasks.size(), kUnassignedNode);
  assignment.is_local.assign(problem.tasks.size(), false);
  std::vector<int> free_slots = initial_free_slots(problem);

  // Unassigned tasks per stripe, for the stripe-aware tie break.
  std::size_t num_stripes = 0;
  for (const auto& task : problem.tasks) {
    num_stripes = std::max(num_stripes, task.stripe + 1);
  }
  std::vector<std::size_t> stripe_pending(num_stripes, 0);
  for (const auto& task : problem.tasks) ++stripe_pending[task.stripe];

  std::vector<bool> done(problem.tasks.size(), false);
  std::size_t remaining = problem.tasks.size();
  while (remaining > 0) {
    // Peel: find the live task with the fewest remaining local options.
    std::size_t best_task = problem.tasks.size();
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    std::size_t best_stripe_pending = 0;
    for (std::size_t t = 0; t < problem.tasks.size(); ++t) {
      if (done[t]) continue;
      std::size_t degree = 0;
      for (NodeId node : problem.tasks[t].locations) {
        if (free_slots[static_cast<std::size_t>(node)] > 0) ++degree;
      }
      if (degree == 0) continue;
      const std::size_t pending = stripe_pending[problem.tasks[t].stripe];
      const bool better =
          degree < best_degree ||
          (stripe_aware_ && degree == best_degree &&
           pending > best_stripe_pending);
      if (better) {
        best_task = t;
        best_degree = degree;
        best_stripe_pending = pending;
      }
    }
    if (best_task == problem.tasks.size()) break;  // no local option left

    // Assign to the feasible holder with the most spare capacity, so scarce
    // slots stay available for tasks that need them.
    NodeId best_node = kUnassignedNode;
    int best_free = 0;
    for (NodeId node : problem.tasks[best_task].locations) {
      const int free = free_slots[static_cast<std::size_t>(node)];
      if (free > best_free) {
        best_free = free;
        best_node = node;
      }
    }
    assignment.task_node[best_task] = best_node;
    assignment.is_local[best_task] = true;
    --free_slots[static_cast<std::size_t>(best_node)];
    --stripe_pending[problem.tasks[best_task].stripe];
    done[best_task] = true;
    --remaining;
  }

  fill_remote(problem, assignment, free_slots);
  check_assignment(problem, assignment);
  return assignment;
}

}  // namespace dblrep::sched
