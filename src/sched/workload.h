// Workload generation: turns a code scheme + cluster size + job size into
// an AssignmentProblem (and, for the MapReduce simulator, the placement of
// every block replica).
//
// Files are striped: each stripe's placement group is a uniformly random
// set of `code length` cluster nodes, the code's layout maps block replicas
// onto the group, and the job processes the file's data blocks in order
// (one map task each). A job at load L on N nodes with mu slots gets
// round(L * mu * N) tasks, possibly ending mid-stripe -- exactly how a
// Terasort input smaller than a full stripe multiple behaves.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "ec/code.h"
#include "sched/problem.h"

namespace dblrep::sched {

/// Placement of one stripe: group[i] = cluster node playing code-node i.
struct StripePlacement {
  std::vector<NodeId> group;
};

struct Workload {
  AssignmentProblem problem;
  std::vector<StripePlacement> stripes;
};

/// Builds the task-assignment problem for a job of `num_tasks` map tasks
/// over a `code`-encoded file on `num_nodes` nodes with `slots_per_node`
/// map slots. Placement groups are sampled uniformly per stripe.
Workload make_workload(const ec::CodeScheme& code, std::size_t num_nodes,
                       int slots_per_node, std::size_t num_tasks, Rng& rng);

/// Convenience: task count for a given offered load (Section 3.2).
std::size_t tasks_for_load(double load, std::size_t num_nodes,
                           int slots_per_node);

}  // namespace dblrep::sched
