#include "sched/problem.h"

#include <algorithm>

namespace dblrep::sched {

std::size_t Assignment::local_count() const {
  return static_cast<std::size_t>(
      std::count(is_local.begin(), is_local.end(), true));
}

std::size_t Assignment::assigned_count() const {
  return static_cast<std::size_t>(task_node.size()) -
         static_cast<std::size_t>(
             std::count(task_node.begin(), task_node.end(), kUnassignedNode));
}

double Assignment::locality() const {
  const std::size_t assigned = assigned_count();
  if (assigned == 0) return 1.0;
  return static_cast<double>(local_count()) / static_cast<double>(assigned);
}

void check_assignment(const AssignmentProblem& problem,
                      const Assignment& assignment) {
  DBLREP_CHECK_EQ(assignment.task_node.size(), problem.tasks.size());
  DBLREP_CHECK_EQ(assignment.is_local.size(), problem.tasks.size());
  std::vector<int> used(problem.num_nodes, 0);
  for (std::size_t t = 0; t < problem.tasks.size(); ++t) {
    const NodeId node = assignment.task_node[t];
    if (node == kUnassignedNode) {
      DBLREP_CHECK_MSG(!assignment.is_local[t],
                       "unassigned task marked local");
      continue;
    }
    DBLREP_CHECK_GE(node, 0);
    DBLREP_CHECK_LT(static_cast<std::size_t>(node), problem.num_nodes);
    ++used[static_cast<std::size_t>(node)];
    const auto& locations = problem.tasks[t].locations;
    const bool holds_replica =
        std::find(locations.begin(), locations.end(), node) != locations.end();
    DBLREP_CHECK_EQ(assignment.is_local[t], holds_replica);
  }
  for (std::size_t n = 0; n < problem.num_nodes; ++n) {
    DBLREP_CHECK_LE(used[n], problem.capacity(static_cast<NodeId>(n)));
  }
}

}  // namespace dblrep::sched
