#include "sched/workload.h"

#include <cmath>

namespace dblrep::sched {

Workload make_workload(const ec::CodeScheme& code, std::size_t num_nodes,
                       int slots_per_node, std::size_t num_tasks, Rng& rng) {
  DBLREP_CHECK_GE(num_nodes, code.num_nodes());
  DBLREP_CHECK_GT(slots_per_node, 0);
  Workload workload;
  workload.problem.num_nodes = num_nodes;
  workload.problem.slots_per_node = slots_per_node;

  const std::size_t k = code.data_blocks();
  while (workload.problem.tasks.size() < num_tasks) {
    // Sample this stripe's placement group.
    StripePlacement placement;
    for (auto index : rng.sample_without_replacement(num_nodes, code.num_nodes())) {
      placement.group.push_back(static_cast<NodeId>(index));
    }
    const std::size_t stripe_id = workload.stripes.size();
    workload.stripes.push_back(placement);

    // One map task per data block, until the job size is reached (the last
    // stripe may be partially read).
    for (std::size_t block = 0;
         block < k && workload.problem.tasks.size() < num_tasks; ++block) {
      TaskInfo task;
      task.stripe = stripe_id;
      task.symbol = block;
      for (std::size_t slot : code.layout().slots_of_symbol(block)) {
        const ec::NodeIndex local = code.layout().node_of_slot(slot);
        task.locations.push_back(
            placement.group[static_cast<std::size_t>(local)]);
      }
      workload.problem.tasks.push_back(std::move(task));
    }
  }
  return workload;
}

std::size_t tasks_for_load(double load, std::size_t num_nodes,
                           int slots_per_node) {
  DBLREP_CHECK_GT(load, 0.0);
  const double slots =
      static_cast<double>(num_nodes) * static_cast<double>(slots_per_node);
  const auto tasks = static_cast<std::size_t>(std::llround(load * slots));
  return std::max<std::size_t>(tasks, 1);
}

}  // namespace dblrep::sched
