// Polygon codes: the paper's pentagon (n=5) and heptagon (n=7), generalized
// to any complete graph K_n, n >= 3.
//
// Construction (Section 2.1): take the C(n,2) edges of K_n. The first
// C(n,2)-1 edges carry the data blocks verbatim; the last edge carries the
// XOR parity of all data blocks. Each edge-block is stored on *both* of its
// endpoint nodes, so every node hosts n-1 blocks and every block exists
// exactly twice ("inherent double replication").
//
// Properties (all verified by tests):
//  * any n-2 nodes suffice to decode (the pentagon's "any 3 of 5");
//  * resilient to any 2 node failures, never to 3 (for n >= 4);
//  * single-node repair is pure repair-by-transfer: n-1 plain copies;
//  * two-node repair costs 3(n-2)+1 block transfers using partial parities
//    (10 for the pentagon, the number in Section 2.1);
//  * degraded read of a doubly-lost block costs n-2 partial-parity sends
//    (3 for the pentagon vs 9 for (10,9) RAID+m, Section 3.1).
//
// This is the repair-by-transfer minimum-bandwidth-regenerating (MBR) code
// of Shah et al. 2012 with (n, k_mbr = n-2, d = n-1).
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class PolygonCode final : public CodeScheme {
 public:
  /// n >= 3 nodes. n=5 is the pentagon, n=7 the heptagon.
  explicit PolygonCode(int n);

  int n() const { return n_; }

  /// Edge index (0-based, lexicographic) of the node pair {a, b}, a != b.
  /// Edge e's block is stored on nodes a and b.
  std::size_t edge_symbol(NodeIndex a, NodeIndex b) const;

  /// The two endpoint nodes of a symbol's edge.
  std::pair<NodeIndex, NodeIndex> symbol_edge(std::size_t symbol) const;

  /// The symbol shared by two nodes (the block that is fully lost when both
  /// fail) -- same as edge_symbol, named for readability at call sites.
  std::size_t shared_symbol(NodeIndex a, NodeIndex b) const {
    return edge_symbol(a, b);
  }

  /// Number of edges / distinct blocks: C(n,2).
  static std::size_t num_edges(int n);

 private:
  int n_;
};

}  // namespace dblrep::ec
