// Stripe layout: which coded block lives on which node.
//
// Terminology used throughout the library (matching the paper's Section 2):
//
//  * A stripe encodes k *data blocks* into a set of distinct *symbols*
//    (data symbols + parity symbols).
//  * Each symbol is stored in one or more *slots*; a slot is a physical
//    block replica placed on a specific code-local node. Codes with
//    "inherent double replication" store every symbol in exactly two slots.
//  * Nodes are code-local indices 0..num_nodes-1; the cluster layer maps
//    them onto physical machines.
//
// The array-code property the paper analyzes -- multiple slots of the same
// stripe on one node -- is fully captured here: slots_on_node(n) can have
// size > 1 (4 for the pentagon, 6 for the heptagon).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"

namespace dblrep::ec {

/// Code-local node index.
using NodeIndex = int;

/// Virtual node index used as the destination of degraded reads (a client
/// that is not part of the stripe's placement group).
inline constexpr NodeIndex kClientNode = -1;

/// Immutable slot->node and slot->symbol maps for one code.
class StripeLayout {
 public:
  StripeLayout() = default;

  /// slot_nodes[s] = node of slot s; slot_symbols[s] = symbol carried by s.
  StripeLayout(std::size_t num_nodes, std::size_t num_symbols,
               std::vector<NodeIndex> slot_nodes,
               std::vector<std::size_t> slot_symbols);

  std::size_t num_slots() const { return slot_nodes_.size(); }
  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t num_symbols() const { return num_symbols_; }

  NodeIndex node_of_slot(std::size_t slot) const;
  std::size_t symbol_of_slot(std::size_t slot) const;

  /// Slots placed on `node`, ascending.
  const std::vector<std::size_t>& slots_on_node(NodeIndex node) const;

  /// Slots carrying `symbol` (its replicas), ascending.
  const std::vector<std::size_t>& slots_of_symbol(std::size_t symbol) const;

  /// Replication degree of a symbol (number of slots carrying it).
  std::size_t symbol_replication(std::size_t symbol) const {
    return slots_of_symbol(symbol).size();
  }

  /// Maximum number of slots any single node hosts.
  std::size_t max_slots_per_node() const;

  std::string to_string() const;

 private:
  std::size_t num_nodes_ = 0;
  std::size_t num_symbols_ = 0;
  std::vector<NodeIndex> slot_nodes_;
  std::vector<std::size_t> slot_symbols_;
  std::vector<std::vector<std::size_t>> node_slots_;
  std::vector<std::vector<std::size_t>> symbol_slots_;
};

}  // namespace dblrep::ec
