#include "ec/code.h"

#include <algorithm>
#include <map>

#include "ec/subchunk.h"

namespace dblrep::ec {

CodeScheme::CodeScheme(CodeParams params, StripeLayout layout,
                       gf::Matrix generator)
    : params_(std::move(params)),
      layout_(std::move(layout)),
      generator_(std::move(generator)) {
  DBLREP_CHECK_GE(params_.sub_chunks, 1u);
  const std::size_t units = params_.data_units();
  DBLREP_CHECK_EQ(generator_.rows(), params_.num_symbols);
  DBLREP_CHECK_EQ(generator_.cols(), units);
  DBLREP_CHECK_EQ(layout_.num_symbols(), params_.num_symbols);
  DBLREP_CHECK_EQ(layout_.num_nodes(), params_.num_nodes);
  DBLREP_CHECK_EQ(layout_.num_slots(), params_.stored_blocks);
  // Systematic prefix: symbol u == data unit u for u < k*alpha.
  for (std::size_t i = 0; i < units; ++i) {
    for (std::size_t j = 0; j < units; ++j) {
      DBLREP_CHECK_EQ(static_cast<int>(generator_.at(i, j)),
                      static_cast<int>(i == j ? 1 : 0));
    }
  }
  // The generator must have full column rank, otherwise the code cannot
  // even decode from a fault-free stripe.
  DBLREP_CHECK_EQ(generator_.rank(), units);
  parity_coeffs_.reserve((params_.num_symbols - units) * units);
  for (std::size_t j = units; j < params_.num_symbols; ++j) {
    const auto row = generator_.row(j);
    parity_coeffs_.insert(parity_coeffs_.end(), row.begin(), row.end());
  }
}

void CodeScheme::encode_into(std::span<const ByteSpan> data,
                             std::span<const MutableByteSpan> symbols) const {
  const std::size_t units = params_.data_units();
  DBLREP_CHECK_EQ(data.size(), units);
  DBLREP_CHECK_EQ(symbols.size(), params_.num_symbols);
  const std::size_t unit_size = data.empty() ? 0 : data[0].size();
  for (std::size_t i = 0; i < units; ++i) {
    DBLREP_CHECK_EQ(data[i].size(), unit_size);
    DBLREP_CHECK_EQ(symbols[i].size(), unit_size);
    if (symbols[i].data() != data[i].data() && unit_size != 0) {
      std::copy(data[i].begin(), data[i].end(), symbols[i].begin());
    }
  }
  gf::matrix_apply(parity_coeffs_, data, symbols.subspan(units));
}

std::vector<Buffer> CodeScheme::encode_symbols(
    std::span<const Buffer> data) const {
  DBLREP_CHECK_EQ(data.size(), params_.data_blocks);
  const std::size_t block_size = data.empty() ? 0 : data[0].size();
  for (const auto& block : data) DBLREP_CHECK_EQ(block.size(), block_size);
  const std::size_t alpha = params_.sub_chunks;
  DBLREP_CHECK_EQ(block_size % alpha, 0u);
  const std::size_t unit_size = block_size / alpha;

  std::vector<Buffer> symbols(params_.num_symbols);
  std::vector<ByteSpan> data_views;
  data_views.reserve(params_.data_units());
  for (const auto& block : data) {
    for (std::size_t a = 0; a < alpha; ++a) {
      data_views.emplace_back(
          ByteSpan(block).subspan(a * unit_size, unit_size));
    }
  }
  std::vector<MutableByteSpan> symbol_views;
  symbol_views.reserve(params_.num_symbols);
  for (std::size_t j = 0; j < params_.num_symbols; ++j) {
    symbols[j].resize(unit_size);
    symbol_views.emplace_back(symbols[j]);
  }
  encode_into(data_views, symbol_views);
  return symbols;
}

std::vector<Buffer> CodeScheme::encode(std::span<const Buffer> data) const {
  const auto symbols = encode_symbols(data);
  std::vector<Buffer> slots(layout_.num_slots());
  for (std::size_t s = 0; s < layout_.num_slots(); ++s) {
    slots[s] = symbols[layout_.symbol_of_slot(s)];
  }
  return slots;
}

std::vector<std::pair<std::size_t, std::size_t>>
CodeScheme::surviving_symbol_slots(const std::set<NodeIndex>& failed) const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t sym = 0; sym < params_.num_symbols; ++sym) {
    for (std::size_t slot : layout_.slots_of_symbol(sym)) {
      if (!failed.contains(layout_.node_of_slot(slot))) {
        out.emplace_back(sym, slot);
        break;
      }
    }
  }
  return out;
}

bool CodeScheme::is_recoverable(const std::set<NodeIndex>& failed) const {
  const std::size_t units = params_.data_units();
  RowSpace space(units);
  for (const auto& [sym, slot] : surviving_symbol_slots(failed)) {
    (void)slot;
    space.add(generator_.row(sym));
    if (space.rank() == units) return true;
  }
  return space.rank() == units;
}

Result<std::vector<Buffer>> CodeScheme::decode(const SlotStore& store,
                                               std::size_t block_size) const {
  const std::size_t k = params_.data_blocks;
  const std::size_t alpha = params_.sub_chunks;
  const std::size_t units = params_.data_units();
  if (block_size % alpha != 0) {
    return invalid_argument_error("decode: block size not divisible by alpha");
  }
  const std::size_t unit_size = block_size / alpha;

  // Locate one available slot per symbol (a symbol holds one unit).
  std::vector<std::optional<std::size_t>> symbol_slot(params_.num_symbols);
  for (const auto& [slot, bytes] : store) {
    if (slot >= layout_.num_slots()) {
      return invalid_argument_error("store contains unknown slot");
    }
    if (bytes.size() != unit_size) {
      return invalid_argument_error("decode: block size mismatch");
    }
    auto& entry = symbol_slot[layout_.symbol_of_slot(slot)];
    if (!entry) entry = slot;
  }

  // Fast path: every systematic unit is present -- reassemble blocks.
  bool all_systematic = true;
  for (std::size_t u = 0; u < units; ++u) {
    if (!symbol_slot[u]) {
      all_systematic = false;
      break;
    }
  }
  std::vector<Buffer> data(k);
  if (all_systematic) {
    for (std::size_t i = 0; i < k; ++i) {
      if (alpha == 1) {
        data[i] = store.at(*symbol_slot[i]);
        continue;
      }
      data[i].resize(block_size);
      for (std::size_t a = 0; a < alpha; ++a) {
        const auto& unit = store.at(*symbol_slot[i * alpha + a]);
        std::copy(unit.begin(), unit.end(),
                  data[i].begin() + static_cast<std::ptrdiff_t>(a * unit_size));
      }
    }
    return data;
  }

  // General path: greedy basis of surviving rows, then solve.
  RowSpace space(units);
  std::vector<std::size_t> basis_symbols;
  for (std::size_t sym = 0;
       sym < params_.num_symbols && basis_symbols.size() < units; ++sym) {
    if (!symbol_slot[sym]) continue;
    if (space.add(generator_.row(sym))) basis_symbols.push_back(sym);
  }
  if (basis_symbols.size() < units) {
    return data_loss_error("stripe not recoverable from surviving blocks");
  }
  auto inverse = generator_.select_rows(basis_symbols).inverse();
  if (!inverse.is_ok()) return inverse.status();

  // One fused pass: data units = inverse * basis-symbol units, written
  // straight into their sub-chunk positions inside the output blocks.
  std::vector<ByteSpan> sources;
  sources.reserve(units);
  for (std::size_t j = 0; j < units; ++j) {
    sources.emplace_back(store.at(*symbol_slot[basis_symbols[j]]));
  }
  for (std::size_t i = 0; i < k; ++i) data[i].resize(block_size);
  std::vector<gf::Elem> coeffs(units * units);
  std::vector<MutableByteSpan> outputs;
  outputs.reserve(units);
  for (std::size_t u = 0; u < units; ++u) {
    outputs.emplace_back(MutableByteSpan(data[u / alpha])
                             .subspan((u % alpha) * unit_size, unit_size));
    for (std::size_t j = 0; j < units; ++j) {
      coeffs[u * units + j] = inverse->at(u, j);
    }
  }
  gf::matrix_apply(coeffs, sources, outputs);
  return data;
}

Result<RepairPlan> CodeScheme::plan_node_repair(NodeIndex failed) const {
  return plan_multi_node_repair({failed});
}

Result<RepairPlan> CodeScheme::plan_multi_node_repair(
    const std::set<NodeIndex>& failed) const {
  for (NodeIndex node : failed) {
    DBLREP_CHECK_GE(node, 0);
    DBLREP_CHECK_LT(static_cast<std::size_t>(node), params_.num_nodes);
  }
  if (!is_recoverable(failed)) {
    return data_loss_error("failure pattern exceeds code tolerance");
  }

  RepairPlan plan;
  // Slots currently readable: everything on live nodes; grows as replacements
  // are rebuilt in plan order.
  std::vector<bool> available(layout_.num_slots());
  for (std::size_t s = 0; s < layout_.num_slots(); ++s) {
    available[s] = !failed.contains(layout_.node_of_slot(s));
  }
  auto live_slot_of = [&](std::size_t symbol) -> std::optional<std::size_t> {
    for (std::size_t slot : layout_.slots_of_symbol(symbol)) {
      if (available[slot]) return slot;
    }
    return std::nullopt;
  };

  // Pass 1 over each failed node: copy every slot whose symbol still has a
  // readable replica (repair-by-transfer). Record the rest.
  std::vector<std::pair<std::size_t, NodeIndex>> doubly_lost;  // (slot, node)
  for (NodeIndex node : failed) {
    for (std::size_t slot : layout_.slots_on_node(node)) {
      const std::size_t symbol = layout_.symbol_of_slot(slot);
      if (const auto src = live_slot_of(symbol)) {
        plan.aggregates.push_back(
            {layout_.node_of_slot(*src), node, {{*src, 1}}, {}});
        plan.reconstructions.push_back(
            {symbol, slot, {{plan.aggregates.size() - 1, 1}}, {}});
        available[slot] = true;
      } else {
        doubly_lost.emplace_back(slot, node);
      }
    }
  }

  // Pass 2: rebuild fully-lost symbols via a basis solve, folding per-node
  // contributions into partial parities. Process in slot order so that once
  // a symbol is rebuilt, later replicas of it become plain copies.
  for (const auto& [slot, node] : doubly_lost) {
    if (available[slot]) continue;  // rebuilt as replica of earlier step
    const std::size_t symbol = layout_.symbol_of_slot(slot);
    if (const auto src = live_slot_of(symbol)) {
      // A replica was rebuilt earlier in this plan.
      plan.aggregates.push_back(
          {layout_.node_of_slot(*src), node, {{*src, 1}}, {}});
      plan.reconstructions.push_back(
          {symbol, slot, {{plan.aggregates.size() - 1, 1}}, {}});
      available[slot] = true;
      continue;
    }

    // Greedy basis over available symbols. Preference order: slots already
    // on the destination node (zero network cost), then slots on originally
    // live nodes (stable sources, and folding them per node yields the
    // paper's partial parities), then slots rebuilt on other replacements.
    std::vector<std::pair<std::size_t, std::size_t>> candidates;  // (sym, slot)
    {
      std::vector<bool> seen(params_.num_symbols, false);
      auto consider = [&](std::size_t s) {
        const std::size_t sym = layout_.symbol_of_slot(s);
        if (!available[s] || seen[sym]) return;
        seen[sym] = true;
        candidates.emplace_back(sym, s);
      };
      for (std::size_t s : layout_.slots_on_node(node)) consider(s);
      for (std::size_t s = 0; s < layout_.num_slots(); ++s) {
        if (!failed.contains(layout_.node_of_slot(s))) consider(s);
      }
      for (std::size_t s = 0; s < layout_.num_slots(); ++s) consider(s);
    }
    RowSpace space(params_.data_units());
    std::vector<std::size_t> basis_symbols;
    std::vector<std::size_t> basis_slots;
    for (const auto& [sym, src_slot] : candidates) {
      if (space.rank() == params_.data_units()) break;
      if (space.add(generator_.row(sym))) {
        basis_symbols.push_back(sym);
        basis_slots.push_back(src_slot);
      }
    }
    // Express the lost symbol over the basis.
    auto coeffs = express_over_rows(generator_, basis_symbols, symbol);
    if (!coeffs.is_ok()) return coeffs.status();

    // Fold contributions per source node.
    std::map<NodeIndex, std::vector<PartialTerm>> per_node;
    std::vector<PartialTerm> local_terms;
    for (std::size_t j = 0; j < basis_symbols.size(); ++j) {
      const gf::Elem coeff = (*coeffs)[j];
      if (coeff == 0) continue;
      const NodeIndex src_node = layout_.node_of_slot(basis_slots[j]);
      if (src_node == node) {
        local_terms.push_back({basis_slots[j], coeff});
      } else {
        per_node[src_node].push_back({basis_slots[j], coeff});
      }
    }
    Reconstruction rec;
    rec.symbol = symbol;
    rec.dest_slot = slot;
    rec.local_terms = std::move(local_terms);
    for (auto& [src_node, terms] : per_node) {
      plan.aggregates.push_back({src_node, node, std::move(terms), {}});
      rec.from_aggregates.emplace_back(plan.aggregates.size() - 1, 1);
    }
    plan.reconstructions.push_back(std::move(rec));
    available[slot] = true;
  }
  return plan;
}

Result<RepairPlan> CodeScheme::plan_degraded_read(
    std::size_t symbol, const std::set<NodeIndex>& failed) const {
  return generic_degraded_read(symbol, failed);
}

Result<RepairPlan> CodeScheme::plan_degraded_block(
    std::size_t block, const std::set<NodeIndex>& failed) const {
  DBLREP_CHECK_LT(block, params_.data_blocks);
  const std::size_t alpha = params_.sub_chunks;
  if (alpha == 1) return plan_degraded_read(block, failed);

  // Merge the per-unit degraded-read plans: client reconstructions stay in
  // unit order, aggregate indices shift by the units already merged.
  RepairPlan plan;
  for (std::size_t a = 0; a < alpha; ++a) {
    auto unit_plan = plan_degraded_read(block * alpha + a, failed);
    if (!unit_plan.is_ok()) return unit_plan.status();
    const std::size_t base = plan.aggregates.size();
    for (auto& send : unit_plan->aggregates) {
      for (auto& [index, coeff] : send.from_aggregates) index += base;
      plan.aggregates.push_back(std::move(send));
    }
    for (auto& rec : unit_plan->reconstructions) {
      for (auto& [index, coeff] : rec.from_aggregates) index += base;
      plan.reconstructions.push_back(std::move(rec));
    }
  }
  return plan;
}

Result<RepairPlan> CodeScheme::generic_degraded_read(
    std::size_t symbol, const std::set<NodeIndex>& failed) const {
  DBLREP_CHECK_LT(symbol, params_.num_symbols);
  RepairPlan plan;
  // If any replica survives, one plain copy suffices.
  for (std::size_t slot : layout_.slots_of_symbol(symbol)) {
    if (!failed.contains(layout_.node_of_slot(slot))) {
      plan.aggregates.push_back(
          {layout_.node_of_slot(slot), kClientNode, {{slot, 1}}, {}});
      plan.reconstructions.push_back(
          {symbol, Reconstruction::kClientSlot, {{0, 1}}, {}});
      return plan;
    }
  }

  // On-the-fly repair: express the symbol over a surviving basis and fold
  // per-node partial parities (Section 3.1 of the paper).
  const auto survivors = surviving_symbol_slots(failed);
  RowSpace space(params_.data_units());
  std::vector<std::size_t> basis_symbols;
  std::vector<std::size_t> basis_slots;
  for (const auto& [sym, slot] : survivors) {
    if (space.rank() == params_.data_units()) break;
    if (space.add(generator_.row(sym))) {
      basis_symbols.push_back(sym);
      basis_slots.push_back(slot);
    }
  }
  if (basis_symbols.size() < params_.data_units()) {
    return data_loss_error("degraded read: symbol unrecoverable");
  }
  auto coeffs = express_over_rows(generator_, basis_symbols, symbol);
  if (!coeffs.is_ok()) return coeffs.status();

  std::map<NodeIndex, std::vector<PartialTerm>> per_node;
  for (std::size_t j = 0; j < basis_symbols.size(); ++j) {
    const gf::Elem coeff = (*coeffs)[j];
    if (coeff == 0) continue;
    per_node[layout_.node_of_slot(basis_slots[j])].push_back(
        {basis_slots[j], coeff});
  }
  Reconstruction rec;
  rec.symbol = symbol;
  rec.dest_slot = Reconstruction::kClientSlot;
  for (auto& [src_node, terms] : per_node) {
    plan.aggregates.push_back({src_node, kClientNode, std::move(terms), {}});
    rec.from_aggregates.emplace_back(plan.aggregates.size() - 1, 1);
  }
  plan.reconstructions.push_back(std::move(rec));
  return plan;
}

Status CodeScheme::verify_codeword(const SlotStore& store,
                                   std::size_t block_size) const {
  // Replicas of a symbol must be byte-identical.
  for (std::size_t sym = 0; sym < params_.num_symbols; ++sym) {
    const Buffer* first = nullptr;
    for (std::size_t slot : layout_.slots_of_symbol(sym)) {
      const auto it = store.find(slot);
      if (it == store.end()) continue;
      if (!first) {
        first = &it->second;
      } else if (*first != it->second) {
        return corruption_error("replica mismatch for symbol " +
                                std::to_string(sym));
      }
    }
  }
  // Parities must be consistent with the decoded data.
  auto data = decode(store, block_size);
  if (!data.is_ok()) return data.status();
  const auto symbols = encode_symbols(*data);
  for (const auto& [slot, bytes] : store) {
    if (symbols[layout_.symbol_of_slot(slot)] != bytes) {
      return corruption_error("slot " + std::to_string(slot) +
                              " inconsistent with stripe data");
    }
  }
  return Status::ok();
}

std::vector<Buffer> chunk_data(ByteSpan data, std::size_t k,
                               std::size_t block_size) {
  DBLREP_CHECK_GT(k, 0u);
  DBLREP_CHECK_GT(block_size, 0u);
  DBLREP_CHECK_LE(data.size(), k * block_size);
  std::vector<Buffer> blocks(k);
  for (std::size_t i = 0; i < k; ++i) {
    blocks[i].assign(block_size, 0);
    const std::size_t begin = i * block_size;
    if (begin < data.size()) {
      const std::size_t len = std::min(block_size, data.size() - begin);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(begin), len,
                  blocks[i].begin());
    }
  }
  return blocks;
}

}  // namespace dblrep::ec
