#include "ec/replication.h"

namespace dblrep::ec {

namespace {

CodeParams make_params(int replicas) {
  DBLREP_CHECK_GE(replicas, 1);
  CodeParams params;
  params.name = std::to_string(replicas) + "-rep";
  params.data_blocks = 1;
  params.stored_blocks = static_cast<std::size_t>(replicas);
  params.num_symbols = 1;
  params.num_nodes = static_cast<std::size_t>(replicas);
  params.fault_tolerance = replicas - 1;
  return params;
}

StripeLayout make_layout(int replicas) {
  std::vector<NodeIndex> slot_nodes;
  std::vector<std::size_t> slot_symbols;
  for (int r = 0; r < replicas; ++r) {
    slot_nodes.push_back(r);
    slot_symbols.push_back(0);
  }
  return {static_cast<std::size_t>(replicas), 1, std::move(slot_nodes),
          std::move(slot_symbols)};
}

}  // namespace

ReplicationCode::ReplicationCode(int replicas)
    : CodeScheme(make_params(replicas), make_layout(replicas),
                 gf::Matrix::identity(1)),
      replicas_(replicas) {}

}  // namespace dblrep::ec
