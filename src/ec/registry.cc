#include "ec/registry.h"

#include <charconv>

#include "ec/clay.h"
#include "ec/local_polygon.h"
#include "ec/piggyback.h"
#include "ec/polygon.h"
#include "ec/raid_mirror.h"
#include "ec/replication.h"
#include "ec/rs.h"

namespace dblrep::ec {

namespace {

/// Parses a decimal integer; nullopt on any non-numeric content.
std::optional<int> parse_int(std::string_view text) {
  int value = 0;
  const auto [ptr, err] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (err != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

Result<std::unique_ptr<CodeScheme>> make_code(const std::string& spec) {
  if (spec == "pentagon") {
    return std::unique_ptr<CodeScheme>(std::make_unique<PolygonCode>(5));
  }
  if (spec == "heptagon") {
    return std::unique_ptr<CodeScheme>(std::make_unique<PolygonCode>(7));
  }
  if (spec == "heptagon-local") {
    return std::unique_ptr<CodeScheme>(std::make_unique<LocalPolygonCode>(7));
  }
  if (spec == "clay-6-4") {
    return std::unique_ptr<CodeScheme>(std::make_unique<ClayCode>());
  }
  if (spec == "pgy-10-4") {
    return std::unique_ptr<CodeScheme>(std::make_unique<PiggybackCode>());
  }
  if (spec.ends_with("-rep")) {
    if (const auto r = parse_int(spec.substr(0, spec.size() - 4)); r && *r >= 1) {
      return std::unique_ptr<CodeScheme>(std::make_unique<ReplicationCode>(*r));
    }
  }
  if (spec.starts_with("polygon-")) {
    std::string_view rest = std::string_view(spec).substr(8);
    const bool local = rest.ends_with("-local");
    if (local) rest = rest.substr(0, rest.size() - 6);
    if (const auto n = parse_int(rest); n && *n >= 3) {
      if (local) {
        return std::unique_ptr<CodeScheme>(
            std::make_unique<LocalPolygonCode>(*n));
      }
      return std::unique_ptr<CodeScheme>(std::make_unique<PolygonCode>(*n));
    }
  }
  if (spec.starts_with("raidm-")) {
    if (const auto k = parse_int(std::string_view(spec).substr(6)); k && *k >= 2) {
      return std::unique_ptr<CodeScheme>(std::make_unique<RaidMirrorCode>(*k));
    }
  }
  if (spec.starts_with("rs-")) {
    const std::string_view rest = std::string_view(spec).substr(3);
    const auto dash = rest.find('-');
    if (dash != std::string_view::npos) {
      const auto k = parse_int(rest.substr(0, dash));
      const auto m = parse_int(rest.substr(dash + 1));
      if (k && m && *k >= 1 && *m >= 1 && *k + *m <= 256) {
        return std::unique_ptr<CodeScheme>(std::make_unique<RsCode>(*k, *m));
      }
    }
  }
  return invalid_argument_error("unknown code spec: " + spec);
}

std::vector<std::string> paper_code_specs() {
  return {"3-rep",          "2-rep",    "pentagon", "heptagon",
          "heptagon-local", "raidm-9",  "raidm-11"};
}

}  // namespace dblrep::ec
