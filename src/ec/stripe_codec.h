// StripeCodec: streaming, arena-backed encoder over a CodeScheme.
//
// CodeScheme::encode() allocates one vector<Buffer> per call and copies
// systematic blocks; fine for tests, wrong for the data plane. The codec
// instead:
//
//  * serves systematic symbols as zero-copy views straight into the
//    caller's contiguous file data (only the final, zero-padded partial
//    stripe is staged through the arena),
//  * computes all parity symbols with one fused gf::matrix_apply pass over
//    the scheme's cached parity coefficient block,
//  * recycles a single StripeArena across stripes, so encoding an N-stripe
//    file performs O(1) heap allocations instead of O(N * num_symbols).
//
// One codec instance is not thread-safe; give each writer thread its own
// (they share the CodeScheme, which is immutable after construction).
#pragma once

#include <functional>
#include <span>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/status.h"
#include "ec/code.h"

namespace dblrep::ec {

class StripeCodec {
 public:
  explicit StripeCodec(const CodeScheme& code) : code_(&code) {}

  StripeCodec(const StripeCodec&) = delete;
  StripeCodec& operator=(const StripeCodec&) = delete;

  const CodeScheme& code() const { return *code_; }

  /// Logical bytes one stripe carries.
  std::size_t stripe_bytes(std::size_t block_size) const {
    return code_->data_blocks() * block_size;
  }

  /// Stripes needed to hold `length` logical bytes.
  std::size_t stripe_count(std::size_t length, std::size_t block_size) const;

  /// Encodes one stripe. `stripe_data` holds up to stripe_bytes() logical
  /// bytes (shorter inputs are zero-padded). Returns num_symbols views in
  /// symbol order; systematic views alias `stripe_data` where possible,
  /// parity views point into the arena. All views are invalidated by the
  /// next encode_stripe()/encode_file() call.
  std::span<const ByteSpan> encode_stripe(ByteSpan stripe_data,
                                          std::size_t block_size);

  /// Streams a whole file through the codec: splits `data` into stripes,
  /// encodes each, and hands the symbol views to `sink(stripe_index,
  /// symbols)` before the arena is recycled for the next stripe. Stops and
  /// propagates the first sink error.
  Status encode_file(
      ByteSpan data, std::size_t block_size,
      const std::function<Status(std::size_t, std::span<const ByteSpan>)>&
          sink);

 private:
  const CodeScheme* code_;
  StripeArena arena_;
  std::vector<ByteSpan> data_views_;
  std::vector<MutableByteSpan> parity_views_;
  std::vector<ByteSpan> symbol_views_;
};

}  // namespace dblrep::ec
