// StripeCodec: streaming, arena-backed encoder over a CodeScheme.
//
// CodeScheme::encode() allocates one vector<Buffer> per call and copies
// systematic blocks; fine for tests, wrong for the data plane. The codec
// instead:
//
//  * serves systematic symbols as zero-copy views straight into the
//    caller's contiguous file data (only the final, zero-padded partial
//    stripe is staged through the arena),
//  * computes all parity symbols with one fused gf::matrix_apply pass over
//    the scheme's cached parity coefficient block,
//  * fuses encode across stripes: encode_batch() runs one
//    gf::matrix_apply_batch over many stripes' sources at once, so the
//    generator-matrix coefficient block and its per-coefficient tables
//    stay hot in L1/L2 across the batch instead of being re-streamed per
//    stripe, and per-call setup (views, arena bookkeeping, dispatch) is
//    paid once per batch,
//  * recycles a single StripeArena across batches, so encoding an N-stripe
//    file performs O(1) heap allocations instead of O(N * num_symbols).
//
// One codec instance is not thread-safe; give each writer thread its own
// (they share the CodeScheme, which is immutable after construction).
#pragma once

#include <functional>
#include <span>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/status.h"
#include "ec/code.h"

namespace dblrep::ec {

class StripeCodec {
 public:
  /// Cross-stripe batching targets roughly this much logical data per
  /// fused kernel call; small stripes (tests, small blocks) batch up to
  /// kMaxBatchStripes, large stripes degrade gracefully to one per call.
  static constexpr std::size_t kBatchTargetBytes = 4 * 1024 * 1024;
  static constexpr std::size_t kMaxBatchStripes = 32;

  explicit StripeCodec(const CodeScheme& code) : code_(&code) {}

  StripeCodec(const StripeCodec&) = delete;
  StripeCodec& operator=(const StripeCodec&) = delete;

  const CodeScheme& code() const { return *code_; }

  /// Logical bytes one stripe carries.
  std::size_t stripe_bytes(std::size_t block_size) const {
    return code_->data_blocks() * block_size;
  }

  /// Stripes needed to hold `length` logical bytes.
  std::size_t stripe_count(std::size_t length, std::size_t block_size) const;

  /// Stripes encode_batch / encode_file fuse per kernel call for this
  /// block size (>= 1).
  std::size_t batch_stripes(std::size_t block_size) const;

  /// Encodes one stripe. `stripe_data` holds up to stripe_bytes() logical
  /// bytes (shorter inputs are zero-padded). Returns num_symbols views in
  /// symbol order, each block_size / sub_chunks() bytes (a full block for
  /// alpha == 1 schemes); systematic views alias `stripe_data` where
  /// possible, parity views point into the arena. All views are
  /// invalidated by the next encode_stripe()/encode_batch()/encode_file()
  /// call. block_size must be divisible by sub_chunks().
  std::span<const ByteSpan> encode_stripe(ByteSpan stripe_data,
                                          std::size_t block_size);

  /// Encodes all stripes covering `data` (up to batch_stripes() of them
  /// fused into one gf::matrix_apply_batch pass), then hands each stripe's
  /// symbol views to `sink(stripe_index, symbols)` in stripe order.
  /// stripe_index counts from 0 within `data`; views passed to the sink
  /// are invalidated when the next batch starts (i.e. a sink must consume
  /// its stripe before returning). Stops and propagates the first sink
  /// error. `data` may cover any number of stripes; the final one may be
  /// ragged (zero-padded).
  Status encode_batch(
      ByteSpan data, std::size_t block_size,
      const std::function<Status(std::size_t, std::span<const ByteSpan>)>&
          sink);

  /// Streams a whole file through the codec: splits `data` into stripes,
  /// encodes each (batched across stripes), and hands the symbol views to
  /// `sink(stripe_index, symbols)` before the arena is recycled. Stops and
  /// propagates the first sink error. (Alias of encode_batch; kept for the
  /// streaming-file reading of call sites.)
  Status encode_file(
      ByteSpan data, std::size_t block_size,
      const std::function<Status(std::size_t, std::span<const ByteSpan>)>&
          sink);

 private:
  const CodeScheme* code_;
  StripeArena arena_;
  std::vector<ByteSpan> data_views_;
  std::vector<MutableByteSpan> parity_views_;
  std::vector<ByteSpan> symbol_views_;
};

}  // namespace dblrep::ec
