#include "ec/subchunk.h"

#include <algorithm>
#include <map>

#include "gf/gf256.h"

namespace dblrep::ec {

bool RowSpace::add(std::span<const gf::Elem> row) {
  std::vector<gf::Elem> work(row.begin(), row.end());
  reduce(work);
  const auto lead = leading(work);
  if (lead == cols_) return false;
  const gf::Elem scale = gf::inv(work[lead]);
  for (auto& cell : work) cell = gf::mul(cell, scale);
  // Keep reduced_ sorted by leading column so reduce() is one pass.
  reduced_.push_back({lead, std::move(work)});
  std::sort(reduced_.begin(), reduced_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return true;
}

std::size_t RowSpace::leading(const std::vector<gf::Elem>& row) const {
  for (std::size_t c = 0; c < cols_; ++c) {
    if (row[c] != 0) return c;
  }
  return cols_;
}

void RowSpace::reduce(std::vector<gf::Elem>& row) const {
  for (const auto& [lead, basis_row] : reduced_) {
    if (row[lead] == 0) continue;
    const gf::Elem factor = row[lead];
    for (std::size_t c = 0; c < cols_; ++c) {
      row[c] = gf::add(row[c], gf::mul(factor, basis_row[c]));
    }
  }
}

Result<std::vector<gf::Elem>> express_over_rows(
    const gf::Matrix& generator, const std::vector<std::size_t>& basis_rows,
    std::size_t target_row) {
  // Solve basis^T coeffs = target (one column per right-hand side).
  const std::size_t cols = generator.cols();
  gf::Matrix basis_t(cols, basis_rows.size());
  for (std::size_t j = 0; j < basis_rows.size(); ++j) {
    const auto row = generator.row(basis_rows[j]);
    for (std::size_t c = 0; c < cols; ++c) basis_t.set(c, j, row[c]);
  }
  gf::Matrix target_t(cols, 1);
  const auto target = generator.row(target_row);
  for (std::size_t c = 0; c < cols; ++c) target_t.set(c, 0, target[c]);
  auto solved = basis_t.solve(target_t);
  if (!solved.is_ok()) return solved.status();
  std::vector<gf::Elem> coeffs(basis_rows.size());
  for (std::size_t j = 0; j < basis_rows.size(); ++j) {
    coeffs[j] = solved->at(j, 0);
  }
  return coeffs;
}

Result<RepairPlan> plan_from_unit_reads(
    const gf::Matrix& generator, const StripeLayout& layout, NodeIndex dest,
    const std::vector<std::size_t>& lost_slots,
    const std::vector<std::size_t>& read_slots) {
  for (std::size_t slot : lost_slots) {
    DBLREP_CHECK_EQ(layout.node_of_slot(slot), dest);
  }
  for (std::size_t slot : read_slots) {
    DBLREP_CHECK_NE(layout.node_of_slot(slot), dest);
  }

  // Greedy independent basis over the read rows, then the lost rows in
  // rebuild order (a lost row dependent on the reads stays expressible
  // through them; an independent one lets later reconstructions lean on
  // the earlier-rebuilt unit as a local term).
  RowSpace space(generator.cols());
  std::vector<std::size_t> basis_rows;   // generator row (== symbol) index
  std::vector<std::size_t> basis_slots;  // the slot carrying that row
  auto consider = [&](std::size_t slot) {
    const std::size_t sym = layout.symbol_of_slot(slot);
    if (space.add(generator.row(sym))) {
      basis_rows.push_back(sym);
      basis_slots.push_back(slot);
    }
  };
  for (std::size_t slot : read_slots) consider(slot);
  std::vector<bool> rebuilt(layout.num_slots(), false);

  RepairPlan plan;
  // Aggregate index per read slot, created lazily on first use so unused
  // reads never hit the wire.
  std::map<std::size_t, std::size_t> aggregate_of_slot;
  auto aggregate_for = [&](std::size_t slot) {
    const auto it = aggregate_of_slot.find(slot);
    if (it != aggregate_of_slot.end()) return it->second;
    plan.aggregates.push_back(
        {layout.node_of_slot(slot), dest, {{slot, 1}}, {}});
    return aggregate_of_slot.emplace(slot, plan.aggregates.size() - 1)
        .first->second;
  };

  for (std::size_t lost : lost_slots) {
    const std::size_t sym = layout.symbol_of_slot(lost);
    auto coeffs = express_over_rows(generator, basis_rows, sym);
    if (!coeffs.is_ok()) {
      return data_loss_error("read set cannot reconstruct lost unit " +
                             std::to_string(lost));
    }
    Reconstruction rec;
    rec.symbol = sym;
    rec.dest_slot = lost;
    for (std::size_t j = 0; j < basis_slots.size(); ++j) {
      if ((*coeffs)[j] == 0) continue;
      const std::size_t src = basis_slots[j];
      if (layout.node_of_slot(src) == dest) {
        DBLREP_CHECK(rebuilt[src]);  // only earlier-rebuilt slots are local
        rec.local_terms.push_back({src, (*coeffs)[j]});
      } else {
        rec.from_aggregates.emplace_back(aggregate_for(src), (*coeffs)[j]);
      }
    }
    plan.reconstructions.push_back(std::move(rec));
    rebuilt[lost] = true;
    consider(lost);  // later reconstructions may use this unit locally
  }
  return plan;
}

}  // namespace dblrep::ec
