// Piggybacked Reed-Solomon at the paper-comparable (n=14, k=10) point.
//
// The (k=10, m=4) RS geometry is the configuration the paper benchmarks
// cold storage against (Table 2's "RS(10,4)" column). True Clay at that
// point needs alpha = 256, so this scheme takes the Rashmi-Shah-Ramchandran
// piggybacking route instead: alpha = 2 sub-stripes a and b, both encoded
// with the same RS(10,4) Cauchy parities, with parity j >= 1 of the b
// sub-stripe carrying an extra "piggyback" -- a linear combination of a
// group S_j of a-units:
//
//   node 10+j stores  [ p_j(a),  p_j(b) + pgy_j(a) ]     (pgy_0 = 0)
//   S_1 = {0..3}, S_2 = {4..6}, S_3 = {7..9}
//
// Data-node repair then reads the failed node's b-unit via the clean
// parity p_0(b) (10 units), and its a-unit by peeling the piggyback:
// q_j minus the other a-units of S_j minus p_j(b) recomputed from the
// already-delivered b-units. Total 13-14 units = 6.5-7 blocks, versus 10
// blocks for rs-10-4 at the identical 1.4x storage overhead. Parity-node
// repair falls back to the generic whole-stripe path. The upper-triangular
// piggyback structure preserves the MDS property (tolerance 4).
//
// Set DBLREP_SUBCHUNK=0 to disable the piggyback repair planner and fall
// back to the generic path.
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class PiggybackCode final : public CodeScheme {
 public:
  PiggybackCode();

  /// Piggyback repair for data nodes; generic for parity nodes.
  Result<RepairPlan> plan_node_repair(NodeIndex failed) const override;

 private:
  bool subchunk_repair_ = true;
};

}  // namespace dblrep::ec
