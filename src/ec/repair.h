// Repair plans: first-class, executable descriptions of recovery traffic.
//
// A RepairPlan says exactly which unit-sized payloads cross the network
// (whole blocks for α == 1 schemes, block/α sub-chunks for sub-packetized
// ones), so the same
// object drives (a) actual byte-level recovery in the ec/hdfs layers and
// (b) the repair-bandwidth numbers of the paper's Section 2.1/3.1 (pentagon
// two-node repair = 10 blocks; degraded read = 3 blocks vs RAID+m's 9).
//
// The partial-parity optimization the paper highlights is expressed
// naturally: an AggregateSend whose `terms` XOR/GF-combine several slots of
// the sending node still costs one block of network traffic.
//
// Plans can additionally be *layered* for rack topologies (Hu et al.'s
// repair layering): an AggregateSend may relay -- its payload combines
// earlier aggregates delivered to its own node (`from_aggregates`) with its
// local slot terms, so an intra-rack aggregator can GF-combine its rack's
// partial results and forward a single cross-rack block. ec/layering.h
// rewrites any plan into that form; the executor runs both forms.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/status.h"
#include "ec/layout.h"
#include "gf/gf256.h"

namespace dblrep::ec {

/// coeff * bytes(slot); the slot must reside on the node evaluating it.
struct PartialTerm {
  std::size_t slot = 0;
  gf::Elem coeff = 1;

  bool operator==(const PartialTerm&) const = default;
};

/// One block-sized payload crossing the network: computed at `from_node` as
/// the GF-linear combination of its local slots, delivered to `to_node`.
/// A plain replica copy is a single term with coefficient 1; a partial
/// parity combines several local slots before sending.
///
/// A *relay* send additionally folds in earlier aggregates (by index into
/// RepairPlan::aggregates, each scaled by a coefficient) that were delivered
/// to `from_node` -- the two-stage form an intra-rack aggregator uses to
/// forward one combined block instead of its rack's individual partials.
/// Referenced indices must be smaller than the relay's own index (plans are
/// DAGs evaluated in aggregate order).
struct AggregateSend {
  NodeIndex from_node = 0;
  NodeIndex to_node = 0;
  std::vector<PartialTerm> terms;
  std::vector<std::pair<std::size_t, gf::Elem>> from_aggregates;

  bool is_plain_copy() const {
    return terms.size() == 1 && terms[0].coeff == 1 && from_aggregates.empty();
  }

  bool is_relay() const { return !from_aggregates.empty(); }

  bool operator==(const AggregateSend&) const = default;
};

/// Rebuilds `symbol` into `dest_slot` by combining received aggregates
/// (by index into RepairPlan::aggregates) and slots local to the
/// destination node. Reconstructions execute in order, and later steps may
/// reference slots rebuilt by earlier ones (the pentagon two-node repair
/// rebuilds the shared block on the first replacement, then copies it to
/// the second).
struct Reconstruction {
  std::size_t symbol = 0;
  /// kClientSlot means "deliver to a reading client" (degraded read); the
  /// result is not stored in the stripe.
  static constexpr std::size_t kClientSlot = static_cast<std::size_t>(-1);
  std::size_t dest_slot = kClientSlot;

  std::vector<std::pair<std::size_t, gf::Elem>> from_aggregates;
  std::vector<PartialTerm> local_terms;

  bool operator==(const Reconstruction&) const = default;
};

struct RepairPlan {
  std::vector<AggregateSend> aggregates;
  std::vector<Reconstruction> reconstructions;

  /// Network cost in units: each aggregate ships one unit-sized payload
  /// (a full block for α == 1 schemes, a block_size/α sub-chunk for
  /// sub-packetized ones). For α == 1 this is exactly the block count the
  /// paper reports; mixed-α comparisons must go through network_bytes().
  std::size_t network_units() const { return aggregates.size(); }

  /// Network cost in bytes for a stripe of `block_size`-byte blocks under
  /// `sub_chunks`-way sub-packetization. block_size must be divisible by
  /// sub_chunks.
  std::size_t network_bytes(std::size_t block_size,
                            std::size_t sub_chunks) const {
    return aggregates.size() * (block_size / sub_chunks);
  }

  /// Number of sends that are partial parities rather than plain copies.
  std::size_t partial_parity_sends() const;

  /// Number of two-stage relay sends (layered plans only).
  std::size_t relay_sends() const;

  std::string to_string() const;
};

/// Byte store used when executing a plan: slot index -> block contents.
/// Slots lost to failures are simply absent.
using SlotStore = std::unordered_map<std::size_t, Buffer>;

/// Executes `plan` against `store`, writing rebuilt blocks back into the
/// store (and returning the client-delivered buffers for degraded reads in
/// reconstruction order). Errors if the plan references unavailable slots,
/// violates node-locality of terms, or block sizes mismatch.
///
/// Aggregate and partial-parity scratch lives in an internal StripeArena
/// that is recycled between execute() calls, so reuse one executor when
/// running many plans (multi-stripe node repair): the steady state is
/// allocation-free apart from the rebuilt blocks handed to the store. Every
/// GF-linear combination in a plan runs through the fused, SIMD-dispatched
/// gf::matrix_apply kernel.
///
/// Because of that scratch, an executor is NOT thread-safe: give each
/// thread its own (plans and layouts are immutable and freely shared).
class PlanExecutor {
 public:
  explicit PlanExecutor(const StripeLayout& layout) : layout_(&layout) {}

  PlanExecutor(const PlanExecutor&) = delete;
  PlanExecutor& operator=(const PlanExecutor&) = delete;

  /// Runs the plan. On success, all non-client dest_slots exist in `store`.
  Result<std::vector<Buffer>> execute(const RepairPlan& plan,
                                      SlotStore& store);

 private:
  const StripeLayout* layout_;
  StripeArena arena_;
  // Reused per execute(): views over the terms / aggregates being combined.
  std::vector<ByteSpan> term_sources_;
  std::vector<gf::Elem> term_coeffs_;
  std::vector<ByteSpan> agg_sources_;
  std::vector<gf::Elem> agg_coeffs_;
};

}  // namespace dblrep::ec
