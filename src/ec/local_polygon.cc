#include "ec/local_polygon.h"

namespace dblrep::ec {

namespace {

std::size_t edges(int n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
}

CodeParams make_params(int n) {
  DBLREP_CHECK_GE(n, 3);
  const std::size_t local_k = edges(n) - 1;
  // GF(2^8) Vandermonde exponents must stay distinct mod 255.
  DBLREP_CHECK_LT(2 * local_k, 255u);
  CodeParams params;
  params.name = (n == 7) ? "heptagon-local"
                         : "polygon-" + std::to_string(n) + "-local";
  params.data_blocks = 2 * local_k;
  params.num_symbols = 2 * edges(n) + 2;
  params.stored_blocks = 4 * edges(n) + 2;  // two replicated locals + 2 globals
  params.num_nodes = static_cast<std::size_t>(2 * n + 1);
  params.fault_tolerance = 3;
  return params;
}

// Symbol numbering (systematic prefix first):
//   [0, local_k)            local 0 data, in edge order
//   [local_k, 2*local_k)    local 1 data, in edge order
//   2*local_k + w           local w's XOR parity (w in {0,1})
//   2*local_k + 2 + j       global parity j (j in {0,1})
std::size_t data_symbol(std::size_t local_k, int which, std::size_t edge) {
  return static_cast<std::size_t>(which) * local_k + edge;
}

StripeLayout make_layout(int n) {
  const std::size_t local_k = edges(n) - 1;
  const std::size_t parity_base = 2 * local_k;
  std::vector<NodeIndex> slot_nodes;
  std::vector<std::size_t> slot_symbols;
  for (int which = 0; which < 2; ++which) {
    const NodeIndex node_base = which * n;
    std::size_t edge = 0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b, ++edge) {
        // The last edge of each local carries that local's XOR parity.
        const std::size_t symbol = (edge == local_k)
                                       ? parity_base + static_cast<std::size_t>(which)
                                       : data_symbol(local_k, which, edge);
        slot_nodes.push_back(node_base + a);
        slot_symbols.push_back(symbol);
        slot_nodes.push_back(node_base + b);
        slot_symbols.push_back(symbol);
      }
    }
  }
  // Global parity node: two unreplicated parity blocks.
  for (int j = 0; j < 2; ++j) {
    slot_nodes.push_back(2 * n);
    slot_symbols.push_back(parity_base + 2 + static_cast<std::size_t>(j));
  }
  return {static_cast<std::size_t>(2 * n + 1), 2 * edges(n) + 2,
          std::move(slot_nodes), std::move(slot_symbols)};
}

gf::Matrix make_generator(int n) {
  const std::size_t local_k = edges(n) - 1;
  const std::size_t k = 2 * local_k;
  gf::Matrix g(k + 4, k);
  for (std::size_t i = 0; i < k; ++i) g.set(i, i, 1);
  // Local XOR parities.
  for (int which = 0; which < 2; ++which) {
    for (std::size_t i = 0; i < local_k; ++i) {
      g.set(k + static_cast<std::size_t>(which),
            static_cast<std::size_t>(which) * local_k + i, 1);
    }
  }
  // Global parities: Vandermonde rows over alpha^i and alpha^(2i). Together
  // with a local all-ones row these form a 3x3 Vandermonde system in the
  // distinct points alpha^i, so any 3 doubly-lost blocks inside one local
  // are solvable.
  for (std::size_t i = 0; i < k; ++i) {
    g.set(k + 2, i, gf::exp_alpha(static_cast<unsigned>(i)));
    g.set(k + 3, i, gf::exp_alpha(static_cast<unsigned>(2 * i)));
  }
  return g;
}

}  // namespace

LocalPolygonCode::LocalPolygonCode(int n)
    : CodeScheme(make_params(n), make_layout(n), make_generator(n)),
      n_(n),
      local_k_(edges(n) - 1) {}

int LocalPolygonCode::rack_of_node(NodeIndex node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), num_nodes());
  if (node < n_) return 0;
  if (node < 2 * n_) return 1;
  return 2;
}

int LocalPolygonCode::local_of_node(NodeIndex node) const {
  const int rack = rack_of_node(node);
  return rack == 2 ? -1 : rack;
}

std::pair<std::size_t, std::size_t> LocalPolygonCode::global_symbols() const {
  return {2 * local_k_ + 2, 2 * local_k_ + 3};
}

std::size_t LocalPolygonCode::local_parity_symbol(int which) const {
  DBLREP_CHECK_GE(which, 0);
  DBLREP_CHECK_LE(which, 1);
  return 2 * local_k_ + static_cast<std::size_t>(which);
}

std::size_t LocalPolygonCode::edge_symbol(int which, NodeIndex a,
                                          NodeIndex b) const {
  DBLREP_CHECK_GE(which, 0);
  DBLREP_CHECK_LE(which, 1);
  const NodeIndex base = which * n_;
  a -= base;
  b -= base;
  DBLREP_CHECK_NE(a, b);
  if (a > b) std::swap(a, b);
  DBLREP_CHECK_GE(a, 0);
  DBLREP_CHECK_LT(b, n_);
  const auto au = static_cast<std::size_t>(a);
  const auto prior = au * static_cast<std::size_t>(n_) - au * (au + 1) / 2;
  const std::size_t edge = prior + static_cast<std::size_t>(b - a - 1);
  if (edge == local_k_) return local_parity_symbol(which);
  return data_symbol(local_k_, which, edge);
}

}  // namespace dblrep::ec
