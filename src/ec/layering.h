// Two-stage repair layering: rewrite a RepairPlan so that each rack
// forwards at most one block per reconstruction across the rack boundary.
//
// The idea is Hu et al.'s repair layering (DoubleR): helpers inside a rack
// send their partial results to one *intra-rack aggregator*, which
// GF-combines them locally and relays a single AggregateSend to the
// (cross-rack) rebuild site. Total network blocks are unchanged -- the
// same number of block-sized payloads move -- but the share that crosses
// racks shrinks from "one per helper" to "one per rack", which is the
// scarce resource in real Hadoop clusters (Sathiamoorthy et al. 2013).
//
// The pass is topology-driven but layout-free: callers supply the rack of
// every code-local node (MiniDfs derives it from the stripe's placement
// group and the cluster Topology). It is semantics-preserving -- executing
// the layered plan over the same SlotStore yields byte-identical rebuilt
// slots and client deliveries (property-tested per scheme and failure
// pattern) -- and idempotent: layering a layered plan changes nothing.
#pragma once

#include <cstddef>
#include <span>

#include "ec/repair.h"

namespace dblrep::ec {

/// Rack of a reading client that has no rack affinity (off-cluster, as in
/// MiniDfs): distinct from every real rack, so every send to the client is
/// a rack-boundary crossing and per-rack aggregation still applies.
inline constexpr int kNoRack = -1;

/// Sends whose source and destination racks differ. `node_racks[i]` is the
/// rack of code-local node i; sends to kClientNode use `client_rack`.
std::size_t cross_rack_sends(const RepairPlan& plan,
                             std::span<const int> node_racks,
                             int client_rack = kNoRack);

/// Rewrites `plan` into two-stage layered form under the given rack map:
/// whenever one reconstruction pulls two or more aggregates out of the same
/// remote rack, those sends are redirected to an aggregator node inside
/// that rack (the first sender; its own partial folds into the relay's
/// local terms) and replaced by a single relay send to the rebuild site.
///
/// Guarantees, for any input plan:
///  * executing the result is byte-identical to executing the input;
///  * cross_rack_sends(result) <= cross_rack_sends(input);
///  * network_units() never increases (and is exactly unchanged for the
///    per-node-folded plans this library's planners emit);
///  * layering an already-layered plan is a no-op.
RepairPlan layer_plan(const RepairPlan& plan, std::span<const int> node_racks,
                      int client_rack = kNoRack);

}  // namespace dblrep::ec
