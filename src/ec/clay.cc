#include "ec/clay.h"

#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "ec/subchunk.h"
#include "gf/gf256.h"
#include "gf/matrix.h"

namespace dblrep::ec {

namespace {

constexpr std::size_t kQ = 2;
constexpr std::size_t kT = 3;
constexpr std::size_t kN = kQ * kT;         // 6 nodes
constexpr std::size_t kK = kN - kQ;         // 4 data nodes
constexpr std::size_t kAlpha = 1u << kT;    // q^t = 8 sub-chunks per block
constexpr std::size_t kDataUnits = kK * kAlpha;   // 32
constexpr std::size_t kTotalUnits = kN * kAlpha;  // 48
// Every helper ships beta = alpha / (d-k+1) = 4 units.
constexpr std::size_t kRepairUnits = (kN - 1) * (kAlpha / kQ);  // 20

std::size_t slot_of(std::size_t node, std::size_t z) {
  return node * kAlpha + z;
}
std::size_t x_of(std::size_t node) { return node % kQ; }
std::size_t y_of(std::size_t node) { return node / kQ; }
std::size_t digit(std::size_t z, std::size_t y) { return (z >> y) & 1u; }
std::size_t with_digit(std::size_t z, std::size_t y, std::size_t v) {
  return (z & ~(std::size_t{1} << y)) | (v << y);
}

StripeLayout make_layout() {
  std::vector<NodeIndex> slot_nodes(kTotalUnits);
  std::vector<std::size_t> slot_symbols(kTotalUnits);
  for (std::size_t s = 0; s < kTotalUnits; ++s) {
    slot_nodes[s] = static_cast<NodeIndex>(s / kAlpha);
    slot_symbols[s] = s;
  }
  return {kN, kTotalUnits, std::move(slot_nodes), std::move(slot_symbols)};
}

/// Uncoupled value of vertex (node, z) as a row over the 48 stored units.
/// A vertex is unpaired (C == U) when its layer digit matches its own x
/// coordinate; otherwise it is coupled with its column partner through
/// A = [[1, gamma], [gamma, 1]], so C = (U_self + gamma * U_partner) / det.
std::vector<gf::Elem> uncouple_row(std::size_t node, std::size_t z,
                                   gf::Elem gamma) {
  std::vector<gf::Elem> row(kTotalUnits, 0);
  const std::size_t x = x_of(node);
  const std::size_t y = y_of(node);
  if (digit(z, y) == x) {
    row[slot_of(node, z)] = 1;
    return row;
  }
  const std::size_t partner = y * kQ + digit(z, y);
  const std::size_t partner_z = with_digit(z, y, x);
  const gf::Elem det_inv = gf::inv(gf::add(1, gf::mul(gamma, gamma)));
  row[slot_of(node, z)] = det_inv;
  row[slot_of(partner, partner_z)] = gf::mul(gamma, det_inv);
  return row;
}

/// Solves the parity generator from the per-layer [6,4] Cauchy checks on
/// the uncoupled values. Data-node vertices couple only within the two
/// data columns and parity vertices only within the parity column, so the
/// checks split as P * p = D * d with p the 16 parity units and d the 32
/// data units; the generator's parity rows are P^-1 * D. Returns nullopt
/// when P is singular for this gamma.
std::optional<gf::Matrix> try_generator(gf::Elem gamma) {
  const std::size_t parity_units = kTotalUnits - kDataUnits;
  gf::Matrix p_mat(parity_units, parity_units);
  gf::Matrix d_mat(parity_units, kDataUnits);
  for (std::size_t z = 0; z < kAlpha; ++z) {
    for (std::size_t r = 0; r < kQ; ++r) {
      const std::size_t eq = z * kQ + r;
      const auto lhs = uncouple_row(kK + r, z, gamma);
      for (std::size_t c = 0; c < parity_units; ++c) {
        p_mat.set(eq, c, lhs[kDataUnits + c]);
      }
      for (std::size_t i = 0; i < kK; ++i) {
        // Same Cauchy convention as RsCode: xs = {0..m-1}, ys = {m..m+k-1}.
        const gf::Elem coef =
            gf::inv(gf::add(static_cast<gf::Elem>(r),
                            static_cast<gf::Elem>(kQ + i)));
        const auto data_row = uncouple_row(i, z, gamma);
        for (std::size_t c = 0; c < kDataUnits; ++c) {
          d_mat.set(eq, c, gf::add(d_mat.at(eq, c),
                                   gf::mul(coef, data_row[c])));
        }
      }
    }
  }
  auto p_inv = p_mat.inverse();
  if (!p_inv.is_ok()) return std::nullopt;
  const gf::Matrix g_par = p_inv->mul(d_mat);
  gf::Matrix g(kTotalUnits, kDataUnits);
  for (std::size_t u = 0; u < kDataUnits; ++u) g.set(u, u, 1);
  for (std::size_t c = 0; c < parity_units; ++c) {
    for (std::size_t u = 0; u < kDataUnits; ++u) {
      g.set(kDataUnits + c, u, g_par.at(c, u));
    }
  }
  return g;
}

/// The repair read set: the beta layers whose digit at the failed column
/// matches the failed node's x coordinate, from every live node.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> repair_slots(
    NodeIndex failed) {
  const std::size_t x0 = x_of(static_cast<std::size_t>(failed));
  const std::size_t y0 = y_of(static_cast<std::size_t>(failed));
  std::vector<std::size_t> lost;
  for (std::size_t z = 0; z < kAlpha; ++z) {
    lost.push_back(slot_of(static_cast<std::size_t>(failed), z));
  }
  std::vector<std::size_t> reads;
  for (std::size_t j = 0; j < kN; ++j) {
    if (static_cast<NodeIndex>(j) == failed) continue;
    for (std::size_t z = 0; z < kAlpha; ++z) {
      if (digit(z, y0) == x0) reads.push_back(slot_of(j, z));
    }
  }
  return {std::move(lost), std::move(reads)};
}

std::size_t surviving_rank(const gf::Matrix& generator,
                           const StripeLayout& layout,
                           const std::vector<bool>& node_failed) {
  RowSpace space(kDataUnits);
  for (std::size_t s = 0; s < layout.num_slots(); ++s) {
    if (node_failed[static_cast<std::size_t>(layout.node_of_slot(s))]) continue;
    space.add(generator.row(layout.symbol_of_slot(s)));
  }
  return space.rank();
}

/// gamma is accepted only when the resulting code is verifiably MDS (all
/// 2-node failures recoverable, all 3-node failures fatal) and every
/// single-node repair plan solves from exactly the beta-per-helper reads.
bool verify(const gf::Matrix& generator, const StripeLayout& layout) {
  for (std::size_t a = 0; a < kN; ++a) {
    for (std::size_t b = a + 1; b < kN; ++b) {
      std::vector<bool> failed(kN, false);
      failed[a] = failed[b] = true;
      if (surviving_rank(generator, layout, failed) != kDataUnits) {
        return false;
      }
      for (std::size_t c = b + 1; c < kN; ++c) {
        failed[c] = true;
        if (surviving_rank(generator, layout, failed) == kDataUnits) {
          return false;
        }
        failed[c] = false;
      }
    }
  }
  for (std::size_t j = 0; j < kN; ++j) {
    const auto [lost, reads] = repair_slots(static_cast<NodeIndex>(j));
    auto plan = plan_from_unit_reads(generator, layout,
                                     static_cast<NodeIndex>(j), lost, reads);
    if (!plan.is_ok()) return false;
    if (plan->network_units() != kRepairUnits) return false;
  }
  return true;
}

/// Generator solved once per process: gamma = 2 satisfies every check in
/// practice, but the search keeps construction correct-by-verification
/// rather than by trusting the algebra.
const gf::Matrix& clay_generator() {
  static const gf::Matrix generator = [] {
    const StripeLayout layout = make_layout();
    for (unsigned candidate = 2; candidate < 256; ++candidate) {
      const auto gamma = static_cast<gf::Elem>(candidate);
      auto g = try_generator(gamma);
      if (!g) continue;
      if (!verify(*g, layout)) continue;
      return std::move(*g);
    }
    DBLREP_CHECK(false);  // no usable coupling coefficient in GF(2^8)
    std::abort();
  }();
  return generator;
}

CodeParams make_params() {
  CodeParams params;
  params.name = "Clay(6,4)";
  params.data_blocks = kK;
  params.stored_blocks = kTotalUnits;
  params.num_symbols = kTotalUnits;
  params.num_nodes = kN;
  params.fault_tolerance = static_cast<int>(kN - kK);  // MDS
  params.sub_chunks = kAlpha;
  return params;
}

bool subchunk_enabled() {
  const char* env = std::getenv("DBLREP_SUBCHUNK");
  return env == nullptr || std::string_view(env) != "0";
}

}  // namespace

ClayCode::ClayCode()
    : CodeScheme(make_params(), make_layout(), clay_generator()),
      subchunk_repair_(subchunk_enabled()) {}

Result<RepairPlan> ClayCode::plan_node_repair(NodeIndex failed) const {
  if (!subchunk_repair_) return CodeScheme::plan_node_repair(failed);
  DBLREP_CHECK_GE(failed, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(failed), kN);
  const auto [lost, reads] = repair_slots(failed);
  return plan_from_unit_reads(generator(), layout(), failed, lost, reads);
}

}  // namespace dblrep::ec
