// CodeScheme: common interface for every storage scheme the paper compares.
//
// Every scheme -- r-replication, pentagon/heptagon (repair-by-transfer MBR),
// heptagon-local (locally regenerating), (k+1,k) RAID+mirroring, and
// Reed-Solomon -- is modeled as a linear code over GF(2^8) plus a stripe
// layout:
//
//   symbol_j = sum_i generator[j][i] * data_i        (j < num_symbols)
//
// with each symbol stored in one or more slots on distinct nodes. Decoding
// any erasure pattern reduces to solving the surviving rows, which gives a
// single, heavily-tested generic decoder plus a rank oracle
// (is_recoverable) reused verbatim by the reliability engine.
//
// Subclasses override the repair planners where the code structure allows
// cheaper-than-generic recovery (repair-by-transfer, partial parities).
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "ec/layout.h"
#include "ec/repair.h"
#include "gf/matrix.h"

namespace dblrep::ec {

/// Static descriptors of a code, the quantities in the paper's Table 1.
///
/// Sub-packetization: a scheme may split every block into `sub_chunks` (α)
/// equal sub-symbols. All unit-granular quantities (num_symbols,
/// stored_blocks, layout slots, generator dimensions) then count
/// sub-symbols, not blocks: a stripe stores `stored_blocks` units of
/// block_size/α bytes each, and the generator maps data_blocks·α data
/// units to num_symbols coded units. α == 1 (every pre-existing scheme)
/// keeps units == blocks and the historical semantics exactly.
struct CodeParams {
  std::string name;
  std::size_t data_blocks = 0;      // k (external blocks)
  std::size_t stored_blocks = 0;    // total slots (units) in a stripe
  std::size_t num_symbols = 0;      // distinct coded units
  std::size_t num_nodes = 0;        // code length (Table 1 column 3)
  int fault_tolerance = 0;          // any t node failures are recoverable
  std::size_t sub_chunks = 1;       // α: units per block

  /// Data units per stripe: the generator's column dimension.
  std::size_t data_units() const { return data_blocks * sub_chunks; }

  /// Table 1 column 2: stored units per data unit (== stored blocks per
  /// data block when α == 1).
  double storage_overhead() const {
    return static_cast<double>(stored_blocks) / static_cast<double>(data_units());
  }
};

class CodeScheme {
 public:
  virtual ~CodeScheme() = default;

  CodeScheme(const CodeScheme&) = delete;
  CodeScheme& operator=(const CodeScheme&) = delete;

  const CodeParams& params() const { return params_; }
  const StripeLayout& layout() const { return layout_; }

  /// Generator matrix, num_symbols x data_units(). Symbols
  /// [0, data_units()) are systematic (identity rows) for every scheme in
  /// this library; data unit u is sub-chunk u % α of block u / α.
  const gf::Matrix& generator() const { return generator_; }

  /// Rows [data_units(), num_symbols) of the generator as one contiguous
  /// row-major block -- the coefficient operand for gf::matrix_apply.
  /// Cached at construction so encoders never re-gather rows.
  std::span<const gf::Elem> parity_coeffs() const { return parity_coeffs_; }

  std::size_t data_blocks() const { return params_.data_blocks; }
  std::size_t num_symbols() const { return params_.num_symbols; }
  std::size_t num_nodes() const { return params_.num_nodes; }
  std::size_t sub_chunks() const { return params_.sub_chunks; }
  std::size_t data_units() const { return params_.data_units(); }

  /// Encodes k equal-sized data blocks into one buffer per slot (replicated
  /// symbols are duplicated). Order matches layout slot indices; each slot
  /// buffer is block_size / α bytes. block_size must be divisible by α.
  std::vector<Buffer> encode(std::span<const Buffer> data) const;

  /// Computes the distinct symbols (units) only, no replica duplication.
  std::vector<Buffer> encode_symbols(std::span<const Buffer> data) const;

  /// Zero-allocation core encoder: writes all num_symbols symbol buffers
  /// (systematic copies included) into caller-provided, equal-sized
  /// `symbols` spans. Operates at UNIT granularity: `data` is the stripe's
  /// data_units() sub-chunk views in unit order (block-major: unit
  /// b·α + a is sub-chunk a of block b), each block_size/α bytes -- for
  /// α == 1 that is exactly the k block views. Parity rows are computed
  /// with one fused matrix_apply pass over the cached parity coefficient
  /// block. Aliasing: a systematic symbol span may exactly alias its own
  /// data span (the copy is skipped -- the zero-copy path); parity spans
  /// must not alias any data span, and partial overlap anywhere is a
  /// contract violation. This is the entry point StripeCodec batches
  /// through; encode()/encode_symbols() are allocation-owning wrappers.
  void encode_into(std::span<const ByteSpan> data,
                   std::span<const MutableByteSpan> symbols) const;

  /// True iff the data survives failure of exactly this node set.
  bool is_recoverable(const std::set<NodeIndex>& failed_nodes) const;

  /// Recovers all k data blocks (full block_size bytes each, sub-chunks
  /// re-concatenated) from the slots present in `store` (slots on failed
  /// nodes simply absent; each stored entry is one block_size/α unit).
  /// Uses systematic fast paths where possible and Gaussian elimination
  /// otherwise.
  Result<std::vector<Buffer>> decode(const SlotStore& store,
                                     std::size_t block_size) const;

  /// Plan to restore every slot of one failed node. Default: generic
  /// (decode-from-k-symbols at the replacement, then re-encode locally).
  virtual Result<RepairPlan> plan_node_repair(NodeIndex failed) const;

  /// Plan to restore all slots of several failed nodes (executed on the
  /// in-place replacements). Default: generic decode at first replacement,
  /// then re-encode and distribute.
  virtual Result<RepairPlan> plan_multi_node_repair(
      const std::set<NodeIndex>& failed) const;

  /// Plan to deliver one symbol (one unit, for α > 1) to a client while
  /// `failed` nodes are down (the paper's on-the-fly repair during an MR
  /// job, Section 3.1). If a replica of the symbol survives, this is a
  /// single copy.
  virtual Result<RepairPlan> plan_degraded_read(
      std::size_t symbol, const std::set<NodeIndex>& failed) const;

  /// Plan to deliver one full data BLOCK to a client: the α client
  /// reconstructions for units [block·α, (block+1)·α), in unit order, so
  /// the executor's delivered buffers concatenate back into the block.
  /// Default: the per-unit degraded-read plans merged into one plan (for
  /// α == 1 this is exactly plan_degraded_read(block, failed)).
  virtual Result<RepairPlan> plan_degraded_block(
      std::size_t block, const std::set<NodeIndex>& failed) const;

  /// Verifies that a full slot set is a valid codeword (replicas identical,
  /// parities consistent). Used by scrub paths and tests.
  Status verify_codeword(const SlotStore& store, std::size_t block_size) const;

 protected:
  CodeScheme(CodeParams params, StripeLayout layout, gf::Matrix generator);

  /// Generic degraded read: gather k independent surviving symbols at the
  /// client and solve. Exposed to subclasses as a fallback.
  Result<RepairPlan> generic_degraded_read(std::size_t symbol,
                                           const std::set<NodeIndex>& failed) const;

  /// Surviving symbols (those with at least one slot on a live node),
  /// each paired with one live slot chosen deterministically.
  std::vector<std::pair<std::size_t, std::size_t>> surviving_symbol_slots(
      const std::set<NodeIndex>& failed) const;

 private:
  CodeParams params_;
  StripeLayout layout_;
  gf::Matrix generator_;
  /// Rows [k, num_symbols) of the generator, contiguous row-major -- the
  /// coefficient block handed to gf::matrix_apply on every encode.
  std::vector<gf::Elem> parity_coeffs_;
};

/// Convenience: splits `data` (padded with zeros) into the code's k blocks
/// of `block_size` each.
std::vector<Buffer> chunk_data(ByteSpan data, std::size_t k,
                               std::size_t block_size);

}  // namespace dblrep::ec
