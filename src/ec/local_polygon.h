// Heptagon-local code (Section 2.2), generalized to any local polygon size.
//
// Construction: 2k_l data blocks (k_l = C(n,2)-1 per local) are split into
// two sets, each encoded by an independent K_n polygon code placed on n
// dedicated nodes ("local codes"). Two *global parity* blocks -- GF(2^8)
// Vandermonde combinations of all 2k_l data blocks, as in RAID-6 -- are
// stored unreplicated on one extra node. For n=7 this is the paper's
// heptagon-local code: 40 data blocks -> 86 stored blocks on 15 nodes,
// overhead 2.15x, tolerating any 3 node failures.
//
// Failure handling (all verified by tests):
//  * 1-2 failures inside one local: repaired locally (repair-by-transfer /
//    local partial parities), never touching the other local or the global
//    node;
//  * 3 failures inside one local: the 3 doubly-lost edge blocks are solved
//    from the local XOR parity plus the two global parities (a Vandermonde
//    3x3 system);
//  * global-node failure: the parities are recomputed from data with
//    per-node partial aggregation.
//
// This is an instance of the "codes with local regeneration" family of
// Kamath et al. 2012. In a rack-aware deployment the three groups map to
// three racks; rack_of_node exposes that mapping.
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class LocalPolygonCode final : public CodeScheme {
 public:
  /// n >= 3 is the local polygon size; n=7 gives the paper's code.
  explicit LocalPolygonCode(int n);

  int n() const { return n_; }

  /// Data blocks per local code: C(n,2) - 1.
  std::size_t local_data_blocks() const { return local_k_; }

  /// 0 or 1 for nodes inside a local polygon, 2 for the global parity node.
  int rack_of_node(NodeIndex node) const;

  /// Which local group a node belongs to; the global node is in neither.
  /// Returns -1 for the global node.
  int local_of_node(NodeIndex node) const;

  NodeIndex global_node() const { return static_cast<NodeIndex>(2 * n_); }

  /// Symbol ids of the two global parities.
  std::pair<std::size_t, std::size_t> global_symbols() const;

  /// Symbol id of local `which`'s XOR parity block.
  std::size_t local_parity_symbol(int which) const;

  /// Symbol carried on the edge {a,b} of local `which` (node indices are
  /// code-global, both must lie in that local's node range).
  std::size_t edge_symbol(int which, NodeIndex a, NodeIndex b) const;

 private:
  int n_;
  std::size_t local_k_;
};

}  // namespace dblrep::ec
