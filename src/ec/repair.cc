#include "ec/repair.h"

#include <functional>
#include <sstream>

namespace dblrep::ec {

std::size_t RepairPlan::partial_parity_sends() const {
  std::size_t count = 0;
  for (const auto& send : aggregates) {
    if (!send.is_plain_copy()) ++count;
  }
  return count;
}

std::size_t RepairPlan::relay_sends() const {
  std::size_t count = 0;
  for (const auto& send : aggregates) {
    if (send.is_relay()) ++count;
  }
  return count;
}

std::string RepairPlan::to_string() const {
  std::ostringstream os;
  os << "plan: " << aggregates.size() << " network units ("
     << partial_parity_sends() << " partial parities)\n";
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    const auto& send = aggregates[i];
    os << "  A" << i << ": N" << send.from_node << " -> N" << send.to_node
       << "  [";
    bool first = true;
    for (const auto& term : send.terms) {
      if (!first) os << " + ";
      first = false;
      if (term.coeff != 1) os << static_cast<int>(term.coeff) << "*";
      os << "slot" << term.slot;
    }
    for (const auto& [agg, coeff] : send.from_aggregates) {
      if (!first) os << " + ";
      first = false;
      if (coeff != 1) os << static_cast<int>(coeff) << "*";
      os << "A" << agg;
    }
    os << "]" << (send.is_relay() ? "  (relay)" : "") << "\n";
  }
  for (const auto& rec : reconstructions) {
    os << "  rebuild sym" << rec.symbol << " -> ";
    if (rec.dest_slot == Reconstruction::kClientSlot) {
      os << "client";
    } else {
      os << "slot" << rec.dest_slot;
    }
    os << " from {";
    for (std::size_t i = 0; i < rec.from_aggregates.size(); ++i) {
      if (i) os << ", ";
      os << "A" << rec.from_aggregates[i].first;
    }
    for (const auto& term : rec.local_terms) {
      os << ", local slot" << term.slot;
    }
    os << "}\n";
  }
  return os.str();
}

Result<std::vector<Buffer>> PlanExecutor::execute(const RepairPlan& plan,
                                                  SlotStore& store) {
  // Determine the block size from any available slot.
  std::size_t block_size = 0;
  for (const auto& [slot, bytes] : store) {
    (void)slot;
    block_size = bytes.size();
    break;
  }
  if (block_size == 0 && (!plan.aggregates.empty() || !plan.reconstructions.empty())) {
    return failed_precondition_error("plan execution with empty slot store");
  }

  arena_.reset();
  std::vector<MutableByteSpan> aggregate_bytes(plan.aggregates.size());
  std::vector<bool> aggregate_ready(plan.aggregates.size(), false);

  // One fused matrix_apply per term list: gather the source views and the
  // coefficient row, then let the SIMD kernel combine them in one pass.
  auto eval_terms = [&](NodeIndex at_node, const std::vector<PartialTerm>& terms,
                        MutableByteSpan out) -> Status {
    term_sources_.clear();
    term_coeffs_.clear();
    for (const auto& term : terms) {
      const auto it = store.find(term.slot);
      if (it == store.end()) {
        return unavailable_error("slot " + std::to_string(term.slot) +
                                 " not available for repair");
      }
      if (it->second.size() != block_size) {
        return invalid_argument_error("block size mismatch in plan execution");
      }
      if (layout_->node_of_slot(term.slot) != at_node) {
        return failed_precondition_error(
            "plan reads slot " + std::to_string(term.slot) +
            " from the wrong node");
      }
      term_sources_.emplace_back(it->second);
      term_coeffs_.push_back(term.coeff);
    }
    const MutableByteSpan outputs[] = {out};
    gf::matrix_apply(term_coeffs_, term_sources_, outputs);
    return Status::ok();
  };

  // Aggregates may reference slots rebuilt by earlier reconstructions, so
  // evaluate them lazily, in reconstruction order. A relay send first
  // materializes the (strictly earlier) aggregates it folds in, then
  // combines them with its local slot terms in one fused pass.
  std::function<Status(std::size_t)> materialize_aggregate =
      [&](std::size_t index) -> Status {
    if (aggregate_ready[index]) return Status::ok();
    const auto& send = plan.aggregates[index];
    for (const auto& [src_index, coeff] : send.from_aggregates) {
      (void)coeff;
      if (src_index >= index) {
        return invalid_argument_error(
            "relay references aggregate " + std::to_string(src_index) +
            " at or after its own position " + std::to_string(index));
      }
      DBLREP_RETURN_IF_ERROR(materialize_aggregate(src_index));
      if (plan.aggregates[src_index].to_node != send.from_node) {
        return failed_precondition_error(
            "relay combines an aggregate delivered to another node");
      }
    }
    // Gather after the recursion: the recursive calls reuse the same
    // term_sources_/term_coeffs_ scratch.
    term_sources_.clear();
    term_coeffs_.clear();
    for (const auto& term : send.terms) {
      const auto it = store.find(term.slot);
      if (it == store.end()) {
        return unavailable_error("slot " + std::to_string(term.slot) +
                                 " not available for repair");
      }
      if (it->second.size() != block_size) {
        return invalid_argument_error("block size mismatch in plan execution");
      }
      if (layout_->node_of_slot(term.slot) != send.from_node) {
        return failed_precondition_error("plan reads slot " +
                                         std::to_string(term.slot) +
                                         " from the wrong node");
      }
      term_sources_.emplace_back(it->second);
      term_coeffs_.push_back(term.coeff);
    }
    for (const auto& [src_index, coeff] : send.from_aggregates) {
      term_sources_.emplace_back(aggregate_bytes[src_index]);
      term_coeffs_.push_back(coeff);
    }
    // Uninitialized: matrix_apply fully overwrites (or zeroes) the output.
    aggregate_bytes[index] = arena_.alloc_uninit(block_size);
    const MutableByteSpan outputs[] = {aggregate_bytes[index]};
    gf::matrix_apply(term_coeffs_, term_sources_, outputs);
    aggregate_ready[index] = true;
    return Status::ok();
  };

  std::vector<Buffer> client_reads;
  for (const auto& rec : plan.reconstructions) {
    // Materialize and validate the needed aggregates first, then combine
    // them (and any destination-local partial parity) in one fused pass.
    agg_sources_.clear();
    agg_coeffs_.clear();
    for (const auto& [agg_index, coeff] : rec.from_aggregates) {
      if (agg_index >= plan.aggregates.size()) {
        return invalid_argument_error("plan references unknown aggregate");
      }
      DBLREP_RETURN_IF_ERROR(materialize_aggregate(agg_index));
      const NodeIndex dest = rec.dest_slot == Reconstruction::kClientSlot
                                 ? kClientNode
                                 : layout_->node_of_slot(rec.dest_slot);
      if (plan.aggregates[agg_index].to_node != dest) {
        return failed_precondition_error(
            "aggregate delivered to a node other than the rebuild site");
      }
      agg_sources_.emplace_back(aggregate_bytes[agg_index]);
      agg_coeffs_.push_back(coeff);
    }
    Buffer rebuilt(block_size, 0);
    {
      const MutableByteSpan outputs[] = {MutableByteSpan(rebuilt)};
      gf::matrix_apply(agg_coeffs_, agg_sources_, outputs);
    }
    if (!rec.local_terms.empty()) {
      if (rec.dest_slot == Reconstruction::kClientSlot) {
        return failed_precondition_error(
            "client-side reconstruction cannot read node-local slots");
      }
      MutableByteSpan local = arena_.alloc_uninit(block_size);
      DBLREP_RETURN_IF_ERROR(eval_terms(layout_->node_of_slot(rec.dest_slot),
                                        rec.local_terms, local));
      xor_into(rebuilt, local);
    }
    if (rec.dest_slot == Reconstruction::kClientSlot) {
      client_reads.push_back(std::move(rebuilt));
    } else {
      store[rec.dest_slot] = std::move(rebuilt);
    }
  }
  return client_reads;
}

}  // namespace dblrep::ec
