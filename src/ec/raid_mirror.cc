#include "ec/raid_mirror.h"

namespace dblrep::ec {

namespace {

CodeParams make_params(int k) {
  DBLREP_CHECK_GE(k, 2);
  CodeParams params;
  params.name = "(" + std::to_string(k + 1) + "," + std::to_string(k) +
                ") RAID+m";
  params.data_blocks = static_cast<std::size_t>(k);
  params.num_symbols = static_cast<std::size_t>(k) + 1;
  params.stored_blocks = 2 * params.num_symbols;
  params.num_nodes = params.stored_blocks;
  // Any 3 node failures destroy at most one complete mirror pair (a pair
  // needs both of its 2 dedicated nodes down), and a single fully-lost
  // block is recoverable from the parity; losing two pairs takes 4 nodes.
  params.fault_tolerance = 3;
  return params;
}

StripeLayout make_layout(int k) {
  std::vector<NodeIndex> slot_nodes;
  std::vector<std::size_t> slot_symbols;
  for (int s = 0; s <= k; ++s) {
    slot_nodes.push_back(2 * s);
    slot_symbols.push_back(static_cast<std::size_t>(s));
    slot_nodes.push_back(2 * s + 1);
    slot_symbols.push_back(static_cast<std::size_t>(s));
  }
  return {static_cast<std::size_t>(2 * (k + 1)), static_cast<std::size_t>(k + 1),
          std::move(slot_nodes), std::move(slot_symbols)};
}

gf::Matrix make_generator(int k) {
  const auto ku = static_cast<std::size_t>(k);
  gf::Matrix g(ku + 1, ku);
  for (std::size_t i = 0; i < ku; ++i) g.set(i, i, 1);
  for (std::size_t i = 0; i < ku; ++i) g.set(ku, i, 1);  // XOR parity
  return g;
}

}  // namespace

RaidMirrorCode::RaidMirrorCode(int k)
    : CodeScheme(make_params(k), make_layout(k), make_generator(k)), k_(k) {}

std::pair<NodeIndex, NodeIndex> RaidMirrorCode::mirror_nodes(
    std::size_t symbol) const {
  DBLREP_CHECK_LT(symbol, num_symbols());
  const auto s = static_cast<NodeIndex>(symbol);
  return {2 * s, 2 * s + 1};
}

}  // namespace dblrep::ec
