#include "ec/stripe_codec.h"

#include <algorithm>
#include <cstring>

#include "gf/gf256.h"

namespace dblrep::ec {

std::size_t StripeCodec::stripe_count(std::size_t length,
                                      std::size_t block_size) const {
  DBLREP_CHECK_GT(block_size, 0u);
  const std::size_t per_stripe = stripe_bytes(block_size);
  return length == 0 ? 0 : (length + per_stripe - 1) / per_stripe;
}

std::size_t StripeCodec::batch_stripes(std::size_t block_size) const {
  DBLREP_CHECK_GT(block_size, 0u);
  const std::size_t per_stripe = stripe_bytes(block_size);
  return std::clamp<std::size_t>(kBatchTargetBytes / per_stripe,
                                 std::size_t{1}, kMaxBatchStripes);
}

std::span<const ByteSpan> StripeCodec::encode_stripe(ByteSpan stripe_data,
                                                     std::size_t block_size) {
  DBLREP_CHECK_GT(block_size, 0u);
  DBLREP_CHECK_EQ(block_size % code_->sub_chunks(), 0u);
  // Unit granularity: data unit u = sub-chunk u % alpha of block u / alpha
  // starts at byte u * unit_size of the stripe, so unit views tile the
  // caller's contiguous data exactly like block views do when alpha == 1.
  const std::size_t unit_size = block_size / code_->sub_chunks();
  const std::size_t units = code_->data_units();
  const std::size_t num_symbols = code_->num_symbols();
  DBLREP_CHECK_LE(stripe_data.size(), stripe_bytes(block_size));

  arena_.reset();
  data_views_.clear();

  // Full units are zero-copy views into the caller's data; the ragged tail
  // (if any) is staged through the arena, which zero-fills on alloc.
  for (std::size_t i = 0; i < units; ++i) {
    const std::size_t begin = i * unit_size;
    if (begin + unit_size <= stripe_data.size()) {
      data_views_.push_back(stripe_data.subspan(begin, unit_size));
      continue;
    }
    MutableByteSpan staged = arena_.alloc(unit_size);
    if (begin < stripe_data.size()) {
      const std::size_t len = stripe_data.size() - begin;
      std::memcpy(staged.data(), stripe_data.data() + begin, len);
    }
    data_views_.push_back(staged);
  }

  parity_views_.clear();
  // Uninitialized on purpose: matrix_apply fully overwrites every row.
  MutableByteSpan parity_block =
      arena_.alloc_uninit((num_symbols - units) * unit_size);
  for (std::size_t j = 0; j < num_symbols - units; ++j) {
    parity_views_.push_back(parity_block.subspan(j * unit_size, unit_size));
  }
  gf::matrix_apply(code_->parity_coeffs(), data_views_, parity_views_);

  symbol_views_.assign(data_views_.begin(), data_views_.end());
  symbol_views_.insert(symbol_views_.end(), parity_views_.begin(),
                       parity_views_.end());
  return symbol_views_;
}

Status StripeCodec::encode_batch(
    ByteSpan data, std::size_t block_size,
    const std::function<Status(std::size_t, std::span<const ByteSpan>)>&
        sink) {
  DBLREP_CHECK_GT(block_size, 0u);
  DBLREP_CHECK_EQ(block_size % code_->sub_chunks(), 0u);
  const std::size_t unit_size = block_size / code_->sub_chunks();
  const std::size_t units = code_->data_units();
  const std::size_t num_parity = code_->num_symbols() - units;
  const std::size_t per_stripe = stripe_bytes(block_size);
  const std::size_t stripes = stripe_count(data.size(), block_size);
  const std::size_t max_batch = batch_stripes(block_size);

  for (std::size_t base = 0; base < stripes; base += max_batch) {
    const std::size_t batch = std::min(max_batch, stripes - base);
    arena_.reset();
    data_views_.clear();
    parity_views_.clear();

    // Sources for every stripe in the batch, in group order: stripe s
    // occupies data_views_[s*units, (s+1)*units). Full units are zero-copy
    // views into the caller's data; only the ragged tail of the final
    // stripe is staged through the arena (zero-filled on alloc).
    for (std::size_t s = 0; s < batch; ++s) {
      const std::size_t stripe_begin = (base + s) * per_stripe;
      for (std::size_t i = 0; i < units; ++i) {
        const std::size_t begin = stripe_begin + i * unit_size;
        if (begin + unit_size <= data.size()) {
          data_views_.push_back(data.subspan(begin, unit_size));
          continue;
        }
        MutableByteSpan staged = arena_.alloc(unit_size);
        if (begin < data.size()) {
          std::memcpy(staged.data(), data.data() + begin,
                      data.size() - begin);
        }
        data_views_.push_back(staged);
      }
    }

    // One fused coefficient pass over the whole batch: the parity
    // coefficient block (and its per-coefficient kernel tables) is walked
    // once per 32 KiB chunk across all stripes instead of once per stripe.
    // Uninitialized on purpose: matrix_apply_batch fully overwrites rows.
    MutableByteSpan parity_block =
        arena_.alloc_uninit(batch * num_parity * unit_size);
    for (std::size_t j = 0; j < batch * num_parity; ++j) {
      parity_views_.push_back(
          parity_block.subspan(j * unit_size, unit_size));
    }
    gf::matrix_apply_batch(code_->parity_coeffs(), data_views_, parity_views_,
                           batch);

    for (std::size_t s = 0; s < batch; ++s) {
      symbol_views_.assign(data_views_.begin() + s * units,
                           data_views_.begin() + (s + 1) * units);
      symbol_views_.insert(
          symbol_views_.end(), parity_views_.begin() + s * num_parity,
          parity_views_.begin() + (s + 1) * num_parity);
      DBLREP_RETURN_IF_ERROR(sink(base + s, symbol_views_));
    }
  }
  return Status::ok();
}

Status StripeCodec::encode_file(
    ByteSpan data, std::size_t block_size,
    const std::function<Status(std::size_t, std::span<const ByteSpan>)>&
        sink) {
  return encode_batch(data, block_size, sink);
}

}  // namespace dblrep::ec
