#include "ec/layout.h"

#include <algorithm>
#include <sstream>

namespace dblrep::ec {

StripeLayout::StripeLayout(std::size_t num_nodes, std::size_t num_symbols,
                           std::vector<NodeIndex> slot_nodes,
                           std::vector<std::size_t> slot_symbols)
    : num_nodes_(num_nodes),
      num_symbols_(num_symbols),
      slot_nodes_(std::move(slot_nodes)),
      slot_symbols_(std::move(slot_symbols)) {
  DBLREP_CHECK_EQ(slot_nodes_.size(), slot_symbols_.size());
  node_slots_.resize(num_nodes_);
  symbol_slots_.resize(num_symbols_);
  for (std::size_t s = 0; s < slot_nodes_.size(); ++s) {
    const NodeIndex node = slot_nodes_[s];
    DBLREP_CHECK_GE(node, 0);
    DBLREP_CHECK_LT(static_cast<std::size_t>(node), num_nodes_);
    DBLREP_CHECK_LT(slot_symbols_[s], num_symbols_);
    node_slots_[static_cast<std::size_t>(node)].push_back(s);
    symbol_slots_[slot_symbols_[s]].push_back(s);
  }
  for (std::size_t sym = 0; sym < num_symbols_; ++sym) {
    DBLREP_CHECK_MSG(!symbol_slots_[sym].empty(),
                     "symbol " << sym << " has no slot");
    // No two replicas of one symbol may share a node (the HDFS placement
    // invariant the paper keeps even for array codes).
    for (std::size_t i = 1; i < symbol_slots_[sym].size(); ++i) {
      DBLREP_CHECK_NE(node_of_slot(symbol_slots_[sym][i - 1]),
                      node_of_slot(symbol_slots_[sym][i]));
    }
  }
}

NodeIndex StripeLayout::node_of_slot(std::size_t slot) const {
  DBLREP_CHECK_LT(slot, slot_nodes_.size());
  return slot_nodes_[slot];
}

std::size_t StripeLayout::symbol_of_slot(std::size_t slot) const {
  DBLREP_CHECK_LT(slot, slot_symbols_.size());
  return slot_symbols_[slot];
}

const std::vector<std::size_t>& StripeLayout::slots_on_node(
    NodeIndex node) const {
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), num_nodes_);
  return node_slots_[static_cast<std::size_t>(node)];
}

const std::vector<std::size_t>& StripeLayout::slots_of_symbol(
    std::size_t symbol) const {
  DBLREP_CHECK_LT(symbol, num_symbols_);
  return symbol_slots_[symbol];
}

std::size_t StripeLayout::max_slots_per_node() const {
  std::size_t best = 0;
  for (const auto& slots : node_slots_) best = std::max(best, slots.size());
  return best;
}

std::string StripeLayout::to_string() const {
  std::ostringstream os;
  for (std::size_t n = 0; n < num_nodes_; ++n) {
    os << "N" << n << ": {";
    const auto& slots = node_slots_[n];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (i) os << ",";
      os << "s" << slot_symbols_[slots[i]];
    }
    os << "}";
    if (n + 1 < num_nodes_) os << " ";
  }
  return os.str();
}

}  // namespace dblrep::ec
