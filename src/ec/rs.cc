#include "ec/rs.h"

namespace dblrep::ec {

namespace {

CodeParams make_params(int k, int m) {
  DBLREP_CHECK_GE(k, 1);
  DBLREP_CHECK_GE(m, 1);
  DBLREP_CHECK_LE(k + m, 256);
  CodeParams params;
  params.name = "RS(" + std::to_string(k) + "," + std::to_string(m) + ")";
  params.data_blocks = static_cast<std::size_t>(k);
  params.num_symbols = static_cast<std::size_t>(k + m);
  params.stored_blocks = params.num_symbols;
  params.num_nodes = params.num_symbols;
  params.fault_tolerance = m;  // MDS
  return params;
}

StripeLayout make_layout(int k, int m) {
  std::vector<NodeIndex> slot_nodes;
  std::vector<std::size_t> slot_symbols;
  for (int s = 0; s < k + m; ++s) {
    slot_nodes.push_back(s);
    slot_symbols.push_back(static_cast<std::size_t>(s));
  }
  return {static_cast<std::size_t>(k + m), static_cast<std::size_t>(k + m),
          std::move(slot_nodes), std::move(slot_symbols)};
}

gf::Matrix make_generator(int k, int m) {
  const auto ku = static_cast<std::size_t>(k);
  const auto mu = static_cast<std::size_t>(m);
  gf::Matrix g(ku + mu, ku);
  for (std::size_t i = 0; i < ku; ++i) g.set(i, i, 1);
  // Cauchy points: xs for parity rows, ys for data columns, all distinct.
  std::vector<gf::Elem> xs(mu), ys(ku);
  for (std::size_t j = 0; j < mu; ++j) xs[j] = static_cast<gf::Elem>(j);
  for (std::size_t i = 0; i < ku; ++i) ys[i] = static_cast<gf::Elem>(mu + i);
  const gf::Matrix cauchy = gf::Matrix::cauchy(xs, ys);
  for (std::size_t j = 0; j < mu; ++j) {
    for (std::size_t i = 0; i < ku; ++i) g.set(ku + j, i, cauchy.at(j, i));
  }
  return g;
}

}  // namespace

RsCode::RsCode(int k, int m)
    : CodeScheme(make_params(k, m), make_layout(k, m), make_generator(k, m)),
      k_(k),
      m_(m) {}

}  // namespace dblrep::ec
