// Systematic Reed-Solomon code over GF(2^8) -- the storage-efficient,
// single-copy scheme HDFS-RAID actually shipped (the paper cites it as the
// cold-data alternative the double-replication codes are meant to improve
// on for warm data).
//
// Parity rows come from a Cauchy matrix, which keeps every k x k submatrix
// of [I; C] invertible, i.e. the code is MDS: any m node failures are
// tolerated, but there is no data locality (one copy of each block) and a
// degraded read costs k transfers.
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class RsCode final : public CodeScheme {
 public:
  /// k data blocks, m parities; k + m <= 256 over GF(2^8).
  RsCode(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

 private:
  int k_;
  int m_;
};

}  // namespace dblrep::ec
