#include "ec/layering.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/check.h"

namespace dblrep::ec {

namespace {

int rack_of(NodeIndex node, std::span<const int> node_racks, int client_rack) {
  if (node == kClientNode) return client_rack;
  DBLREP_CHECK_GE(node, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(node), node_racks.size());
  return node_racks[static_cast<std::size_t>(node)];
}

}  // namespace

std::size_t cross_rack_sends(const RepairPlan& plan,
                             std::span<const int> node_racks,
                             int client_rack) {
  std::size_t count = 0;
  for (const auto& send : plan.aggregates) {
    if (rack_of(send.from_node, node_racks, client_rack) !=
        rack_of(send.to_node, node_racks, client_rack)) {
      ++count;
    }
  }
  return count;
}

RepairPlan layer_plan(const RepairPlan& plan, std::span<const int> node_racks,
                      int client_rack) {
  RepairPlan out = plan;
  const std::size_t original_count = out.aggregates.size();

  // Candidates for relaying are plain (non-relay) aggregates consumed by
  // exactly one reconstruction and by nothing else. Every planner in this
  // library emits such plans; aggregates already feeding a relay (an
  // input that was layered before) are left untouched, which makes the
  // pass idempotent.
  std::vector<std::size_t> consumer_count(original_count, 0);
  for (const auto& rec : out.reconstructions) {
    for (const auto& [index, coeff] : rec.from_aggregates) {
      (void)coeff;
      if (index < original_count) ++consumer_count[index];
    }
  }
  for (const auto& send : out.aggregates) {
    for (const auto& [index, coeff] : send.from_aggregates) {
      (void)coeff;
      if (index < original_count) consumer_count[index] += 2;  // disqualify
    }
  }

  for (std::size_t r = 0; r < out.reconstructions.size(); ++r) {
    auto& rec = out.reconstructions[r];
    // Bucket this reconstruction's remote-rack aggregates by
    // (destination, source rack).
    std::map<std::pair<NodeIndex, int>, std::vector<std::size_t>> groups;
    for (const auto& [index, coeff] : rec.from_aggregates) {
      (void)coeff;
      if (index >= original_count) continue;
      const auto& send = out.aggregates[index];
      if (send.is_relay() || consumer_count[index] != 1) continue;
      const int src_rack = rack_of(send.from_node, node_racks, client_rack);
      const int dst_rack = rack_of(send.to_node, node_racks, client_rack);
      if (src_rack == dst_rack) continue;  // already intra-rack
      groups[{send.to_node, src_rack}].push_back(index);
    }

    for (const auto& [key, members] : groups) {
      if (members.size() < 2) continue;  // nothing to aggregate
      const NodeIndex dest = key.first;
      const NodeIndex aggregator = out.aggregates[members[0]].from_node;

      AggregateSend relay;
      relay.from_node = aggregator;
      relay.to_node = dest;
      std::vector<bool> folded(members.size(), false);
      for (std::size_t m = 0; m < members.size(); ++m) {
        const std::size_t index = members[m];
        // The reconstruction's coefficient for this aggregate scales its
        // whole payload inside the relay.
        gf::Elem coeff = 1;
        for (const auto& [ref, c] : rec.from_aggregates) {
          if (ref == index) coeff = c;
        }
        auto& send = out.aggregates[index];
        if (send.from_node == aggregator) {
          // The aggregator's own partial needs no send at all: its terms
          // fold straight into the relay payload.
          for (const auto& term : send.terms) {
            relay.terms.push_back({term.slot, gf::mul(coeff, term.coeff)});
          }
          folded[m] = true;
        } else {
          // First stage: deliver to the in-rack aggregator instead.
          send.to_node = aggregator;
          relay.from_aggregates.emplace_back(index, coeff);
        }
      }
      out.aggregates.push_back(std::move(relay));
      const std::size_t relay_index = out.aggregates.size() - 1;

      // The reconstruction now consumes the relay (coefficient 1) in place
      // of the rack's individual sends; folded members disappear entirely.
      std::vector<std::pair<std::size_t, gf::Elem>> rewritten;
      for (const auto& entry : rec.from_aggregates) {
        if (std::find(members.begin(), members.end(), entry.first) ==
            members.end()) {
          rewritten.push_back(entry);
        }
      }
      rewritten.emplace_back(relay_index, gf::Elem{1});
      rec.from_aggregates = std::move(rewritten);
      for (std::size_t m = 0; m < members.size(); ++m) {
        if (folded[m]) consumer_count[members[m]] = 0;  // mark for pruning
      }
    }
  }

  // Prune folded (now-unreferenced) aggregates and remap indices.
  std::vector<bool> keep(out.aggregates.size(), true);
  for (std::size_t i = 0; i < original_count; ++i) {
    bool referenced = false;
    for (const auto& rec : out.reconstructions) {
      for (const auto& [index, coeff] : rec.from_aggregates) {
        (void)coeff;
        if (index == i) referenced = true;
      }
    }
    for (const auto& send : out.aggregates) {
      for (const auto& [index, coeff] : send.from_aggregates) {
        (void)coeff;
        if (index == i) referenced = true;
      }
    }
    keep[i] = referenced;
  }
  std::vector<std::size_t> remap(out.aggregates.size());
  std::vector<AggregateSend> compacted;
  compacted.reserve(out.aggregates.size());
  for (std::size_t i = 0; i < out.aggregates.size(); ++i) {
    if (!keep[i]) continue;
    remap[i] = compacted.size();
    compacted.push_back(std::move(out.aggregates[i]));
  }
  for (auto& send : compacted) {
    for (auto& [index, coeff] : send.from_aggregates) {
      (void)coeff;
      index = remap[index];
    }
  }
  for (auto& rec : out.reconstructions) {
    for (auto& [index, coeff] : rec.from_aggregates) {
      (void)coeff;
      index = remap[index];
    }
  }
  out.aggregates = std::move(compacted);
  return out;
}

}  // namespace dblrep::ec
