// r-way replication (the paper's 2-rep and 3-rep baselines) expressed as a
// degenerate linear code: one data symbol, r slots on r distinct nodes.
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class ReplicationCode final : public CodeScheme {
 public:
  /// replicas >= 1; the paper uses 2 and 3.
  explicit ReplicationCode(int replicas);

  int replicas() const { return replicas_; }

 private:
  int replicas_;
};

}  // namespace dblrep::ec
