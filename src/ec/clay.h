// Clay (coupled-layer) MSR code at the (n=6, k=4) point.
//
// This is the other end of the repair-bandwidth frontier from the paper's
// pentagon/heptagon MBR designs: a minimum-storage regenerating code that
// hits the MSR cut-set bound through sub-packetization instead of
// replication. Parameters: q = 2, t = 3, n = q*t = 6, k = 4, d = n-1 = 5,
// sub-packetization alpha = q^t = 8, beta = alpha / (d-k+1) = 4.
//
// Construction (Vajha et al., "Clay codes"): each block is alpha
// sub-chunks; the stripe is a q x t x alpha grid of "vertices", one unit
// per (node, layer). Vertices are pairwise coupled within a column by an
// invertible 2x2 transfer matrix A = [[1, gamma], [gamma, 1]]; the
// *uncoupled* values satisfy an independent [6,4] Cauchy MDS check in
// every layer. The parity generator is solved numerically from those
// per-layer checks at first construction, and gamma is searched so that
// the coupling keeps the code MDS and every single-node repair solvable.
//
// Single-node repair reads beta = 4 of the 8 units from each of the 5
// helpers -- 20 unit-sized transfers = 2.5 blocks, versus 4 blocks for
// rs-4-2 at the same 1.5x storage overhead.
//
// Set DBLREP_SUBCHUNK=0 to disable the sub-chunk repair planner and fall
// back to the generic whole-stripe path (the plan stays correct, just at
// generic cost).
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class ClayCode final : public CodeScheme {
 public:
  ClayCode();

  /// MSR repair: beta units from each of the d = 5 helpers.
  Result<RepairPlan> plan_node_repair(NodeIndex failed) const override;

 private:
  bool subchunk_repair_ = true;
};

}  // namespace dblrep::ec
