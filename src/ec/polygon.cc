#include "ec/polygon.h"

namespace dblrep::ec {

namespace {

std::size_t edges(int n) {
  return static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1) / 2;
}

CodeParams make_params(int n) {
  DBLREP_CHECK_GE(n, 3);
  CodeParams params;
  switch (n) {
    case 5: params.name = "pentagon"; break;
    case 7: params.name = "heptagon"; break;
    default: params.name = "polygon-" + std::to_string(n); break;
  }
  params.num_symbols = edges(n);
  params.data_blocks = params.num_symbols - 1;
  params.stored_blocks = 2 * params.num_symbols;
  params.num_nodes = static_cast<std::size_t>(n);
  params.fault_tolerance = 2;
  return params;
}

StripeLayout make_layout(int n) {
  std::vector<NodeIndex> slot_nodes;
  std::vector<std::size_t> slot_symbols;
  std::size_t edge = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b, ++edge) {
      slot_nodes.push_back(a);
      slot_symbols.push_back(edge);
      slot_nodes.push_back(b);
      slot_symbols.push_back(edge);
    }
  }
  return {static_cast<std::size_t>(n), edges(n), std::move(slot_nodes),
          std::move(slot_symbols)};
}

gf::Matrix make_generator(int n) {
  const std::size_t symbols = edges(n);
  const std::size_t k = symbols - 1;
  gf::Matrix g(symbols, k);
  for (std::size_t i = 0; i < k; ++i) g.set(i, i, 1);
  for (std::size_t i = 0; i < k; ++i) g.set(k, i, 1);  // XOR parity row
  return g;
}

}  // namespace

PolygonCode::PolygonCode(int n)
    : CodeScheme(make_params(n), make_layout(n), make_generator(n)), n_(n) {}

std::size_t PolygonCode::num_edges(int n) { return edges(n); }

std::size_t PolygonCode::edge_symbol(NodeIndex a, NodeIndex b) const {
  DBLREP_CHECK_NE(a, b);
  if (a > b) std::swap(a, b);
  DBLREP_CHECK_GE(a, 0);
  DBLREP_CHECK_LT(b, n_);
  // Edges before row `a`: sum_{i<a} (n-1-i); offset within row: b - a - 1.
  const auto au = static_cast<std::size_t>(a);
  const auto prior = au * static_cast<std::size_t>(n_) - au * (au + 1) / 2;
  return prior + static_cast<std::size_t>(b - a - 1);
}

std::pair<NodeIndex, NodeIndex> PolygonCode::symbol_edge(
    std::size_t symbol) const {
  DBLREP_CHECK_LT(symbol, num_symbols());
  // Invert the lexicographic edge numbering.
  std::size_t remaining = symbol;
  for (NodeIndex a = 0; a < n_; ++a) {
    const std::size_t row = static_cast<std::size_t>(n_ - 1 - a);
    if (remaining < row) {
      return {a, a + 1 + static_cast<NodeIndex>(remaining)};
    }
    remaining -= row;
  }
  DBLREP_CHECK_MSG(false, "unreachable: bad edge index");
  return {0, 0};
}

}  // namespace dblrep::ec
