// Factory for code schemes by name, so benches, examples, and the CLI
// surface can select codes the way the paper's tables label them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ec/code.h"

namespace dblrep::ec {

/// Builds a scheme from a spec string. Accepted forms:
///   "2-rep", "3-rep", "<r>-rep"
///   "pentagon", "heptagon", "polygon-<n>"
///   "heptagon-local", "polygon-<n>-local"
///   "raidm-<k>"  (the (k+1,k) RAID+m scheme; paper uses raidm-9, raidm-11)
///   "rs-<k>-<m>"
///   "clay-6-4"   (sub-packetized MSR, alpha = 8)
///   "pgy-10-4"   (piggybacked RS(10,4), alpha = 2)
Result<std::unique_ptr<CodeScheme>> make_code(const std::string& spec);

/// Spec strings for every scheme that appears in the paper's evaluation.
std::vector<std::string> paper_code_specs();

}  // namespace dblrep::ec
