// (k+1, k) RAID + mirroring (Xin et al. 2003), the paper's non-array
// comparator with double replication.
//
// k data blocks plus one XOR parity block, and every one of the k+1 blocks
// is mirrored, giving 2(k+1) blocks spread over 2(k+1) *distinct* nodes
// (one block per node -- no data concentration, unlike the polygon codes).
//
// The paper evaluates (10,9) and (12,11). Storage overhead 2(k+1)/k;
// degraded read of a doubly-lost block costs k transfers (9 for (10,9))
// because there are no partial parities to exploit.
#pragma once

#include "ec/code.h"

namespace dblrep::ec {

class RaidMirrorCode final : public CodeScheme {
 public:
  /// k >= 2 data blocks; the scheme is called "(k+1, k) RAID+m".
  explicit RaidMirrorCode(int k);

  int k() const { return k_; }

  /// Nodes hosting the two mirrors of `symbol` (symbol k is the parity).
  std::pair<NodeIndex, NodeIndex> mirror_nodes(std::size_t symbol) const;

 private:
  int k_;
};

}  // namespace dblrep::ec
