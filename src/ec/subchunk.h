// Shared linear-algebra helpers for repair planning: incremental GF(2^8)
// row-space tracking (greedy basis selection) and a generic
// build-plan-from-read-set utility used by the sub-packetized schemes
// (clay, piggyback). Extracted from the generic planners in code.cc so
// scheme-specific planners solve their reconstruction coefficients over
// the very same generator the encoder uses -- the plan is correct by
// construction or fails loudly at plan time.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "ec/layout.h"
#include "ec/repair.h"
#include "gf/matrix.h"

namespace dblrep::ec {

/// Incremental GF(2^8) row-space tracker for greedy basis selection.
class RowSpace {
 public:
  explicit RowSpace(std::size_t cols) : cols_(cols) {}

  std::size_t rank() const { return reduced_.size(); }

  /// Tries to add `row`; returns true iff it was independent of the span.
  bool add(std::span<const gf::Elem> row);

 private:
  std::size_t leading(const std::vector<gf::Elem>& row) const;
  void reduce(std::vector<gf::Elem>& row) const;

  std::size_t cols_;
  std::vector<std::pair<std::size_t, std::vector<gf::Elem>>> reduced_;
};

/// Expresses generator row `target_row` as a linear combination of rows
/// `basis_rows` (which must be linearly independent): returns coefficients
/// c with sum_j c[j] * generator.row(basis_rows[j]) == generator.row(
/// target_row), or an error if the target is outside the span.
Result<std::vector<gf::Elem>> express_over_rows(
    const gf::Matrix& generator, const std::vector<std::size_t>& basis_rows,
    std::size_t target_row);

/// Builds a repair plan for `dest` from an explicit unit read set: one
/// plain-copy aggregate per read slot actually used, then one
/// reconstruction per lost slot (in the given order), each solving its
/// generator row over the read rows plus the lost slots rebuilt earlier in
/// the plan (those become local_terms at the replacement -- the executor
/// lets later reconstructions read earlier-rebuilt slots). Every lost slot
/// must live on `dest`; read slots must live on other nodes. Errors with
/// DATA_LOSS if some lost row is outside the span of the reads.
///
/// This is how a sub-packetized scheme states "helpers send exactly these
/// β units each" and gets a plan whose network_units() is exactly the
/// number of read slots referenced.
Result<RepairPlan> plan_from_unit_reads(const gf::Matrix& generator,
                                        const StripeLayout& layout,
                                        NodeIndex dest,
                                        const std::vector<std::size_t>& lost_slots,
                                        const std::vector<std::size_t>& read_slots);

}  // namespace dblrep::ec
