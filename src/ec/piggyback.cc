#include "ec/piggyback.h"

#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "ec/subchunk.h"
#include "gf/gf256.h"
#include "gf/matrix.h"

namespace dblrep::ec {

namespace {

constexpr std::size_t kK = 10;
constexpr std::size_t kM = 4;
constexpr std::size_t kN = kK + kM;
constexpr std::size_t kAlpha = 2;
constexpr std::size_t kDataUnits = kK * kAlpha;    // 20
constexpr std::size_t kTotalUnits = kN * kAlpha;   // 28

// Piggyback groups: parity j >= 1 carries pgy_j over the a-units of S_j.
std::size_t group_of(std::size_t data_node) {
  if (data_node < 4) return 1;
  if (data_node < 7) return 2;
  return 3;
}
std::size_t group_size(std::size_t j) { return j == 1 ? 4 : 3; }

// Unit indexing: data unit 2i is a_i, 2i+1 is b_i; node 10+j stores
// slot 2(10+j) = p_j(a) and slot 2(10+j)+1 = q_j = p_j(b) + pgy_j(a).
std::size_t a_slot(std::size_t i) { return 2 * i; }
std::size_t b_slot(std::size_t i) { return 2 * i + 1; }
std::size_t q_slot(std::size_t j) { return 2 * (kK + j) + 1; }

StripeLayout make_layout() {
  std::vector<NodeIndex> slot_nodes(kTotalUnits);
  std::vector<std::size_t> slot_symbols(kTotalUnits);
  for (std::size_t s = 0; s < kTotalUnits; ++s) {
    slot_nodes[s] = static_cast<NodeIndex>(s / kAlpha);
    slot_symbols[s] = s;
  }
  return {kN, kTotalUnits, std::move(slot_nodes), std::move(slot_symbols)};
}

gf::Matrix make_generator() {
  // Same Cauchy points as RsCode(10, 4).
  std::vector<gf::Elem> xs(kM), ys(kK);
  for (std::size_t j = 0; j < kM; ++j) xs[j] = static_cast<gf::Elem>(j);
  for (std::size_t i = 0; i < kK; ++i) ys[i] = static_cast<gf::Elem>(kM + i);
  const gf::Matrix cauchy = gf::Matrix::cauchy(xs, ys);

  gf::Matrix g(kTotalUnits, kDataUnits);
  for (std::size_t u = 0; u < kDataUnits; ++u) g.set(u, u, 1);
  for (std::size_t j = 0; j < kM; ++j) {
    for (std::size_t i = 0; i < kK; ++i) {
      g.set(2 * (kK + j), a_slot(i), cauchy.at(j, i));      // p_j(a)
      g.set(q_slot(j), b_slot(i), cauchy.at(j, i));         // p_j(b)
      if (j >= 1 && group_of(i) == j) {                     // + pgy_j(a)
        g.set(q_slot(j), a_slot(i), cauchy.at(j, i));
      }
    }
  }
  return g;
}

/// Piggyback repair read set for data node i: the nine other b-units plus
/// the clean parity q_0 rebuild b_i; q_{group} plus the group's other
/// a-units (with the b-units reused and b_i local) peel out a_i.
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> repair_slots(
    std::size_t i) {
  const std::size_t j = group_of(i);
  std::vector<std::size_t> lost = {b_slot(i), a_slot(i)};  // b first: a uses it
  std::vector<std::size_t> reads;
  for (std::size_t r = 0; r < kK; ++r) {
    if (r != i) reads.push_back(b_slot(r));
  }
  reads.push_back(q_slot(0));
  reads.push_back(q_slot(j));
  for (std::size_t r = 0; r < kK; ++r) {
    if (r != i && group_of(r) == j) reads.push_back(a_slot(r));
  }
  return {std::move(lost), std::move(reads)};
}

std::size_t surviving_rank(const gf::Matrix& generator,
                           const StripeLayout& layout,
                           const std::vector<bool>& node_failed) {
  RowSpace space(kDataUnits);
  for (std::size_t s = 0; s < layout.num_slots(); ++s) {
    if (node_failed[static_cast<std::size_t>(layout.node_of_slot(s))]) continue;
    space.add(generator.row(layout.symbol_of_slot(s)));
  }
  return space.rank();
}

/// Numeric construction-time verification (once per process): the
/// piggyback structure keeps the code MDS over every 4-node failure, and
/// every data-node repair plan solves at exactly 10 + |S_j| units.
void verify(const gf::Matrix& generator, const StripeLayout& layout) {
  for (std::size_t a = 0; a < kN; ++a) {
    for (std::size_t b = a + 1; b < kN; ++b) {
      for (std::size_t c = b + 1; c < kN; ++c) {
        for (std::size_t d = c + 1; d < kN; ++d) {
          std::vector<bool> failed(kN, false);
          failed[a] = failed[b] = failed[c] = failed[d] = true;
          DBLREP_CHECK_EQ(surviving_rank(generator, layout, failed),
                          kDataUnits);
        }
      }
    }
  }
  {
    std::vector<bool> failed(kN, false);
    for (std::size_t j = 0; j <= kM; ++j) failed[j] = true;
    DBLREP_CHECK_LT(surviving_rank(generator, layout, failed), kDataUnits);
  }
  for (std::size_t i = 0; i < kK; ++i) {
    const auto [lost, reads] = repair_slots(i);
    auto plan = plan_from_unit_reads(generator, layout,
                                     static_cast<NodeIndex>(i), lost, reads);
    DBLREP_CHECK(plan.is_ok());
    DBLREP_CHECK_EQ(plan->network_units(), kK + group_size(group_of(i)));
  }
}

const gf::Matrix& pgy_generator() {
  static const gf::Matrix generator = [] {
    gf::Matrix g = make_generator();
    verify(g, make_layout());
    return g;
  }();
  return generator;
}

CodeParams make_params() {
  CodeParams params;
  params.name = "PgyRS(10,4)";
  params.data_blocks = kK;
  params.stored_blocks = kTotalUnits;
  params.num_symbols = kTotalUnits;
  params.num_nodes = kN;
  params.fault_tolerance = static_cast<int>(kM);  // MDS, verified above
  params.sub_chunks = kAlpha;
  return params;
}

bool subchunk_enabled() {
  const char* env = std::getenv("DBLREP_SUBCHUNK");
  return env == nullptr || std::string_view(env) != "0";
}

}  // namespace

PiggybackCode::PiggybackCode()
    : CodeScheme(make_params(), make_layout(), pgy_generator()),
      subchunk_repair_(subchunk_enabled()) {}

Result<RepairPlan> PiggybackCode::plan_node_repair(NodeIndex failed) const {
  DBLREP_CHECK_GE(failed, 0);
  DBLREP_CHECK_LT(static_cast<std::size_t>(failed), kN);
  if (!subchunk_repair_ || static_cast<std::size_t>(failed) >= kK) {
    return CodeScheme::plan_node_repair(failed);
  }
  const auto [lost, reads] = repair_slots(static_cast<std::size_t>(failed));
  return plan_from_unit_reads(generator(), layout(), failed, lost, reads);
}

}  // namespace dblrep::ec
