#include "gf/kernel.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "gf/kernel_tables.h"

namespace dblrep::gf {

namespace detail {

const std::uint8_t* nibble_tables(Elem coeff) {
  // 256 coefficients x {lo[16], hi[16]} = 8 KiB, built once. Row 0 is all
  // zeros, row 1 is the identity nibbles -- both still correct if a kernel
  // skips its fast paths.
  struct SplitTables {
    std::array<std::array<std::uint8_t, 32>, 256> rows{};
    SplitTables() {
      for (int c = 0; c < 256; ++c) {
        for (int i = 0; i < 16; ++i) {
          rows[c][i] = mul(static_cast<Elem>(c), static_cast<Elem>(i));
          rows[c][16 + i] = mul(static_cast<Elem>(c), static_cast<Elem>(i << 4));
        }
      }
    }
  };
  static const SplitTables tables;
  return tables.rows[coeff].data();
}

std::uint64_t affine_matrix(Elem coeff) {
  // 256 coefficients x 8 bytes = 2 KiB, built once. vgf2p8affineqb
  // computes output bit b = parity(matrix byte [7-b] AND input byte), so
  // the row selecting output bit b -- whose bit j is bit b of c * 2^j,
  // because c*x = XOR over set input bits j of c * 2^j -- is stored in
  // byte 7-b of the qword.
  struct AffineTables {
    std::array<std::uint64_t, 256> rows{};
    AffineTables() {
      for (int c = 0; c < 256; ++c) {
        std::uint64_t m = 0;
        for (int b = 0; b < 8; ++b) {
          std::uint8_t row = 0;
          for (int j = 0; j < 8; ++j) {
            const Elem product =
                mul(static_cast<Elem>(c), static_cast<Elem>(1u << j));
            if (product & (1u << b)) row |= static_cast<std::uint8_t>(1u << j);
          }
          m |= static_cast<std::uint64_t>(row) << (8 * (7 - b));
        }
        rows[static_cast<std::size_t>(c)] = m;
      }
    }
  };
  static const AffineTables tables;
  return tables.rows[coeff];
}

void xor_words(MutableByteSpan dst, ByteSpan src, std::size_t from) {
  // Delegates to the canonical word-at-a-time loop in common/bytes.cc so
  // there is exactly one implementation of the coefficient-1 fast path.
  xor_into(dst.subspan(from), src.subspan(from));
}

void xor_fold_words(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    std::size_t from) {
  const std::size_t n = dst.size();
  std::size_t i = from;
  // One pass: accumulate all sources into a register word, store once --
  // dst is written exactly once regardless of how many sources fold in.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t acc;
    std::memcpy(&acc, sources[0].data() + i, 8);
    for (std::size_t s = 1; s < sources.size(); ++s) {
      std::uint64_t w;
      std::memcpy(&w, sources[s].data() + i, 8);
      acc ^= w;
    }
    std::memcpy(dst.data() + i, &acc, 8);
  }
  for (; i < n; ++i) {
    std::uint8_t acc = sources[0][i];
    for (std::size_t s = 1; s < sources.size(); ++s) acc ^= sources[s][i];
    dst[i] = acc;
  }
}

void xor_fold_range(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    std::size_t from, std::size_t to) {
  for (std::size_t i = from; i < to; ++i) {
    std::uint8_t acc = sources[0][i];
    for (std::size_t s = 1; s < sources.size(); ++s) acc ^= sources[s][i];
    dst[i] = acc;
  }
}

void addmul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                        std::size_t from) {
  const std::uint8_t* row = mul_row(coeff);
  const std::size_t n = dst.size();
  for (std::size_t i = from; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                     std::size_t from) {
  const std::uint8_t* row = mul_row(coeff);
  const std::size_t n = dst.size();
  for (std::size_t i = from; i < n; ++i) dst[i] = row[src[i]];
}

void check_slice_contract(MutableByteSpan dst, ByteSpan src) {
  DBLREP_CHECK_EQ(dst.size(), src.size());
  // Partial overlap silently produces garbage (the kernel reads bytes the
  // same call already rewrote); exact aliasing is element-wise safe and
  // allowed. Debug-only: two compares per call would show up in encode
  // throughput.
  DBLREP_DCHECK_MSG(
      dst.data() == src.data() || dst.data() + dst.size() <= src.data() ||
          src.data() + src.size() <= dst.data(),
      "mul/addmul slices partially overlap: dst=" << (const void*)dst.data()
                                                  << " src="
                                                  << (const void*)src.data()
                                                  << " n=" << dst.size());
}

void check_fold_contract(MutableByteSpan dst,
                         std::span<const ByteSpan> sources) {
  DBLREP_CHECK(!sources.empty());
  for (const ByteSpan& src : sources) check_slice_contract(dst, src);
}

namespace {

/// Rows whose non-zero coefficients are all 1 fold with pure XOR (and take
/// the streaming-store path); cap the stack scratch that collects their
/// source views. Wider rows fall back to the mul/addmul sequence.
constexpr std::size_t kMaxFoldSources = 32;

/// Per-row coefficient scan, done once per (row) outside the chunk loop.
struct RowClass {
  std::size_t nnz = 0;
  bool all_ones = true;
};

RowClass classify_row(std::span<const Elem> row) {
  RowClass rc;
  for (const Elem e : row) {
    if (e == 0) continue;
    ++rc.nnz;
    if (e != 1) rc.all_ones = false;
  }
  return rc;
}

}  // namespace

void matrix_apply_batch_with(const GfKernel& kernel,
                             std::span<const Elem> coeffs,
                             std::span<const ByteSpan> sources,
                             std::span<const MutableByteSpan> outputs,
                             std::size_t groups) {
  DBLREP_CHECK_GT(groups, 0u);
  DBLREP_CHECK_EQ(sources.size() % groups, 0u);
  DBLREP_CHECK_EQ(outputs.size() % groups, 0u);
  const std::size_t rows = outputs.size() / groups;
  const std::size_t cols = sources.size() / groups;
  DBLREP_CHECK_EQ(coeffs.size(), rows * cols);
  const std::size_t n = outputs.empty()
                            ? (sources.empty() ? 0 : sources[0].size())
                            : outputs[0].size();
  for (const auto& src : sources) DBLREP_CHECK_EQ(src.size(), n);
  for (const auto& out : outputs) DBLREP_CHECK_EQ(out.size(), n);
  if (n == 0 || rows == 0) return;

  // Streaming stores pay off only when the output would not have stayed
  // cache-resident anyway; resolved once per call on the full slice length.
  const bool nt = non_temporal_enabled() && n >= kNonTemporalMinBytes;

  std::array<RowClass, 64> row_class_storage;
  std::vector<RowClass> row_class_spill;
  std::span<RowClass> row_class;
  if (rows <= row_class_storage.size()) {
    row_class = std::span<RowClass>(row_class_storage.data(), rows);
  } else {
    row_class_spill.resize(rows);
    row_class = row_class_spill;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    row_class[r] = classify_row(coeffs.subspan(r * cols, cols));
  }

  // Chunk the slice dimension so each output chunk stays cache-resident
  // while all sources stream through it once; iterating rows before groups
  // keeps one coefficient row's tables hot across every group (stripe) of
  // the batch.
  constexpr std::size_t kChunk = 32 * 1024;
  for (std::size_t off = 0; off < n; off += kChunk) {
    const std::size_t len = std::min(kChunk, n - off);
    for (std::size_t r = 0; r < rows; ++r) {
      const RowClass rc = row_class[r];
      for (std::size_t g = 0; g < groups; ++g) {
        MutableByteSpan out = outputs[g * rows + r].subspan(off, len);
        if (rc.nnz == 0) {
          std::memset(out.data(), 0, out.size());
          continue;
        }
        if (rc.all_ones && rc.nnz <= kMaxFoldSources) {
          std::array<ByteSpan, kMaxFoldSources> fold;
          std::size_t m = 0;
          for (std::size_t c = 0; c < cols; ++c) {
            if (coeffs[r * cols + c] != 0) {
              fold[m++] = sources[g * cols + c].subspan(off, len);
            }
          }
          kernel.xor_fold_slice(out, std::span<const ByteSpan>(fold.data(), m),
                                nt);
          continue;
        }
        bool first = true;
        for (std::size_t c = 0; c < cols; ++c) {
          const Elem e = coeffs[r * cols + c];
          if (e == 0) continue;
          ByteSpan src = sources[g * cols + c].subspan(off, len);
          if (first) {
            kernel.mul_slice(out, src, e);
            first = false;
          } else {
            kernel.addmul_slice(out, src, e);
          }
        }
      }
    }
  }

  // Modeled traffic (see SliceOpStats): zero rows write without reading,
  // fold rows may stream, mul/addmul rows pay the RFO.
  SliceOpStats& stats = slice_op_stats();
  for (std::size_t r = 0; r < rows; ++r) {
    const RowClass rc = row_class[r];
    const std::uint64_t row_bytes = static_cast<std::uint64_t>(n) * groups;
    stats.src_bytes_read += rc.nnz * row_bytes;
    stats.dst_bytes_written += row_bytes;
    const bool streamed = nt && rc.nnz > 0 && rc.all_ones &&
                          rc.nnz <= kMaxFoldSources;
    if (streamed) {
      stats.nt_bytes_written += row_bytes;
    } else {
      stats.rfo_bytes_read += row_bytes;
    }
  }
}

void matrix_apply_with(const GfKernel& kernel, std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs) {
  matrix_apply_batch_with(kernel, coeffs, sources, outputs, 1);
}

}  // namespace detail

namespace {

// ------------------------------------------------------------------ scalar

void scalar_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  detail::check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  detail::mul_scalar_tail(dst, src, coeff, 0);
}

void scalar_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  detail::check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    detail::xor_words(dst, src);
    return;
  }
  detail::addmul_scalar_tail(dst, src, coeff, 0);
}

void scalar_scale_slice(MutableByteSpan dst, Elem coeff) {
  scalar_mul_slice(dst, dst, coeff);
}

void scalar_xor_slice(MutableByteSpan dst, ByteSpan src) {
  detail::check_slice_contract(dst, src);
  detail::xor_words(dst, src);
}

void scalar_xor_fold_slice(MutableByteSpan dst,
                           std::span<const ByteSpan> sources,
                           bool /*non_temporal*/) {
  // No streaming-store path in the portable kernel; the flag is a hint.
  detail::check_fold_contract(dst, sources);
  detail::xor_fold_words(dst, sources);
}

constexpr GfKernel kScalarKernel = {
    "scalar", scalar_mul_slice, scalar_addmul_slice,
    scalar_scale_slice, scalar_xor_slice, scalar_xor_fold_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      detail::matrix_apply_with(kScalarKernel, coeffs, sources, outputs);
    },
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs, std::size_t groups) {
      detail::matrix_apply_batch_with(kScalarKernel, coeffs, sources, outputs,
                                      groups);
    }};

// ---------------------------------------------------------------- dispatch

std::vector<const GfKernel*> compiled_kernels() {
  std::vector<const GfKernel*> kernels = {&kScalarKernel};
  if (const GfKernel* k = detail::ssse3_kernel()) kernels.push_back(k);
  if (const GfKernel* k = detail::avx2_kernel()) kernels.push_back(k);
  if (const GfKernel* k = detail::avx512_kernel()) kernels.push_back(k);
  if (const GfKernel* k = detail::gfni_kernel()) kernels.push_back(k);
  return kernels;
}

std::atomic<const GfKernel*> g_active{nullptr};
std::atomic<bool> g_non_temporal{true};
std::once_flag g_init_once;

void log_selection(const GfKernel& kernel, const char* how) {
  // Off by default: every process start (including each ctest binary) would
  // otherwise print it. DBLREP_GF_LOG=1 logs the one-time selection.
  const char* env = std::getenv("DBLREP_GF_LOG");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) return;
  std::fprintf(stderr, "dblrep: GF kernel '%s' (%s)\n", kernel.name, how);
}

void init_active_kernel() {
  if (const char* nt = std::getenv("DBLREP_GF_NT");
      nt != nullptr && std::strcmp(nt, "0") == 0) {
    g_non_temporal.store(false, std::memory_order_relaxed);
  }
  const auto kernels = compiled_kernels();
  const GfKernel* chosen = kernels.back();  // fastest supported
  const char* how = "runtime dispatch";
  if (const char* env = std::getenv("DBLREP_GF_KERNEL");
      env != nullptr && *env != '\0') {
    bool found = false;
    for (const GfKernel* k : kernels) {
      if (std::string_view(k->name) == env) {
        chosen = k;
        how = "forced by DBLREP_GF_KERNEL";
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "dblrep: DBLREP_GF_KERNEL='%s' unknown or unsupported on "
                   "this CPU; falling back\n",
                   env);
    }
  }
  g_active.store(chosen, std::memory_order_release);
  log_selection(*chosen, how);
}

}  // namespace

const GfKernel& active_kernel() {
  std::call_once(g_init_once, init_active_kernel);
  return *g_active.load(std::memory_order_acquire);
}

std::vector<const GfKernel*> supported_kernels() {
  active_kernel();  // ensure one-time init/logging happened
  return compiled_kernels();
}

const GfKernel* find_kernel(std::string_view name) {
  for (const GfKernel* k : supported_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

bool set_active_kernel(std::string_view name) {
  const GfKernel* k = find_kernel(name);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

void set_non_temporal(bool enabled) {
  active_kernel();  // don't let startup env parsing overwrite the setting
  g_non_temporal.store(enabled, std::memory_order_relaxed);
}

bool non_temporal_enabled() {
  active_kernel();
  return g_non_temporal.load(std::memory_order_relaxed);
}

SliceOpStats& slice_op_stats() {
  thread_local SliceOpStats stats;
  return stats;
}

void reset_slice_op_stats() { slice_op_stats() = SliceOpStats{}; }

}  // namespace dblrep::gf
