#include "gf/kernel.h"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "gf/kernel_tables.h"

namespace dblrep::gf {

namespace detail {

const std::uint8_t* nibble_tables(Elem coeff) {
  // 256 coefficients x {lo[16], hi[16]} = 8 KiB, built once. Row 0 is all
  // zeros, row 1 is the identity nibbles -- both still correct if a kernel
  // skips its fast paths.
  struct SplitTables {
    std::array<std::array<std::uint8_t, 32>, 256> rows{};
    SplitTables() {
      for (int c = 0; c < 256; ++c) {
        for (int i = 0; i < 16; ++i) {
          rows[c][i] = mul(static_cast<Elem>(c), static_cast<Elem>(i));
          rows[c][16 + i] = mul(static_cast<Elem>(c), static_cast<Elem>(i << 4));
        }
      }
    }
  };
  static const SplitTables tables;
  return tables.rows[coeff].data();
}

void xor_words(MutableByteSpan dst, ByteSpan src, std::size_t from) {
  // Delegates to the canonical word-at-a-time loop in common/bytes.cc so
  // there is exactly one implementation of the coefficient-1 fast path.
  xor_into(dst.subspan(from), src.subspan(from));
}

void addmul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                        std::size_t from) {
  const std::uint8_t* row = mul_row(coeff);
  const std::size_t n = dst.size();
  for (std::size_t i = from; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                     std::size_t from) {
  const std::uint8_t* row = mul_row(coeff);
  const std::size_t n = dst.size();
  for (std::size_t i = from; i < n; ++i) dst[i] = row[src[i]];
}

void check_slice_contract(MutableByteSpan dst, ByteSpan src) {
  DBLREP_CHECK_EQ(dst.size(), src.size());
  // Partial overlap silently produces garbage (the kernel reads bytes the
  // same call already rewrote); exact aliasing is element-wise safe and
  // allowed. Debug-only: two compares per call would show up in encode
  // throughput.
  DBLREP_DCHECK_MSG(
      dst.data() == src.data() || dst.data() + dst.size() <= src.data() ||
          src.data() + src.size() <= dst.data(),
      "mul/addmul slices partially overlap: dst=" << (const void*)dst.data()
                                                  << " src="
                                                  << (const void*)src.data()
                                                  << " n=" << dst.size());
}

void matrix_apply_with(const GfKernel& kernel, std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs) {
  const std::size_t rows = outputs.size();
  const std::size_t cols = sources.size();
  DBLREP_CHECK_EQ(coeffs.size(), rows * cols);
  const std::size_t n = rows == 0 ? (cols == 0 ? 0 : sources[0].size())
                                  : outputs[0].size();
  for (const auto& src : sources) DBLREP_CHECK_EQ(src.size(), n);
  for (const auto& out : outputs) DBLREP_CHECK_EQ(out.size(), n);
  if (n == 0 || rows == 0) return;

  // Chunk the slice dimension so each output chunk stays cache-resident
  // while all k sources stream through it once.
  constexpr std::size_t kChunk = 32 * 1024;
  for (std::size_t off = 0; off < n; off += kChunk) {
    const std::size_t len = std::min(kChunk, n - off);
    for (std::size_t r = 0; r < rows; ++r) {
      MutableByteSpan out = outputs[r].subspan(off, len);
      bool first = true;
      for (std::size_t c = 0; c < cols; ++c) {
        const Elem e = coeffs[r * cols + c];
        if (e == 0) continue;
        ByteSpan src = sources[c].subspan(off, len);
        if (first) {
          kernel.mul_slice(out, src, e);
          first = false;
        } else {
          kernel.addmul_slice(out, src, e);
        }
      }
      if (first) std::memset(out.data(), 0, out.size());
    }
  }
}

}  // namespace detail

namespace {

// ------------------------------------------------------------------ scalar

void scalar_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  detail::check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  detail::mul_scalar_tail(dst, src, coeff, 0);
}

void scalar_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  detail::check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    detail::xor_words(dst, src);
    return;
  }
  detail::addmul_scalar_tail(dst, src, coeff, 0);
}

void scalar_scale_slice(MutableByteSpan dst, Elem coeff) {
  scalar_mul_slice(dst, dst, coeff);
}

void scalar_xor_slice(MutableByteSpan dst, ByteSpan src) {
  detail::check_slice_contract(dst, src);
  detail::xor_words(dst, src);
}

constexpr GfKernel kScalarKernel = {
    "scalar", scalar_mul_slice, scalar_addmul_slice,
    scalar_scale_slice, scalar_xor_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      detail::matrix_apply_with(kScalarKernel, coeffs, sources, outputs);
    }};

// ---------------------------------------------------------------- dispatch

std::vector<const GfKernel*> compiled_kernels() {
  std::vector<const GfKernel*> kernels = {&kScalarKernel};
  if (const GfKernel* k = detail::ssse3_kernel()) kernels.push_back(k);
  if (const GfKernel* k = detail::avx2_kernel()) kernels.push_back(k);
  return kernels;
}

std::atomic<const GfKernel*> g_active{nullptr};
std::once_flag g_init_once;

void log_selection(const GfKernel& kernel, const char* how) {
  std::fprintf(stderr, "dblrep: GF kernel '%s' (%s)\n", kernel.name, how);
}

void init_active_kernel() {
  const auto kernels = compiled_kernels();
  const GfKernel* chosen = kernels.back();  // fastest supported
  const char* how = "runtime dispatch";
  if (const char* env = std::getenv("DBLREP_GF_KERNEL");
      env != nullptr && *env != '\0') {
    bool found = false;
    for (const GfKernel* k : kernels) {
      if (std::string_view(k->name) == env) {
        chosen = k;
        how = "forced by DBLREP_GF_KERNEL";
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "dblrep: DBLREP_GF_KERNEL='%s' unknown or unsupported on "
                   "this CPU; falling back\n",
                   env);
    }
  }
  g_active.store(chosen, std::memory_order_release);
  log_selection(*chosen, how);
}

}  // namespace

const GfKernel& active_kernel() {
  std::call_once(g_init_once, init_active_kernel);
  return *g_active.load(std::memory_order_acquire);
}

std::vector<const GfKernel*> supported_kernels() {
  active_kernel();  // ensure one-time init/logging happened
  return compiled_kernels();
}

const GfKernel* find_kernel(std::string_view name) {
  for (const GfKernel* k : supported_kernels()) {
    if (name == k->name) return k;
  }
  return nullptr;
}

bool set_active_kernel(std::string_view name) {
  const GfKernel* k = find_kernel(name);
  if (k == nullptr) return false;
  g_active.store(k, std::memory_order_release);
  return true;
}

}  // namespace dblrep::gf
