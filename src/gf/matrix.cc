#include "gf/matrix.h"

#include <algorithm>
#include <sstream>

namespace dblrep::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<Elem>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  cells_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    DBLREP_CHECK_EQ(row.size(), cols_);
    cells_.insert(cells_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, 1);
  return m;
}

Matrix Matrix::vandermonde(const std::vector<unsigned>& eval_exponents,
                           std::size_t cols) {
  Matrix m(eval_exponents.size(), cols);
  for (std::size_t r = 0; r < eval_exponents.size(); ++r) {
    const Elem point = exp_alpha(eval_exponents[r]);
    Elem value = 1;
    for (std::size_t c = 0; c < cols; ++c) {
      m.set(r, c, value);
      value = gf::mul(value, point);
    }
  }
  return m;
}

Matrix Matrix::cauchy(const std::vector<Elem>& xs, const std::vector<Elem>& ys) {
  Matrix m(xs.size(), ys.size());
  for (std::size_t r = 0; r < xs.size(); ++r) {
    for (std::size_t c = 0; c < ys.size(); ++c) {
      const Elem denom = add(xs[r], ys[c]);
      DBLREP_CHECK_MSG(denom != 0, "Cauchy points must be disjoint");
      m.set(r, c, inv(denom));
    }
  }
  return m;
}

std::size_t Matrix::index(std::size_t r, std::size_t c) const {
  DBLREP_CHECK_LT(r, rows_);
  DBLREP_CHECK_LT(c, cols_);
  return r * cols_ + c;
}

Elem Matrix::at(std::size_t r, std::size_t c) const { return cells_[index(r, c)]; }

void Matrix::set(std::size_t r, std::size_t c, Elem value) {
  cells_[index(r, c)] = value;
}

std::span<const Elem> Matrix::row(std::size_t r) const {
  DBLREP_CHECK_LT(r, rows_);
  return {cells_.data() + r * cols_, cols_};
}

Matrix Matrix::mul(const Matrix& other) const {
  DBLREP_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Elem a = at(r, k);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.cells_[r * other.cols_ + c] =
            add(out.cells_[r * other.cols_ + c], gf::mul(a, other.at(k, c)));
      }
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (std::size_t r = 0; r < row_indices.size(); ++r) {
    const auto src = row(row_indices[r]);
    std::copy(src.begin(), src.end(), out.cells_.begin() + r * cols_);
  }
  return out;
}

namespace {

/// Row-reduces `work` in place; returns pivot columns found. If `companion`
/// is non-null, mirrors every row operation onto it (same row count).
std::vector<std::size_t> eliminate(Matrix& work, Matrix* companion) {
  std::vector<std::size_t> pivot_cols;
  std::size_t pivot_row = 0;
  for (std::size_t col = 0; col < work.cols() && pivot_row < work.rows(); ++col) {
    // Find a non-zero pivot in this column.
    std::size_t found = work.rows();
    for (std::size_t r = pivot_row; r < work.rows(); ++r) {
      if (work.at(r, col) != 0) {
        found = r;
        break;
      }
    }
    if (found == work.rows()) continue;
    // Swap into position.
    if (found != pivot_row) {
      for (std::size_t c = 0; c < work.cols(); ++c) {
        const Elem tmp = work.at(pivot_row, c);
        work.set(pivot_row, c, work.at(found, c));
        work.set(found, c, tmp);
      }
      if (companion) {
        for (std::size_t c = 0; c < companion->cols(); ++c) {
          const Elem tmp = companion->at(pivot_row, c);
          companion->set(pivot_row, c, companion->at(found, c));
          companion->set(found, c, tmp);
        }
      }
    }
    // Normalize pivot row.
    const Elem pivot = work.at(pivot_row, col);
    const Elem scale = inv(pivot);
    if (scale != 1) {
      for (std::size_t c = 0; c < work.cols(); ++c) {
        work.set(pivot_row, c, mul(work.at(pivot_row, c), scale));
      }
      if (companion) {
        for (std::size_t c = 0; c < companion->cols(); ++c) {
          companion->set(pivot_row, c, mul(companion->at(pivot_row, c), scale));
        }
      }
    }
    // Eliminate the column everywhere else (Gauss-Jordan).
    for (std::size_t r = 0; r < work.rows(); ++r) {
      if (r == pivot_row) continue;
      const Elem factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < work.cols(); ++c) {
        work.set(r, c, add(work.at(r, c), mul(factor, work.at(pivot_row, c))));
      }
      if (companion) {
        for (std::size_t c = 0; c < companion->cols(); ++c) {
          companion->set(
              r, c, add(companion->at(r, c), mul(factor, companion->at(pivot_row, c))));
        }
      }
    }
    pivot_cols.push_back(col);
    ++pivot_row;
  }
  return pivot_cols;
}

}  // namespace

std::size_t Matrix::rank() const {
  Matrix work = *this;
  return eliminate(work, nullptr).size();
}

Result<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) {
    return invalid_argument_error("inverse of non-square matrix");
  }
  Matrix work = *this;
  Matrix companion = identity(rows_);
  const auto pivots = eliminate(work, &companion);
  if (pivots.size() != rows_) {
    return invalid_argument_error("matrix is singular");
  }
  return companion;
}

Result<Matrix> Matrix::solve(const Matrix& rhs) const {
  if (rhs.rows() != rows_) {
    return invalid_argument_error("solve: rhs row count mismatch");
  }
  if (rows_ < cols_) {
    return invalid_argument_error("solve: underdetermined system");
  }
  Matrix work = *this;
  Matrix companion = rhs;
  const auto pivots = eliminate(work, &companion);
  if (pivots.size() != cols_) {
    return data_loss_error("solve: rank deficient system");
  }
  // Overdetermined rows must have been annihilated consistently: a zero row
  // of A with a non-zero transformed rhs means rhs is outside the column
  // space and no solution exists.
  for (std::size_t r = pivots.size(); r < rows_; ++r) {
    for (std::size_t c = 0; c < companion.cols(); ++c) {
      if (companion.at(r, c) != 0) {
        return data_loss_error("solve: inconsistent system");
      }
    }
  }
  // After Gauss-Jordan the first cols_ pivot rows hold the solution in pivot
  // order; pivots are exactly columns 0..cols_-1 when full rank because
  // elimination scans columns left to right.
  Matrix solution(cols_, rhs.cols());
  for (std::size_t r = 0; r < cols_; ++r) {
    for (std::size_t c = 0; c < rhs.cols(); ++c) {
      solution.set(pivots[r], c, companion.at(r, c));
    }
  }
  return solution;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << " ";
      os << static_cast<int>(at(r, c));
    }
    os << "]\n";
  }
  return os.str();
}

void linear_combine(MutableByteSpan out, std::span<const Elem> coeffs,
                    std::span<const ByteSpan> blocks) {
  DBLREP_CHECK_EQ(coeffs.size(), blocks.size());
  // One-row matrix_apply: a single fused pass through the SIMD kernel.
  const MutableByteSpan outputs[] = {out};
  matrix_apply(coeffs, blocks, outputs);
}

}  // namespace dblrep::gf
