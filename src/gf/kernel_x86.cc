// SSSE3, AVX2, AVX-512, and GFNI GF(2^8) kernels.
//
// The split-table trick (ISA-L / "Screaming Fast Galois Field Arithmetic"
// style): for a fixed coefficient c, c*x = lo_table[x & 0xf] ^
// hi_table[x >> 4] because multiplication is GF(2)-linear in x. Both
// 16-entry tables fit in one vector register, so pshufb/vpshufb evaluates
// 16/32/64 products per instruction against one byte load, versus one
// scalar table load per byte.
//
// GFNI drops the tables entirely: the same GF(2)-linearity means c*x is an
// 8x8 bit-matrix transform of x, and vgf2p8affineqb applies one such
// matrix to every byte of a ZMM register -- 64 products per instruction
// from a single broadcast 8-byte constant (see detail::affine_matrix for
// the operand layout).
//
// The coefficient-1-only fold path (XOR parities) additionally uses
// non-temporal stores on the AVX2/AVX-512 kernels for large slices: parity
// outputs are write-once in the encode pass, so movnt skips the
// read-for-ownership of every destination line.
//
// Compiled with function-level target attributes so the rest of the library
// needs no -march flags; runtime CPUID (plus XCR0 for ZMM state) gates
// every entry.
#include "gf/kernel.h"
#include "gf/kernel_tables.h"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace dblrep::gf {
namespace detail {
namespace {

// ------------------------------------------------------------------- ssse3

__attribute__((target("ssse3"))) void ssse3_mul_body(MutableByteSpan dst,
                                                     ByteSpan src, Elem coeff,
                                                     bool accumulate) {
  const std::uint8_t* tab = nibble_tables(coeff);
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src.data() + i));
    __m128i product = _mm_xor_si128(
        _mm_shuffle_epi8(lo, _mm_and_si128(s, mask)),
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    if (accumulate) {
      __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst.data() + i));
      product = _mm_xor_si128(product, d);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst.data() + i), product);
  }
  if (i < n) {
    if (accumulate) {
      addmul_scalar_tail(dst, src, coeff, i);
    } else {
      mul_scalar_tail(dst, src, coeff, i);
    }
  }
}

void ssse3_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  ssse3_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void ssse3_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    xor_words(dst, src);
    return;
  }
  ssse3_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void ssse3_scale_slice(MutableByteSpan dst, Elem coeff) {
  ssse3_mul_slice(dst, dst, coeff);
}

void ssse3_xor_slice(MutableByteSpan dst, ByteSpan src) {
  check_slice_contract(dst, src);
  xor_words(dst, src);
}

void ssse3_xor_fold_slice(MutableByteSpan dst,
                          std::span<const ByteSpan> sources,
                          bool /*non_temporal*/) {
  // Matches the kernel's xor_slice: the word loop saturates 128-bit loads
  // already, and the pre-AVX uarches this kernel targets gain little from
  // movntdq. The flag is a hint and is ignored here.
  check_fold_contract(dst, sources);
  xor_fold_words(dst, sources);
}

constexpr GfKernel kSsse3Kernel = {
    "ssse3", ssse3_mul_slice, ssse3_addmul_slice,
    ssse3_scale_slice, ssse3_xor_slice, ssse3_xor_fold_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kSsse3Kernel, coeffs, sources, outputs);
    },
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs, std::size_t groups) {
      matrix_apply_batch_with(kSsse3Kernel, coeffs, sources, outputs, groups);
    }};

// -------------------------------------------------------------------- avx2

__attribute__((target("avx2"))) void avx2_mul_body(MutableByteSpan dst,
                                                   ByteSpan src, Elem coeff,
                                                   bool accumulate) {
  const std::uint8_t* tab = nibble_tables(coeff);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    __m256i product = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(hi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    if (accumulate) {
      __m256i d = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dst.data() + i));
      product = _mm256_xor_si256(product, d);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i), product);
  }
  if (i < n) {
    if (accumulate) {
      addmul_scalar_tail(dst, src, coeff, i);
    } else {
      mul_scalar_tail(dst, src, coeff, i);
    }
  }
}

__attribute__((target("avx2"))) void avx2_xor_body(MutableByteSpan dst,
                                                   ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst.data() + i));
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(d, s));
  }
  if (i < n) xor_words(dst, src, i);
}

__attribute__((target("avx2"))) __m256i avx2_fold_load(
    std::span<const ByteSpan> sources, std::size_t i) {
  __m256i acc = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(sources[0].data() + i));
  for (std::size_t s = 1; s < sources.size(); ++s) {
    acc = _mm256_xor_si256(
        acc, _mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(sources[s].data() + i)));
  }
  return acc;
}

__attribute__((target("avx2"))) void avx2_fold_body(
    MutableByteSpan dst, std::span<const ByteSpan> sources,
    bool non_temporal) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  if (non_temporal && n >= 64) {
    // Scalar head up to the first 32-byte destination boundary, then
    // streaming stores: the fold output is write-once in this pass, so
    // movntdq skips the RFO of every line it fully covers.
    const std::size_t misalign =
        reinterpret_cast<std::uintptr_t>(dst.data()) & 31;
    if (misalign != 0) {
      i = 32 - misalign;
      xor_fold_range(dst, sources, 0, i);
    }
    for (; i + 32 <= n; i += 32) {
      _mm256_stream_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                          avx2_fold_load(sources, i));
    }
    _mm_sfence();  // order the streamed bytes before any subsequent read
  } else {
    for (; i + 32 <= n; i += 32) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                          avx2_fold_load(sources, i));
    }
  }
  if (i < n) xor_fold_words(dst, sources, i);
}

void avx2_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  avx2_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void avx2_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    avx2_xor_body(dst, src);
    return;
  }
  avx2_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void avx2_scale_slice(MutableByteSpan dst, Elem coeff) {
  avx2_mul_slice(dst, dst, coeff);
}

void avx2_xor_slice(MutableByteSpan dst, ByteSpan src) {
  check_slice_contract(dst, src);
  avx2_xor_body(dst, src);
}

void avx2_xor_fold_slice(MutableByteSpan dst, std::span<const ByteSpan> sources,
                         bool non_temporal) {
  check_fold_contract(dst, sources);
  if (dst.empty()) return;
  avx2_fold_body(dst, sources, non_temporal);
}

constexpr GfKernel kAvx2Kernel = {
    "avx2", avx2_mul_slice, avx2_addmul_slice,
    avx2_scale_slice, avx2_xor_slice, avx2_xor_fold_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kAvx2Kernel, coeffs, sources, outputs);
    },
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs, std::size_t groups) {
      matrix_apply_batch_with(kAvx2Kernel, coeffs, sources, outputs, groups);
    }};

// ------------------------------------------------------------------ avx512
//
// The split-table kernel widened to ZMM: 64 products per vpshufb. Tails
// are handled in-register with byte masks (avx512bw) instead of a scalar
// loop, so sub-register lengths still run the vector path.

// GCC's non-masked AVX-512 intrinsics pass _mm512_undefined_epi32() (the
// self-initialized `__Y = __Y` idiom) as the ignored merge source, which
// -Wuninitialized flags through inlining. False positive; the value is
// architecturally ignored under a full mask.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#define DBLREP_AVX512_TARGET "avx512f,avx512bw,avx512vl"

__attribute__((target(DBLREP_AVX512_TARGET))) __m512i avx512_mul_once(
    __m512i s, __m512i lo, __m512i hi, __m512i mask) {
  return _mm512_xor_si512(
      _mm512_shuffle_epi8(lo, _mm512_and_si512(s, mask)),
      _mm512_shuffle_epi8(hi,
                          _mm512_and_si512(_mm512_srli_epi64(s, 4), mask)));
}

__attribute__((target(DBLREP_AVX512_TARGET))) void avx512_mul_body(
    MutableByteSpan dst, ByteSpan src, Elem coeff, bool accumulate) {
  const std::uint8_t* tab = nibble_tables(coeff);
  const __m512i lo = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab)));
  const __m512i hi = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16)));
  const __m512i mask = _mm512_set1_epi8(0x0f);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512i s = _mm512_loadu_si512(src.data() + i);
    __m512i product = avx512_mul_once(s, lo, hi, mask);
    if (accumulate) {
      product = _mm512_xor_si512(product, _mm512_loadu_si512(dst.data() + i));
    }
    _mm512_storeu_si512(dst.data() + i, product);
  }
  if (i < n) {
    const __mmask64 k = (__mmask64{1} << (n - i)) - 1;
    __m512i s = _mm512_maskz_loadu_epi8(k, src.data() + i);
    __m512i product = avx512_mul_once(s, lo, hi, mask);
    if (accumulate) {
      product = _mm512_xor_si512(product,
                                 _mm512_maskz_loadu_epi8(k, dst.data() + i));
    }
    _mm512_mask_storeu_epi8(dst.data() + i, k, product);
  }
}

__attribute__((target(DBLREP_AVX512_TARGET))) void avx512_xor_body(
    MutableByteSpan dst, ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    _mm512_storeu_si512(dst.data() + i,
                        _mm512_xor_si512(_mm512_loadu_si512(dst.data() + i),
                                         _mm512_loadu_si512(src.data() + i)));
  }
  if (i < n) {
    const __mmask64 k = (__mmask64{1} << (n - i)) - 1;
    _mm512_mask_storeu_epi8(
        dst.data() + i, k,
        _mm512_xor_si512(_mm512_maskz_loadu_epi8(k, dst.data() + i),
                         _mm512_maskz_loadu_epi8(k, src.data() + i)));
  }
}

__attribute__((target(DBLREP_AVX512_TARGET))) __m512i avx512_fold_load(
    std::span<const ByteSpan> sources, std::size_t i) {
  __m512i acc = _mm512_loadu_si512(sources[0].data() + i);
  for (std::size_t s = 1; s < sources.size(); ++s) {
    acc = _mm512_xor_si512(acc, _mm512_loadu_si512(sources[s].data() + i));
  }
  return acc;
}

__attribute__((target(DBLREP_AVX512_TARGET))) void avx512_fold_body(
    MutableByteSpan dst, std::span<const ByteSpan> sources,
    bool non_temporal) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  if (non_temporal && n >= 128) {
    const std::size_t misalign =
        reinterpret_cast<std::uintptr_t>(dst.data()) & 63;
    if (misalign != 0) {
      i = 64 - misalign;
      xor_fold_range(dst, sources, 0, i);
    }
    for (; i + 64 <= n; i += 64) {
      _mm512_stream_si512(reinterpret_cast<__m512i*>(dst.data() + i),
                          avx512_fold_load(sources, i));
    }
    _mm_sfence();  // order the streamed bytes before any subsequent read
  } else {
    for (; i + 64 <= n; i += 64) {
      _mm512_storeu_si512(dst.data() + i, avx512_fold_load(sources, i));
    }
  }
  if (i < n) {
    const __mmask64 k = (__mmask64{1} << (n - i)) - 1;
    __m512i acc = _mm512_maskz_loadu_epi8(k, sources[0].data() + i);
    for (std::size_t s = 1; s < sources.size(); ++s) {
      acc = _mm512_xor_si512(
          acc, _mm512_maskz_loadu_epi8(k, sources[s].data() + i));
    }
    _mm512_mask_storeu_epi8(dst.data() + i, k, acc);
  }
}

void avx512_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  avx512_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void avx512_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    avx512_xor_body(dst, src);
    return;
  }
  avx512_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void avx512_scale_slice(MutableByteSpan dst, Elem coeff) {
  avx512_mul_slice(dst, dst, coeff);
}

void avx512_xor_slice(MutableByteSpan dst, ByteSpan src) {
  check_slice_contract(dst, src);
  avx512_xor_body(dst, src);
}

void avx512_xor_fold_slice(MutableByteSpan dst,
                           std::span<const ByteSpan> sources,
                           bool non_temporal) {
  check_fold_contract(dst, sources);
  if (dst.empty()) return;
  avx512_fold_body(dst, sources, non_temporal);
}

constexpr GfKernel kAvx512Kernel = {
    "avx512", avx512_mul_slice, avx512_addmul_slice,
    avx512_scale_slice, avx512_xor_slice, avx512_xor_fold_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kAvx512Kernel, coeffs, sources, outputs);
    },
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs, std::size_t groups) {
      matrix_apply_batch_with(kAvx512Kernel, coeffs, sources, outputs,
                              groups);
    }};

// -------------------------------------------------------------------- gfni
//
// vgf2p8affineqb evaluates y = M_c * x per byte for the broadcast 8x8 bit
// matrix M_c (see detail::affine_matrix): no table loads, one instruction
// per 64 bytes, and the 0x11d field polynomial is irrelevant because the
// matrix already encodes multiplication in our field. XOR and fold paths
// are the plain AVX-512 bodies (GFNI adds nothing to coefficient-1 work).

#define DBLREP_GFNI_TARGET "gfni,avx512f,avx512bw,avx512vl"

__attribute__((target(DBLREP_GFNI_TARGET))) void gfni_mul_body(
    MutableByteSpan dst, ByteSpan src, Elem coeff, bool accumulate) {
  const __m512i matrix =
      _mm512_set1_epi64(static_cast<long long>(affine_matrix(coeff)));
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m512i s = _mm512_loadu_si512(src.data() + i);
    __m512i product = _mm512_gf2p8affine_epi64_epi8(s, matrix, 0);
    if (accumulate) {
      product = _mm512_xor_si512(product, _mm512_loadu_si512(dst.data() + i));
    }
    _mm512_storeu_si512(dst.data() + i, product);
  }
  if (i < n) {
    const __mmask64 k = (__mmask64{1} << (n - i)) - 1;
    __m512i s = _mm512_maskz_loadu_epi8(k, src.data() + i);
    __m512i product = _mm512_gf2p8affine_epi64_epi8(s, matrix, 0);
    if (accumulate) {
      product = _mm512_xor_si512(product,
                                 _mm512_maskz_loadu_epi8(k, dst.data() + i));
    }
    _mm512_mask_storeu_epi8(dst.data() + i, k, product);
  }
}

void gfni_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  gfni_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void gfni_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    avx512_xor_body(dst, src);
    return;
  }
  gfni_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void gfni_scale_slice(MutableByteSpan dst, Elem coeff) {
  gfni_mul_slice(dst, dst, coeff);
}

constexpr GfKernel kGfniKernel = {
    "gfni", gfni_mul_slice, gfni_addmul_slice,
    gfni_scale_slice, avx512_xor_slice, avx512_xor_fold_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kGfniKernel, coeffs, sources, outputs);
    },
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs, std::size_t groups) {
      matrix_apply_batch_with(kGfniKernel, coeffs, sources, outputs, groups);
    }};

#pragma GCC diagnostic pop

// ----------------------------------------------------------------- probing
//
// __builtin_cpu_supports covers ssse3/avx2, but AVX-512 usability also
// depends on the OS saving ZMM/opmask state (XCR0), and "gfni" as a
// feature string is not portable across the toolchain range we build with
// -- probe CPUID leaves directly.

std::uint64_t xgetbv0() {
  std::uint32_t eax, edx;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

bool os_zmm_usable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if (!(ecx & (1u << 27))) return false;  // OSXSAVE: xgetbv is executable
  // XMM (bit 1), YMM (2), opmask (5), ZMM0-15 upper (6), ZMM16-31 (7).
  constexpr std::uint64_t kAvx512State = 0xe6;
  return (xgetbv0() & kAvx512State) == kAvx512State;
}

struct Leaf7 {
  unsigned ebx = 0, ecx = 0;
};

Leaf7 cpuid_leaf7() {
  Leaf7 out;
  unsigned eax = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &out.ebx, &out.ecx, &edx)) return {};
  return out;
}

bool cpu_has_avx512_core() {
  const Leaf7 leaf = cpuid_leaf7();
  const bool f = leaf.ebx & (1u << 16);
  const bool bw = leaf.ebx & (1u << 30);
  const bool vl = leaf.ebx & (1u << 31);
  return f && bw && vl && os_zmm_usable();
}

bool cpu_has_gfni() { return (cpuid_leaf7().ecx & (1u << 8)) != 0; }

}  // namespace

const GfKernel* ssse3_kernel() {
  return __builtin_cpu_supports("ssse3") ? &kSsse3Kernel : nullptr;
}

const GfKernel* avx2_kernel() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernel : nullptr;
}

const GfKernel* avx512_kernel() {
  return cpu_has_avx512_core() ? &kAvx512Kernel : nullptr;
}

const GfKernel* gfni_kernel() {
  return cpu_has_avx512_core() && cpu_has_gfni() ? &kGfniKernel : nullptr;
}

}  // namespace detail
}  // namespace dblrep::gf

#else  // non-x86: only the scalar kernel is compiled in.

namespace dblrep::gf::detail {
const GfKernel* ssse3_kernel() { return nullptr; }
const GfKernel* avx2_kernel() { return nullptr; }
const GfKernel* avx512_kernel() { return nullptr; }
const GfKernel* gfni_kernel() { return nullptr; }
}  // namespace dblrep::gf::detail

#endif
