// SSSE3 and AVX2 split-table GF(2^8) kernels.
//
// The trick (ISA-L / "Screaming Fast Galois Field Arithmetic" style): for a
// fixed coefficient c, c*x = lo_table[x & 0xf] ^ hi_table[x >> 4] because
// multiplication is GF(2)-linear in x. Both 16-entry tables fit in one
// vector register, so pshufb/vpshufb evaluates 16/32 products per
// instruction against one byte load, versus one scalar table load per byte.
//
// Compiled with function-level target attributes so the rest of the library
// needs no -march flags; runtime CPUID gates every entry.
#include "gf/kernel.h"
#include "gf/kernel_tables.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

#include <cstring>

namespace dblrep::gf {
namespace detail {
namespace {

// ------------------------------------------------------------------- ssse3

__attribute__((target("ssse3"))) void ssse3_mul_body(MutableByteSpan dst,
                                                     ByteSpan src, Elem coeff,
                                                     bool accumulate) {
  const std::uint8_t* tab = nibble_tables(coeff);
  const __m128i lo =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab));
  const __m128i hi =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16));
  const __m128i mask = _mm_set1_epi8(0x0f);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src.data() + i));
    __m128i product = _mm_xor_si128(
        _mm_shuffle_epi8(lo, _mm_and_si128(s, mask)),
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    if (accumulate) {
      __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst.data() + i));
      product = _mm_xor_si128(product, d);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst.data() + i), product);
  }
  if (i < n) {
    if (accumulate) {
      addmul_scalar_tail(dst, src, coeff, i);
    } else {
      mul_scalar_tail(dst, src, coeff, i);
    }
  }
}

void ssse3_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  ssse3_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void ssse3_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    xor_words(dst, src);
    return;
  }
  ssse3_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void ssse3_scale_slice(MutableByteSpan dst, Elem coeff) {
  ssse3_mul_slice(dst, dst, coeff);
}

void ssse3_xor_slice(MutableByteSpan dst, ByteSpan src) {
  check_slice_contract(dst, src);
  xor_words(dst, src);
}

constexpr GfKernel kSsse3Kernel = {
    "ssse3", ssse3_mul_slice, ssse3_addmul_slice,
    ssse3_scale_slice, ssse3_xor_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kSsse3Kernel, coeffs, sources, outputs);
    }};

// -------------------------------------------------------------------- avx2

__attribute__((target("avx2"))) void avx2_mul_body(MutableByteSpan dst,
                                                   ByteSpan src, Elem coeff,
                                                   bool accumulate) {
  const std::uint8_t* tab = nibble_tables(coeff);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(tab + 16)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    __m256i product = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(hi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    if (accumulate) {
      __m256i d = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dst.data() + i));
      product = _mm256_xor_si256(product, d);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i), product);
  }
  if (i < n) {
    if (accumulate) {
      addmul_scalar_tail(dst, src, coeff, i);
    } else {
      mul_scalar_tail(dst, src, coeff, i);
    }
  }
}

__attribute__((target("avx2"))) void avx2_xor_body(MutableByteSpan dst,
                                                   ByteSpan src) {
  const std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst.data() + i));
    __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src.data() + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst.data() + i),
                        _mm256_xor_si256(d, s));
  }
  if (i < n) xor_words(dst, src, i);
}

void avx2_mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (dst.empty()) return;
  if (coeff == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (coeff == 1) {
    if (dst.data() != src.data()) {
      std::memcpy(dst.data(), src.data(), dst.size());
    }
    return;
  }
  avx2_mul_body(dst, src, coeff, /*accumulate=*/false);
}

void avx2_addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  check_slice_contract(dst, src);
  if (coeff == 0) return;
  if (coeff == 1) {
    avx2_xor_body(dst, src);
    return;
  }
  avx2_mul_body(dst, src, coeff, /*accumulate=*/true);
}

void avx2_scale_slice(MutableByteSpan dst, Elem coeff) {
  avx2_mul_slice(dst, dst, coeff);
}

void avx2_xor_slice(MutableByteSpan dst, ByteSpan src) {
  check_slice_contract(dst, src);
  avx2_xor_body(dst, src);
}

constexpr GfKernel kAvx2Kernel = {
    "avx2", avx2_mul_slice, avx2_addmul_slice,
    avx2_scale_slice, avx2_xor_slice,
    [](std::span<const Elem> coeffs, std::span<const ByteSpan> sources,
       std::span<const MutableByteSpan> outputs) {
      matrix_apply_with(kAvx2Kernel, coeffs, sources, outputs);
    }};

}  // namespace

const GfKernel* ssse3_kernel() {
  return __builtin_cpu_supports("ssse3") ? &kSsse3Kernel : nullptr;
}

const GfKernel* avx2_kernel() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernel : nullptr;
}

}  // namespace detail
}  // namespace dblrep::gf

#else  // non-x86: only the scalar kernel is compiled in.

namespace dblrep::gf::detail {
const GfKernel* ssse3_kernel() { return nullptr; }
const GfKernel* avx2_kernel() { return nullptr; }
}  // namespace dblrep::gf::detail

#endif
