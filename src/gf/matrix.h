// Dense matrices over GF(2^8) with the linear algebra the decoders need:
// Gaussian elimination, rank, inversion, and solving A x = b for multiple
// right-hand sides (where each "scalar" of b is a whole data block).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"
#include "gf/gf256.h"

namespace dblrep::gf {

/// Row-major dense matrix over GF(2^8).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::initializer_list<std::initializer_list<Elem>> init);

  static Matrix identity(std::size_t n);

  /// Vandermonde matrix V[r][c] = alpha^(evals[r] * c); rows are indexed by
  /// caller-chosen evaluation exponents so codes can pick disjoint rows.
  static Matrix vandermonde(const std::vector<unsigned>& eval_exponents,
                            std::size_t cols);

  /// Cauchy matrix C[r][c] = 1 / (x_r + y_c); all x_r distinct from all y_c.
  static Matrix cauchy(const std::vector<Elem>& xs, const std::vector<Elem>& ys);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  Elem at(std::size_t r, std::size_t c) const;
  void set(std::size_t r, std::size_t c, Elem value);

  /// Span view of one row (length cols()).
  std::span<const Elem> row(std::size_t r) const;

  Matrix mul(const Matrix& other) const;

  /// Matrix with the given subset of this matrix's rows, in order.
  Matrix select_rows(const std::vector<std::size_t>& row_indices) const;

  /// Rank via Gaussian elimination on a copy.
  std::size_t rank() const;

  /// Inverse; error if singular or non-square.
  Result<Matrix> inverse() const;

  /// Solves A * x = b where b has one column per right-hand side.
  /// A may be rectangular with rows() >= cols(); error if rank < cols().
  Result<Matrix> solve(const Matrix& rhs) const;

  bool operator==(const Matrix& other) const = default;

  std::string to_string() const;

 private:
  std::size_t index(std::size_t r, std::size_t c) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Elem> cells_;
};

/// Applies `coeffs` (length n) to n equal-length source blocks:
/// out = sum_i coeffs[i] * blocks[i]. All blocks must share out's size.
void linear_combine(MutableByteSpan out, std::span<const Elem> coeffs,
                    std::span<const ByteSpan> blocks);

}  // namespace dblrep::gf
