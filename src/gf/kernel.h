// GfKernel: pluggable backend for the bulk GF(2^8) slice operations.
//
// Every byte that moves through encode, decode, or repair goes through one
// of these five entry points. Three implementations ship:
//
//  * "scalar" -- the portable 64 KiB-table kernel (one load per byte), plus
//    a 64-bit-word XOR fast path for coefficient-1 terms. Always available.
//  * "ssse3"  -- split-table kernel: per-coefficient 16-entry low/high
//    nibble tables applied with pshufb, 16 bytes per step.
//  * "avx2"   -- the same split-table trick widened to 32 bytes per step
//    with vpshufb.
//
// The active kernel is chosen once at startup by runtime CPUID dispatch
// (best supported wins) and can be forced with DBLREP_GF_KERNEL=scalar|
// ssse3|avx2 for testing and benchmarking. Selection is logged to stderr.
//
// All kernels are bit-identical by contract; tests/gf_kernel_test.cc
// cross-checks them exhaustively.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "gf/gf256.h"

namespace dblrep::gf {

/// Dispatch table for the bulk ops. All functions tolerate any coefficient
/// (0 and 1 take fast paths) and any slice length, including 0 and lengths
/// that are not multiples of the vector width. dst/src must be equal-sized
/// and must not partially overlap (exact aliasing is allowed and checked
/// only in debug builds; see DBLREP_DCHECK).
struct GfKernel {
  const char* name;

  /// dst[i] = coeff * src[i].
  void (*mul_slice)(MutableByteSpan dst, ByteSpan src, Elem coeff);

  /// dst[i] ^= coeff * src[i] -- the fused multiply-accumulate every linear
  /// encoder is built from.
  void (*addmul_slice)(MutableByteSpan dst, ByteSpan src, Elem coeff);

  /// In-place dst[i] *= coeff.
  void (*scale_slice)(MutableByteSpan dst, Elem coeff);

  /// dst[i] ^= src[i] -- the coefficient-1 path.
  void (*xor_slice)(MutableByteSpan dst, ByteSpan src);

  /// outputs[r] = sum_c coeffs[r * sources.size() + c] * sources[c].
  /// The whole-matrix fused kernel: applies a row-major coefficient block
  /// (outputs.size() x sources.size()) to equal-length source slices in one
  /// cache-friendly pass. Output slices must not alias source slices.
  void (*matrix_apply)(std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs);
};

/// The kernel all gf256.h free functions route through. First call performs
/// CPUID dispatch (honoring DBLREP_GF_KERNEL) and logs the selection.
const GfKernel& active_kernel();

/// Kernels compiled in and supported by this CPU, slowest first.
std::vector<const GfKernel*> supported_kernels();

/// Lookup among supported kernels; nullptr if unknown or unsupported here.
const GfKernel* find_kernel(std::string_view name);

/// Forces the active kernel (test/bench hook). Returns false and leaves the
/// selection unchanged if the name is unknown or unsupported on this CPU.
bool set_active_kernel(std::string_view name);

}  // namespace dblrep::gf
