// GfKernel: pluggable backend for the bulk GF(2^8) slice operations.
//
// Every byte that moves through encode, decode, or repair goes through one
// of these entry points. Five implementations ship:
//
//  * "scalar" -- the portable 64 KiB-table kernel (one load per byte), plus
//    a 64-bit-word XOR fast path for coefficient-1 terms. Always available.
//  * "ssse3"  -- split-table kernel: per-coefficient 16-entry low/high
//    nibble tables applied with pshufb, 16 bytes per step.
//  * "avx2"   -- the same split-table trick widened to 32 bytes per step
//    with vpshufb.
//  * "avx512" -- the split-table trick widened again to 64 bytes per step
//    with vpshufb on ZMM registers (requires AVX-512F+BW and OS ZMM state).
//  * "gfni"   -- vgf2p8affineqb: multiplication by a fixed coefficient is
//    GF(2)-linear in the input byte, so it is one 8x8 bit-matrix transform
//    per byte, 64 bytes per instruction with no table loads at all
//    (requires GFNI + AVX-512F+BW and OS ZMM state).
//
// The active kernel is chosen once at startup by runtime CPUID dispatch
// (best supported wins) and can be forced with DBLREP_GF_KERNEL=scalar|
// ssse3|avx2|avx512|gfni for testing and benchmarking. Selection logging
// is off by default; set DBLREP_GF_LOG=1 to log the choice once to stderr.
//
// Coefficient-1-only work (XOR parities, replica folds) additionally takes
// a non-temporal-store path on the vector kernels for large slices: parity
// outputs are written once and never re-read by the encode pass, so
// streaming stores skip the read-for-ownership of every destination cache
// line -- for memory-bound schemes the win is exactly those bytes not
// moved. Disable with DBLREP_GF_NT=0 or set_non_temporal(false); the
// stored bytes are identical either way.
//
// All kernels are bit-identical by contract; tests/gf_kernel_test.cc
// cross-checks them exhaustively.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "gf/gf256.h"

namespace dblrep::gf {

/// Dispatch table for the bulk ops. All functions tolerate any coefficient
/// (0 and 1 take fast paths) and any slice length, including 0 and lengths
/// that are not multiples of the vector width. dst/src must be equal-sized
/// and must not partially overlap (exact aliasing is allowed and checked
/// only in debug builds; see DBLREP_DCHECK).
struct GfKernel {
  const char* name;

  /// dst[i] = coeff * src[i].
  void (*mul_slice)(MutableByteSpan dst, ByteSpan src, Elem coeff);

  /// dst[i] ^= coeff * src[i] -- the fused multiply-accumulate every linear
  /// encoder is built from.
  void (*addmul_slice)(MutableByteSpan dst, ByteSpan src, Elem coeff);

  /// In-place dst[i] *= coeff.
  void (*scale_slice)(MutableByteSpan dst, Elem coeff);

  /// dst[i] ^= src[i] -- the coefficient-1 path.
  void (*xor_slice)(MutableByteSpan dst, ByteSpan src);

  /// dst[i] = sources[0][i] ^ sources[1][i] ^ ... (sources must be
  /// non-empty, equal-sized, none may partially overlap dst). The
  /// coefficient-1-only row kernel: one source degenerates to a copy. When
  /// `non_temporal` is set, kernels that can do so write dst with streaming
  /// stores (dst will not be re-read by this pass); kernels without a
  /// streaming path treat it as a plain hint and ignore it. Bytes produced
  /// are identical either way.
  void (*xor_fold_slice)(MutableByteSpan dst, std::span<const ByteSpan> sources,
                         bool non_temporal);

  /// outputs[r] = sum_c coeffs[r * sources.size() + c] * sources[c].
  /// The whole-matrix fused kernel: applies a row-major coefficient block
  /// (outputs.size() x sources.size()) to equal-length source slices in one
  /// cache-friendly pass. Output slices must not alias source slices.
  /// Coefficient-1-only rows route through xor_fold_slice (and so pick up
  /// the non-temporal path for large slices automatically).
  void (*matrix_apply)(std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs);

  /// Cross-stripe batched form: applies the same (rows x cols) coefficient
  /// block to `groups` independent source/output groups laid out
  /// back-to-back (group g reads sources[g*cols, (g+1)*cols) and writes
  /// outputs[g*rows, (g+1)*rows)). rows/cols are inferred from
  /// outputs.size()/groups and sources.size()/groups. One call encodes a
  /// whole batch of stripes, so the per-coefficient tables and the
  /// coefficient block itself stay hot in L1/L2 across stripes instead of
  /// being re-streamed per stripe, and per-call setup is paid once.
  void (*matrix_apply_batch)(std::span<const Elem> coeffs,
                             std::span<const ByteSpan> sources,
                             std::span<const MutableByteSpan> outputs,
                             std::size_t groups);
};

/// The kernel all gf256.h free functions route through. First call performs
/// CPUID dispatch (honoring DBLREP_GF_KERNEL).
const GfKernel& active_kernel();

/// Kernels compiled in and supported by this CPU, slowest first.
std::vector<const GfKernel*> supported_kernels();

/// Lookup among supported kernels; nullptr if unknown or unsupported here.
const GfKernel* find_kernel(std::string_view name);

/// Forces the active kernel (test/bench hook). Returns false and leaves the
/// selection unchanged if the name is unknown or unsupported on this CPU.
bool set_active_kernel(std::string_view name);

// ------------------------------------------------------- non-temporal knob

/// Slices at least this long take the streaming-store path in
/// coefficient-1-only rows (when enabled and the kernel has one). Chosen
/// above typical per-core L2: smaller outputs are cache-resident and a
/// streaming store would only evict them for no saved traffic.
inline constexpr std::size_t kNonTemporalMinBytes = 256 * 1024;

/// Process-wide enable for the non-temporal store path (default on;
/// DBLREP_GF_NT=0 disables at startup). Bytes produced are identical with
/// it on or off -- this is a perf policy switch for benchmarking and
/// A/B-ing, not a correctness knob.
void set_non_temporal(bool enabled);
bool non_temporal_enabled();

// ------------------------------------------------ modeled bytes-moved stats

/// Modeled DRAM traffic of the fused matrix passes, accumulated per thread.
/// The model: every source slice is read once per row that uses it; a
/// regular store of n bytes moves 2n (the write plus the read-for-ownership
/// of each destination line); a non-temporal store moves n. Cache hits make
/// the true numbers lower, but the *difference* between the NT and regular
/// paths -- the RFO bytes -- is real and is what the encode-throughput
/// bench gates on.
struct SliceOpStats {
  std::uint64_t src_bytes_read = 0;   // source slice bytes streamed in
  std::uint64_t dst_bytes_written = 0;  // destination bytes stored
  std::uint64_t rfo_bytes_read = 0;   // read-for-ownership on regular stores
  std::uint64_t nt_bytes_written = 0;  // subset of dst bytes stored NT

  std::uint64_t total_bytes_moved() const {
    return src_bytes_read + dst_bytes_written + rfo_bytes_read;
  }
};

/// This thread's accumulator (matrix_apply/matrix_apply_batch record into
/// it). Reset explicitly before a measured region.
SliceOpStats& slice_op_stats();
void reset_slice_op_stats();

}  // namespace dblrep::gf
