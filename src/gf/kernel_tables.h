// Internal lookup-table accessors and scalar tail helpers shared by the
// GF kernel implementations. Not part of the public gf API.
#pragma once

#include <cstddef>
#include <cstdint>

#include <span>

#include "common/bytes.h"
#include "gf/gf256.h"

namespace dblrep::gf {

struct GfKernel;

namespace detail {

/// 256-entry row of the full multiplication table: mul_row(c)[x] == c * x.
const std::uint8_t* mul_row(Elem coeff);

/// 32-byte split table for `coeff`: bytes [0,16) are products of the low
/// nibble (coeff * i), bytes [16,32) of the high nibble (coeff * (i << 4)).
/// c*x == lo[x & 0xf] ^ hi[x >> 4] since GF multiplication is linear over
/// the nibble decomposition. This is the pshufb/vpshufb operand layout.
const std::uint8_t* nibble_tables(Elem coeff);

/// 8x8 GF(2) bit matrix M_c with c*x == M_c * x, in the vgf2p8affineqb
/// operand layout: output bit b of each byte is parity(qword byte [7-b]
/// AND input byte), so row b (whose bit j is bit b of c * 2^j) lives in
/// byte 7-b of the qword. One broadcast of this qword replaces both nibble
/// tables for the GFNI kernel.
std::uint64_t affine_matrix(Elem coeff);

/// Portable 64-bit-word XOR: dst[i] ^= src[i] starting at `from`.
void xor_words(MutableByteSpan dst, ByteSpan src, std::size_t from = 0);

/// Portable single-pass fold: dst[i] = XOR of sources[s][i], word at a
/// time, starting at `from`. sources must be non-empty.
void xor_fold_words(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    std::size_t from = 0);

/// Byte-wise fold over [from, to) -- the short-head helper vector kernels
/// use to reach store alignment before a streaming main loop.
void xor_fold_range(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    std::size_t from, std::size_t to);

/// Scalar table loops for vector-kernel tails, starting at `from`.
void addmul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                        std::size_t from);
void mul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                     std::size_t from);

/// Size and overlap preconditions shared by every kernel entry point.
void check_slice_contract(MutableByteSpan dst, ByteSpan src);

/// Shared argument validation for xor_fold_slice (sizes + per-source
/// overlap contract).
void check_fold_contract(MutableByteSpan dst, std::span<const ByteSpan> sources);

/// Generic chunked matrix_apply built on `kernel`'s own slice ops
/// (implemented as matrix_apply_batch_with over one group).
void matrix_apply_with(const GfKernel& kernel, std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs);

/// Generic chunked batched apply built on `kernel`'s slice ops: same
/// coefficient block, `groups` independent source/output groups. Routes
/// coefficient-1-only rows through kernel->xor_fold_slice with the
/// non-temporal flag resolved from the process-wide policy, and records
/// modeled traffic into this thread's SliceOpStats.
void matrix_apply_batch_with(const GfKernel& kernel,
                             std::span<const Elem> coeffs,
                             std::span<const ByteSpan> sources,
                             std::span<const MutableByteSpan> outputs,
                             std::size_t groups);

/// x86 kernels, defined in kernel_x86.cc. Return nullptr when the CPU (or
/// the build target) does not support the instruction set.
const GfKernel* ssse3_kernel();
const GfKernel* avx2_kernel();
const GfKernel* avx512_kernel();
const GfKernel* gfni_kernel();

}  // namespace detail
}  // namespace dblrep::gf
