// Internal lookup-table accessors and scalar tail helpers shared by the
// GF kernel implementations. Not part of the public gf API.
#pragma once

#include <cstddef>
#include <cstdint>

#include <span>

#include "common/bytes.h"
#include "gf/gf256.h"

namespace dblrep::gf {

struct GfKernel;

namespace detail {

/// 256-entry row of the full multiplication table: mul_row(c)[x] == c * x.
const std::uint8_t* mul_row(Elem coeff);

/// 32-byte split table for `coeff`: bytes [0,16) are products of the low
/// nibble (coeff * i), bytes [16,32) of the high nibble (coeff * (i << 4)).
/// c*x == lo[x & 0xf] ^ hi[x >> 4] since GF multiplication is linear over
/// the nibble decomposition. This is the pshufb/vpshufb operand layout.
const std::uint8_t* nibble_tables(Elem coeff);

/// Portable 64-bit-word XOR: dst[i] ^= src[i] starting at `from`.
void xor_words(MutableByteSpan dst, ByteSpan src, std::size_t from = 0);

/// Scalar table loops for vector-kernel tails, starting at `from`.
void addmul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                        std::size_t from);
void mul_scalar_tail(MutableByteSpan dst, ByteSpan src, Elem coeff,
                     std::size_t from);

/// Size and overlap preconditions shared by every kernel entry point.
void check_slice_contract(MutableByteSpan dst, ByteSpan src);

/// Generic chunked matrix_apply built on `kernel`'s own slice ops.
void matrix_apply_with(const GfKernel& kernel, std::span<const Elem> coeffs,
                       std::span<const ByteSpan> sources,
                       std::span<const MutableByteSpan> outputs);

/// x86 kernels, defined in kernel_x86.cc. Return nullptr when the CPU (or
/// the build target) does not support the instruction set.
const GfKernel* ssse3_kernel();
const GfKernel* avx2_kernel();

}  // namespace detail
}  // namespace dblrep::gf
