// GF(2^8) arithmetic.
//
// Field: GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the 0x11d polynomial
// used by Reed-Solomon implementations such as jerasure and ISA-L. The
// generator alpha = 0x02 is primitive, so log/exp tables cover all non-zero
// elements.
//
// Scalar ops are table lookups; bulk ops (mul_slice / addmul_slice) are the
// hot path for encoding and are written so the compiler can unroll them.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace dblrep::gf {

using Elem = std::uint8_t;

inline constexpr int kFieldSize = 256;
inline constexpr Elem kGenerator = 0x02;
inline constexpr unsigned kPrimitivePoly = 0x11d;

/// a + b (= a - b; characteristic 2).
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

/// a * b in the field.
Elem mul(Elem a, Elem b);

/// a / b. b must be non-zero.
Elem div(Elem a, Elem b);

/// Multiplicative inverse. a must be non-zero.
Elem inv(Elem a);

/// a ^ power (power >= 0; a^0 == 1, including 0^0 by convention).
Elem pow(Elem a, unsigned power);

/// alpha ^ power, the canonical primitive-element power used to build
/// Vandermonde rows.
Elem exp_alpha(unsigned power);

/// Discrete log base alpha of a non-zero element.
unsigned log_alpha(Elem a);

/// dst[i] += coeff * src[i] for all i -- the fused kernel every linear
/// encoder is built from. coeff == 0 is a no-op; coeff == 1 degrades to XOR.
void addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff);

/// dst[i] = coeff * src[i].
void mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff);

/// In-place dst[i] *= coeff.
void scale_slice(MutableByteSpan dst, Elem coeff);

}  // namespace dblrep::gf
