// GF(2^8) arithmetic.
//
// Field: GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the 0x11d polynomial
// used by Reed-Solomon implementations such as jerasure and ISA-L. The
// generator alpha = 0x02 is primitive, so log/exp tables cover all non-zero
// elements.
//
// Scalar ops are table lookups; bulk ops (mul_slice / addmul_slice) are the
// hot path for encoding and are written so the compiler can unroll them.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace dblrep::gf {

using Elem = std::uint8_t;

inline constexpr int kFieldSize = 256;
inline constexpr Elem kGenerator = 0x02;
inline constexpr unsigned kPrimitivePoly = 0x11d;

/// a + b (= a - b; characteristic 2).
constexpr Elem add(Elem a, Elem b) { return a ^ b; }
constexpr Elem sub(Elem a, Elem b) { return a ^ b; }

/// a * b in the field.
Elem mul(Elem a, Elem b);

/// a / b. b must be non-zero.
Elem div(Elem a, Elem b);

/// Multiplicative inverse. a must be non-zero.
Elem inv(Elem a);

/// a ^ power (power >= 0; a^0 == 1, including 0^0 by convention).
Elem pow(Elem a, unsigned power);

/// alpha ^ power, the canonical primitive-element power used to build
/// Vandermonde rows.
Elem exp_alpha(unsigned power);

/// Discrete log base alpha of a non-zero element.
unsigned log_alpha(Elem a);

// Bulk slice operations. These route through the runtime-dispatched SIMD
// kernel backend (see gf/kernel.h): SSSE3/AVX2 split-table kernels where the
// CPU supports them, the scalar 64 KiB-table kernel otherwise, and a
// 64-bit-word XOR fast path for coefficient-1 terms everywhere. dst and src
// must be equal-sized and must not partially overlap (exact aliasing is
// fine; partial overlap trips a debug-mode DCHECK).

/// dst[i] += coeff * src[i] for all i -- the fused kernel every linear
/// encoder is built from. coeff == 0 is a no-op; coeff == 1 degrades to XOR.
void addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff);

/// dst[i] = coeff * src[i].
void mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff);

/// In-place dst[i] *= coeff.
void scale_slice(MutableByteSpan dst, Elem coeff);

/// outputs[r] = sum_c coeffs[r * sources.size() + c] * sources[c]: applies a
/// row-major (outputs.size() x sources.size()) coefficient block to k source
/// slices in one fused, cache-blocked pass. This is the preferred entry
/// point for whole-stripe encode/decode; outputs must not alias sources.
void matrix_apply(std::span<const Elem> coeffs,
                  std::span<const ByteSpan> sources,
                  std::span<const MutableByteSpan> outputs);

/// Cross-stripe batched matrix_apply: the same (rows x cols) coefficient
/// block applied to `groups` independent source/output groups laid out
/// back-to-back (group g reads sources[g*cols, (g+1)*cols) and writes
/// outputs[g*rows, (g+1)*rows)). Encoding a batch of stripes in one call
/// keeps the coefficient tables hot across stripes and pays per-call setup
/// once; see gf/kernel.h.
void matrix_apply_batch(std::span<const Elem> coeffs,
                        std::span<const ByteSpan> sources,
                        std::span<const MutableByteSpan> outputs,
                        std::size_t groups);

/// dst[i] = XOR over sources of sources[s][i] -- the coefficient-1-only
/// fold (XOR parities, replica folds). With `non_temporal` set, vector
/// kernels write dst with streaming stores (identical bytes, less memory
/// traffic for large write-once outputs).
void xor_fold_slice(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    bool non_temporal = false);

}  // namespace dblrep::gf
