#include "gf/gf256.h"

#include <array>

#include "common/check.h"
#include "gf/kernel.h"
#include "gf/kernel_tables.h"

namespace dblrep::gf {

namespace {

struct Tables {
  // exp_[i] = alpha^i for i in [0, 510) so mul can skip one modular
  // reduction: exp_[log a + log b] is always in range.
  std::array<Elem, 512> exp_{};
  std::array<unsigned, 256> log_{};
  // mul_table_[a][b] = a*b; 64 KiB, used by the slice kernels so each byte
  // costs one load from a row pointer.
  std::array<std::array<Elem, 256>, 256> mul_table_{};

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<Elem>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100u) x ^= kPrimitivePoly;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // never read; log of zero is a contract violation
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        if (a == 0 || b == 0) {
          mul_table_[a][b] = 0;
        } else {
          mul_table_[a][b] = exp_[log_[a] + log_[b]];
        }
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

Elem mul(Elem a, Elem b) { return tables().mul_table_[a][b]; }

Elem div(Elem a, Elem b) {
  DBLREP_CHECK_NE(static_cast<int>(b), 0);
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

Elem inv(Elem a) {
  DBLREP_CHECK_NE(static_cast<int>(a), 0);
  const auto& t = tables();
  return t.exp_[255 - t.log_[a]];
}

Elem pow(Elem a, unsigned power) {
  if (power == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const unsigned exponent = (t.log_[a] * (power % 255u)) % 255u;
  return t.exp_[exponent];
}

Elem exp_alpha(unsigned power) { return tables().exp_[power % 255u]; }

unsigned log_alpha(Elem a) {
  DBLREP_CHECK_NE(static_cast<int>(a), 0);
  return tables().log_[a];
}

namespace detail {

const std::uint8_t* mul_row(Elem coeff) {
  return tables().mul_table_[coeff].data();
}

}  // namespace detail

void addmul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  active_kernel().addmul_slice(dst, src, coeff);
}

void mul_slice(MutableByteSpan dst, ByteSpan src, Elem coeff) {
  active_kernel().mul_slice(dst, src, coeff);
}

void scale_slice(MutableByteSpan dst, Elem coeff) {
  active_kernel().scale_slice(dst, coeff);
}

void matrix_apply(std::span<const Elem> coeffs,
                  std::span<const ByteSpan> sources,
                  std::span<const MutableByteSpan> outputs) {
  active_kernel().matrix_apply(coeffs, sources, outputs);
}

void matrix_apply_batch(std::span<const Elem> coeffs,
                        std::span<const ByteSpan> sources,
                        std::span<const MutableByteSpan> outputs,
                        std::size_t groups) {
  active_kernel().matrix_apply_batch(coeffs, sources, outputs, groups);
}

void xor_fold_slice(MutableByteSpan dst, std::span<const ByteSpan> sources,
                    bool non_temporal) {
  active_kernel().xor_fold_slice(dst, sources, non_temporal);
}

}  // namespace dblrep::gf
