#!/usr/bin/env python3
"""Documentation consistency checker (the CI docs job).

Checks, with no third-party dependencies:

1. Every relative markdown link in README.md, ROADMAP.md, and docs/*.md
   points at a file or directory that exists (anchors are stripped;
   http(s)/mailto links are only syntax-checked).
2. Every bench target named in docs/paper_map.md (``bench_<name>`` or
   ``BENCH_<name>.json``) corresponds to a real ``bench/<name>.cc`` file --
   and every ``bench/*.cc`` target is covered by docs/paper_map.md, so the
   paper map can never silently fall behind the benchmarks.

Exit code 0 when everything checks out, 1 with a per-finding report
otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Markdown inline links: [text](target). Reference-style links are not used
# in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BENCH_NAME_RE = re.compile(r"\bbench_([a-z0-9_]+)\b|\bBENCH_([a-z0-9_]+)\.json\b")


def doc_files() -> list[pathlib.Path]:
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(errors: list[str]) -> None:
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )


def check_paper_map(errors: list[str]) -> None:
    paper_map = REPO / "docs" / "paper_map.md"
    if not paper_map.exists():
        errors.append("docs/paper_map.md is missing")
        return
    text = paper_map.read_text(encoding="utf-8")

    named = set()
    for match in BENCH_NAME_RE.finditer(text):
        named.add(match.group(1) or match.group(2))

    real = {p.stem for p in (REPO / "bench").glob("*.cc")}

    for name in sorted(named - real):
        errors.append(
            f"docs/paper_map.md names bench target '{name}' but "
            f"bench/{name}.cc does not exist"
        )
    for name in sorted(real - named):
        errors.append(
            f"bench/{name}.cc has no entry in docs/paper_map.md "
            "(every bench target must be mapped)"
        )


def main() -> int:
    errors: list[str] = []
    check_links(errors)
    check_paper_map(errors)
    if errors:
        print(f"check_docs: {len(errors)} problem(s):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(
        f"check_docs: OK ({len(doc_files())} docs link-checked, "
        "paper map covers every bench target)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
