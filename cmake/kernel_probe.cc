// Configure-time probe: prints the GF kernels this host can execute, so
// CMake only registers forced-kernel test variants that can actually run
// (a DBLREP_GF_KERNEL the dispatcher can't honor silently falls back,
// which would report green coverage for a kernel that never executed).
#include <cstdio>

int main() {
  std::printf("scalar");
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("ssse3")) std::printf(";ssse3");
  if (__builtin_cpu_supports("avx2")) std::printf(";avx2");
#endif
  std::printf("\n");
  return 0;
}
