// Configure-time probe: prints the GF kernels this host can execute, so
// CMake only registers forced-kernel test variants that can actually run
// (a DBLREP_GF_KERNEL the dispatcher can't honor silently falls back,
// which would report green coverage for a kernel that never executed).
// The avx512/gfni gating must mirror src/gf/kernel_x86.cc: CPUID feature
// bits plus XCR0 ZMM state (the OS must save ZMM/opmask registers).
#include <cstdio>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <cstdint>

namespace {

std::uint64_t xgetbv0() {
  std::uint32_t eax, edx;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

bool os_zmm_usable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  if (!(ecx & (1u << 27))) return false;  // OSXSAVE
  constexpr std::uint64_t kAvx512State = 0xe6;
  return (xgetbv0() & kAvx512State) == kAvx512State;
}

bool avx512_core() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  const bool f = ebx & (1u << 16);
  const bool bw = ebx & (1u << 30);
  const bool vl = ebx & (1u << 31);
  return f && bw && vl && os_zmm_usable();
}

bool gfni() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 8)) != 0;
}

}  // namespace
#endif

int main() {
  std::printf("scalar");
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("ssse3")) std::printf(";ssse3");
  if (__builtin_cpu_supports("avx2")) std::printf(";avx2");
  if (avx512_core()) std::printf(";avx512");
  if (avx512_core() && gfni()) std::printf(";gfni");
#endif
  std::printf("\n");
  return 0;
}
