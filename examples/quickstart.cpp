// Quickstart: encode data with the pentagon code, lose two nodes, recover.
//
// Demonstrates the core public API: building a scheme from the registry,
// the stripe layout, encoding, the rank oracle, decoding under erasures,
// and repair plans with partial parities.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "common/bytes.h"
#include "ec/polygon.h"
#include "ec/registry.h"

int main() {
  using namespace dblrep;

  // 1. Build the pentagon code: 9 data blocks -> 10 distinct blocks (XOR
  //    parity included), each stored twice across 5 nodes.
  const auto code = ec::make_code("pentagon").value();
  std::cout << "code: " << code->params().name
            << "  k=" << code->params().data_blocks
            << "  stored blocks=" << code->params().stored_blocks
            << "  nodes=" << code->params().num_nodes
            << "  overhead=" << code->params().storage_overhead() << "x\n";
  std::cout << "layout: " << code->layout().to_string() << "\n\n";

  // 2. Encode 9 data blocks (64 bytes each here; 128-512 MB in Hadoop).
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code->data_blocks(); ++i) {
    data.push_back(random_buffer(64, i));
  }
  const auto slots = code->encode(data);
  std::cout << "encoded " << slots.size() << " block replicas; replica of "
            << "data block 0 starts with " << hex_preview(slots[0], 8)
            << "\n\n";

  // 3. Fail two nodes -- the worst tolerated case -- and decode.
  const std::set<ec::NodeIndex> failed = {0, 1};
  std::cout << "failing nodes 0 and 1; recoverable? "
            << (code->is_recoverable(failed) ? "yes" : "no") << "\n";
  ec::SlotStore surviving;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!failed.contains(code->layout().node_of_slot(s))) {
      surviving[s] = slots[s];
    }
  }
  const auto decoded = code->decode(surviving, 64);
  std::cout << "decode ok? " << (decoded.is_ok() ? "yes" : "no")
            << "; bytes match? " << (*decoded == data ? "yes" : "no")
            << "\n\n";

  // 4. Inspect the repair plan the paper describes in Section 2.1: ten
  //    blocks total, with the shared block rebuilt from partial parities.
  const auto plan = code->plan_multi_node_repair(failed);
  std::cout << "two-node repair plan:\n" << plan->to_string() << "\n";
  std::cout << "network cost: " << plan->network_units()
            << " blocks (paper: 10)\n";

  // 5. Three failures exceed the tolerance -- the library refuses loudly.
  const auto too_many = code->plan_multi_node_repair({0, 1, 2});
  std::cout << "three-node repair: " << too_many.status().to_string() << "\n";
  return 0;
}
