// Degraded reads on the mini-HDFS data plane (Section 3.1 of the paper).
//
// Writes a pentagon-coded file and a (10,9) RAID+m file, fails both
// replica holders of one block in each, then reads the block through the
// client path. The traffic meter shows the paper's numbers on the wire:
// 3 block transfers for the pentagon (partial parities) vs 9 for RAID+m.
//
// Build & run:  ./build/examples/degraded_read
#include <iostream>

#include "cluster/topology.h"
#include "hdfs/minidfs.h"

namespace {

using namespace dblrep;

void demo(const std::string& code_spec) {
  constexpr std::size_t kBlock = 1024;
  cluster::Topology topology;  // 25 nodes
  hdfs::MiniDfs dfs(topology, /*seed=*/2014);

  const Buffer data = random_buffer(kBlock * 9, 99);
  if (auto s = dfs.write_file("/data", data, code_spec, kBlock); !s.is_ok()) {
    std::cerr << "write failed: " << s.to_string() << "\n";
    return;
  }

  // Kill both holders of data block 0.
  const auto info = *dfs.stat("/data");
  const auto& code = *dfs.code_for("/data").value();
  std::cout << "== " << code.params().name << " ==\n";
  for (std::size_t slot : code.layout().slots_of_symbol(0)) {
    const auto node = dfs.catalog().node_of({info.stripes[0], slot});
    std::cout << "failing node " << node << " (holds a replica of block 0)\n";
    (void)dfs.fail_node(node);
  }

  dfs.traffic().reset();
  const auto block = dfs.read_block("/data", 0);
  if (!block.is_ok()) {
    std::cerr << "read failed: " << block.status().to_string() << "\n";
    return;
  }
  const bool intact = std::equal(block->begin(), block->end(), data.begin());
  std::cout << "on-the-fly repair delivered the block (intact: "
            << (intact ? "yes" : "no") << ")\n";
  std::cout << "network cost: " << dfs.traffic().total_bytes() / kBlock
            << " blocks\n\n";
}

}  // namespace

int main() {
  std::cout << "Degraded read with both replicas lost (paper Section 3.1):\n"
               "expect 3 blocks for the pentagon vs 9 for (10,9) RAID+m.\n\n";
  demo("pentagon");
  demo("raidm-9");
  return 0;
}
