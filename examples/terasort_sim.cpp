// Run a Terasort simulation from the command line.
//
// Usage: terasort_sim [code] [load%] [map_slots] [nodes] [down_nodes...]
//   e.g. terasort_sim pentagon 75 4 25
//        terasort_sim heptagon 100 2 25 3 7      (nodes 3 and 7 down)
//
// Defaults reproduce one point of the paper's Fig. 4 (set-up 1).
#include <cstdlib>
#include <iostream>
#include <string>

#include "ec/registry.h"
#include "mapred/terasort_sim.h"

int main(int argc, char** argv) {
  using namespace dblrep;

  const std::string spec = argc > 1 ? argv[1] : "pentagon";
  const double load = argc > 2 ? std::atof(argv[2]) / 100.0 : 1.0;
  const int slots = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::size_t nodes = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 25;

  auto code = ec::make_code(spec);
  if (!code.is_ok()) {
    std::cerr << code.status().to_string() << "\n";
    return 1;
  }

  mapred::JobConfig config = mapred::setup1_config();
  config.topology.num_nodes = nodes;
  config.map_slots = slots;
  config.load = load;
  config.trials = 10;
  for (int i = 5; i < argc; ++i) {
    config.down_nodes.insert(std::atoi(argv[i]));
  }

  if ((*code)->num_nodes() > nodes) {
    std::cerr << spec << " needs " << (*code)->num_nodes()
              << " nodes, cluster has " << nodes << "\n";
    return 1;
  }

  sched::DelayScheduler scheduler;
  const auto metrics = mapred::run_terasort(**code, scheduler, config);

  std::cout << "Terasort, " << spec << ", " << nodes << " nodes, " << slots
            << " map slots, load " << load * 100 << "%";
  if (!config.down_nodes.empty()) {
    std::cout << ", " << config.down_nodes.size() << " node(s) down";
  }
  std::cout << "\n  job time:        " << metrics.job_seconds << " s\n"
            << "  network traffic: " << metrics.map_input_traffic_bytes / 1e9
            << " GB (map input)\n"
            << "  shuffle:         " << metrics.shuffle_traffic_bytes / 1e9
            << " GB\n"
            << "  data locality:   " << metrics.locality * 100 << " %\n"
            << "  degraded reads:  " << metrics.degraded_read_tasks
            << " task(s), " << metrics.degraded_read_bytes / 1e9 << " GB\n"
            << "  unrunnable:      " << metrics.unrunnable_tasks
            << " task(s)\n";
  return 0;
}
