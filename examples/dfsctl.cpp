// dfsctl: a small command-driven shell over the mini-HDFS, for poking at
// the coded data plane interactively or from scripts.
//
// Usage: dfsctl [nodes] [racks]      (then commands on stdin)
//
// Commands:
//   write <path> <code> <blocks>   write <blocks> random data blocks
//   read <path>                    read the whole file (reports bytes, crc)
//   stat <path>                    show file info
//   ls                             list files
//   rm <path>                      delete a file
//   raid <path> <code>             re-encode a file (HDFS-RAID style)
//   fail <node> | restart <node>   membership control
//   repair <node> | repair-all     rebuild lost blocks
//   scrub | heal                   verify / verify-and-fix all stripes
//   traffic                        show network counters
//   quit
//
// Example session:
//   echo "write /a pentagon 9
//   fail 0
//   fail 1
//   read /a
//   repair-all
//   traffic
//   quit" | ./build/examples/dfsctl
#include <iostream>
#include <sstream>
#include <string>

#include "common/bytes.h"
#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"

int main(int argc, char** argv) {
  using namespace dblrep;
  constexpr std::size_t kBlock = 4096;

  cluster::Topology topology;
  if (argc > 1) topology.num_nodes = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) topology.num_racks = std::strtoul(argv[2], nullptr, 10);
  hdfs::MiniDfs dfs(topology, /*seed=*/2014);
  hdfs::RaidNode raid(dfs);

  std::cout << "mini-DFS up: " << topology.num_nodes << " nodes, "
            << topology.num_racks << " rack(s), block size " << kBlock
            << " B. Type commands ('quit' to exit).\n";

  std::string line;
  std::uint64_t write_seed = 1;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "write") {
      std::string path, code;
      std::size_t blocks = 0;
      in >> path >> code >> blocks;
      const Buffer data = random_buffer(kBlock * blocks, write_seed++);
      const auto status = dfs.write_file(path, data, code, kBlock);
      std::cout << (status.is_ok()
                        ? "wrote " + std::to_string(data.size()) + " bytes"
                        : status.to_string())
                << "\n";
    } else if (cmd == "read") {
      std::string path;
      in >> path;
      const auto data = dfs.read_file(path);
      if (data.is_ok()) {
        std::cout << "read " << data->size() << " bytes, crc32c=" << std::hex
                  << crc32c(*data) << std::dec << "\n";
      } else {
        std::cout << data.status().to_string() << "\n";
      }
    } else if (cmd == "stat") {
      std::string path;
      in >> path;
      const auto info = dfs.stat(path);
      if (info.is_ok()) {
        std::cout << path << ": " << info->length << " bytes, code "
                  << info->code_spec << ", " << info->stripes.size()
                  << " stripe(s)\n";
      } else {
        std::cout << info.status().to_string() << "\n";
      }
    } else if (cmd == "ls") {
      for (const auto& path : dfs.list_files()) std::cout << path << "\n";
    } else if (cmd == "rm") {
      std::string path;
      in >> path;
      std::cout << dfs.delete_file(path).to_string() << "\n";
    } else if (cmd == "raid") {
      std::string path, code;
      in >> path >> code;
      const auto report = raid.raid_file(path, code);
      if (report.is_ok()) {
        std::cout << "raided: " << report->bytes_before << " -> "
                  << report->bytes_after << " stored bytes\n";
      } else {
        std::cout << report.status().to_string() << "\n";
      }
    } else if (cmd == "fail" || cmd == "restart" || cmd == "repair") {
      int node = -1;
      in >> node;
      const Status status = cmd == "fail"      ? dfs.fail_node(node)
                            : cmd == "restart" ? dfs.restart_node(node)
                                               : dfs.repair_node(node);
      std::cout << status.to_string() << "\n";
    } else if (cmd == "repair-all") {
      std::cout << dfs.repair_all().to_string() << "\n";
    } else if (cmd == "scrub") {
      std::cout << dfs.scrub().to_string() << "\n";
    } else if (cmd == "heal") {
      const auto healed = dfs.scrub_repair();
      if (healed.is_ok()) {
        std::cout << "healed " << *healed << " block(s)\n";
      } else {
        std::cout << healed.status().to_string() << "\n";
      }
    } else if (cmd == "traffic") {
      std::cout << "network total: " << format_bytes(dfs.traffic().total_bytes())
                << ", cross-rack: "
                << format_bytes(dfs.traffic().cross_rack_bytes()) << "\n";
    } else {
      std::cout << "unknown command: " << cmd << "\n";
    }
  }
  return 0;
}
