// dfsctl: a small command-driven shell over the mini-HDFS, for poking at
// the coded data plane interactively or from scripts.
//
// Usage: dfsctl [nodes] [racks]      (then commands on stdin)
//
// Commands:
//   write <path> <code> <blocks>   write <blocks> random data blocks
//   append <path> [<code>] [<blocks>]
//                                  stream blocks through a FileWriter
//                                  handle: the first append on a path
//                                  opens it (<code> required, default
//                                  blocks 1); repeat to grow the file,
//                                  then `close` to seal it
//   close <path>                   seal an open append handle
//   read <path>                    read the whole file (reports bytes, crc)
//   pread <path> <offset> <len>    read a byte range (reports bytes, crc)
//   stat <path>                    show file info (sealed vs open)
//   ls                             list files
//   rm <path>                      delete a file
//   raid <path> <code>             re-encode a file (HDFS-RAID style)
//   fail <node> | restart <node>   membership control
//   repair <node> | repair-all     rebuild lost blocks
//   scrub | heal                   verify / verify-and-fix all stripes
//   traffic                        show network counters
//   quit
//
// Exit code: 0 when every command succeeded, 1 if any command reported an
// error (unknown commands count) -- so scripted sessions can gate on it.
//
// Example session:
//   echo "append /a pentagon 3
//   append /a 3
//   close /a
//   pread /a 4096 8192
//   fail 0
//   fail 1
//   read /a
//   repair-all
//   traffic
//   quit" | ./build/examples/dfsctl
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/bytes.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"

int main(int argc, char** argv) {
  using namespace dblrep;
  constexpr std::size_t kBlock = 4096;

  cluster::Topology topology;
  if (argc > 1) topology.num_nodes = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) topology.num_racks = std::strtoul(argv[2], nullptr, 10);
  hdfs::MiniDfs dfs(topology, /*seed=*/2014);
  hdfs::Client client(dfs);
  hdfs::RaidNode raid(dfs);
  std::map<std::string, hdfs::FileWriter> writers;  // open append handles

  std::cout << "mini-DFS up: " << topology.num_nodes << " nodes, "
            << topology.num_racks << " rack(s), block size " << kBlock
            << " B. Type commands ('quit' to exit).\n";

  bool any_error = false;
  const auto note = [&any_error](bool ok) {
    if (!ok) any_error = true;
  };

  std::string line;
  std::uint64_t write_seed = 1;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "write") {
      std::string path, code;
      std::size_t blocks = 0;
      in >> path >> code >> blocks;
      const Buffer data = random_buffer(kBlock * blocks, write_seed++);
      const auto status = client.write(path, data, code, kBlock);
      note(status.is_ok());
      std::cout << (status.is_ok()
                        ? "wrote " + std::to_string(data.size()) + " bytes"
                        : status.to_string())
                << "\n";
    } else if (cmd == "append") {
      std::string path;
      in >> path;
      // Optional trailing block count; a non-numeric token must error (not
      // silently default) so scripted sessions gate correctly, and the
      // count is bounded so "-1" can't wrap into a huge allocation.
      const auto parse_blocks = [&](std::size_t& blocks) {
        std::string token;
        if (!(in >> token)) return true;  // absent: keep the default
        constexpr std::size_t kMaxBlocks = 1u << 20;
        const bool digits =
            !token.empty() &&
            token.find_first_not_of("0123456789") == std::string::npos;
        blocks = digits ? std::strtoul(token.c_str(), nullptr, 10) : 0;
        if (blocks == 0 || blocks > kMaxBlocks) {
          note(false);
          std::cout << "append: expected a block count in [1, " << kMaxBlocks
                    << "], got '" << token << "'\n";
          return false;
        }
        return true;
      };
      std::size_t blocks = 1;
      const auto it = writers.find(path);
      if (it == writers.end()) {
        std::string code;
        if (!(in >> code)) {
          note(false);
          std::cout << "append: no open handle for " << path
                    << " (usage: append <path> <code> [<blocks>])\n";
          continue;
        }
        if (!parse_blocks(blocks)) continue;
        auto writer = client.create(path, code, kBlock);
        if (!writer.is_ok()) {
          note(false);
          std::cout << writer.status().to_string() << "\n";
          continue;
        }
        writers.emplace(path, std::move(*writer));
      } else {
        // Handle already open: a repeated "append <path> <code> <n>" must
        // error, not misparse the code as a count.
        if (!parse_blocks(blocks)) continue;
      }
      auto& writer = writers.at(path);
      const Buffer data = random_buffer(kBlock * blocks, write_seed++);
      const Status status = writer.append(data);
      note(status.is_ok());
      if (status.is_ok()) {
        std::cout << "appended " << data.size() << " bytes ("
                  << writer.bytes_appended() << " total, open)\n";
      } else {
        std::cout << status.to_string() << "\n";
        (void)writer.abort();
        writers.erase(path);
      }
    } else if (cmd == "close") {
      std::string path;
      in >> path;
      const auto it = writers.find(path);
      if (it == writers.end()) {
        note(false);
        std::cout << "close: no open handle for " << path << "\n";
        continue;
      }
      const Status status = it->second.close();
      writers.erase(it);
      note(status.is_ok());
      std::cout << (status.is_ok() ? "sealed " + path : status.to_string())
                << "\n";
    } else if (cmd == "read") {
      std::string path;
      in >> path;
      const auto data = client.read(path);
      note(data.is_ok());
      if (data.is_ok()) {
        std::cout << "read " << data->size() << " bytes, crc32c=" << std::hex
                  << crc32c(*data) << std::dec << "\n";
      } else {
        std::cout << data.status().to_string() << "\n";
      }
    } else if (cmd == "pread") {
      std::string path;
      std::size_t offset = 0, len = 0;
      if (!(in >> path >> offset >> len)) {
        note(false);
        std::cout << "usage: pread <path> <offset> <len>\n";
        continue;
      }
      const auto data = client.pread(path, offset, len);
      note(data.is_ok());
      if (data.is_ok()) {
        std::cout << "pread [" << offset << ", +" << len << ") -> "
                  << data->size() << " bytes, crc32c=" << std::hex
                  << crc32c(*data) << std::dec << "\n";
      } else {
        std::cout << data.status().to_string() << "\n";
      }
    } else if (cmd == "stat") {
      std::string path;
      in >> path;
      const auto info = dfs.stat(path);
      note(info.is_ok());
      if (info.is_ok()) {
        std::cout << path << ": " << info->length << " bytes, code "
                  << info->code_spec << ", " << info->stripes.size()
                  << " stripe(s), "
                  << (info->sealed ? "sealed" : "open (write in flight)")
                  << "\n";
      } else {
        std::cout << info.status().to_string() << "\n";
      }
    } else if (cmd == "ls") {
      for (const auto& path : dfs.list_files()) std::cout << path << "\n";
    } else if (cmd == "rm") {
      std::string path;
      in >> path;
      const Status status = dfs.delete_file(path);
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "raid") {
      std::string path, code;
      in >> path >> code;
      const auto report = raid.raid_file(path, code);
      note(report.is_ok());
      if (report.is_ok()) {
        std::cout << "raided: " << report->bytes_before << " -> "
                  << report->bytes_after << " stored bytes\n";
      } else {
        std::cout << report.status().to_string() << "\n";
      }
    } else if (cmd == "fail" || cmd == "restart" || cmd == "repair") {
      int node = -1;
      in >> node;
      const Status status = cmd == "fail"      ? dfs.fail_node(node)
                            : cmd == "restart" ? dfs.restart_node(node)
                                               : dfs.repair_node(node);
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "repair-all") {
      const Status status = dfs.repair_all();
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "scrub") {
      const Status status = dfs.scrub();
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "heal") {
      const auto healed = dfs.scrub_repair();
      note(healed.is_ok());
      if (healed.is_ok()) {
        std::cout << "healed " << *healed << " block(s)\n";
      } else {
        std::cout << healed.status().to_string() << "\n";
      }
    } else if (cmd == "traffic") {
      std::cout << "network total: " << format_bytes(dfs.traffic().total_bytes())
                << ", cross-rack: "
                << format_bytes(dfs.traffic().cross_rack_bytes())
                << ", client: " << format_bytes(dfs.traffic().client_bytes())
                << "\n";
    } else {
      note(false);
      std::cout << "unknown command: " << cmd << "\n";
    }
  }
  return any_error ? 1 : 0;
}
