// dfsctl: a small command-driven shell over the mini-HDFS, for poking at
// the coded data plane interactively or from scripts.
//
// Usage: dfsctl [nodes] [racks] [--net]   (then commands on stdin)
//
// --net attaches the link-level network model: every transfer the DFS
// makes is captured, and `traffic` additionally replays the capture
// through net::NetworkModel to show which fabric links the byte pattern
// actually loads (and asserts network conservation on the replay).
//
// Commands:
//   write <path> <code> <blocks>   write <blocks> random data blocks
//   append <path> [<code>] [<blocks>]
//                                  stream blocks through a FileWriter
//                                  handle: the first append on a path
//                                  opens it (<code> required, default
//                                  blocks 1); repeat to grow the file,
//                                  then `close` to seal it
//   close <path>                   seal an open append handle
//   read <path>                    read the whole file (reports bytes, crc)
//   pread <path> <offset> <len>    read a byte range (reports bytes, crc)
//   stat <path>                    show file info (sealed vs open)
//   ls                             list files
//   rm <path>                      delete a file
//   raid <path> <code>             re-encode a file (HDFS-RAID style)
//   fail <node> | restart <node>   membership control
//   repair <node> | repair-all     rebuild lost blocks
//   scrub | heal                   verify / verify-and-fix all stripes
//   heat [<path>]                  decayed access heat (every client read/
//                                  write feeds a tier::HeatTracker; the
//                                  logical clock ticks one second per
//                                  command). With a path: that file's heat,
//                                  age, and the tier the policy would move
//                                  it to. Without: all tracked files,
//                                  hottest first
//   tier <path> [--target=<code>]  re-encode along the tiering ladder:
//                                  with --target, force that layout (must
//                                  be on the ladder); without, execute the
//                                  policy's decision for the file's current
//                                  heat (a no-op when already at target)
//   traffic                        show network counters: the intra-rack /
//                                  cross-rack / client / total split, the
//                                  top per-node senders and receivers, and
//                                  (with --net) per-link utilization
//   quit
//
// Exit code: 0 when every command succeeded, 1 if any command reported an
// error (unknown commands count) -- so scripted sessions can gate on it.
//
// Example session:
//   echo "append /a pentagon 3
//   append /a 3
//   close /a
//   pread /a 4096 8192
//   fail 0
//   fail 1
//   read /a
//   repair-all
//   traffic
//   quit" | ./build/examples/dfsctl
#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "common/bytes.h"
#include "exec/thread_pool.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"
#include "net/model.h"
#include "net/transfer.h"
#include "sim/event_queue.h"
#include "tier/engine.h"

int main(int argc, char** argv) {
  using namespace dblrep;
  constexpr std::size_t kBlock = 4096;

  cluster::Topology topology;
  bool with_net = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--net") {
      with_net = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) {
    topology.num_nodes = std::strtoul(positional[0], nullptr, 10);
  }
  if (positional.size() > 1) {
    topology.num_racks = std::strtoul(positional[1], nullptr, 10);
  }
  net::TransferLog transfer_log;
  std::vector<net::TransferRecord> captured;  // everything since start
  tier::HeatTracker heat;
  hdfs::MiniDfsOptions options;
  options.access_observer = &heat;
  if (with_net) options.transfer_log = &transfer_log;
  hdfs::MiniDfs dfs(topology, /*seed=*/2014, &exec::default_pool(), options);
  hdfs::Client client(dfs);
  hdfs::RaidNode raid(dfs);
  tier::TieringEngine engine(dfs, heat, tier::TieringPolicy{});
  std::map<std::string, hdfs::FileWriter> writers;  // open append handles

  std::cout << "mini-DFS up: " << topology.num_nodes << " nodes, "
            << topology.num_racks << " rack(s), block size " << kBlock
            << " B. Type commands ('quit' to exit).\n";

  bool any_error = false;
  const auto note = [&any_error](bool ok) {
    if (!ok) any_error = true;
  };

  std::string line;
  std::uint64_t write_seed = 1;
  double clock_s = 0;  // logical heat clock: one second per command
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    heat.advance_to(clock_s += 1.0);

    if (cmd == "write") {
      std::string path, code;
      std::size_t blocks = 0;
      in >> path >> code >> blocks;
      const Buffer data = random_buffer(kBlock * blocks, write_seed++);
      const auto status = client.write(path, data, code, kBlock);
      note(status.is_ok());
      std::cout << (status.is_ok()
                        ? "wrote " + std::to_string(data.size()) + " bytes"
                        : status.to_string())
                << "\n";
    } else if (cmd == "append") {
      std::string path;
      in >> path;
      // Optional trailing block count; a non-numeric token must error (not
      // silently default) so scripted sessions gate correctly, and the
      // count is bounded so "-1" can't wrap into a huge allocation.
      const auto parse_blocks = [&](std::size_t& blocks) {
        std::string token;
        if (!(in >> token)) return true;  // absent: keep the default
        constexpr std::size_t kMaxBlocks = 1u << 20;
        const bool digits =
            !token.empty() &&
            token.find_first_not_of("0123456789") == std::string::npos;
        blocks = digits ? std::strtoul(token.c_str(), nullptr, 10) : 0;
        if (blocks == 0 || blocks > kMaxBlocks) {
          note(false);
          std::cout << "append: expected a block count in [1, " << kMaxBlocks
                    << "], got '" << token << "'\n";
          return false;
        }
        return true;
      };
      std::size_t blocks = 1;
      const auto it = writers.find(path);
      if (it == writers.end()) {
        std::string code;
        if (!(in >> code)) {
          note(false);
          std::cout << "append: no open handle for " << path
                    << " (usage: append <path> <code> [<blocks>])\n";
          continue;
        }
        if (!parse_blocks(blocks)) continue;
        auto writer = client.create(path, code, kBlock);
        if (!writer.is_ok()) {
          note(false);
          std::cout << writer.status().to_string() << "\n";
          continue;
        }
        writers.emplace(path, std::move(*writer));
      } else {
        // Handle already open: a repeated "append <path> <code> <n>" must
        // error, not misparse the code as a count.
        if (!parse_blocks(blocks)) continue;
      }
      auto& writer = writers.at(path);
      const Buffer data = random_buffer(kBlock * blocks, write_seed++);
      const Status status = writer.append(data);
      note(status.is_ok());
      if (status.is_ok()) {
        std::cout << "appended " << data.size() << " bytes ("
                  << writer.bytes_appended() << " total, open)\n";
      } else {
        std::cout << status.to_string() << "\n";
        (void)writer.abort();
        writers.erase(path);
      }
    } else if (cmd == "close") {
      std::string path;
      in >> path;
      const auto it = writers.find(path);
      if (it == writers.end()) {
        note(false);
        std::cout << "close: no open handle for " << path << "\n";
        continue;
      }
      const Status status = it->second.close();
      writers.erase(it);
      note(status.is_ok());
      std::cout << (status.is_ok() ? "sealed " + path : status.to_string())
                << "\n";
    } else if (cmd == "read") {
      std::string path;
      in >> path;
      const auto data = client.read(path);
      note(data.is_ok());
      if (data.is_ok()) {
        std::cout << "read " << data->size() << " bytes, crc32c=" << std::hex
                  << crc32c(*data) << std::dec << "\n";
      } else {
        std::cout << data.status().to_string() << "\n";
      }
    } else if (cmd == "pread") {
      std::string path;
      std::size_t offset = 0, len = 0;
      if (!(in >> path >> offset >> len)) {
        note(false);
        std::cout << "usage: pread <path> <offset> <len>\n";
        continue;
      }
      const auto data = client.pread(path, offset, len);
      note(data.is_ok());
      if (data.is_ok()) {
        std::cout << "pread [" << offset << ", +" << len << ") -> "
                  << data->size() << " bytes, crc32c=" << std::hex
                  << crc32c(*data) << std::dec << "\n";
      } else {
        std::cout << data.status().to_string() << "\n";
      }
    } else if (cmd == "stat") {
      std::string path;
      in >> path;
      const auto info = dfs.stat(path);
      note(info.is_ok());
      if (info.is_ok()) {
        std::cout << path << ": " << info->length << " bytes, code "
                  << info->code_spec << ", " << info->stripes.size()
                  << " stripe(s), "
                  << (info->sealed ? "sealed" : "open (write in flight)")
                  << "\n";
      } else {
        std::cout << info.status().to_string() << "\n";
      }
    } else if (cmd == "ls") {
      for (const auto& path : dfs.list_files()) std::cout << path << "\n";
    } else if (cmd == "rm") {
      std::string path;
      in >> path;
      const Status status = dfs.delete_file(path);
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "raid") {
      std::string path, code;
      in >> path >> code;
      const auto report = raid.raid_file(path, code);
      note(report.is_ok());
      if (report.is_ok()) {
        std::cout << "raided: " << report->bytes_before << " -> "
                  << report->bytes_after << " stored bytes\n";
      } else {
        std::cout << report.status().to_string() << "\n";
      }
    } else if (cmd == "fail" || cmd == "restart" || cmd == "repair") {
      int node = -1;
      in >> node;
      const Status status = cmd == "fail"      ? dfs.fail_node(node)
                            : cmd == "restart" ? dfs.restart_node(node)
                                               : dfs.repair_node(node);
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "repair-all") {
      const Status status = dfs.repair_all();
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "scrub") {
      const Status status = dfs.scrub();
      note(status.is_ok());
      std::cout << status.to_string() << "\n";
    } else if (cmd == "heal") {
      const auto healed = dfs.scrub_repair();
      note(healed.is_ok());
      if (healed.is_ok()) {
        std::cout << "healed " << *healed << " block(s)\n";
      } else {
        std::cout << healed.status().to_string() << "\n";
      }
    } else if (cmd == "heat") {
      const auto& policy = engine.policy();
      const auto describe = [&](const std::string& path, double h) {
        std::cout << path << ": heat=" << h << ", age=" << heat.age_s(path)
                  << "s";
        const auto info = dfs.stat(path);
        if (info.is_ok()) {
          const auto current = policy.tier_of(info->code_spec);
          if (current.is_ok()) {
            const std::size_t target = policy.target_tier(h, *current);
            std::cout << ", tier " << info->code_spec;
            if (target != *current) {
              std::cout << " -> " << policy.ladder()[target];
            } else {
              std::cout << " (at policy target)";
            }
          } else {
            std::cout << ", layout " << info->code_spec << " (off ladder)";
          }
        }
        std::cout << "\n";
      };
      std::string path;
      if (in >> path) {
        const auto info = dfs.stat(path);
        if (!info.is_ok()) {
          note(false);
          std::cout << info.status().to_string() << "\n";
          continue;
        }
        describe(path, heat.heat(path));
      } else {
        const auto samples = heat.snapshot();
        if (samples.empty()) std::cout << "(no tracked files)\n";
        for (const auto& sample : samples) describe(sample.path, sample.heat);
      }
    } else if (cmd == "tier") {
      std::string path, target, arg;
      in >> path;
      bool bad_arg = false;
      while (in >> arg) {
        if (arg.rfind("--target=", 0) == 0 && arg.size() > 9) {
          target = arg.substr(9);
        } else {
          bad_arg = true;
        }
      }
      if (path.empty() || bad_arg) {
        note(false);
        std::cout << "usage: tier <path> [--target=<code>]\n";
        continue;
      }
      if (target.empty()) {
        // No override: execute the policy's decision for this file.
        const auto info = dfs.stat(path);
        if (!info.is_ok()) {
          note(false);
          std::cout << info.status().to_string() << "\n";
          continue;
        }
        const auto current = engine.policy().tier_of(info->code_spec);
        if (!current.is_ok()) {
          note(false);
          std::cout << "tier: " << path << " layout " << info->code_spec
                    << " is off the ladder (use --target=)\n";
          continue;
        }
        const std::size_t want =
            engine.policy().target_tier(heat.heat(path), *current);
        if (want == *current) {
          std::cout << path << " already at policy target ("
                    << info->code_spec << ")\n";
          continue;
        }
        target = engine.policy().ladder()[want];
      }
      const auto report = engine.force_transition(path, target);
      note(report.is_ok());
      if (report.is_ok()) {
        std::cout << "tiered " << path << " -> " << target << ": "
                  << report->bytes_before << " -> " << report->bytes_after
                  << " stored bytes\n";
      } else {
        std::cout << report.status().to_string() << "\n";
      }
    } else if (cmd == "traffic") {
      const auto& meter = dfs.traffic();
      std::cout << "network total: " << format_bytes(meter.total_bytes())
                << ", intra-rack: " << format_bytes(meter.intra_rack_bytes())
                << ", cross-rack: " << format_bytes(meter.cross_rack_bytes())
                << ", client: " << format_bytes(meter.client_bytes()) << "\n";
      // Top per-node senders and receivers (non-zero only).
      const auto print_top = [&](const char* label, auto bytes_of) {
        std::vector<std::pair<double, std::size_t>> ranked;
        for (std::size_t n = 0; n < topology.num_nodes; ++n) {
          const double b = bytes_of(static_cast<cluster::NodeId>(n));
          if (b > 0) ranked.emplace_back(b, n);
        }
        std::sort(ranked.rbegin(), ranked.rend());
        std::cout << label << ":";
        const std::size_t top = std::min<std::size_t>(ranked.size(), 3);
        for (std::size_t i = 0; i < top; ++i) {
          std::cout << " node" << ranked[i].second << "="
                    << format_bytes(ranked[i].first);
        }
        if (top == 0) std::cout << " (none)";
        std::cout << "\n";
      };
      print_top("top senders", [&](cluster::NodeId n) {
        return meter.node_sent_bytes(n);
      });
      print_top("top receivers", [&](cluster::NodeId n) {
        return meter.node_received_bytes(n);
      });
      if (with_net) {
        // Replay everything captured so far through the link-level model:
        // which fabric links does this byte pattern actually load?
        const auto drained = transfer_log.drain();
        captured.insert(captured.end(), drained.begin(), drained.end());
        sim::EventQueue queue;
        net::NetworkModel model(queue, topology, net::NetworkConfig{});
        for (const auto& record : captured) {
          model.start_transfer(record, 0.0);
        }
        queue.run();
        std::vector<std::string> violations;
        chaos::check_network_conservation(model, violations,
                                          /*expect_drained=*/true);
        for (const auto& v : violations) std::cout << "VIOLATION: " << v << "\n";
        note(violations.empty());
        std::vector<std::pair<double, std::size_t>> busiest;
        for (std::size_t id = 0; id < model.num_links(); ++id) {
          if (model.link(id).busy_s > 0) {
            busiest.emplace_back(model.link(id).busy_s, id);
          }
        }
        std::sort(busiest.rbegin(), busiest.rend());
        std::cout << "link replay (" << captured.size() << " transfers, "
                  << queue.now() * 1e3 << " ms makespan):\n";
        const std::size_t top = std::min<std::size_t>(busiest.size(), 8);
        for (std::size_t i = 0; i < top; ++i) {
          const net::LinkStats& link = model.link(busiest[i].second);
          std::cout << "  " << link.name << ": "
                    << format_bytes(link.bytes_in) << " in "
                    << link.transfers << " transfer(s), utilization "
                    << 100.0 * link.utilization(queue.now())
                    << "%, max depth " << link.max_queue_depth << "\n";
        }
      }
    } else {
      note(false);
      std::cout << "unknown command: " << cmd << "\n";
    }
  }
  return any_error ? 1 : 0;
}
