// Full storage lifecycle on the mini-HDFS: ingest as 3-rep, raid to the
// pentagon code (HDFS-RAID style), survive failures, repair, scrub --
// the workflow the paper's system implements inside Hadoop.
//
// Build & run:  ./build/examples/raid_lifecycle
#include <iostream>

#include "cluster/topology.h"
#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"

int main() {
  using namespace dblrep;
  constexpr std::size_t kBlock = 1024;

  cluster::Topology topology;  // 25 nodes, one rack
  hdfs::MiniDfs dfs(topology, /*seed=*/7);
  hdfs::RaidNode raid(dfs);

  // 1. Ingest hot data as 3-rep (2 pentagon stripes worth).
  const Buffer data = random_buffer(kBlock * 18, 5);
  (void)dfs.write_file("/logs/day1", data, "3-rep", kBlock);
  std::cout << "ingested " << data.size() << " bytes as 3-rep; stored bytes: "
            << dfs.stored_bytes() << " (overhead "
            << static_cast<double>(dfs.stored_bytes()) / data.size()
            << "x)\n";

  // 2. The data cools down; the RaidNode re-encodes it with the pentagon
  //    code, keeping double replication but shaving ~26% of the footprint.
  const auto report = raid.raid_file("/logs/day1", "pentagon");
  if (!report.is_ok()) {
    std::cerr << "raid failed: " << report.status().to_string() << "\n";
    return 1;
  }
  std::cout << "raided to pentagon in " << report->stripes_written
            << " stripes; stored bytes now: " << dfs.stored_bytes()
            << " (overhead "
            << static_cast<double>(dfs.stored_bytes()) / data.size()
            << "x, paper: 2.22x)\n";

  // 3. Two nodes die. Reads keep working (inherent double replication +
  //    partial parities), and repair restores full redundancy.
  (void)dfs.fail_node(2);
  (void)dfs.fail_node(9);
  std::cout << "nodes 2 and 9 failed; file still readable? "
            << (dfs.read_file("/logs/day1").is_ok() ? "yes" : "no") << "\n";

  dfs.traffic().reset();
  const auto repair_status = dfs.repair_all();
  std::cout << "repair: " << repair_status.to_string() << "; moved "
            << dfs.traffic().total_bytes() / kBlock << " blocks\n";

  // 4. Scrub proves every replica and parity is consistent again.
  std::cout << "scrub: " << dfs.scrub().to_string() << "\n";
  const auto read_back = dfs.read_file("/logs/day1");
  std::cout << "data intact after the whole lifecycle? "
            << (read_back.is_ok() && *read_back == data ? "yes" : "no")
            << "\n";
  return 0;
}
