// Streaming client tour: handle-based ingest, byte-range reads, and async
// futures -- the client API the paper's Section 4 workloads (incremental
// block appends, MapReduce-split reads) actually need.
//
// Walks through: a FileWriter streaming a file in sub-stripe appends
// (pipelined stripe stores, bounded in-flight window), stat of the open
// handle, pread of ranges crossing block/stripe boundaries, a degraded
// range read after two node failures, and a burst of async preads kept in
// flight on the pool.
//
// Build & run:  ./build/examples/streaming_client
#include <iostream>
#include <vector>

#include "cluster/topology.h"
#include "common/bytes.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"

int main() {
  using namespace dblrep;
  constexpr std::size_t kBlock = 4096;

  cluster::Topology topology;
  topology.num_nodes = 25;
  hdfs::MiniDfs dfs(topology, /*seed=*/2014);
  hdfs::Client client(dfs);

  // 1. Stream a file through a handle: rs-10-4 stripes are 10 blocks of
  //    logical data, but the writer takes any chunk size -- it buffers
  //    sub-stripe tails and dispatches each completed stripe to the pool.
  const Buffer data = random_buffer(kBlock * 25 + 1234, /*seed=*/1);
  auto writer = client.create("/logs/ingest", "rs-10-4", kBlock).value();
  std::size_t offset = 0;
  const std::size_t chunk = 3 * kBlock / 2;  // never block/stripe aligned
  while (offset < data.size()) {
    const std::size_t len = std::min(chunk, data.size() - offset);
    if (!writer.append(ByteSpan(data).subspan(offset, len)).is_ok()) break;
    offset += len;
  }
  const auto open_stat = dfs.stat("/logs/ingest").value();
  std::cout << "before close: " << open_stat.length << " bytes stored, "
            << (open_stat.sealed ? "sealed" : "open") << "\n";
  if (!writer.close().is_ok()) {
    std::cerr << "close failed\n";
    return 1;
  }
  const auto sealed_stat = dfs.stat("/logs/ingest").value();
  std::cout << "after close:  " << sealed_stat.length << " bytes, "
            << sealed_stat.stripes.size() << " stripes, "
            << (sealed_stat.sealed ? "sealed" : "open") << "\n\n";

  // 2. Byte-range reads: only the covering stripes resolve. Compare the
  //    client bytes of one split vs the whole file.
  const double before_range = dfs.traffic().client_bytes();
  const auto split = client.pread("/logs/ingest", 7 * kBlock + 100, kBlock);
  const double range_bytes = dfs.traffic().client_bytes() - before_range;
  const auto whole = client.read("/logs/ingest");
  const double whole_bytes =
      dfs.traffic().client_bytes() - before_range - range_bytes;
  if (!split.is_ok()) {
    std::cerr << "pread failed: " << split.status().to_string() << "\n";
    return 1;
  }
  std::cout << "pread of " << split->size() << " B moved "
            << format_bytes(range_bytes) << " off the wire; read_file moved "
            << format_bytes(whole_bytes) << "\n";

  // 3. Degraded range read: fail two nodes of the first stripe's group
  //    and read the same split -- the missing block decodes on the fly.
  const auto group =
      dfs.catalog().stripe(sealed_stat.stripes.front()).group;
  (void)dfs.fail_node(group[0]);
  (void)dfs.fail_node(group[1]);
  const auto degraded = client.pread("/logs/ingest", 0, 2 * kBlock);
  std::cout << "degraded pread under 2 failures: "
            << (degraded.is_ok() ? "ok, " + std::to_string(degraded->size()) +
                                       " bytes"
                                 : degraded.status().to_string())
            << "\n\n";

  // 4. Async: keep a burst of range reads in flight on the pool and drain
  //    the futures in order.
  std::vector<exec::Future<Result<Buffer>>> futures;
  for (std::size_t i = 0; i < 16; ++i) {
    futures.push_back(
        client.pread_async("/logs/ingest", i * kBlock, kBlock / 2));
  }
  std::size_t async_bytes = 0;
  bool all_ok = true;
  for (auto& future : futures) {
    auto result = future.get();
    all_ok = all_ok && result.is_ok();
    if (result.is_ok()) async_bytes += result->size();
  }
  std::cout << "16 async preads in flight -> " << async_bytes << " bytes, "
            << (all_ok ? "all ok" : "errors") << "\n";
  return all_ok && degraded.is_ok() && whole.is_ok() ? 0 : 1;
}
