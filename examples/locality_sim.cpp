// Interactive version of the Fig. 3 locality simulation.
//
// Usage: locality_sim [code] [mu] [scheduler] [nodes]
//   scheduler: ds | mm | peel
//   e.g. locality_sim heptagon 4 peel 25
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.h"
#include "ec/registry.h"
#include "sched/locality_sim.h"

int main(int argc, char** argv) {
  using namespace dblrep;

  const std::string spec = argc > 1 ? argv[1] : "pentagon";
  const int mu = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string sched_name = argc > 3 ? argv[3] : "ds";
  const std::size_t nodes = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 25;

  auto code = ec::make_code(spec);
  if (!code.is_ok()) {
    std::cerr << code.status().to_string() << "\n";
    return 1;
  }

  std::unique_ptr<sched::Scheduler> scheduler;
  if (sched_name == "mm") {
    scheduler = std::make_unique<sched::MaxMatchingScheduler>();
  } else if (sched_name == "peel") {
    scheduler = std::make_unique<sched::PeelingScheduler>();
  } else {
    scheduler = std::make_unique<sched::DelayScheduler>();
  }

  sched::LocalitySweepConfig config;
  config.num_nodes = nodes;
  config.slots_per_node = mu;
  config.loads = {0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0};
  config.trials = 60;

  const auto points = sched::run_locality_sweep(**code, *scheduler, config);

  std::cout << "Data locality, " << spec << ", mu=" << mu << ", "
            << scheduler->name() << ", " << nodes << " nodes, "
            << config.trials << " trials per point\n\n";
  TextTable table({"Load (%)", "locality", "95% CI"});
  for (const auto& point : points) {
    table.add_row({fmt_double(point.load * 100, 0),
                   fmt_pct(point.mean_locality),
                   "+/- " + fmt_pct(point.ci95)});
  }
  std::cout << table.to_string();
  return 0;
}
