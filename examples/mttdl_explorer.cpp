// Explore the reliability model: MTTDL of every paper code as node MTBF,
// repair speed, and the unrecoverable-read-error knob vary.
//
// Usage: mttdl_explorer [mtbf_years] [mttr_hours] [read_error_prob]
//   e.g. mttdl_explorer 10 1.5 0
//        mttdl_explorer 10 1.5 2e-6    (enable the URE ablation)
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "ec/registry.h"
#include "reliability/markov.h"

int main(int argc, char** argv) {
  using namespace dblrep;

  rel::ReliabilityParams params;
  if (argc > 1) params.node_mtbf_hours = std::atof(argv[1]) * 8766.0;
  if (argc > 2) params.node_mttr_hours = std::atof(argv[2]);
  if (argc > 3) params.block_read_error_prob = std::atof(argv[3]);

  std::cout << "MTTDL exploration: MTBF = "
            << params.node_mtbf_hours / 8766.0 << " y, MTTR = "
            << params.node_mttr_hours << " h, URE prob = "
            << params.block_read_error_prob << ", system = "
            << params.system_nodes << " nodes\n\n";

  TextTable table({"Code", "tolerance", "groups", "MTTDL group (h)",
                   "MTTDL system (yrs)"});
  for (const auto& spec : ec::paper_code_specs()) {
    const auto code = ec::make_code(spec).value();
    if (code->num_nodes() > params.system_nodes) continue;
    const rel::GroupMarkovModel model(*code, params);
    table.add_row({code->params().name,
                   std::to_string(code->params().fault_tolerance),
                   std::to_string(model.num_groups()),
                   fmt_sci(model.mttdl_group_hours()),
                   fmt_sci(model.mttdl_system_years())});
  }
  std::cout << table.to_string();

  std::cout << "\nCross-check (Monte Carlo at 1000x inflated failure rate, "
               "pentagon):\n";
  rel::ReliabilityParams hot = params;
  hot.node_mtbf_hours = params.node_mtbf_hours / 1000.0;
  const auto pentagon = ec::make_code("pentagon").value();
  const rel::GroupMarkovModel chain(*pentagon, hot);
  const double mc =
      rel::simulate_group_mttdl_hours(*pentagon, hot, 42, 2000);
  std::cout << "  chain: " << fmt_sci(chain.mttdl_group_hours())
            << " h,  monte-carlo: " << fmt_sci(mc) << " h\n";
  return 0;
}
