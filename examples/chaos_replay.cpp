// chaos_replay: reproduce one chaos scenario from its seed.
//
// The triage entry point for a failing seed out of bench_chaos_sweep or
// the nightly sweep: re-runs the scenario deterministically, prints the
// full event trace with per-step state fingerprints, re-runs it a second
// time to prove the replay is byte-identical, and (on violation) prints
// the greedily minimized event list that still violates.
//
// Usage:
//   chaos_replay --seed=N [--scheme=rs-10-4] [--mix=mixed]
//                [--placement=group_per_rack] [--layered]
//                [--nodes=21] [--racks=3] [--horizon=30]
//                [--pool=inline|default] [--no-minimize] [--quiet]
//
// Exit code: 0 when the scenario holds every invariant and replays
// identically, 1 otherwise.
#include <cstdio>
#include <cstring>
#include <string>

#include "chaos/harness.h"
#include "cluster/placement.h"
#include "exec/thread_pool.h"

using namespace dblrep;

int main(int argc, char** argv) {
  chaos::ChaosConfig config;
  config.minimize_on_violation = true;
  std::uint64_t seed = 1;
  bool quiet = false;
  std::string pool = "inline";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--seed=", 0) == 0) {
        seed = std::stoull(arg.substr(7));
      } else if (arg.rfind("--scheme=", 0) == 0) {
        config.code_spec = arg.substr(9);
      } else if (arg.rfind("--mix=", 0) == 0) {
        auto mix = chaos::FaultMix::preset(arg.substr(6));
        if (!mix.is_ok()) {
          std::fprintf(stderr, "%s\n", mix.status().to_string().c_str());
          return 2;
        }
        config.mix = *mix;
      } else if (arg.rfind("--placement=", 0) == 0) {
        auto policy = cluster::parse_placement_policy(arg.substr(12));
        if (!policy.is_ok()) {
          std::fprintf(stderr, "%s\n", policy.status().to_string().c_str());
          return 2;
        }
        config.dfs_options.placement = *policy;
      } else if (arg == "--layered") {
        config.dfs_options.layered_repair = true;
      } else if (arg.rfind("--nodes=", 0) == 0) {
        config.topology.num_nodes = std::stoull(arg.substr(8));
      } else if (arg.rfind("--racks=", 0) == 0) {
        config.topology.num_racks = std::stoull(arg.substr(8));
      } else if (arg.rfind("--horizon=", 0) == 0) {
        config.horizon_s = std::stod(arg.substr(10));
      } else if (arg.rfind("--pool=", 0) == 0) {
        pool = arg.substr(7);
      } else if (arg == "--no-minimize") {
        config.minimize_on_violation = false;
      } else if (arg == "--quiet") {
        quiet = true;
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (pool == "default") {
    config.pool = &exec::default_pool();  // DBLREP_THREADS applies
  } else if (pool != "inline") {
    std::fprintf(stderr, "--pool must be inline or default\n");
    return 2;
  }

  const chaos::ChaosHarness harness(config);
  const chaos::ChaosReport report = harness.run_seed(seed);
  // The byte-identity twin run skips minimization: on a violating seed the
  // first run already minimized, and only the trace is compared here.
  chaos::ChaosConfig twin_config = config;
  twin_config.minimize_on_violation = false;
  const chaos::ChaosReport again = chaos::ChaosHarness(twin_config).run_seed(seed);

  if (!quiet) {
    std::printf("scheme=%s mix=%s placement=%s layered=%d pool=%s\n",
                config.code_spec.c_str(), config.mix.name.c_str(),
                cluster::to_string(config.dfs_options.placement),
                config.dfs_options.layered_repair ? 1 : 0, pool.c_str());
    std::printf("%s", report.trace_to_string().c_str());
    std::printf(
        "repairs %zu/%zu ok, reads %zu (%zu errors), writes %zu (%zu "
        "errors)\n",
        report.repair_successes, report.repair_attempts, report.reads,
        report.read_errors, report.writes, report.write_errors);
    std::printf("traffic total=%.0f intra=%.0f cross=%.0f client=%.0f\n",
                report.traffic_total_bytes, report.traffic_intra_rack_bytes,
                report.traffic_cross_rack_bytes, report.traffic_client_bytes);
  }

  bool ok = report.ok();
  if (report.trace != again.trace ||
      report.final_fingerprint != again.final_fingerprint) {
    std::fprintf(stderr,
                 "REPLAY DIVERGED: two runs of seed %llu differ -- "
                 "determinism bug\n",
                 static_cast<unsigned long long>(seed));
    ok = false;
  } else if (!quiet) {
    std::printf("replay check: second run byte-identical (state=%llu)\n",
                static_cast<unsigned long long>(report.final_fingerprint));
  }
  if (!report.ok()) {
    std::fprintf(stderr, "seed %llu VIOLATES (%zu violations)\n",
                 static_cast<unsigned long long>(seed),
                 report.violations.size());
    if (!report.minimized.empty()) {
      std::fprintf(stderr, "minimized to %zu events:\n",
                   report.minimized.size());
      for (const auto& event : report.minimized) {
        std::fprintf(stderr, "  %s\n", event.to_string().c_str());
      }
    }
  }
  return ok ? 0 : 1;
}
