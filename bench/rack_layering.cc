// Rack-aware placement x two-stage repair layering: the cross-rack repair
// traffic each combination produces, swept over placement policy, scheme,
// and rack count, for both plain node repair and the mixed
// workload-under-repair scenario. Emits BENCH_rack_layering.json.
//
// The headline comparison (asserted at exit, mirroring the PR acceptance
// bar): at 3 racks, layered group_per_rack heptagon-local repair moves
// strictly fewer cross-rack bytes than rack-blind flat placement -- while
// layered and unlayered repairs of the same configuration leave every
// datanode byte-identical and move the same total number of bytes.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_parallel_scaling. Runs on the inline (serial) pool so every number
// is a deterministic function of the seed.
//
// Usage: rack_layering [--block-size=BYTES] [--stripes=N] [--racks=CSV]
//                      [--schemes=CSV] [--json=PATH] [--skip-mixed]
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/placement.h"
#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "hdfs/minidfs.h"
#include "hdfs/workload_driver.h"

namespace {

using namespace dblrep;

struct Sample {
  std::string scheme;
  std::string policy;
  std::size_t racks = 1;
  bool layered = false;
  // Node repair of one failed stripe-group member.
  double repair_total_bytes = 0;
  double repair_cross_rack_bytes = 0;
  double repair_intra_rack_bytes = 0;
  bool repair_bytes_identical = true;  // vs the unlayered twin run
  // Closed-loop clients + concurrent repair_all (2 failed nodes).
  double mixed_total_bytes = 0;
  double mixed_cross_rack_bytes = 0;
  double mixed_client_bytes = 0;
  std::size_t mixed_errors = 0;
};

/// FNV-1a over every stored block (address + bytes) of every node.
/// Deliberately excludes traffic totals: layering changes *where* bytes
/// flow, never what ends up stored.
std::uint64_t stored_fingerprint(hdfs::MiniDfs& dfs, std::size_t num_nodes) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  };
  for (std::size_t n = 0; n < num_nodes; ++n) {
    auto& dn = dfs.datanode(static_cast<cluster::NodeId>(n));
    for (const auto& address : dn.stored_addresses()) {
      mix(address.stripe);
      mix(address.slot);
      const auto bytes = dn.get(address);
      if (!bytes.is_ok()) continue;
      for (std::uint8_t b : *bytes) h = (h ^ b) * 1099511628211ULL;
    }
  }
  return h;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 4096;
  std::size_t stripes = 4;
  std::vector<std::size_t> rack_counts = {1, 3, 9};
  std::vector<std::string> schemes = {"heptagon-local", "rs-10-4", "pentagon"};
  std::string json_path = "BENCH_rack_layering.json";
  bool skip_mixed = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--stripes=", 0) == 0) {
        stripes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--racks=", 0) == 0) {
        rack_counts.clear();
        for (const auto& r : split_csv(arg.substr(8))) {
          rack_counts.push_back(std::stoull(r));
        }
      } else if (arg.rfind("--schemes=", 0) == 0) {
        schemes = split_csv(arg.substr(10));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else if (arg == "--skip-mixed") {
        skip_mixed = true;
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0 || stripes == 0 || rack_counts.empty()) {
    std::fprintf(stderr, "--block-size, --stripes, --racks must be set\n");
    return 2;
  }

  constexpr std::size_t kNumNodes = 27;  // divides evenly into 1/3/9 racks
  constexpr std::uint64_t kSeed = 17;

  std::vector<Sample> samples;
  // Fingerprint of the unlayered run, keyed by (scheme, policy, racks).
  std::map<std::string, std::uint64_t> unlayered_fingerprint;

  for (const std::size_t racks : rack_counts) {
    cluster::Topology topology;
    topology.num_nodes = kNumNodes;
    topology.num_racks = racks;
    std::fprintf(stderr, "== %zu rack(s) ==\n", racks);

    for (const auto& spec : schemes) {
      const auto code = ec::make_code(spec).value();
      const std::size_t data_bytes =
          stripes * code->data_blocks() * block_size;
      const Buffer data = random_buffer(data_bytes, 99);

      for (const auto policy : cluster::all_placement_policies()) {
        for (const bool layered : {false, true}) {
          hdfs::MiniDfsOptions options;
          options.placement = policy;
          options.layered_repair = layered;

          Sample sample;
          sample.scheme = spec;
          sample.policy = cluster::to_string(policy);
          sample.racks = racks;
          sample.layered = layered;

          // ---- node repair: fail one stripe-group member -------------
          {
            hdfs::MiniDfs dfs(topology, kSeed, nullptr, options);
            DBLREP_CHECK(
                dfs.write_file("/f", data, spec, block_size).is_ok());
            const auto group =
                dfs.catalog().stripe(dfs.stat("/f")->stripes.front()).group;
            DBLREP_CHECK(dfs.fail_node(group[2]).is_ok());
            dfs.traffic().reset();
            DBLREP_CHECK(dfs.repair_all().is_ok());
            sample.repair_total_bytes = dfs.traffic().total_bytes();
            sample.repair_cross_rack_bytes = dfs.traffic().cross_rack_bytes();
            sample.repair_intra_rack_bytes = dfs.traffic().intra_rack_bytes();

            // Layered and unlayered twins must repair to identical bytes.
            const std::string twin_key =
                spec + "|" + sample.policy + "|" + std::to_string(racks);
            const std::uint64_t fp = stored_fingerprint(dfs, kNumNodes);
            if (!layered) {
              unlayered_fingerprint[twin_key] = fp;
            } else {
              sample.repair_bytes_identical =
                  (fp == unlayered_fingerprint.at(twin_key));
            }
          }

          // ---- mixed: clients + concurrent repair of 2 failures ------
          if (!skip_mixed) {
            hdfs::MiniDfs dfs(topology, kSeed, nullptr, options);
            hdfs::WorkloadOptions wl;
            wl.code_spec = spec;
            wl.block_size = block_size;
            wl.stripes_per_file = 2;
            wl.preload_files = 4;
            wl.clients = 3;
            wl.ops_per_client = 30;
            wl.fail_nodes = 2;
            wl.repair_concurrently = true;
            wl.seed = 23;
            hdfs::WorkloadDriver driver(dfs, wl);
            auto report = driver.run();
            DBLREP_CHECK_MSG(report.is_ok(), report.status().to_string());
            DBLREP_CHECK_MSG(report->repair_status.is_ok(),
                             report->repair_status.to_string());
            sample.mixed_total_bytes = report->traffic_total_bytes;
            sample.mixed_cross_rack_bytes = report->traffic_cross_rack_bytes;
            sample.mixed_client_bytes = report->traffic_client_bytes;
            sample.mixed_errors = report->total_errors();
          }

          std::fprintf(
              stderr,
              "  %-15s %-14s layered=%d  repair %7.0f KB total, %7.0f KB "
              "cross-rack (identical=%d)  mixed cross %7.0f KB errors %zu\n",
              spec.c_str(), sample.policy.c_str(), layered ? 1 : 0,
              sample.repair_total_bytes / 1024,
              sample.repair_cross_rack_bytes / 1024,
              sample.repair_bytes_identical ? 1 : 0,
              sample.mixed_cross_rack_bytes / 1024, sample.mixed_errors);
          samples.push_back(sample);
        }
      }
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"rack_layering\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"stripes\": " << stripes << ",\n"
       << "  \"num_nodes\": " << kNumNodes << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme << "\", \"policy\": \""
         << s.policy << "\", \"racks\": " << s.racks
         << ", \"layered\": " << (s.layered ? "true" : "false")
         << ", \"repair_total_bytes\": " << s.repair_total_bytes
         << ", \"repair_cross_rack_bytes\": " << s.repair_cross_rack_bytes
         << ", \"repair_intra_rack_bytes\": " << s.repair_intra_rack_bytes
         << ", \"repair_bytes_identical_to_unlayered\": "
         << (s.repair_bytes_identical ? "true" : "false")
         << ", \"mixed_total_bytes\": " << s.mixed_total_bytes
         << ", \"mixed_cross_rack_bytes\": " << s.mixed_cross_rack_bytes
         << ", \"mixed_client_bytes\": " << s.mixed_client_bytes
         << ", \"mixed_errors\": " << s.mixed_errors << "}"
         << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  // ---- acceptance gates --------------------------------------------------
  bool ok = true;
  for (const auto& s : samples) {
    if (!s.repair_bytes_identical) {
      std::fprintf(stderr,
                   "FAIL: %s/%s at %zu racks: layered repair diverged from "
                   "unlayered bytes\n",
                   s.scheme.c_str(), s.policy.c_str(), s.racks);
      ok = false;
    }
  }
  auto find_sample = [&](const std::string& scheme, const std::string& policy,
                         std::size_t racks, bool layered) -> const Sample* {
    for (const auto& s : samples) {
      if (s.scheme == scheme && s.policy == policy && s.racks == racks &&
          s.layered == layered) {
        return &s;
      }
    }
    return nullptr;
  };
  // Layering must never increase cross-rack repair bytes (totals equal).
  for (const auto& s : samples) {
    if (!s.layered) continue;
    const Sample* twin = find_sample(s.scheme, s.policy, s.racks, false);
    if (twin == nullptr) continue;
    if (s.repair_cross_rack_bytes > twin->repair_cross_rack_bytes ||
        s.repair_total_bytes != twin->repair_total_bytes) {
      std::fprintf(stderr,
                   "FAIL: %s/%s at %zu racks: layered cross %.0f vs %.0f, "
                   "total %.0f vs %.0f\n",
                   s.scheme.c_str(), s.policy.c_str(), s.racks,
                   s.repair_cross_rack_bytes, twin->repair_cross_rack_bytes,
                   s.repair_total_bytes, twin->repair_total_bytes);
      ok = false;
    }
  }
  // The headline: layered group_per_rack heptagon-local at 3 racks beats
  // flat placement on cross-rack repair bytes, strictly.
  const Sample* hero = find_sample("heptagon-local", "group_per_rack", 3, true);
  const Sample* flat = find_sample("heptagon-local", "flat", 3, false);
  if (hero != nullptr && flat != nullptr) {
    if (!(hero->repair_cross_rack_bytes < flat->repair_cross_rack_bytes)) {
      std::fprintf(stderr,
                   "FAIL: layered group_per_rack heptagon-local (%.0f "
                   "cross-rack bytes) not below flat (%.0f)\n",
                   hero->repair_cross_rack_bytes,
                   flat->repair_cross_rack_bytes);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
