// Microbenchmark sweep of the raw GF(2^8) slice kernels: every supported
// backend (scalar/ssse3/avx2/avx512/gfni) x every hot operation x a
// cache-tiered set of slice lengths, emitted as BENCH_gf_ops.json.
//
// Self-contained harness (no google-benchmark) for the same reason as
// bench_encode_throughput: it must force each kernel in turn through
// gf::set_active_kernel, and CI parses the JSON artifact. The ops are the
// primitives every encoder/repair path decomposes into:
//
//   mul        dst = c * src            (split-table / affine multiply)
//   addmul     dst ^= c * src           (the matrix_apply inner loop)
//   xor        dst ^= src               (coefficient-1 fast path)
//   fold4      dst = s0^s1^s2^s3        (multi-source parity fold)
//   fold4_nt   fold4 with streaming stores forced on (honored by
//              avx2/avx512/gfni; a hint elsewhere)
//   apply      4x10 coefficient block, one stripe     (rs-10-4 shape)
//   apply_b8   the same block fused across 8 stripes  (batched path)
//
// MB/s counts *source* bytes processed per op (mul/addmul/xor: the one
// source; fold4: all four; apply: the 10 data blocks), so kernels and ops
// are comparable at equal input.
//
// --list-kernels prints the supported kernel names (one per line) and
// exits; CI's kernel matrix uses it to skip unsupported backends on the
// runner instead of silently falling back.
//
// Usage: bench_gf_ops [--min-time=SECONDS] [--json=PATH] [--list-kernels]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "gf/gf256.h"
#include "gf/kernel.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

template <typename Fn>
double measure_mb_s(double min_time, std::size_t bytes, Fn&& fn) {
  fn();  // warmup: tables, page faults
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  return static_cast<double>(bytes) * static_cast<double>(iters) /
         (elapsed * 1e6);
}

struct Sample {
  std::string kernel;
  std::string op;
  std::size_t length = 0;
  double mb_s = 0;
};

}  // namespace

int main(int argc, char** argv) {
  double min_time = 0.05;
  std::string json_path = "BENCH_gf_ops.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--min-time=", 0) == 0) {
        min_time = std::stod(arg.substr(11));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else if (arg == "--list-kernels") {
        for (const gf::GfKernel* kernel : gf::supported_kernels()) {
          std::printf("%s\n", kernel->name);
        }
        return 0;
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }

  // L1-resident, L2-resident, and memory-bound slices. The last tier is
  // above gf::kNonTemporalMinBytes so fold4_nt actually streams.
  const std::vector<std::size_t> lengths = {4 << 10, 64 << 10, 1 << 20};
  constexpr std::size_t kFoldSources = 4;
  constexpr gf::Elem kCoeff = 0x1d;

  std::vector<Sample> samples;
  for (const gf::GfKernel* kernel : gf::supported_kernels()) {
    DBLREP_CHECK(gf::set_active_kernel(kernel->name));
    std::fprintf(stderr, "== kernel %s ==\n", kernel->name);
    for (const std::size_t length : lengths) {
      Buffer dst(length);
      std::vector<Buffer> srcs;
      for (std::size_t i = 0; i < kFoldSources; ++i) {
        srcs.push_back(random_buffer(length, i + 1));
      }
      std::vector<ByteSpan> fold_views;
      for (const auto& src : srcs) fold_views.emplace_back(src);

      const auto record = [&](const char* op, std::size_t bytes, auto&& fn) {
        Sample sample;
        sample.kernel = kernel->name;
        sample.op = op;
        sample.length = length;
        sample.mb_s = measure_mb_s(min_time, bytes, fn);
        std::fprintf(stderr, "  %-10s %8zu B %10.1f MB/s\n", op, length,
                     sample.mb_s);
        samples.push_back(std::move(sample));
      };
      const auto touch = [&] {
        volatile std::uint8_t sink = dst.back();
        (void)sink;
      };

      record("mul", length, [&] {
        kernel->mul_slice(dst, fold_views[0], kCoeff);
        touch();
      });
      record("addmul", length, [&] {
        kernel->addmul_slice(dst, fold_views[0], kCoeff);
        touch();
      });
      record("xor", length, [&] {
        kernel->xor_slice(dst, fold_views[0]);
        touch();
      });
      record("fold4", kFoldSources * length, [&] {
        kernel->xor_fold_slice(dst, fold_views, /*non_temporal=*/false);
        touch();
      });
      record("fold4_nt", kFoldSources * length, [&] {
        kernel->xor_fold_slice(dst, fold_views, /*non_temporal=*/true);
        touch();
      });

      // The rs-10-4 coefficient shape: 4 parity rows x 10 data columns,
      // single stripe vs fused across 8 stripes. Distinct non-trivial
      // coefficients (not 0/1) so no fast path short-circuits; the exact
      // values are irrelevant to the timing.
      constexpr std::size_t kRows = 4;
      constexpr std::size_t kCols = 10;
      constexpr std::size_t kGroups = 8;
      std::vector<gf::Elem> coeffs(kRows * kCols);
      for (std::size_t i = 0; i < coeffs.size(); ++i) {
        coeffs[i] = static_cast<gf::Elem>(2 + i);
      }
      std::vector<Buffer> data_blocks;
      std::vector<Buffer> parity_blocks;
      for (std::size_t g = 0; g < kGroups; ++g) {
        for (std::size_t i = 0; i < kCols; ++i) {
          data_blocks.push_back(random_buffer(length, 100 + g * kCols + i));
        }
        for (std::size_t r = 0; r < kRows; ++r) {
          parity_blocks.emplace_back(length);
        }
      }
      std::vector<ByteSpan> sources;
      std::vector<MutableByteSpan> outputs;
      for (auto& b : data_blocks) sources.emplace_back(b);
      for (auto& b : parity_blocks) outputs.emplace_back(b);

      record("apply", kCols * length, [&] {
        kernel->matrix_apply(
            coeffs, std::span<const ByteSpan>(sources.data(), kCols),
            std::span<const MutableByteSpan>(outputs.data(), kRows));
        volatile std::uint8_t sink = parity_blocks[0].back();
        (void)sink;
      });
      record("apply_b8", kGroups * kCols * length, [&] {
        kernel->matrix_apply_batch(coeffs, sources, outputs, kGroups);
        volatile std::uint8_t sink = parity_blocks.back().back();
        (void)sink;
      });
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"gf_ops\",\n"
       << "  \"min_time_s\": " << min_time << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"kernel\": \"" << s.kernel << "\", \"op\": \"" << s.op
         << "\", \"length\": " << s.length << ", \"mb_per_s\": " << s.mb_s
         << "}" << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
