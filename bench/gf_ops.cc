// Microbenchmarks for the GF(2^8) kernels underlying every encoder: XOR,
// addmul (table lookup), and matrix inversion.
#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "gf/gf256.h"
#include "gf/matrix.h"

namespace {

using namespace dblrep;

void bench_xor(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Buffer dst = random_buffer(size, 1);
  const Buffer src = random_buffer(size, 2);
  for (auto _ : state) {
    xor_into(dst, src);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void bench_addmul(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  Buffer dst = random_buffer(size, 3);
  const Buffer src = random_buffer(size, 4);
  for (auto _ : state) {
    gf::addmul_slice(dst, src, 0x1d);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void bench_matrix_inverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<unsigned> exponents(n);
  for (std::size_t i = 0; i < n; ++i) exponents[i] = static_cast<unsigned>(i);
  const gf::Matrix vandermonde = gf::Matrix::vandermonde(exponents, n);
  for (auto _ : state) {
    auto inverse = vandermonde.inverse();
    benchmark::DoNotOptimize(inverse);
  }
}

}  // namespace

BENCHMARK(bench_xor)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);
BENCHMARK(bench_addmul)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);
BENCHMARK(bench_matrix_inverse)->Arg(9)->Arg(20)->Arg(40);

BENCHMARK_MAIN();
