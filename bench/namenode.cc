// Metadata-plane scaling and recovery cost of the sharded NameNode.
//
// Two sweeps, both pure metadata (no datanode I/O, no payload bytes):
//
//  * Catalog ops/s vs shard count. For each shard count the harness first
//    bulk-creates --files files from --threads concurrent writers
//    (begin_write -> attach_stripes -> commit_write against "3-rep"),
//    then runs a mixed phase of --mixed-ops operations across the same
//    threads (7/8 stat lookups, 1/8 create+publish+delete churn). More
//    shards = more independent lock domains and smaller per-shard maps,
//    so mutation-heavy concurrency is exactly where sharding should pay.
//
//  * Recovery time vs journal length. For each target length the harness
//    grows a snapshot-free 4-shard NameNode until its journals hold that
//    many records, then times a cold restore() of a scratch NameNode from
//    copies of the artifacts and asserts the rebuilt fingerprint matches.
//
// Acceptance gates (asserted at exit, mirroring the PR bar):
//   * at --gate-files files or more, mixed ops/s with 4 shards beats
//     1 shard by more than --gate-scaling (default 1.5x, the full-size
//     sharding claim; CI smoke runs enforce a reduced ratio sized for
//     2-core runners via --gate-files=<smoke size> --gate-scaling=1.15);
//   * recovery is linear in journal length: across the sweep, the max
//     per-record replay cost is within 2.5x of the min (no superlinear
//     blowup from map rebuilds or orphan sweeps).
//   Below --gate-files the scaling gate is reported but not enforced --
//   contention is too light at CI-smoke sizes for the full ratio to mean
//   much, which is why the smoke gate pairs a lower --gate-scaling with a
//   matching --gate-files.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_repair_qos: fixed seeds, everything a deterministic function of
// the flags. Emits BENCH_namenode.json.
//
// Usage: namenode [--files=N] [--mixed-ops=N] [--threads=N] [--reps=N]
//                 [--shards=CSV] [--journal-records=CSV]
//                 [--gate-files=N] [--gate-scaling=X] [--json=PATH]
//
// --reps runs each shard sample N times and keeps the best mixed ops/s
// (best-of-N is the standard throughput-gate estimator: interference only
// ever slows a run down, so the max is the least-noisy observation and
// the ratio of two maxes is what the scaling gate judges).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/topology.h"
#include "common/check.h"
#include "common/status.h"
#include "ec/code.h"
#include "ec/registry.h"
#include "hdfs/namenode.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Resolver backed by an owned scheme cache: the benches construct many
/// NameNodes, and catalogs hold raw CodeScheme pointers.
hdfs::SchemeResolver make_resolver() {
  auto schemes = std::make_shared<
      std::map<std::string, std::unique_ptr<ec::CodeScheme>>>();
  return [schemes](const std::string& spec) -> Result<const ec::CodeScheme*> {
    auto it = schemes->find(spec);
    if (it == schemes->end()) {
      auto code = ec::make_code(spec);
      if (!code.is_ok()) return code.status();
      it = schemes->emplace(spec, std::move(*code)).first;
    }
    return it->second.get();
  };
}

std::string file_path(std::size_t i) {
  // Spread over directories so the path hash exercises every shard.
  return "/bench/d" + std::to_string(i % 64) + "/f" + std::to_string(i);
}

constexpr std::size_t kNumNodes = 21;
constexpr std::size_t kNumRacks = 3;
constexpr const char* kSpec = "3-rep";
constexpr std::size_t kBlockSize = 1 << 20;

void create_one(hdfs::NameNode& nn, const ec::CodeScheme& code,
                const std::string& path, std::size_t salt) {
  DBLREP_CHECK(nn.begin_write(path, kSpec, kBlockSize).is_ok());
  std::vector<cluster::NodeId> group(code.num_nodes());
  for (std::size_t j = 0; j < group.size(); ++j) {
    group[j] = static_cast<cluster::NodeId>((salt + j) % kNumNodes);
  }
  DBLREP_CHECK(nn.attach_stripes(path, code, {group}).is_ok());
  DBLREP_CHECK(nn.commit_write(path).is_ok());
}

struct ShardSample {
  std::size_t shards = 0;
  double create_s = 0;
  double create_files_per_s = 0;
  double mixed_s = 0;
  double mixed_ops_per_s = 0;
};

ShardSample run_shard_sample(std::size_t shards, std::size_t files,
                             std::size_t mixed_ops, std::size_t threads) {
  cluster::Topology topology;
  topology.num_nodes = kNumNodes;
  topology.num_racks = kNumRacks;

  auto resolver = make_resolver();
  const ec::CodeScheme& code = *resolver(kSpec).value();
  // Snapshot cadence bounds journal memory; the recovery sweep below owns
  // the snapshot-free regime.
  hdfs::NameNode nn(topology, resolver,
                    hdfs::NameNodeOptions{.shards = shards,
                                          .snapshot_every = 1 << 15});

  ShardSample sample;
  sample.shards = nn.num_shards();

  // ---- create phase: concurrent bulk namespace build ------------------
  const auto create_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t lo = files * t / threads;
        const std::size_t hi = files * (t + 1) / threads;
        for (std::size_t i = lo; i < hi; ++i) {
          create_one(nn, code, file_path(i), i);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  sample.create_s = seconds_since(create_start);
  sample.create_files_per_s =
      static_cast<double>(files) / sample.create_s;
  DBLREP_CHECK_EQ(nn.num_files(), files);

  // ---- mixed phase: stat-heavy traffic with create/delete churn -------
  const auto mixed_start = Clock::now();
  {
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t lo = mixed_ops * t / threads;
        const std::size_t hi = mixed_ops * (t + 1) / threads;
        for (std::size_t i = lo; i < hi; ++i) {
          if (i % 8 == 0) {
            const std::string path =
                "/bench/churn/t" + std::to_string(t) + "_" +
                std::to_string(i);
            DBLREP_CHECK(nn.begin_write(path, kSpec, kBlockSize).is_ok());
            DBLREP_CHECK(nn.commit_write(path).is_ok());
            DBLREP_CHECK(nn.remove_file(path).is_ok());
          } else {
            DBLREP_CHECK(nn.stat(file_path(i % files)).is_ok());
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  sample.mixed_s = seconds_since(mixed_start);
  sample.mixed_ops_per_s =
      static_cast<double>(mixed_ops) / sample.mixed_s;
  return sample;
}

struct RecoverySample {
  std::size_t target_records = 0;
  std::size_t replayed = 0;
  double restore_s = 0;
  double per_record_us = 0;
};

RecoverySample run_recovery_sample(std::size_t target_records) {
  cluster::Topology topology;
  topology.num_nodes = kNumNodes;
  topology.num_racks = kNumRacks;

  auto resolver = make_resolver();
  const ec::CodeScheme& code = *resolver(kSpec).value();
  hdfs::NameNode nn(topology, resolver,
                    hdfs::NameNodeOptions{.shards = 4, .snapshot_every = 0});
  for (std::size_t i = 0; nn.total_journal_records() < target_records; ++i) {
    create_one(nn, code, file_path(i), i);
  }

  std::vector<Buffer> snapshots, journals;
  for (std::size_t s = 0; s < nn.num_shards(); ++s) {
    snapshots.push_back(nn.snapshot_bytes(s));
    journals.push_back(nn.journal_bytes(s));
  }

  hdfs::NameNode scratch(topology, resolver,
                         hdfs::NameNodeOptions{.shards = 4,
                                               .snapshot_every = 0});
  const auto start = Clock::now();
  const auto report =
      scratch.restore(std::move(snapshots), std::move(journals));
  RecoverySample sample;
  sample.target_records = target_records;
  sample.restore_s = seconds_since(start);
  DBLREP_CHECK(report.is_ok());
  DBLREP_CHECK_EQ(scratch.fingerprint(), nn.fingerprint());
  sample.replayed = report->journal_records_replayed;
  sample.per_record_us =
      sample.restore_s * 1e6 / static_cast<double>(sample.replayed);
  return sample;
}

std::vector<std::size_t> split_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    if (comma > pos) out.push_back(std::stoull(csv.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t files = 1000000;
  std::size_t mixed_ops = 400000;
  std::size_t threads = 8;
  std::size_t gate_files = 1000000;
  double gate_scaling = 1.5;
  std::size_t reps = 1;
  std::vector<std::size_t> shard_counts = {1, 4, 16};
  std::vector<std::size_t> journal_records = {10000, 20000, 40000, 80000};
  std::string json_path = "BENCH_namenode.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--files=", 0) == 0) {
        files = std::stoull(arg.substr(8));
      } else if (arg.rfind("--mixed-ops=", 0) == 0) {
        mixed_ops = std::stoull(arg.substr(12));
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads = std::stoull(arg.substr(10));
      } else if (arg.rfind("--reps=", 0) == 0) {
        reps = std::stoull(arg.substr(7));
      } else if (arg.rfind("--gate-files=", 0) == 0) {
        gate_files = std::stoull(arg.substr(13));
      } else if (arg.rfind("--gate-scaling=", 0) == 0) {
        gate_scaling = std::stod(arg.substr(15));
      } else if (arg.rfind("--shards=", 0) == 0) {
        shard_counts = split_sizes(arg.substr(9));
      } else if (arg.rfind("--journal-records=", 0) == 0) {
        journal_records = split_sizes(arg.substr(18));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (files == 0 || mixed_ops == 0 || threads == 0 || reps == 0 ||
      shard_counts.empty() || journal_records.empty()) {
    std::fprintf(stderr, "need positive sizes\n");
    return 2;
  }

  std::vector<ShardSample> shard_samples;
  for (const std::size_t shards : shard_counts) {
    ShardSample best;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      ShardSample sample = run_shard_sample(shards, files, mixed_ops, threads);
      if (rep == 0 || sample.mixed_ops_per_s > best.mixed_ops_per_s) {
        best = sample;
      }
    }
    shard_samples.push_back(best);
    const auto& s = shard_samples.back();
    std::fprintf(stderr,
                 "shards=%zu create %.0f files/s, mixed %.0f ops/s "
                 "(best of %zu)\n",
                 s.shards, s.create_files_per_s, s.mixed_ops_per_s, reps);
  }

  std::vector<RecoverySample> recovery_samples;
  for (const std::size_t records : journal_records) {
    recovery_samples.push_back(run_recovery_sample(records));
    const auto& s = recovery_samples.back();
    std::fprintf(stderr,
                 "journal=%zu records: restore %.3fs (%.2f us/record, "
                 "%zu replayed)\n",
                 s.target_records, s.restore_s, s.per_record_us, s.replayed);
  }

  // ---- gates -----------------------------------------------------------
  const auto ops_at = [&](std::size_t shards) -> double {
    for (const auto& s : shard_samples) {
      if (s.shards == shards) return s.mixed_ops_per_s;
    }
    return 0;
  };
  const double ops1 = ops_at(1);
  const double ops4 = ops_at(4);
  const double scaling = ops1 > 0 ? ops4 / ops1 : 0;
  const bool scaling_enforced = files >= gate_files && ops1 > 0 && ops4 > 0;
  const bool scaling_ok = !scaling_enforced || scaling > gate_scaling;

  double min_cost = 0, max_cost = 0;
  for (const auto& s : recovery_samples) {
    if (min_cost == 0 || s.per_record_us < min_cost) min_cost = s.per_record_us;
    if (s.per_record_us > max_cost) max_cost = s.per_record_us;
  }
  const bool linear_ok = max_cost <= 2.5 * min_cost;

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"namenode\",\n"
       << "  \"files\": " << files << ",\n"
       << "  \"mixed_ops\": " << mixed_ops << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"shard_sweep\": [\n";
  for (std::size_t i = 0; i < shard_samples.size(); ++i) {
    const auto& s = shard_samples[i];
    json << "    {\"shards\": " << s.shards << ", \"create_s\": "
         << s.create_s << ", \"create_files_per_s\": "
         << s.create_files_per_s << ", \"mixed_s\": " << s.mixed_s
         << ", \"mixed_ops_per_s\": " << s.mixed_ops_per_s << "}"
         << (i + 1 < shard_samples.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"recovery_sweep\": [\n";
  for (std::size_t i = 0; i < recovery_samples.size(); ++i) {
    const auto& s = recovery_samples[i];
    json << "    {\"target_records\": " << s.target_records
         << ", \"replayed\": " << s.replayed << ", \"restore_s\": "
         << s.restore_s << ", \"per_record_us\": " << s.per_record_us
         << "}" << (i + 1 < recovery_samples.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"scaling_1_to_4\": " << scaling << ",\n"
       << "  \"scaling_gate\": " << gate_scaling << ",\n"
       << "  \"scaling_gate_enforced\": "
       << (scaling_enforced ? "true" : "false") << ",\n"
       << "  \"scaling_ok\": " << (scaling_ok ? "true" : "false") << ",\n"
       << "  \"recovery_per_record_us_min\": " << min_cost << ",\n"
       << "  \"recovery_per_record_us_max\": " << max_cost << ",\n"
       << "  \"recovery_linear_ok\": " << (linear_ok ? "true" : "false")
       << "\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  bool ok = true;
  if (!scaling_ok) {
    std::fprintf(stderr,
                 "GATE FAIL: mixed ops/s scaling 1->4 shards %.2fx <= %.2fx\n",
                 scaling, gate_scaling);
    ok = false;
  } else if (scaling_enforced) {
    std::fprintf(stderr, "gate ok: 1->4 shard scaling %.2fx > %.2fx\n",
                 scaling, gate_scaling);
  } else {
    std::fprintf(stderr,
                 "scaling gate not enforced (%zu files < %zu gate-files); "
                 "measured %.2fx\n",
                 files, gate_files, scaling);
  }
  if (!linear_ok) {
    std::fprintf(stderr,
                 "GATE FAIL: recovery per-record cost spread %.2f..%.2f "
                 "us exceeds 2.5x\n",
                 min_cost, max_cost);
    ok = false;
  } else {
    std::fprintf(stderr,
                 "gate ok: recovery linear (%.2f..%.2f us/record)\n",
                 min_cost, max_cost);
  }
  return ok ? 0 : 1;
}
