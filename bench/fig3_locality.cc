// Reproduces Fig. 3: simulated map-task data locality (%) vs offered load
// for 2-rep / pentagon / heptagon under delay scheduling (DS) and
// max-matching (MM), on a 25-node system with mu = 2, 4, 8 map slots per
// node -- plus the fourth panel comparing the modified peeling algorithm
// against DS and MM at mu = 4.
//
// Usage: fig3_locality [--csv] [--trials N]
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "ec/registry.h"
#include "sched/locality_sim.h"

namespace {

using namespace dblrep;

int parse_trials(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::stoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const int trials = parse_trials(argc, argv, 40);

  const std::vector<std::string> codes = {"2-rep", "pentagon", "heptagon"};
  const std::vector<double> loads = {0.25, 0.50, 0.75, 1.00};

  std::cout << "Fig. 3: data locality (%) vs load, 25-node system, "
            << trials << " trials per point\n";

  // Panels 1-3: DS vs MM at mu = 2, 4, 8.
  for (int mu : {2, 4, 8}) {
    sched::LocalitySweepConfig config;
    config.slots_per_node = mu;
    config.loads = loads;
    config.trials = trials;

    TextTable table({"Load (%)", "2-rep DS", "2-rep MM", "pent DS", "pent MM",
                     "hept DS", "hept MM"});
    std::vector<std::vector<std::string>> columns;
    for (const auto& spec : codes) {
      const auto code = ec::make_code(spec).value();
      sched::DelayScheduler ds;
      sched::MaxMatchingScheduler mm;
      const auto ds_points = sched::run_locality_sweep(*code, ds, config);
      const auto mm_points = sched::run_locality_sweep(*code, mm, config);
      std::vector<std::string> ds_col, mm_col;
      for (std::size_t i = 0; i < loads.size(); ++i) {
        ds_col.push_back(fmt_pct(ds_points[i].mean_locality));
        mm_col.push_back(fmt_pct(mm_points[i].mean_locality));
      }
      columns.push_back(ds_col);
      columns.push_back(mm_col);
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
      table.add_row({fmt_double(loads[i] * 100, 0), columns[0][i],
                     columns[1][i], columns[2][i], columns[3][i],
                     columns[4][i], columns[5][i]});
    }
    std::cout << "\n-- mu = " << mu << " map slots per node --\n";
    std::cout << (csv ? table.to_csv() : table.to_string());
  }

  // Panel 4: peeling vs DS vs MM at mu = 4 for the coded schemes.
  {
    sched::LocalitySweepConfig config;
    config.slots_per_node = 4;
    config.loads = loads;
    config.trials = trials;
    TextTable table({"Load (%)", "pent DS", "pent peel", "pent MM", "hept DS",
                     "hept peel", "hept MM"});
    std::vector<std::vector<std::string>> columns;
    for (const std::string spec : {"pentagon", "heptagon"}) {
      const auto code = ec::make_code(spec).value();
      sched::DelayScheduler ds;
      sched::PeelingScheduler peel;
      sched::MaxMatchingScheduler mm;
      for (sched::Scheduler* s :
           std::vector<sched::Scheduler*>{&ds, &peel, &mm}) {
        const auto points = sched::run_locality_sweep(*code, *s, config);
        std::vector<std::string> col;
        for (const auto& p : points) col.push_back(fmt_pct(p.mean_locality));
        columns.push_back(col);
      }
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
      table.add_row({fmt_double(loads[i] * 100, 0), columns[0][i],
                     columns[1][i], columns[2][i], columns[3][i],
                     columns[4][i], columns[5][i]});
    }
    std::cout << "\n-- mu = 4, modified peeling algorithm panel --\n";
    std::cout << (csv ? table.to_csv() : table.to_string());
  }

  std::cout << "\nExpected shapes (paper): coded schemes lose locality at\n"
               "mu=2 (heptagon more than pentagon); the loss shrinks as mu\n"
               "grows (>90% at 100% load with mu=8); peeling sits between\n"
               "the delay scheduler and the max-matching benchmark.\n";
  return 0;
}
