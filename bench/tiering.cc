// Adaptive tiering capstone: a Zipf-skewed read workload drives the
// heat-driven TieringEngine across the 3-rep -> heptagon-local -> rs-10-4
// ladder, against an all-3-rep baseline cluster serving the same files.
// Emits BENCH_tiering.json.
//
// Gates (asserted at exit, mirroring the PR acceptance bar):
//  * steady-state storage overhead strictly below the all-3-rep baseline,
//    and well below it (<= 2.7x vs 3.0x);
//  * the ladder is actually used: every hot-decile file still sits on
//    3-rep, and both colder rungs hold at least one file;
//  * hot-file read latency stays at replicated-tier levels: tiered hot p99
//    within max(5x, +2ms) of the all-3-rep baseline's;
//  * hot-file map-task locality (max-matching over the real converged
//    placement) is no worse than the cold tier's;
//  * every file reads back byte-identical to its original payload after
//    all transitions;
//  * a reduced chaos sweep (mixed preset: tier transitions racing node
//    crashes, rack outages, namenode crashes, ...) reports zero invariant
//    violations and executes at least one mid-transition-capable event.
//
// Self-contained harness (no google-benchmark); runs on the inline pool so
// storage results are a deterministic function of the seed (latencies are
// wall-clock and only gated against a same-process baseline).
//
// Usage: tiering [--files=N] [--file-blocks=N] [--block-size=BYTES]
//                [--rounds=N] [--reads-per-round=N] [--zipf=S]
//                [--chaos-seeds=N] [--chaos-horizon=S] [--json=PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "hdfs/minidfs.h"
#include "hdfs/workload_driver.h"
#include "sched/schedulers.h"
#include "tier/engine.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

std::string file_path(std::size_t rank) {
  return "/tier/f" + std::to_string(rank);
}

/// Map-task assignment problem over the *real* converged placement of
/// `paths`: one task per data block, located at the cluster nodes holding
/// a replica of its symbol (1 for plain RS, 2-3 on the replicated rungs).
sched::AssignmentProblem build_problem(const hdfs::MiniDfs& dfs,
                                       const std::vector<std::string>& paths) {
  sched::AssignmentProblem problem;
  problem.num_nodes = dfs.topology().num_nodes;
  for (const std::string& path : paths) {
    const auto info = dfs.stat(path);
    const auto code = dfs.code_for(path);
    if (!info.is_ok() || !code.is_ok()) continue;
    const std::size_t k = (*code)->data_blocks();
    const auto& layout = (*code)->layout();
    const std::size_t blocks =
        (info->length + info->block_size - 1) / info->block_size;
    for (std::size_t b = 0; b < blocks; ++b) {
      const auto& si = dfs.catalog().stripe(info->stripes[b / k]);
      sched::TaskInfo task;
      task.stripe = problem.tasks.size() / std::max<std::size_t>(k, 1);
      task.symbol = b % k;
      for (const std::size_t slot : layout.slots_of_symbol(b % k)) {
        const auto node = static_cast<sched::NodeId>(
            si.group[static_cast<std::size_t>(layout.node_of_slot(slot))]);
        if (std::find(task.locations.begin(), task.locations.end(), node) ==
            task.locations.end()) {
          task.locations.push_back(node);
        }
      }
      problem.tasks.push_back(std::move(task));
    }
  }
  // Offered load ~0.8: enough contention that single-replica placement
  // actually costs locality, without overcommitting past one wave.
  problem.slots_per_node = std::max<int>(
      1, static_cast<int>((problem.tasks.size() + problem.num_nodes - 1) /
                          (0.8 * static_cast<double>(problem.num_nodes))) /
             1);
  return problem;
}

double locality_of(const hdfs::MiniDfs& dfs,
                   const std::vector<std::string>& paths, std::uint64_t seed) {
  const auto problem = build_problem(dfs, paths);
  if (problem.tasks.empty()) return 0;
  Rng rng(seed);
  sched::MaxMatchingScheduler scheduler;
  return scheduler.assign(problem, rng).locality();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t files = 36;
  // 40 blocks lands on exact stripe boundaries of every ladder rung
  // (heptagon-local stripes carry 40 data blocks, rs-10-4 stripes 10), so
  // overheads measure the codes, not the tail padding.
  std::size_t file_blocks = 40;
  std::size_t block_size = 4096;
  std::size_t rounds = 12;
  std::size_t reads_per_round = 120;
  double zipf_s = 1.1;
  std::size_t chaos_seeds = 4;
  double chaos_horizon = 15.0;
  std::string json_path = "BENCH_tiering.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& prefix) {
      return arg.substr(prefix.size());
    };
    try {
      if (arg.rfind("--files=", 0) == 0) {
        files = std::stoul(value("--files="));
      } else if (arg.rfind("--file-blocks=", 0) == 0) {
        file_blocks = std::stoul(value("--file-blocks="));
      } else if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoul(value("--block-size="));
      } else if (arg.rfind("--rounds=", 0) == 0) {
        rounds = std::stoul(value("--rounds="));
      } else if (arg.rfind("--reads-per-round=", 0) == 0) {
        reads_per_round = std::stoul(value("--reads-per-round="));
      } else if (arg.rfind("--zipf=", 0) == 0) {
        zipf_s = std::stod(value("--zipf="));
      } else if (arg.rfind("--chaos-seeds=", 0) == 0) {
        chaos_seeds = std::stoul(value("--chaos-seeds="));
      } else if (arg.rfind("--chaos-horizon=", 0) == 0) {
        chaos_horizon = std::stod(value("--chaos-horizon="));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = value("--json=");
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad value in arg: %s\n", arg.c_str());
      return 2;
    }
  }

  bool ok = true;
  const auto gate = [&ok](bool passed, const std::string& what) {
    if (!passed) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      ok = false;
    }
  };

  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  const double round_dt_s = 30.0;  // heat half-life is 60 logical seconds

  // Tiered cluster: heat observer wired in, everything ingested hot.
  tier::HeatTracker heat(tier::HeatOptions{.half_life_s = 60.0});
  hdfs::MiniDfsOptions options;
  options.access_observer = &heat;
  hdfs::MiniDfs dfs(topology, /*seed=*/2014, &exec::inline_pool(), options);
  // Thresholds scale with the block size (one read heats by one block), so
  // the same skew converges to the same census at any --block-size.
  tier::TieringPolicy policy(
      {.demote_below = {8.0 * static_cast<double>(block_size),
                        3.0 * static_cast<double>(block_size)}});
  tier::TieringEngine engine(dfs, heat, policy,
                             {.max_transitions_per_pass = 0});

  // All-3-rep baseline: same files, no tiering -- the storage and latency
  // yardstick ("what the paper's hot tier costs everywhere").
  hdfs::MiniDfs baseline(topology, /*seed=*/2014, &exec::inline_pool(), {});

  std::fprintf(stderr, "ingesting %zu files x %zu blocks x %zu B...\n", files,
               file_blocks, block_size);
  std::vector<Buffer> payloads;
  payloads.reserve(files);
  for (std::size_t f = 0; f < files; ++f) {
    payloads.push_back(random_buffer(file_blocks * block_size, f + 1));
    const auto& path = file_path(f);
    gate(dfs.write_file(path, payloads[f], "3-rep", block_size).is_ok(),
         "ingest (tiered) " + path);
    gate(baseline.write_file(path, payloads[f], "3-rep", block_size).is_ok(),
         "ingest (baseline) " + path);
  }
  const double logical_bytes =
      static_cast<double>(files * file_blocks * block_size);
  const double baseline_overhead =
      static_cast<double>(baseline.stored_bytes()) / logical_bytes;

  // Zipf-skewed read rounds with a background engine pass after each: the
  // closed loop that lets the namespace converge to heat-proportional
  // tiers while serving traffic.
  const hdfs::ZipfSampler zipf(files, zipf_s);
  Rng rng(7);
  std::size_t total_transitions = 0, total_errors = 0;
  std::vector<std::size_t> per_round_transitions;
  for (std::size_t round = 1; round <= rounds; ++round) {
    for (std::size_t r = 0; r < reads_per_round; ++r) {
      const std::size_t rank = zipf.sample(rng);
      const std::size_t block = rng.next_below(file_blocks);
      const auto read = dfs.read_block(file_path(rank), block);
      gate(read.is_ok(), "workload read of " + file_path(rank));
    }
    const auto pass =
        engine.run_once(static_cast<double>(round) * round_dt_s);
    total_transitions += pass.transitions;
    total_errors += pass.errors;
    per_round_transitions.push_back(pass.transitions);
  }
  // Converge: repeat passes at the final clock until the policy is
  // satisfied everywhere (run_once is idempotent at fixed heat).
  for (std::size_t extra = 0; extra < 8; ++extra) {
    const auto pass =
        engine.run_once(static_cast<double>(rounds) * round_dt_s);
    total_transitions += pass.transitions;
    total_errors += pass.errors;
    if (pass.transitions == 0) break;
  }
  gate(total_errors == 0, "transition errors on a healthy cluster");
  gate(total_transitions > 0, "no transitions executed at all");

  // Census + byte identity after every re-encode.
  std::map<std::string, std::size_t> census;
  const std::size_t hot_count = std::max<std::size_t>(1, files / 10);
  std::vector<std::string> hot_paths, cold_paths;
  bool hot_all_replicated = true;
  for (std::size_t f = 0; f < files; ++f) {
    const auto info = dfs.stat(file_path(f));
    gate(info.is_ok(), "stat " + file_path(f));
    if (!info.is_ok()) continue;
    ++census[info->code_spec];
    if (f < hot_count) {
      hot_paths.push_back(file_path(f));
      if (info->code_spec != "3-rep") hot_all_replicated = false;
    } else {
      cold_paths.push_back(file_path(f));
    }
    const auto read = dfs.read_file(file_path(f));
    gate(read.is_ok() && *read == payloads[f],
         "byte identity of " + file_path(f) + " after transitions");
  }
  const double tiered_overhead =
      static_cast<double>(dfs.stored_bytes()) / logical_bytes;
  std::fprintf(stderr,
               "converged: %zu transitions, overhead %.3fx vs %.3fx, census:",
               total_transitions, tiered_overhead, baseline_overhead);
  for (const auto& [spec, count] : census) {
    std::fprintf(stderr, " %s=%zu", spec.c_str(), count);
  }
  std::fprintf(stderr, "\n");

  gate(tiered_overhead < baseline_overhead,
       "storage overhead not strictly below all-3-rep");
  gate(tiered_overhead <= 2.7, "storage overhead above 2.7x (not 'well "
                               "below' the 3.0x baseline)");
  gate(hot_all_replicated, "a hot-decile file left the replicated tier");
  gate(census["heptagon-local"] > 0, "no file on the heptagon-local rung");
  gate(census["rs-10-4"] > 0, "no file on the rs-10-4 rung");

  // Hot-file latency: the same measurement loop against both clusters.
  // Wall-clock, so gated only relative to the in-process baseline.
  const auto measure = [&](hdfs::MiniDfs& target) {
    std::vector<double> us;
    Rng measure_rng(11);
    for (std::size_t i = 0; i < 40 * hot_count; ++i) {
      const std::size_t rank = measure_rng.next_below(hot_count);
      const std::size_t block = measure_rng.next_below(file_blocks);
      const auto start = Clock::now();
      const auto read = target.read_block(file_path(rank), block);
      us.push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                             start)
                       .count());
      gate(read.is_ok(), "hot measurement read");
    }
    return us;
  };
  const std::vector<double> hot_us = measure(dfs);
  const std::vector<double> base_us = measure(baseline);
  const double hot_p50 = percentile(hot_us, 0.50);
  const double hot_p99 = percentile(hot_us, 0.99);
  const double base_p50 = percentile(base_us, 0.50);
  const double base_p99 = percentile(base_us, 0.99);
  const double latency_budget_us = std::max(5.0 * base_p99, base_p99 + 2000);
  std::fprintf(stderr,
               "hot reads: tiered p50/p99 %.1f/%.1f us, baseline %.1f/%.1f "
               "us (budget %.1f)\n",
               hot_p50, hot_p99, base_p50, base_p99, latency_budget_us);
  gate(hot_p99 <= latency_budget_us,
       "hot-file p99 above the replicated-tier budget");

  // Locality: hot files (replicated) must schedule at least as locally as
  // the erasure-coded cold tail under the same offered load.
  const double hot_locality = locality_of(dfs, hot_paths, 3);
  const double cold_locality = locality_of(dfs, cold_paths, 3);
  std::fprintf(stderr, "max-matching locality: hot %.3f, cold %.3f\n",
               hot_locality, cold_locality);
  gate(hot_locality >= cold_locality,
       "hot-tier locality below the cold tier's");

  // Chaos: tier transitions interleaved with node/rack/namenode failures
  // (the mixed preset's tier_rate), mid-transition crashes included.
  chaos::ChaosConfig chaos_config;
  chaos_config.horizon_s = chaos_horizon;
  chaos_config.mix = chaos::FaultMix::mixed();
  const chaos::ChaosHarness harness(chaos_config);
  std::size_t chaos_violations = 0, chaos_tier_events = 0;
  for (std::uint64_t seed = 1; seed <= chaos_seeds; ++seed) {
    const auto report = harness.run_seed(seed);
    chaos_violations += report.violations.size();
    for (const auto& v : report.violations) {
      std::fprintf(stderr, "chaos seed %llu: %s\n",
                   static_cast<unsigned long long>(seed), v.c_str());
    }
    for (const auto& step : report.trace) {
      if (step.event.kind == chaos::EventKind::kTierTransition &&
          step.outcome.rfind("tier ", 0) == 0) {
        ++chaos_tier_events;
      }
    }
    std::fprintf(stderr, "chaos seed %llu: %zu events, %zu violations\n",
                 static_cast<unsigned long long>(seed), report.trace.size(),
                 report.violations.size());
  }
  gate(chaos_violations == 0, "chaos violations with tier transitions");
  gate(chaos_tier_events > 0, "chaos sweep executed no tier transitions");

  std::ofstream json(json_path);
  json << "{\n"
       << "  \"config\": {\"files\": " << files << ", \"file_blocks\": "
       << file_blocks << ", \"block_size\": " << block_size
       << ", \"rounds\": " << rounds << ", \"reads_per_round\": "
       << reads_per_round << ", \"zipf_s\": " << zipf_s
       << ", \"chaos_seeds\": " << chaos_seeds << ", \"chaos_horizon_s\": "
       << chaos_horizon << "},\n"
       << "  \"transitions\": {\"total\": " << total_transitions
       << ", \"errors\": " << total_errors << ", \"per_round\": [";
  for (std::size_t i = 0; i < per_round_transitions.size(); ++i) {
    json << (i ? ", " : "") << per_round_transitions[i];
  }
  json << "]},\n"
       << "  \"storage\": {\"logical_bytes\": " << logical_bytes
       << ", \"tiered_overhead\": " << tiered_overhead
       << ", \"baseline_overhead\": " << baseline_overhead << "},\n"
       << "  \"census\": {";
  bool first = true;
  for (const auto& [spec, count] : census) {
    json << (first ? "" : ", ") << "\"" << spec << "\": " << count;
    first = false;
  }
  json << "},\n"
       << "  \"hot_reads\": {\"tiered_p50_us\": " << hot_p50
       << ", \"tiered_p99_us\": " << hot_p99 << ", \"baseline_p50_us\": "
       << base_p50 << ", \"baseline_p99_us\": " << base_p99
       << ", \"budget_us\": " << latency_budget_us << "},\n"
       << "  \"locality\": {\"hot\": " << hot_locality << ", \"cold\": "
       << cold_locality << "},\n"
       << "  \"chaos\": {\"violations\": " << chaos_violations
       << ", \"tier_events\": " << chaos_tier_events << "},\n"
       << "  \"gates_passed\": " << (ok ? "true" : "false") << "\n"
       << "}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}
