// Thread-scaling of the concurrent data plane: encode (write_file), repair
// (repair_all), and the mixed workload-under-repair scenario, swept across
// worker counts and schemes. Emits BENCH_parallel_scaling.json so the perf
// trajectory (and the >= 3x repair-scaling acceptance bar for rs-10-4 at 8
// workers) is visible per commit.
//
// `workers` counts pool worker threads; 0 is the fully serial execution
// the determinism tests compare against (the calling thread always
// participates, so workers=N runs on N+1 threads). For every worker count
// the benchmark also checks that repair leaves datanode contents and
// traffic totals byte-identical to the workers=0 run of the same
// scenario -- the scaling numbers are only meaningful if the parallel
// path is exact.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_encode_throughput.
//
// Usage: bench_parallel_scaling [--block-size=BYTES] [--stripes=N]
//                               [--min-time=SECONDS] [--workers=CSV]
//                               [--schemes=CSV] [--json=PATH]
//                               [--latency-json=PATH]
//
// --latency-json additionally exports every mixed run's full
// WorkloadReport (per-op count/mean/p50/p99/p999 plus raw histogram
// buckets) for offline latency-distribution analysis.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "exec/thread_pool.h"
#include "hdfs/minidfs.h"
#include "hdfs/workload_driver.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Sample {
  std::string scheme;
  std::size_t workers = 0;
  double encode_mb_s = 0;
  double repair_mb_s = 0;
  double encode_speedup = 1.0;  // vs workers=0 for the same scheme
  double repair_speedup = 1.0;
  bool bytes_identical = true;  // repaired state matches the serial run
  // Mixed workload-under-repair:
  double mixed_read_p50_us = 0;
  double mixed_read_p99_us = 0;
  double mixed_read_p999_us = 0;
  double mixed_ops_per_s = 0;
  double mixed_repair_s = 0;
  std::size_t mixed_errors = 0;
};

/// FNV-1a over every stored block of every node (address + bytes), plus
/// the traffic totals: one number that pins down the post-repair state.
std::uint64_t cluster_fingerprint(hdfs::MiniDfs& dfs,
                                  std::size_t num_nodes) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  };
  for (std::size_t n = 0; n < num_nodes; ++n) {
    auto& dn = dfs.datanode(static_cast<cluster::NodeId>(n));
    for (const auto& address : dn.stored_addresses()) {
      mix(address.stripe);
      mix(address.slot);
      const auto bytes = dn.get(address);
      if (!bytes.is_ok()) continue;
      for (std::uint8_t b : *bytes) h = (h ^ b) * 1099511628211ULL;
    }
  }
  mix(static_cast<std::uint64_t>(dfs.traffic().total_bytes()));
  mix(static_cast<std::uint64_t>(dfs.traffic().cross_rack_bytes()));
  return h;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 64 << 10;
  std::size_t stripes = 24;
  double min_time = 0.2;
  std::vector<std::size_t> worker_counts = {0, 1, 2, 4, 8};
  std::vector<std::string> schemes = {"rs-10-4", "pentagon", "heptagon-local"};
  std::string json_path = "BENCH_parallel_scaling.json";
  std::string latency_json_path;  // empty: no per-run histogram export
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--stripes=", 0) == 0) {
        stripes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--min-time=", 0) == 0) {
        min_time = std::stod(arg.substr(11));
      } else if (arg.rfind("--workers=", 0) == 0) {
        worker_counts.clear();
        for (const auto& w : split_csv(arg.substr(10))) {
          worker_counts.push_back(std::stoull(w));
        }
      } else if (arg.rfind("--schemes=", 0) == 0) {
        schemes = split_csv(arg.substr(10));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else if (arg.rfind("--latency-json=", 0) == 0) {
        latency_json_path = arg.substr(15);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0 || stripes == 0 || worker_counts.empty()) {
    std::fprintf(stderr, "--block-size, --stripes, --workers must be set\n");
    return 2;
  }

  cluster::Topology topology;
  topology.num_nodes = 25;

  std::vector<Sample> samples;
  std::vector<std::string> latency_entries;
  std::map<std::string, double> serial_encode, serial_repair;
  std::map<std::string, std::uint64_t> serial_fingerprint;

  for (const std::size_t workers : worker_counts) {
    std::optional<exec::ThreadPool> pool;
    if (workers > 0) pool.emplace(workers);
    exec::ThreadPool* pool_ptr = workers > 0 ? &*pool : nullptr;
    std::fprintf(stderr, "== %zu workers ==\n", workers);

    for (const auto& spec : schemes) {
      const auto code = ec::make_code(spec).value();
      const std::size_t data_bytes =
          stripes * code->data_blocks() * block_size;
      const Buffer data = random_buffer(data_bytes, 42);
      Sample sample;
      sample.scheme = spec;
      sample.workers = workers;

      // ---- encode: repeated whole-file writes -------------------------
      {
        hdfs::MiniDfs dfs(topology, 7, pool_ptr);
        std::size_t iters = 0;
        double elapsed = 0;
        // Warmup write materializes runtimes and page-faults the arena.
        DBLREP_CHECK(dfs.write_file("/warm", data, spec, block_size).is_ok());
        DBLREP_CHECK(dfs.delete_file("/warm").is_ok());
        do {
          const std::string path = "/f" + std::to_string(iters);
          const auto start = Clock::now();
          DBLREP_CHECK(dfs.write_file(path, data, spec, block_size).is_ok());
          elapsed += seconds_since(start);
          DBLREP_CHECK(dfs.delete_file(path).is_ok());
          ++iters;
        } while (elapsed < min_time);
        sample.encode_mb_s = static_cast<double>(data_bytes) *
                             static_cast<double>(iters) / (elapsed * 1e6);
      }

      // ---- repair: fail 2 stripe-group nodes, repair_all --------------
      {
        hdfs::MiniDfs dfs(topology, 7, pool_ptr);
        DBLREP_CHECK(dfs.write_file("/r", data, spec, block_size).is_ok());
        const auto group =
            dfs.catalog().stripe(dfs.stat("/r")->stripes.front()).group;
        const std::size_t healthy_bytes = dfs.stored_bytes();
        std::size_t iters = 0;
        double elapsed = 0;
        std::size_t repaired_bytes = 0;
        do {
          DBLREP_CHECK(dfs.fail_node(group[0]).is_ok());
          DBLREP_CHECK(dfs.fail_node(group[1]).is_ok());
          if (iters == 0) repaired_bytes = healthy_bytes - dfs.stored_bytes();
          const auto start = Clock::now();
          DBLREP_CHECK(dfs.repair_all().is_ok());
          elapsed += seconds_since(start);
          ++iters;
        } while (elapsed < min_time);
        DBLREP_CHECK_EQ(dfs.stored_bytes(), healthy_bytes);
        sample.repair_mb_s = static_cast<double>(repaired_bytes) *
                             static_cast<double>(iters) / (elapsed * 1e6);

        // Exactness: one more fail+repair from a reset meter, fingerprint
        // the full cluster state and compare against the workers=0 run.
        dfs.traffic().reset();
        DBLREP_CHECK(dfs.fail_node(group[0]).is_ok());
        DBLREP_CHECK(dfs.fail_node(group[1]).is_ok());
        DBLREP_CHECK(dfs.repair_all().is_ok());
        const std::uint64_t fp = cluster_fingerprint(dfs, topology.num_nodes);
        if (const auto it = serial_fingerprint.find(spec);
            it == serial_fingerprint.end()) {
          serial_fingerprint[spec] = fp;
        } else {
          sample.bytes_identical = (fp == it->second);
        }
      }

      // ---- mixed: closed-loop clients while repair_all runs -----------
      {
        hdfs::MiniDfs dfs(topology, 7, pool_ptr);
        hdfs::WorkloadOptions options;
        options.code_spec = spec;
        options.block_size = block_size;
        options.stripes_per_file = 2;
        options.preload_files = 6;
        options.clients = 4;
        options.ops_per_client = 40;
        options.fail_nodes = 2;
        options.repair_concurrently = true;
        options.seed = 11;
        hdfs::WorkloadDriver driver(dfs, options);
        auto report = driver.run();
        DBLREP_CHECK_MSG(report.is_ok(), report.status().to_string());
        DBLREP_CHECK_MSG(report->repair_status.is_ok(),
                         report->repair_status.to_string());
        sample.mixed_read_p50_us = report->read.p50_us();
        sample.mixed_read_p99_us = report->read.p99_us();
        sample.mixed_read_p999_us = report->read.p999_us();
        sample.mixed_ops_per_s = report->ops_per_s;
        sample.mixed_repair_s = report->repair_s;
        sample.mixed_errors = report->total_errors();
        if (!latency_json_path.empty()) {
          std::ostringstream entry;
          entry << "    {\"scheme\": \"" << spec << "\", \"workers\": "
                << workers << ", \"report\":\n" << report->to_json() << "}";
          latency_entries.push_back(entry.str());
        }
      }

      if (workers == 0) {
        serial_encode[spec] = sample.encode_mb_s;
        serial_repair[spec] = sample.repair_mb_s;
      }
      if (const auto it = serial_encode.find(spec);
          it != serial_encode.end() && it->second > 0) {
        sample.encode_speedup = sample.encode_mb_s / it->second;
      }
      if (const auto it = serial_repair.find(spec);
          it != serial_repair.end() && it->second > 0) {
        sample.repair_speedup = sample.repair_mb_s / it->second;
      }
      std::fprintf(stderr,
                   "  %-16s encode %8.1f MB/s (%.2fx)  repair %8.1f MB/s "
                   "(%.2fx, identical=%d)  mixed p50 %.0fus p99 %.0fus "
                   "repair %.2fs errors %zu\n",
                   spec.c_str(), sample.encode_mb_s, sample.encode_speedup,
                   sample.repair_mb_s, sample.repair_speedup,
                   sample.bytes_identical ? 1 : 0, sample.mixed_read_p50_us,
                   sample.mixed_read_p99_us, sample.mixed_repair_s,
                   sample.mixed_errors);
      samples.push_back(sample);
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"parallel_scaling\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"stripes\": " << stripes << ",\n"
       << "  \"min_time_s\": " << min_time << ",\n"
       << "  \"host_hardware_threads\": "
       << std::thread::hardware_concurrency() << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme << "\", \"workers\": "
         << s.workers << ", \"encode_mb_per_s\": " << s.encode_mb_s
         << ", \"repair_mb_per_s\": " << s.repair_mb_s
         << ", \"encode_speedup_vs_serial\": " << s.encode_speedup
         << ", \"repair_speedup_vs_serial\": " << s.repair_speedup
         << ", \"bytes_identical_to_serial\": "
         << (s.bytes_identical ? "true" : "false")
         << ", \"mixed_read_p50_us\": " << s.mixed_read_p50_us
         << ", \"mixed_read_p99_us\": " << s.mixed_read_p99_us
         << ", \"mixed_read_p999_us\": " << s.mixed_read_p999_us
         << ", \"mixed_ops_per_s\": " << s.mixed_ops_per_s
         << ", \"mixed_repair_s\": " << s.mixed_repair_s
         << ", \"mixed_errors\": " << s.mixed_errors << "}"
         << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  if (!latency_json_path.empty()) {
    std::ofstream lj(latency_json_path);
    if (!lj) {
      std::fprintf(stderr, "cannot write %s\n", latency_json_path.c_str());
      return 1;
    }
    lj << "{\n  \"bench\": \"parallel_scaling_latency\",\n  \"reports\": [\n";
    for (std::size_t i = 0; i < latency_entries.size(); ++i) {
      lj << latency_entries[i]
         << (i + 1 == latency_entries.size() ? "\n" : ",\n");
    }
    lj << "  ]\n}\n";
    std::fprintf(stderr, "wrote %s\n", latency_json_path.c_str());
  }

  // Fail loudly if any parallel repair diverged from the serial bytes;
  // scaling numbers for a wrong result are meaningless.
  for (const auto& s : samples) {
    if (!s.bytes_identical) {
      std::fprintf(stderr, "FAIL: %s at %zu workers diverged from serial\n",
                   s.scheme.c_str(), s.workers);
      return 1;
    }
  }
  return 0;
}
