// Repair traffic under transient failures -- the Section 1 motivation for
// double-replication codes, quantified: one simulated year of a 25-node
// cluster where nodes suffer short outages and the NameNode re-replicates
// after a grace timeout. Repair-by-transfer codes pay 1x the lost data in
// network traffic; Reed-Solomon pays k x (the cited "XORing elephants"
// problem), which is why HDFS-RAID reserves RS for cold data.
//
// Usage: transient_repair [--csv]
#include <iostream>
#include <string>

#include "cluster/transient_sim.h"
#include "common/table.h"
#include "ec/registry.h"

int main(int argc, char** argv) {
  using namespace dblrep;
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  cluster::TransientSimConfig config;
  std::cout << "One simulated year, " << config.num_nodes
            << " nodes, ~1 outage/node/month (mean "
            << config.mean_outage_hours * 60 << " min), repair timeout "
            << config.repair_timeout_hours * 60 << " min, 1 TB/node\n\n";

  TextTable table({"Code", "repair multiplier", "outages", "repairs",
                   "masked", "repair traffic"});
  for (const std::string spec :
       {"3-rep", "2-rep", "pentagon", "heptagon", "heptagon-local", "raidm-9",
        "rs-10-4"}) {
    const auto code = ec::make_code(spec).value();
    const auto report = cluster::simulate_transient_failures(*code, config);
    table.add_row({code->params().name,
                   fmt_double(cluster::repair_traffic_multiplier(*code), 2) + "x",
                   std::to_string(report.outages),
                   std::to_string(report.repairs_triggered),
                   fmt_pct(report.masked_fraction()),
                   format_bytes(report.repair_network_bytes)});
  }
  std::cout << (csv ? table.to_csv() : table.to_string());

  // Timeout ablation for the pentagon: a longer grace period masks more
  // transient outages at the cost of a longer degraded window.
  std::cout << "\nTimeout ablation (pentagon):\n";
  TextTable ablation({"timeout (min)", "repairs", "masked", "repair traffic",
                      "down-hours"});
  for (double minutes : {0.0, 5.0, 15.0, 30.0, 60.0}) {
    cluster::TransientSimConfig c = config;
    c.repair_timeout_hours = minutes / 60.0;
    const auto code = ec::make_code("pentagon").value();
    const auto report = cluster::simulate_transient_failures(*code, c);
    ablation.add_row({fmt_double(minutes, 0),
                      std::to_string(report.repairs_triggered),
                      fmt_pct(report.masked_fraction()),
                      format_bytes(report.repair_network_bytes),
                      fmt_double(report.node_down_hours, 1)});
  }
  std::cout << (csv ? ablation.to_csv() : ablation.to_string());
  return 0;
}
