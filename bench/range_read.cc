// Byte-range read bench: client bytes and latency of pread swept over
// range size x scheme x failure state, against whole-file read_file as the
// baseline. Emits BENCH_range_read.json.
//
// The paper's Section 4 workloads read at MapReduce-task granularity --
// one split, not one file -- and XORing Elephants measures degraded *range*
// reads as the dominant foreground traffic in production. This bench pins
// the client-API claim behind both: a range read resolves only the stripes
// covering the range, so its wire cost scales with the range, not the
// file.
//
// Acceptance gates (asserted at exit, mirroring the PR acceptance bar):
// for every scheme and failure state, concatenating pread chunks over a
// partition of [0, length) is byte-identical to read_file; and a
// one-block pread moves strictly fewer client bytes than read_file.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_rack_layering. Runs on the inline (serial) pool so every number is
// a deterministic function of the seed.
//
// Usage: range_read [--block-size=BYTES] [--stripes=N] [--schemes=CSV]
//                   [--failures=CSV] [--reps=N] [--json=PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "hdfs/client.h"
#include "hdfs/minidfs.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

struct Sample {
  std::string scheme;
  std::size_t failures = 0;
  std::string range_label;
  std::size_t range_bytes = 0;
  double client_bytes_per_read = 0;
  double total_bytes_per_read = 0;
  double mean_us = 0;
  // Baseline whole-file read of the same state.
  double read_file_client_bytes = 0;
  bool partition_identical = true;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 4096;
  std::size_t stripes = 6;
  std::size_t reps = 8;
  std::vector<std::string> schemes = ec::paper_code_specs();
  std::vector<std::size_t> failure_counts = {0, 1, 2, 3};
  std::string json_path = "BENCH_range_read.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--stripes=", 0) == 0) {
        stripes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--reps=", 0) == 0) {
        reps = std::stoull(arg.substr(7));
      } else if (arg.rfind("--schemes=", 0) == 0) {
        schemes = split_csv(arg.substr(10));
      } else if (arg.rfind("--failures=", 0) == 0) {
        failure_counts.clear();
        for (const auto& f : split_csv(arg.substr(11))) {
          failure_counts.push_back(std::stoull(f));
        }
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0 || stripes == 0 || reps == 0) {
    std::fprintf(stderr, "--block-size, --stripes, --reps must be > 0\n");
    return 2;
  }

  constexpr std::uint64_t kSeed = 29;
  cluster::Topology topology;
  topology.num_nodes = 25;

  std::vector<Sample> samples;
  bool single_block_win = true;

  for (const auto& spec : schemes) {
    const auto code = ec::make_code(spec).value();
    const std::size_t k = code->data_blocks();
    const std::size_t stripe_bytes = k * block_size;
    const std::size_t file_bytes = stripes * stripe_bytes + block_size / 2;
    const Buffer data = random_buffer(file_bytes, 77);
    const int tolerance = code->params().fault_tolerance;

    for (const std::size_t failures : failure_counts) {
      if (failures > static_cast<std::size_t>(tolerance)) continue;

      hdfs::MiniDfs dfs(topology, kSeed, nullptr);
      hdfs::Client client(dfs);
      DBLREP_CHECK(client.write("/f", data, spec, block_size).is_ok());
      if (failures > 0) {
        const auto group =
            dfs.catalog().stripe(dfs.stat("/f")->stripes.front()).group;
        for (std::size_t i = 0; i < failures; ++i) {
          DBLREP_CHECK(dfs.fail_node(group[i]).is_ok());
        }
      }

      // Baseline: whole-file read cost in this failure state.
      const double base_client0 = dfs.traffic().client_bytes();
      const auto whole = client.read("/f");
      DBLREP_CHECK_MSG(whole.is_ok(), spec << " failures=" << failures
                                           << ": " << whole.status().to_string());
      const double read_file_client =
          dfs.traffic().client_bytes() - base_client0;

      // Partition identity gate: block-aligned and ragged chunk cycles.
      bool partition_identical = true;
      for (const std::size_t chunk :
           {block_size, stripe_bytes, 3 * block_size / 2 + 1}) {
        Buffer reassembled;
        std::size_t offset = 0;
        while (offset < file_bytes) {
          const auto piece = client.pread("/f", offset, chunk);
          DBLREP_CHECK_MSG(piece.is_ok(),
                           spec << " pread@" << offset << ": "
                                << piece.status().to_string());
          reassembled.insert(reassembled.end(), piece->begin(), piece->end());
          offset += piece->size();
        }
        partition_identical = partition_identical && (reassembled == *whole);
      }

      const std::vector<std::pair<std::string, std::size_t>> ranges = {
          {"1_block", block_size},
          {"half_stripe", std::max<std::size_t>(stripe_bytes / 2, 1)},
          {"1_stripe", stripe_bytes},
          {"4_stripes", std::min(4 * stripe_bytes, file_bytes)},
      };
      for (const auto& [label, range_bytes] : ranges) {
        const double client0 = dfs.traffic().client_bytes();
        const double total0 = dfs.traffic().total_bytes();
        const auto start = Clock::now();
        for (std::size_t r = 0; r < reps; ++r) {
          // Block-aligned sliding offsets keep every rep inside the file.
          const std::size_t offset =
              ((r * 3) % std::max<std::size_t>(
                             (file_bytes - range_bytes) / block_size, 1)) *
              block_size;
          const auto got = client.pread("/f", offset, range_bytes);
          DBLREP_CHECK_MSG(got.is_ok(), spec << " " << label << ": "
                                             << got.status().to_string());
        }
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - start)
                              .count();

        Sample sample;
        sample.scheme = spec;
        sample.failures = failures;
        sample.range_label = label;
        sample.range_bytes = range_bytes;
        sample.client_bytes_per_read =
            (dfs.traffic().client_bytes() - client0) /
            static_cast<double>(reps);
        sample.total_bytes_per_read =
            (dfs.traffic().total_bytes() - total0) / static_cast<double>(reps);
        sample.mean_us = us / static_cast<double>(reps);
        sample.read_file_client_bytes = read_file_client;
        sample.partition_identical = partition_identical;
        samples.push_back(sample);

        if (label == "1_block" &&
            !(sample.client_bytes_per_read < read_file_client)) {
          single_block_win = false;
          std::fprintf(stderr,
                       "FAIL: %s failures=%zu: one-block pread moved %.0f "
                       "client bytes, read_file moved %.0f\n",
                       spec.c_str(), failures,
                       sample.client_bytes_per_read, read_file_client);
        }
      }
      std::fprintf(stderr,
                   "%-15s failures=%zu  1-block %.0f B/client-read vs "
                   "read_file %.0f B (partition identical=%d)\n",
                   spec.c_str(), failures,
                   samples[samples.size() - ranges.size()]
                       .client_bytes_per_read,
                   read_file_client, partition_identical ? 1 : 0);
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"range_read\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"stripes\": " << stripes << ",\n"
       << "  \"reps\": " << reps << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme
         << "\", \"failures\": " << s.failures << ", \"range\": \""
         << s.range_label << "\", \"range_bytes\": " << s.range_bytes
         << ", \"client_bytes_per_read\": " << s.client_bytes_per_read
         << ", \"total_bytes_per_read\": " << s.total_bytes_per_read
         << ", \"mean_us\": " << s.mean_us
         << ", \"read_file_client_bytes\": " << s.read_file_client_bytes
         << ", \"partition_identical_to_read_file\": "
         << (s.partition_identical ? "true" : "false") << "}"
         << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  // ---- acceptance gates --------------------------------------------------
  bool ok = single_block_win;
  for (const auto& s : samples) {
    if (!s.partition_identical) {
      std::fprintf(stderr,
                   "FAIL: %s failures=%zu: concatenated preads diverge "
                   "from read_file\n",
                   s.scheme.c_str(), s.failures);
      ok = false;
      break;
    }
  }
  if (!ok) return 1;
  std::fprintf(stderr,
               "OK: partitioned preads byte-identical to read_file and "
               "one-block preads strictly cheaper, across %zu samples\n",
               samples.size());
  return 0;
}
