// Reproduces Fig. 5: Terasort on set-up 2 (9 data nodes, 4 map + 2 reduce
// slots, 512 MB blocks): network traffic and data locality vs load for
// 3-rep / 2-rep / pentagon.
//
// Usage: fig5_setup2 [--csv] [--trials N]
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "ec/registry.h"
#include "mapred/terasort_sim.h"

namespace {

using namespace dblrep;

int parse_trials(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::stoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const int trials = parse_trials(argc, argv, 10);

  const std::vector<std::string> codes = {"3-rep", "2-rep", "pentagon"};
  const std::vector<double> loads = {0.25, 0.50, 0.75, 1.00};

  mapred::JobConfig config = mapred::setup2_config();
  config.trials = trials;

  TextTable traffic_table({"Load (%)", "3-rep", "2-rep", "pentagon"});
  TextTable locality_table({"Load (%)", "3-rep", "2-rep", "pentagon"});
  TextTable time_table({"Load (%)", "3-rep", "2-rep", "pentagon"});

  std::vector<std::vector<mapred::JobMetrics>> grid;
  for (const auto& spec : codes) {
    const auto code = ec::make_code(spec).value();
    std::vector<mapred::JobMetrics> row;
    for (double load : loads) {
      sched::DelayScheduler scheduler;
      config.load = load;
      row.push_back(mapred::run_terasort(*code, scheduler, config));
    }
    grid.push_back(row);
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> g{fmt_double(loads[i] * 100, 0)};
    std::vector<std::string> l{fmt_double(loads[i] * 100, 0)};
    std::vector<std::string> t{fmt_double(loads[i] * 100, 0)};
    for (std::size_t c = 0; c < codes.size(); ++c) {
      g.push_back(fmt_double(grid[c][i].map_input_traffic_bytes / 1e9, 2) +
                  " GB");
      l.push_back(fmt_pct(grid[c][i].locality));
      t.push_back(fmt_double(grid[c][i].job_seconds, 1) + " s");
    }
    traffic_table.add_row(g);
    locality_table.add_row(l);
    time_table.add_row(t);
  }

  std::cout << "Fig. 5: Terasort on set-up 2 (9 nodes, 4 map slots, 512 MB "
               "blocks), delay scheduling, "
            << trials << " trials per point\n";
  std::cout << "\nNetwork traffic (map-input bytes crossing the network):\n"
            << (csv ? traffic_table.to_csv() : traffic_table.to_string());
  std::cout << "\nData locality:\n"
            << (csv ? locality_table.to_csv() : locality_table.to_string());
  std::cout << "\nJob time (measured in the paper, not plotted):\n"
            << (csv ? time_table.to_csv() : time_table.to_string());
  std::cout << "\nExpected shapes (paper): with 4 map slots the pentagon's\n"
               "locality stays close to 2-rep through 75% load, so traffic\n"
               "and job time stay close too.\n";
  return 0;
}
