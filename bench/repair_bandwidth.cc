// Reproduces the repair-bandwidth claims of Sections 2.1 and 3.1:
//
//  * pentagon single-node repair = 4 blocks (pure repair-by-transfer);
//  * pentagon two-node repair = 10 blocks total via partial parities;
//  * degraded read of a doubly-lost block: pentagon 3 blocks vs
//    (10,9) RAID+m 9 blocks;
//  * the same numbers measured end-to-end on the mini-HDFS wire;
//  * heptagon-local: local repair stays inside the rack.
//
// Usage: repair_bandwidth [--csv]
#include <iostream>
#include <string>

#include "common/table.h"
#include "ec/local_polygon.h"
#include "ec/registry.h"
#include "hdfs/minidfs.h"

namespace {

using namespace dblrep;

/// Plan-level numbers for a code: single repair, double repair, degraded
/// read of a doubly-lost block.
struct PlanNumbers {
  std::size_t single_repair = 0;
  std::size_t double_repair = 0;
  std::size_t degraded_read = 0;
};

PlanNumbers plan_numbers(const ec::CodeScheme& code) {
  PlanNumbers out;
  // All schemes in this table are alpha == 1, so units == blocks.
  out.single_repair = code.plan_node_repair(0)->network_units();
  if (code.params().fault_tolerance >= 2 && code.num_nodes() >= 2) {
    out.double_repair = code.plan_multi_node_repair({0, 1})->network_units();
    // Find a symbol fully lost when nodes 0 and 1 fail.
    for (std::size_t sym = 0; sym < code.num_symbols(); ++sym) {
      bool fully_lost = true;
      for (std::size_t slot : code.layout().slots_of_symbol(sym)) {
        const auto node = code.layout().node_of_slot(slot);
        if (node != 0 && node != 1) {
          fully_lost = false;
          break;
        }
      }
      if (fully_lost) {
        out.degraded_read =
            code.plan_degraded_read(sym, {0, 1})->network_units();
        break;
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  TextTable table({"Code", "1-node repair", "2-node repair",
                   "degraded read (2 lost)", "paper says"});
  const struct {
    const char* spec;
    const char* note;
  } rows[] = {
      {"pentagon", "10 blocks 2-node; 3-block degraded read"},
      {"heptagon", "(3(n-2)+1 = 16; n-2 = 5)"},
      {"raidm-9", "9-block degraded read"},
      {"raidm-11", "(k = 11)"},
      {"3-rep", "plain copies"},
      {"2-rep", "plain copies"},
      {"rs-10-4", "k-block repair, no replicas"},
  };
  for (const auto& row : rows) {
    const auto code = ec::make_code(row.spec).value();
    const auto n = plan_numbers(*code);
    table.add_row({code->params().name, std::to_string(n.single_repair),
                   n.double_repair ? std::to_string(n.double_repair) : "-",
                   n.degraded_read ? std::to_string(n.degraded_read) : "-",
                   row.note});
  }
  std::cout << "Repair bandwidth in blocks (Sections 2.1 and 3.1):\n\n"
            << (csv ? table.to_csv() : table.to_string());

  // End-to-end on the mini-HDFS wire.
  std::cout << "\nEnd-to-end on the mini-DFS wire (64-byte blocks):\n\n";
  TextTable wire({"Scenario", "blocks moved", "expectation"});
  {
    hdfs::MiniDfs dfs(cluster::Topology{}, 1);
    const Buffer data = random_buffer(64 * 9, 1);
    (void)dfs.write_file("/f", data, "pentagon", 64);
    const auto info = *dfs.stat("/f");
    const auto group = dfs.catalog().stripe(info.stripes[0]).group;
    (void)dfs.fail_node(group[0]);
    dfs.traffic().reset();
    (void)dfs.repair_node(group[0]);
    wire.add_row({"pentagon 1-node repair",
                  fmt_double(dfs.traffic().total_bytes() / 64, 0),
                  "4 (repair-by-transfer)"});
  }
  {
    hdfs::MiniDfs dfs(cluster::Topology{}, 2);
    const Buffer data = random_buffer(64 * 9, 2);
    (void)dfs.write_file("/f", data, "pentagon", 64);
    const auto info = *dfs.stat("/f");
    const auto group = dfs.catalog().stripe(info.stripes[0]).group;
    (void)dfs.fail_node(group[0]);
    (void)dfs.fail_node(group[1]);
    dfs.traffic().reset();
    (void)dfs.repair_all();
    wire.add_row({"pentagon 2-node repair",
                  fmt_double(dfs.traffic().total_bytes() / 64, 0),
                  "10 (6 copies + 3 partial parities + 1)"});
  }
  {
    hdfs::MiniDfs dfs(cluster::Topology{}, 3);
    const Buffer data = random_buffer(64 * 9, 3);
    (void)dfs.write_file("/f", data, "pentagon", 64);
    const auto info = *dfs.stat("/f");
    const auto& code = *dfs.code_for("/f").value();
    for (std::size_t slot : code.layout().slots_of_symbol(0)) {
      (void)dfs.fail_node(dfs.catalog().node_of({info.stripes[0], slot}));
    }
    dfs.traffic().reset();
    (void)dfs.read_block("/f", 0);
    wire.add_row({"pentagon degraded read",
                  fmt_double(dfs.traffic().total_bytes() / 64, 0),
                  "3 partial parities"});
  }
  {
    hdfs::MiniDfs dfs(cluster::Topology{}, 4);
    const Buffer data = random_buffer(64 * 9, 4);
    (void)dfs.write_file("/f", data, "raidm-9", 64);
    const auto info = *dfs.stat("/f");
    const auto& code = *dfs.code_for("/f").value();
    for (std::size_t slot : code.layout().slots_of_symbol(0)) {
      (void)dfs.fail_node(dfs.catalog().node_of({info.stripes[0], slot}));
    }
    dfs.traffic().reset();
    (void)dfs.read_block("/f", 0);
    wire.add_row({"(10,9) RAID+m degraded read",
                  fmt_double(dfs.traffic().total_bytes() / 64, 0),
                  "9 (whole-stripe decode)"});
  }
  std::cout << (csv ? wire.to_csv() : wire.to_string());

  // Heptagon-local rack locality of repairs.
  {
    ec::LocalPolygonCode hl(7);
    const auto plan = hl.plan_multi_node_repair({2, 4});
    std::size_t rack_local = 0;
    for (const auto& send : plan->aggregates) {
      if (hl.rack_of_node(send.from_node) == 0) ++rack_local;
    }
    std::cout << "\nheptagon-local 2-node repair inside one local: "
              << plan->network_units() << " blocks, " << rack_local
              << " of them sourced rack-locally (expected: all).\n";
  }
  return 0;
}
