// Ablation study for the task-assignment design choices behind the Fig. 3
// schedulers (see docs/paper_map.md):
//  * delay-scheduler skip budget D (0 = no patience .. 2N sweeps);
//  * stripe-aware vs basic peeling (the paper's "modified" peeling);
//  * headroom left to the max-matching optimum.
//
// Usage: sched_ablation [--csv] [--trials N]
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "ec/registry.h"
#include "sched/locality_sim.h"

namespace {

using namespace dblrep;

int parse_trials(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::stoi(argv[i + 1]);
  }
  return fallback;
}

double locality_of(const std::string& spec, sched::Scheduler& scheduler,
                   int mu, double load, int trials) {
  const auto code = ec::make_code(spec).value();
  sched::LocalitySweepConfig config;
  config.slots_per_node = mu;
  config.loads = {load};
  config.trials = trials;
  return sched::run_locality_sweep(*code, scheduler, config)[0].mean_locality;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  const int trials = parse_trials(argc, argv, 30);

  std::cout << "Scheduler ablations (25 nodes, mu=4, 100% load, " << trials
            << " trials)\n\n";

  // Ablation 1: delay-scheduler skip budget.
  {
    TextTable table({"skip budget D", "pentagon", "heptagon"});
    for (int budget : {0, 5, 12, 25, 50}) {
      sched::DelayScheduler ds(budget);
      table.add_row({std::to_string(budget),
                     fmt_pct(locality_of("pentagon", ds, 4, 1.0, trials)),
                     fmt_pct(locality_of("heptagon", ds, 4, 1.0, trials))});
    }
    std::cout << "Delay scheduling: locality vs skip budget\n"
              << (csv ? table.to_csv() : table.to_string()) << "\n";
  }

  // Ablation 2: peeling variants vs bounds.
  {
    TextTable table({"Scheduler", "pentagon", "heptagon", "2-rep"});
    sched::DelayScheduler ds;
    sched::PeelingScheduler basic(false);
    sched::PeelingScheduler modified(true);
    sched::MaxMatchingScheduler mm;
    const struct {
      const char* name;
      sched::Scheduler* scheduler;
    } rows[] = {
        {"delay scheduler", &ds},
        {"peeling (basic)", &basic},
        {"peeling (stripe-aware)", &modified},
        {"max matching (bound)", &mm},
    };
    for (const auto& row : rows) {
      table.add_row(
          {row.name,
           fmt_pct(locality_of("pentagon", *row.scheduler, 4, 1.0, trials)),
           fmt_pct(locality_of("heptagon", *row.scheduler, 4, 1.0, trials)),
           fmt_pct(locality_of("2-rep", *row.scheduler, 4, 1.0, trials))});
    }
    std::cout << "Assignment algorithms at full load\n"
              << (csv ? table.to_csv() : table.to_string()) << "\n";
  }

  // Ablation 3: where the locality loss comes from -- slots per node.
  {
    TextTable table({"mu", "pentagon MM", "heptagon MM"});
    sched::MaxMatchingScheduler mm;
    for (int mu : {1, 2, 3, 4, 6, 8}) {
      table.add_row({std::to_string(mu),
                     fmt_pct(locality_of("pentagon", mm, mu, 1.0, trials)),
                     fmt_pct(locality_of("heptagon", mm, mu, 1.0, trials))});
    }
    std::cout << "Optimal locality vs map slots (the array-code "
                 "concentration effect)\n"
              << (csv ? table.to_csv() : table.to_string());
  }
  return 0;
}
