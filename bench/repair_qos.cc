// Repair QoS on the link-level network model: what a repair storm does to
// foreground client-read tail latency, and what throttling buys back.
//
// For each scheme x layered on/off, the harness captures real transfer
// patterns from a MiniDfs (write preload -> client block reads -> fail one
// node -> repair_all), then replays the captured client reads into a
// net::NetworkModel four ways: alone (baseline), against the unthrottled
// repair storm, against the same storm paced by the QosThrottler, and
// against the throttler in load-adaptive mode. Per-read completion
// latencies come out of the simulation; the headline metric is
//
//     p99 degradation = p99(reads under storm) / p99(reads alone).
//
// Acceptance gates (asserted at exit, mirroring the PR bar):
//   * throttled repair holds p99 client-read degradation under --budget
//     for every scheme (layered runs), while the flat unthrottled storm
//     blows the budget for every scheme;
//   * the adaptive throttler finishes the storm no later than the fixed
//     throttler (it soaks up idle-link headroom);
//   * network conservation (chaos::check_network_conservation, drained
//     form) holds after every simulation run.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_rack_layering: inline pool, fixed seeds, everything a
// deterministic function of the flags. Emits BENCH_repair_qos.json.
//
// Usage: repair_qos [--block-size=BYTES] [--files=N] [--stripes=N]
//                   [--reads=N] [--window-ms=MS] [--schemes=CSV]
//                   [--budget=X] [--json=PATH]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "cluster/placement.h"
#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/rng.h"
#include "ec/registry.h"
#include "hdfs/minidfs.h"
#include "net/model.h"
#include "net/transfer.h"
#include "sim/event_queue.h"

namespace {

using namespace dblrep;

// 1 Gbps NICs with a 4x ToR and 8x spine: slow enough that a repair storm
// visibly queues, fast enough that runs stay instant. All results are
// ratios, so the absolute scale only sets the numbers' readability.
net::NetworkConfig fabric_config() {
  net::NetworkConfig config;
  config.nic = {1.25e8, 20e-6};
  config.tor = {5e8, 20e-6};
  config.spine = {1e9, 30e-6};
  return config;
}

// Repair budget: 10% of a NIC cluster-wide, 20% of any one entry link.
net::QosConfig repair_qos_config() {
  net::QosConfig qos;
  qos.cluster_rate = 1.25e7;
  qos.cluster_burst = 128 * 1024;
  qos.link_fraction = 0.2;
  qos.link_burst = 128 * 1024;
  return qos;
}

/// One captured workload: per-read transfer flows + the repair storm as
/// one flow per repaired stripe (TransferLog::mark boundaries) -- stripes
/// repair independently, so their flows all hit the fabric at t=0.
struct Capture {
  std::vector<std::vector<net::TransferRecord>> reads;
  std::vector<std::vector<net::TransferRecord>> storm;
  std::size_t storm_records = 0;
  double storm_bytes = 0;
};

struct SimOutcome {
  double p99_read_s = 0;
  double max_read_s = 0;
  double storm_makespan_s = 0;  // 0 when no storm was injected
  double repair_delivered_bytes = 0;
  bool conservation_ok = true;
  std::string violation;
};

struct Sample {
  std::string scheme;
  bool layered = false;
  std::size_t repair_records = 0;
  std::size_t repair_flows = 0;  // one per repaired stripe
  double storm_bytes = 0;
  SimOutcome baseline;
  SimOutcome unthrottled;
  SimOutcome throttled;
  SimOutcome adaptive;
};

double quantile(std::vector<double> xs, double q) {
  DBLREP_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}

/// Replays `capture` into a fresh NetworkModel: the storm (if requested)
/// as one dependency-chained flow per repaired stripe, all at t=0, and the
/// client reads spread evenly over the window [0, window_s]. The schedule
/// is identical for every variant, so p99s compare like for like; the
/// window is sized (--window-ms) to overlap the unthrottled burst, which
/// is exactly the regime the throttler exists for.
SimOutcome simulate(const Capture& capture, const cluster::Topology& topology,
                    const net::NetworkConfig& config, bool inject_storm,
                    double window_s) {
  sim::EventQueue queue;
  net::NetworkModel model(queue, topology, config);
  SimOutcome outcome;

  std::vector<double> read_latency;
  read_latency.reserve(capture.reads.size());
  const double spacing =
      window_s / static_cast<double>(capture.reads.size());
  for (std::size_t i = 0; i < capture.reads.size(); ++i) {
    const sim::SimTime start = spacing * static_cast<double>(i);
    model.start_flow(capture.reads[i], start,
                     [&read_latency, start](sim::SimTime done) {
                       read_latency.push_back(done - start);
                     });
  }
  if (inject_storm) {
    for (const auto& flow : capture.storm) {
      model.start_flow(flow, 0.0, [&outcome](sim::SimTime done) {
        outcome.storm_makespan_s =
            std::max(outcome.storm_makespan_s, done);
      });
    }
  }
  queue.run();

  DBLREP_CHECK_EQ(read_latency.size(), capture.reads.size());
  outcome.p99_read_s = quantile(read_latency, 0.99);
  outcome.max_read_s = quantile(read_latency, 1.0);
  outcome.repair_delivered_bytes =
      model.delivered_class_bytes(net::TransferClass::kRepair) +
      model.delivered_class_bytes(net::TransferClass::kScrub);

  std::vector<std::string> violations;
  chaos::check_network_conservation(model, violations,
                                    /*expect_drained=*/true);
  if (!violations.empty()) {
    outcome.conservation_ok = false;
    outcome.violation = violations.front();
  }
  return outcome;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string outcome_json(const char* name, const SimOutcome& o) {
  std::ostringstream out;
  out << "\"" << name << "\": {\"p99_read_s\": " << o.p99_read_s
      << ", \"max_read_s\": " << o.max_read_s
      << ", \"storm_makespan_s\": " << o.storm_makespan_s
      << ", \"repair_delivered_bytes\": " << o.repair_delivered_bytes
      << ", \"conservation_ok\": " << (o.conservation_ok ? "true" : "false")
      << "}";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 256 * 1024;
  std::size_t files = 24;
  std::size_t stripes = 3;
  std::size_t reads = 150;
  double window_ms = 150.0;
  std::vector<std::string> schemes = {"heptagon-local", "pentagon", "rs-10-4"};
  double budget = 3.0;
  std::string json_path = "BENCH_repair_qos.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--files=", 0) == 0) {
        files = std::stoull(arg.substr(8));
      } else if (arg.rfind("--stripes=", 0) == 0) {
        stripes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--reads=", 0) == 0) {
        reads = std::stoull(arg.substr(8));
      } else if (arg.rfind("--window-ms=", 0) == 0) {
        window_ms = std::stod(arg.substr(12));
      } else if (arg.rfind("--schemes=", 0) == 0) {
        schemes = split_csv(arg.substr(10));
      } else if (arg.rfind("--budget=", 0) == 0) {
        budget = std::stod(arg.substr(9));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0 || files == 0 || stripes == 0 || reads == 0 ||
      window_ms <= 0 || schemes.empty() || budget <= 1.0) {
    std::fprintf(stderr, "need positive sizes and --budget > 1\n");
    return 2;
  }
  const double window_s = window_ms / 1e3;

  constexpr std::size_t kNumNodes = 27;
  constexpr std::size_t kNumRacks = 3;
  constexpr std::uint64_t kSeed = 17;

  cluster::Topology topology;
  topology.num_nodes = kNumNodes;
  topology.num_racks = kNumRacks;

  const net::NetworkConfig plain = fabric_config();
  net::NetworkConfig throttled_config = fabric_config();
  throttled_config.throttle_repair = true;
  throttled_config.qos = repair_qos_config();
  net::NetworkConfig adaptive_config = throttled_config;
  adaptive_config.qos.adaptive = true;
  adaptive_config.qos.adaptive_boost = 4.0;

  std::vector<Sample> samples;
  for (const auto& spec : schemes) {
    const auto code = ec::make_code(spec).value();
    const std::size_t file_bytes = stripes * code->data_blocks() * block_size;
    const Buffer data = random_buffer(file_bytes, 99);

    for (const bool layered : {false, true}) {
      // ---- capture: run the real data plane, log every transfer --------
      net::TransferLog log;
      hdfs::MiniDfsOptions options;
      options.placement = cluster::PlacementPolicy::kGroupPerRack;
      options.layered_repair = layered;
      options.transfer_log = &log;
      hdfs::MiniDfs dfs(topology, kSeed, /*pool=*/nullptr, options);

      std::vector<std::string> paths;
      for (std::size_t f = 0; f < files; ++f) {
        paths.push_back("/qos/f" + std::to_string(f));
        DBLREP_CHECK(
            dfs.write_file(paths.back(), data, spec, block_size).is_ok());
      }
      (void)log.drain();  // preload uploads are not part of the replay

      // Client reads of random single blocks, captured one flow per op.
      // Captured pre-failure so every scheme's reads are plain replica /
      // systematic reads -- the foreground traffic the storm then hurts.
      Capture capture;
      Rng rng(kSeed + 1);
      const std::size_t blocks_per_file = file_bytes / block_size;
      for (std::size_t r = 0; r < reads; ++r) {
        const auto& path = paths[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(paths.size()) - 1))];
        const auto block = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(blocks_per_file) - 1));
        DBLREP_CHECK(dfs.read_block(path, block).is_ok());
        auto records = log.drain();
        DBLREP_CHECK(!records.empty());
        capture.reads.push_back(std::move(records));
      }

      // The storm: fail one member of the first file's first stripe group
      // and repair everything it held.
      const auto group = dfs.catalog().stripe(0).group;
      DBLREP_CHECK(dfs.fail_node(group[1]).is_ok());
      (void)log.drain();  // fail_node itself moves no bytes; stay clean
      DBLREP_CHECK(dfs.repair_all().is_ok());
      capture.storm = log.drain_flows();
      for (const auto& flow : capture.storm) {
        capture.storm_records += flow.size();
        for (const auto& t : flow) capture.storm_bytes += t.bytes;
      }
      DBLREP_CHECK(!capture.storm.empty());

      // ---- replay: one read schedule, four network variants ------------
      Sample sample;
      sample.scheme = spec;
      sample.layered = layered;
      sample.repair_records = capture.storm_records;
      sample.repair_flows = capture.storm.size();
      sample.storm_bytes = capture.storm_bytes;
      sample.baseline =
          simulate(capture, topology, plain, /*inject_storm=*/false, window_s);
      sample.unthrottled =
          simulate(capture, topology, plain, /*inject_storm=*/true, window_s);
      sample.throttled = simulate(capture, topology, throttled_config,
                                  /*inject_storm=*/true, window_s);
      sample.adaptive = simulate(capture, topology, adaptive_config,
                                 /*inject_storm=*/true, window_s);

      std::fprintf(
          stderr,
          "%-15s layered=%d  storm %3zu records / %zu flows %6.1f KB  "
          "p99 base "
          "%.3f ms | unthrottled %.3f ms (x%.1f) | throttled %.3f ms "
          "(x%.1f) | adaptive %.3f ms (x%.1f, makespan %.1f ms vs %.1f)\n",
          spec.c_str(), layered ? 1 : 0, sample.repair_records,
          sample.repair_flows, sample.storm_bytes / 1024,
          sample.baseline.p99_read_s * 1e3,
          sample.unthrottled.p99_read_s * 1e3,
          sample.unthrottled.p99_read_s / sample.baseline.p99_read_s,
          sample.throttled.p99_read_s * 1e3,
          sample.throttled.p99_read_s / sample.baseline.p99_read_s,
          sample.adaptive.p99_read_s * 1e3,
          sample.adaptive.p99_read_s / sample.baseline.p99_read_s,
          sample.adaptive.storm_makespan_s * 1e3,
          sample.throttled.storm_makespan_s * 1e3);
      samples.push_back(std::move(sample));
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"repair_qos\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"files\": " << files << ",\n  \"stripes\": " << stripes
       << ",\n  \"reads\": " << reads << ",\n  \"window_ms\": " << window_ms
       << ",\n  \"budget\": " << budget
       << ",\n  \"num_nodes\": " << kNumNodes
       << ",\n  \"num_racks\": " << kNumRacks
       << ",\n  \"qos_cluster_rate\": " << throttled_config.qos.cluster_rate
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme << "\", \"layered\": "
         << (s.layered ? "true" : "false")
         << ", \"repair_records\": " << s.repair_records
         << ", \"repair_flows\": " << s.repair_flows
         << ", \"storm_bytes\": " << s.storm_bytes << ",\n     "
         << outcome_json("baseline", s.baseline) << ",\n     "
         << outcome_json("unthrottled", s.unthrottled) << ",\n     "
         << outcome_json("throttled", s.throttled) << ",\n     "
         << outcome_json("adaptive", s.adaptive) << "}"
         << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  // ---- acceptance gates ----------------------------------------------
  bool ok = true;
  for (const auto& s : samples) {
    for (const SimOutcome* o :
         {&s.baseline, &s.unthrottled, &s.throttled, &s.adaptive}) {
      if (!o->conservation_ok) {
        std::fprintf(stderr, "FAIL: %s layered=%d: %s\n", s.scheme.c_str(),
                     s.layered ? 1 : 0, o->violation.c_str());
        ok = false;
      }
    }
    // Throttled and unthrottled storms deliver the same repair bytes --
    // pacing delays, never drops.
    if (s.throttled.repair_delivered_bytes != s.storm_bytes ||
        s.unthrottled.repair_delivered_bytes != s.storm_bytes) {
      std::fprintf(stderr, "FAIL: %s layered=%d: storm bytes not delivered\n",
                   s.scheme.c_str(), s.layered ? 1 : 0);
      ok = false;
    }
    // The adaptive throttler exploits idle headroom: never slower than the
    // fixed budget, for every configuration.
    if (s.adaptive.storm_makespan_s > s.throttled.storm_makespan_s) {
      std::fprintf(stderr,
                   "FAIL: %s layered=%d: adaptive makespan %.3f s exceeds "
                   "fixed %.3f s\n",
                   s.scheme.c_str(), s.layered ? 1 : 0,
                   s.adaptive.storm_makespan_s,
                   s.throttled.storm_makespan_s);
      ok = false;
    }
  }
  // The headline, per scheme: layered + throttled repair keeps p99 read
  // degradation under budget; the flat unthrottled storm blows it.
  for (const auto& spec : schemes) {
    const Sample* hero = nullptr;
    const Sample* villain = nullptr;
    for (const auto& s : samples) {
      if (s.scheme != spec) continue;
      if (s.layered) {
        hero = &s;
      } else {
        villain = &s;
      }
    }
    DBLREP_CHECK(hero != nullptr && villain != nullptr);
    const double hero_ratio =
        hero->throttled.p99_read_s / hero->baseline.p99_read_s;
    const double villain_ratio =
        villain->unthrottled.p99_read_s / villain->baseline.p99_read_s;
    if (hero_ratio > budget) {
      std::fprintf(stderr,
                   "FAIL: %s layered+throttled p99 degradation x%.2f over "
                   "budget x%.2f\n",
                   spec.c_str(), hero_ratio, budget);
      ok = false;
    }
    if (villain_ratio <= budget) {
      std::fprintf(stderr,
                   "FAIL: %s flat unthrottled p99 degradation x%.2f did not "
                   "exceed budget x%.2f (storm too weak to matter)\n",
                   spec.c_str(), villain_ratio, budget);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
