// Encoding/decoding/repair throughput of every scheme -- the "encoding
// duration" metric the paper lists as future work (Section 5), measured
// with google-benchmark.
//
// Reported as bytes/second of *data* processed (not stored bytes), so the
// schemes are directly comparable at equal logical input.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/bytes.h"
#include "ec/registry.h"

namespace {

using namespace dblrep;

std::vector<Buffer> make_data(const ec::CodeScheme& code,
                              std::size_t block_size) {
  std::vector<Buffer> data;
  for (std::size_t i = 0; i < code.data_blocks(); ++i) {
    data.push_back(random_buffer(block_size, i + 1));
  }
  return data;
}

void bench_encode(benchmark::State& state, const std::string& spec) {
  const auto code = ec::make_code(spec).value();
  const auto block_size = static_cast<std::size_t>(state.range(0));
  const auto data = make_data(*code, block_size);
  for (auto _ : state) {
    auto symbols = code->encode_symbols(data);
    benchmark::DoNotOptimize(symbols);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(code->data_blocks() * block_size));
}

void bench_decode_worst_case(benchmark::State& state, const std::string& spec) {
  // Decode with the maximum tolerated failures down: the hardest path
  // (Gaussian elimination for the GF codes, copies for replication).
  const auto code = ec::make_code(spec).value();
  const auto block_size = static_cast<std::size_t>(state.range(0));
  const auto data = make_data(*code, block_size);
  const auto slots = code->encode(data);
  std::set<ec::NodeIndex> failed;
  for (int i = 0; i < code->params().fault_tolerance; ++i) failed.insert(i);
  ec::SlotStore store;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!failed.contains(code->layout().node_of_slot(s))) store[s] = slots[s];
  }
  for (auto _ : state) {
    auto decoded = code->decode(store, block_size);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(code->data_blocks() * block_size));
}

void bench_degraded_read(benchmark::State& state, const std::string& spec) {
  // Execute the on-the-fly repair plan for a doubly-lost block.
  const auto code = ec::make_code(spec).value();
  const auto block_size = static_cast<std::size_t>(state.range(0));
  const auto data = make_data(*code, block_size);
  const auto slots = code->encode(data);
  // Fail the two holders of symbol 0.
  std::set<ec::NodeIndex> failed;
  for (std::size_t slot : code->layout().slots_of_symbol(0)) {
    failed.insert(code->layout().node_of_slot(slot));
  }
  const auto plan = code->plan_degraded_read(0, failed);
  ec::SlotStore store;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (!failed.contains(code->layout().node_of_slot(s))) store[s] = slots[s];
  }
  ec::PlanExecutor executor(code->layout());
  for (auto _ : state) {
    ec::SlotStore working = store;
    auto delivered = executor.execute(*plan, working);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
}

}  // namespace

// 64 KiB and 1 MiB blocks keep the suite fast while showing the asymptote.
BENCHMARK_CAPTURE(bench_encode, pentagon, "pentagon")->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_encode, heptagon, "heptagon")->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_encode, heptagon_local, "heptagon-local")
    ->Arg(64 << 10)
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_encode, raidm9, "raidm-9")->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_encode, rs_10_4, "rs-10-4")->Arg(64 << 10)->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_encode, rep3, "3-rep")->Arg(64 << 10)->Arg(1 << 20);

BENCHMARK_CAPTURE(bench_decode_worst_case, pentagon, "pentagon")->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_decode_worst_case, heptagon_local, "heptagon-local")
    ->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_decode_worst_case, rs_10_4, "rs-10-4")->Arg(1 << 20);

BENCHMARK_CAPTURE(bench_degraded_read, pentagon, "pentagon")->Arg(1 << 20);
BENCHMARK_CAPTURE(bench_degraded_read, raidm9, "raidm-9")->Arg(1 << 20);

BENCHMARK_MAIN();
