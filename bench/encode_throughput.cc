// Encode/decode/degraded-read throughput of every scheme, swept across all
// GF kernel backends -- the "encoding duration" metric the paper lists as
// future work (Section 5).
//
// Self-contained harness (no google-benchmark) so it can force each kernel
// in turn via gf::set_active_kernel and emit machine-readable JSON
// (BENCH_encode_throughput.json) with MB/s per scheme per kernel, plus the
// per-scheme speedup of each SIMD kernel over scalar. Future PRs track the
// perf trajectory from that file.
//
// Reported as bytes/second of *data* processed (not stored bytes), so the
// schemes are directly comparable at equal logical input.
//
// Usage: bench_encode_throughput [--block-size=BYTES] [--min-time=SECONDS]
//                                [--json=PATH]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "ec/stripe_codec.h"
#include "gf/kernel.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Sample {
  std::string scheme;
  std::string kernel;
  double encode_mb_s = 0;
  double decode_mb_s = 0;         // worst-case: max tolerated failures down
  double degraded_read_mb_s = 0;  // on-the-fly repair of a doubly-lost block
  double speedup_vs_scalar = 0;   // encode, filled once scalar is known
};

/// Runs `fn` repeatedly for at least `min_time` seconds (after one warmup
/// call) and returns MB/s given `bytes` of data processed per call.
template <typename Fn>
double measure_mb_s(double min_time, std::size_t bytes, Fn&& fn) {
  fn();  // warmup: tables, arena growth, page faults
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  return static_cast<double>(bytes) * static_cast<double>(iters) /
         (elapsed * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 1 << 20;
  double min_time = 0.2;
  std::string json_path = "BENCH_encode_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--min-time=", 0) == 0) {
        min_time = std::stod(arg.substr(11));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0) {
    std::fprintf(stderr, "--block-size must be positive\n");
    return 2;
  }

  const std::vector<std::string> specs = {"pentagon",       "heptagon",
                                          "heptagon-local", "raidm-9",
                                          "rs-10-4",        "3-rep"};

  std::vector<Sample> samples;
  std::map<std::string, double> scalar_mb_s;  // scheme -> scalar baseline

  for (const gf::GfKernel* kernel : gf::supported_kernels()) {
    DBLREP_CHECK(gf::set_active_kernel(kernel->name));
    std::fprintf(stderr, "== kernel %s ==\n", kernel->name);
    for (const auto& spec : specs) {
      const auto code = ec::make_code(spec).value();
      ec::StripeCodec codec(*code);
      const std::size_t data_bytes = code->data_blocks() * block_size;
      const Buffer data = random_buffer(data_bytes, 42);

      Sample sample;
      sample.scheme = spec;
      sample.kernel = kernel->name;
      if (code->parity_coeffs().empty()) {
        // Pure replication: the codec serves zero-copy views, so timing it
        // would measure bookkeeping, not the replica materialization the
        // write path actually pays. Measure the buffer-producing encoder.
        std::vector<Buffer> rep_blocks;
        for (std::size_t i = 0; i < code->data_blocks(); ++i) {
          rep_blocks.push_back(random_buffer(block_size, i + 1));
        }
        sample.encode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto symbols = code->encode_symbols(rep_blocks);
          volatile std::uint8_t sink =
              symbols.back().empty() ? std::uint8_t{0} : symbols.back().back();
          (void)sink;
        });
      } else {
        sample.encode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto symbols = codec.encode_stripe(data, block_size);
          // Touch the last parity byte so the encode cannot be elided.
          volatile std::uint8_t sink = symbols.back().empty()
                                           ? std::uint8_t{0}
                                           : symbols.back().back();
          (void)sink;
        });
      }

      // Worst-case decode: the maximum tolerated failures down (Gaussian
      // solve for the GF codes, replica copies for replication).
      std::vector<Buffer> blocks;
      for (std::size_t i = 0; i < code->data_blocks(); ++i) {
        blocks.push_back(random_buffer(block_size, i + 1));
      }
      const auto slots = code->encode(blocks);
      {
        std::set<ec::NodeIndex> failed;
        for (int i = 0; i < code->params().fault_tolerance; ++i) {
          failed.insert(i);
        }
        ec::SlotStore store;
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (!failed.contains(code->layout().node_of_slot(s))) {
            store[s] = slots[s];
          }
        }
        sample.decode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto decoded = code->decode(store, block_size);
          volatile bool ok = decoded.is_ok();
          (void)ok;
        });
      }

      // Degraded read of a doubly-lost block through the plan executor.
      {
        std::set<ec::NodeIndex> failed;
        for (std::size_t slot : code->layout().slots_of_symbol(0)) {
          failed.insert(code->layout().node_of_slot(slot));
        }
        const auto plan = code->plan_degraded_read(0, failed);
        // Losing every holder of a symbol exceeds some schemes' tolerance
        // (plain replication); those report 0 and are skipped.
        if (plan.is_ok()) {
          ec::SlotStore store;
          for (std::size_t s = 0; s < slots.size(); ++s) {
            if (!failed.contains(code->layout().node_of_slot(s))) {
              store[s] = slots[s];
            }
          }
          ec::PlanExecutor executor(code->layout());
          sample.degraded_read_mb_s = measure_mb_s(min_time, block_size, [&] {
            auto delivered = executor.execute(*plan, store);
            volatile bool ok = delivered.is_ok();
            (void)ok;
          });
        }
      }
      if (std::string_view(kernel->name) == "scalar") {
        scalar_mb_s[spec] = sample.encode_mb_s;
      }
      const auto base = scalar_mb_s.find(spec);
      sample.speedup_vs_scalar =
          base == scalar_mb_s.end() || base->second == 0
              ? 0
              : sample.encode_mb_s / base->second;
      std::fprintf(stderr,
                   "  %-16s encode %10.1f MB/s (%.2fx scalar)  decode %10.1f "
                   "MB/s  degraded-read %8.1f MB/s\n",
                   spec.c_str(), sample.encode_mb_s, sample.speedup_vs_scalar,
                   sample.decode_mb_s, sample.degraded_read_mb_s);
      samples.push_back(std::move(sample));
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"encode_throughput\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"min_time_s\": " << min_time << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme << "\", \"kernel\": \""
         << s.kernel << "\", \"encode_mb_per_s\": " << s.encode_mb_s
         << ", \"decode_mb_per_s\": " << s.decode_mb_s
         << ", \"degraded_read_mb_per_s\": " << s.degraded_read_mb_s
         << ", \"speedup_vs_scalar\": " << s.speedup_vs_scalar << "}"
         << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}
