// Encode/decode/degraded-read throughput of every scheme, swept across all
// GF kernel backends -- the "encoding duration" metric the paper lists as
// future work (Section 5).
//
// Self-contained harness (no google-benchmark) so it can force each kernel
// in turn via gf::set_active_kernel and emit machine-readable JSON
// (BENCH_encode_throughput.json) with MB/s per scheme per kernel, plus the
// per-scheme speedup of each SIMD kernel over scalar. Future PRs track the
// perf trajectory from that file.
//
// Reported as bytes/second of *data* processed (not stored bytes), so the
// schemes are directly comparable at equal logical input.
//
// Two gates make the numbers falsifiable instead of merely logged:
//
//  * Roofline: the harness measures this host's memcpy bandwidth (and the
//    streaming-store copy rate) on an LLC-busting buffer, records every
//    scheme's encode rate as a fraction of that roof, and fails unless
//    each scheme's best kernel clears a stated minimum fraction. The
//    default fraction is deliberately conservative (shared CI runners),
//    tightened via --roof-gate=F.
//  * Non-temporal win: for coefficient-1-only schemes (parity is pure
//    XOR), the modeled memory traffic (gf::slice_op_stats -- a regular
//    store costs a read-for-ownership, a streaming store does not) must
//    strictly shrink with the NT path enabled on at least one kernel that
//    implements it. The model is deterministic, so this gate cannot flake
//    on a noisy runner, yet it fails immediately if the fold path stops
//    routing large slices through streaming stores.
//
// Usage: bench_encode_throughput [--block-size=BYTES] [--min-time=SECONDS]
//                                [--json=PATH] [--roof-gate=FRACTION]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "ec/stripe_codec.h"
#include "gf/gf256.h"
#include "gf/kernel.h"

namespace {

using namespace dblrep;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Sample {
  std::string scheme;
  std::string kernel;
  double encode_mb_s = 0;
  double decode_mb_s = 0;         // worst-case: max tolerated failures down
  double degraded_read_mb_s = 0;  // on-the-fly repair of a doubly-lost block
  double speedup_vs_scalar = 0;   // encode, filled once scalar is known
  double roof_fraction = 0;       // encode_mb_s / memcpy roof
  bool xor_only = false;          // every parity coefficient is 0 or 1
  bool nt_capable = false;        // kernel implements streaming stores
  // Modeled memory traffic of one stripe encode (see gf::SliceOpStats),
  // with the non-temporal path off and on. Only for xor_only schemes on
  // nt_capable kernels with block_size >= gf::kNonTemporalMinBytes.
  std::uint64_t bytes_moved_regular = 0;
  std::uint64_t bytes_moved_nt = 0;
};

/// Kernels whose xor_fold_slice honors the non-temporal hint (scalar and
/// ssse3 document it as ignored).
bool kernel_streams(std::string_view name) {
  return name == "avx2" || name == "avx512" || name == "gfni";
}

struct Roofline {
  double memcpy_mb_s = 0;  // std::memcpy, LLC-busting buffer
  double stream_mb_s = 0;  // single-source xor fold, NT stores (best kernel)
};

/// Runs `fn` repeatedly for at least `min_time` seconds (after one warmup
/// call) and returns MB/s given `bytes` of data processed per call.
template <typename Fn>
double measure_mb_s(double min_time, std::size_t bytes, Fn&& fn) {
  fn();  // warmup: tables, arena growth, page faults
  std::size_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    fn();
    ++iters;
    elapsed = seconds_since(start);
  } while (elapsed < min_time);
  return static_cast<double>(bytes) * static_cast<double>(iters) /
         (elapsed * 1e6);
}

/// Measures the host's copy bandwidth on a buffer large enough to defeat
/// the LLC, so the encode fractions below are against a memory roof, not a
/// cache roof. The stream rate uses the best kernel's single-source xor
/// fold with streaming stores forced on -- the rate the NT parity path is
/// ultimately bounded by.
Roofline measure_roofline(double min_time) {
  constexpr std::size_t kRoofBytes = 64 << 20;
  const Buffer src = random_buffer(kRoofBytes, 3);
  Buffer dst(kRoofBytes);
  Roofline roof;
  roof.memcpy_mb_s = measure_mb_s(min_time, kRoofBytes, [&] {
    std::memcpy(dst.data(), src.data(), kRoofBytes);
    volatile std::uint8_t sink = dst.back();
    (void)sink;
  });

  const gf::GfKernel* best = gf::supported_kernels().back();
  DBLREP_CHECK(gf::set_active_kernel(best->name));
  const bool nt_was_enabled = gf::non_temporal_enabled();
  gf::set_non_temporal(true);
  const std::vector<ByteSpan> one_source = {ByteSpan(src)};
  roof.stream_mb_s = measure_mb_s(min_time, kRoofBytes, [&] {
    gf::xor_fold_slice(dst, one_source, /*non_temporal=*/true);
    volatile std::uint8_t sink = dst.back();
    (void)sink;
  });
  gf::set_non_temporal(nt_was_enabled);
  return roof;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 1 << 20;
  double min_time = 0.2;
  double roof_gate = -1;  // <0: resolved from the supported kernel set
  std::string json_path = "BENCH_encode_throughput.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--min-time=", 0) == 0) {
        min_time = std::stod(arg.substr(11));
      } else if (arg.rfind("--roof-gate=", 0) == 0) {
        roof_gate = std::stod(arg.substr(12));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0) {
    std::fprintf(stderr, "--block-size must be positive\n");
    return 2;
  }

  const std::vector<std::string> specs = {"pentagon",       "heptagon",
                                          "heptagon-local", "raidm-9",
                                          "rs-10-4",        "3-rep"};

  // Resolve the roof gate: a scalar-only host encodes an order of
  // magnitude slower relative to its copy bandwidth than a SIMD one, so
  // the default stated fraction depends on the best supported kernel.
  const bool simd_available = gf::supported_kernels().size() > 1;
  if (roof_gate < 0) roof_gate = simd_available ? 0.02 : 0.002;

  const Roofline roof = measure_roofline(min_time);
  std::fprintf(stderr,
               "roofline: memcpy %.1f MB/s  nt-stream copy %.1f MB/s  "
               "(encode gate: best kernel >= %.3f of memcpy roof)\n",
               roof.memcpy_mb_s, roof.stream_mb_s, roof_gate);

  std::vector<Sample> samples;
  std::map<std::string, double> scalar_mb_s;  // scheme -> scalar baseline

  for (const gf::GfKernel* kernel : gf::supported_kernels()) {
    DBLREP_CHECK(gf::set_active_kernel(kernel->name));
    std::fprintf(stderr, "== kernel %s ==\n", kernel->name);
    for (const auto& spec : specs) {
      const auto code = ec::make_code(spec).value();
      ec::StripeCodec codec(*code);
      const std::size_t data_bytes = code->data_blocks() * block_size;
      const Buffer data = random_buffer(data_bytes, 42);

      Sample sample;
      sample.scheme = spec;
      sample.kernel = kernel->name;
      if (code->parity_coeffs().empty()) {
        // Pure replication: the codec serves zero-copy views, so timing it
        // would measure bookkeeping, not the replica materialization the
        // write path actually pays. Measure the buffer-producing encoder.
        std::vector<Buffer> rep_blocks;
        for (std::size_t i = 0; i < code->data_blocks(); ++i) {
          rep_blocks.push_back(random_buffer(block_size, i + 1));
        }
        sample.encode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto symbols = code->encode_symbols(rep_blocks);
          volatile std::uint8_t sink =
              symbols.back().empty() ? std::uint8_t{0} : symbols.back().back();
          (void)sink;
        });
      } else {
        sample.encode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto symbols = codec.encode_stripe(data, block_size);
          // Touch the last parity byte so the encode cannot be elided.
          volatile std::uint8_t sink = symbols.back().empty()
                                           ? std::uint8_t{0}
                                           : symbols.back().back();
          (void)sink;
        });
      }

      sample.roof_fraction =
          roof.memcpy_mb_s > 0 ? sample.encode_mb_s / roof.memcpy_mb_s : 0;
      sample.nt_capable = kernel_streams(kernel->name);
      {
        const auto coeffs = code->parity_coeffs();
        sample.xor_only = !coeffs.empty() &&
                          std::all_of(coeffs.begin(), coeffs.end(),
                                      [](gf::Elem c) { return c <= 1; });
      }
      if (sample.xor_only && sample.nt_capable &&
          block_size >= gf::kNonTemporalMinBytes) {
        // Deterministic A/B of the modeled memory traffic: one encode with
        // regular stores (each parity write pays a read-for-ownership) and
        // one with streaming stores (it does not). Not a timing -- the
        // gate below wants a strict, noise-free bytes-moved win.
        const bool nt_was_enabled = gf::non_temporal_enabled();
        const auto bytes_moved_once = [&](bool nt) {
          gf::set_non_temporal(nt);
          gf::reset_slice_op_stats();
          (void)codec.encode_stripe(data, block_size);
          return gf::slice_op_stats().total_bytes_moved();
        };
        sample.bytes_moved_regular = bytes_moved_once(false);
        sample.bytes_moved_nt = bytes_moved_once(true);
        gf::set_non_temporal(nt_was_enabled);
      }

      // Worst-case decode: the maximum tolerated failures down (Gaussian
      // solve for the GF codes, replica copies for replication).
      std::vector<Buffer> blocks;
      for (std::size_t i = 0; i < code->data_blocks(); ++i) {
        blocks.push_back(random_buffer(block_size, i + 1));
      }
      const auto slots = code->encode(blocks);
      {
        std::set<ec::NodeIndex> failed;
        for (int i = 0; i < code->params().fault_tolerance; ++i) {
          failed.insert(i);
        }
        ec::SlotStore store;
        for (std::size_t s = 0; s < slots.size(); ++s) {
          if (!failed.contains(code->layout().node_of_slot(s))) {
            store[s] = slots[s];
          }
        }
        sample.decode_mb_s = measure_mb_s(min_time, data_bytes, [&] {
          auto decoded = code->decode(store, block_size);
          volatile bool ok = decoded.is_ok();
          (void)ok;
        });
      }

      // Degraded read of a doubly-lost block through the plan executor.
      {
        std::set<ec::NodeIndex> failed;
        for (std::size_t slot : code->layout().slots_of_symbol(0)) {
          failed.insert(code->layout().node_of_slot(slot));
        }
        const auto plan = code->plan_degraded_read(0, failed);
        // Losing every holder of a symbol exceeds some schemes' tolerance
        // (plain replication); those report 0 and are skipped.
        if (plan.is_ok()) {
          ec::SlotStore store;
          for (std::size_t s = 0; s < slots.size(); ++s) {
            if (!failed.contains(code->layout().node_of_slot(s))) {
              store[s] = slots[s];
            }
          }
          ec::PlanExecutor executor(code->layout());
          sample.degraded_read_mb_s = measure_mb_s(min_time, block_size, [&] {
            auto delivered = executor.execute(*plan, store);
            volatile bool ok = delivered.is_ok();
            (void)ok;
          });
        }
      }
      if (std::string_view(kernel->name) == "scalar") {
        scalar_mb_s[spec] = sample.encode_mb_s;
      }
      const auto base = scalar_mb_s.find(spec);
      sample.speedup_vs_scalar =
          base == scalar_mb_s.end() || base->second == 0
              ? 0
              : sample.encode_mb_s / base->second;
      std::fprintf(stderr,
                   "  %-16s encode %10.1f MB/s (%.2fx scalar)  decode %10.1f "
                   "MB/s  degraded-read %8.1f MB/s\n",
                   spec.c_str(), sample.encode_mb_s, sample.speedup_vs_scalar,
                   sample.decode_mb_s, sample.degraded_read_mb_s);
      samples.push_back(std::move(sample));
    }
  }

  // ---- gates ----------------------------------------------------------
  // Roofline: every scheme's best kernel must clear the stated fraction of
  // this host's memcpy bandwidth.
  bool roof_gate_ok = true;
  std::map<std::string, double> best_fraction;
  for (const auto& s : samples) {
    best_fraction[s.scheme] = std::max(best_fraction[s.scheme],
                                       s.roof_fraction);
  }
  for (const auto& [scheme, fraction] : best_fraction) {
    if (fraction < roof_gate) {
      roof_gate_ok = false;
      std::fprintf(stderr,
                   "ROOF GATE FAIL: %s best encode is %.4f of memcpy roof "
                   "(< %.4f)\n",
                   scheme.c_str(), fraction, roof_gate);
    }
  }

  // Non-temporal win: some xor-only scheme on some streaming-capable
  // kernel must model strictly fewer bytes moved with NT on. Skipped (not
  // failed) when the sweep produced no eligible sample -- a scalar-only
  // host or a sub-threshold block size cannot exercise the NT path.
  bool nt_gate_applicable = false;
  bool nt_gate_ok = false;
  for (const auto& s : samples) {
    if (s.bytes_moved_regular == 0) continue;
    nt_gate_applicable = true;
    if (s.bytes_moved_nt < s.bytes_moved_regular) nt_gate_ok = true;
  }
  if (nt_gate_applicable && !nt_gate_ok) {
    std::fprintf(stderr,
                 "NT GATE FAIL: no xor-only scheme moved strictly fewer "
                 "modeled bytes with streaming stores enabled\n");
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"encode_throughput\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"min_time_s\": " << min_time << ",\n"
       << "  \"roofline\": {\"memcpy_mb_per_s\": " << roof.memcpy_mb_s
       << ", \"stream_copy_mb_per_s\": " << roof.stream_mb_s
       << ", \"encode_gate_fraction\": " << roof_gate
       << ", \"gate_ok\": " << (roof_gate_ok ? "true" : "false") << "},\n"
       << "  \"nt_bytes_moved_gate\": {\"applicable\": "
       << (nt_gate_applicable ? "true" : "false")
       << ", \"gate_ok\": "
       << (!nt_gate_applicable || nt_gate_ok ? "true" : "false") << "},\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    json << "    {\"scheme\": \"" << s.scheme << "\", \"kernel\": \""
         << s.kernel << "\", \"encode_mb_per_s\": " << s.encode_mb_s
         << ", \"decode_mb_per_s\": " << s.decode_mb_s
         << ", \"degraded_read_mb_per_s\": " << s.degraded_read_mb_s
         << ", \"speedup_vs_scalar\": " << s.speedup_vs_scalar
         << ", \"roof_fraction\": " << s.roof_fraction
         << ", \"xor_only\": " << (s.xor_only ? "true" : "false");
    if (s.bytes_moved_regular > 0) {
      json << ", \"bytes_moved_regular\": " << s.bytes_moved_regular
           << ", \"bytes_moved_nt\": " << s.bytes_moved_nt;
    }
    json << "}" << (i + 1 == samples.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  if (!roof_gate_ok || (nt_gate_applicable && !nt_gate_ok)) return 1;
  return 0;
}
