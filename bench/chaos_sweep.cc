// Deterministic chaos sweep: schemes x fault mixes x seeds, every scenario
// a fully seeded fault-injection run with the cluster-wide invariant
// checkers on. Emits BENCH_chaos_sweep.json.
//
// This is the scaffolding the acceptance bar leans on: hundreds of seeded
// scenarios per CI run (thousands nightly) instead of the three hand-
// picked failure patterns the suite started with. Gated at exit:
//
//  * zero invariant violations across every scenario;
//  * replaying a sample seed per combination reproduces the identical
//    event trace and final cluster state, byte for byte;
//  * layered and unlayered repair stay byte-equivalent per scheme (same
//    totals, cross-rack never higher layered).
//
// Failing seeds are dumped (trace + greedily minimized event list) to
// --failures-dir for artifact upload; chaos_replay reproduces any of them
// from the seed alone.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_rack_layering. Runs on the inline pool: deterministic per seed.
//
// Usage: chaos_sweep [--seeds=N] [--schemes=CSV] [--mixes=CSV]
//                    [--horizon=SECONDS] [--check-every=N]
//                    [--replay-check=N] [--layering-check=N]
//                    [--failures-dir=PATH] [--json=PATH]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "common/check.h"
#include "ec/registry.h"

namespace {

using namespace dblrep;

struct ComboStats {
  std::string scheme;
  std::string mix;
  std::size_t seeds = 0;
  std::size_t events = 0;
  std::size_t violations = 0;
  std::size_t repair_attempts = 0;
  std::size_t repair_successes = 0;
  std::size_t reads = 0;
  std::size_t read_errors = 0;
  std::size_t writes = 0;
  std::size_t write_errors = 0;
  RunningStat degraded_read_us;
  double traffic_total_bytes = 0;
  double traffic_cross_rack_bytes = 0;
};

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Topology sized for the scheme: three racks, enough headroom that the
/// cluster can keep placing stripes under a handful of failures.
cluster::Topology topology_for(const ec::CodeScheme& code) {
  cluster::Topology topology;
  topology.num_racks = 3;
  const std::size_t want = code.num_nodes() + 6;
  topology.num_nodes = std::max<std::size_t>(21, ((want + 2) / 3) * 3);
  return topology;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 5;
  std::vector<std::string> schemes = ec::paper_code_specs();
  schemes.push_back("rs-10-4");
  // Sub-packetized repair under chaos: the Clay MSR point and the
  // piggybacked equal-overhead point ride the same fault mixes.
  schemes.push_back("clay-6-4");
  schemes.push_back("pgy-10-4");
  std::vector<std::string> mix_names;
  for (const auto& mix : chaos::FaultMix::presets()) {
    mix_names.push_back(mix.name);
  }
  double horizon_s = 24.0;
  std::size_t check_every = 1;
  std::size_t replay_check = 1;    // seeds per combo re-run for determinism
  std::size_t layering_check = 1;  // seeds per scheme for layered twins
  std::string failures_dir;
  std::string json_path = "BENCH_chaos_sweep.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--seeds=", 0) == 0) {
        seeds = std::stoull(arg.substr(8));
      } else if (arg.rfind("--schemes=", 0) == 0) {
        schemes = split_csv(arg.substr(10));
      } else if (arg.rfind("--mixes=", 0) == 0) {
        mix_names = split_csv(arg.substr(8));
      } else if (arg.rfind("--horizon=", 0) == 0) {
        horizon_s = std::stod(arg.substr(10));
      } else if (arg.rfind("--check-every=", 0) == 0) {
        check_every = std::stoull(arg.substr(14));
      } else if (arg.rfind("--replay-check=", 0) == 0) {
        replay_check = std::stoull(arg.substr(15));
      } else if (arg.rfind("--layering-check=", 0) == 0) {
        layering_check = std::stoull(arg.substr(17));
      } else if (arg.rfind("--failures-dir=", 0) == 0) {
        failures_dir = arg.substr(15);
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (seeds == 0 || schemes.empty() || mix_names.empty()) {
    std::fprintf(stderr, "--seeds, --schemes, --mixes must be non-empty\n");
    return 2;
  }
  if (!failures_dir.empty()) {
    std::filesystem::create_directories(failures_dir);
  }

  std::vector<ComboStats> combos;
  std::size_t scenarios = 0;
  std::size_t total_violations = 0;
  bool replay_ok = true;
  bool layering_ok = true;

  const auto dump_failure = [&](const chaos::ChaosHarness& harness,
                                const chaos::ChaosReport& report,
                                const std::string& scheme,
                                const std::string& mix) {
    if (failures_dir.empty()) return;
    std::ostringstream name;
    name << failures_dir << "/seed_" << report.seed << "_" << scheme << "_"
         << mix << ".txt";
    std::ofstream out(name.str());
    out << "scheme=" << scheme << " mix=" << mix << "\n"
        << report.trace_to_string();
    if (!report.minimized.empty()) {
      out << "minimized to " << report.minimized.size() << " events:\n";
      for (const auto& event : report.minimized) {
        out << "  " << event.to_string() << "\n";
      }
      // Sanity: the minimized schedule must still violate.
      const auto replay = harness.run_schedule(report.seed, report.minimized);
      out << "minimized replay violations: " << replay.violations.size()
          << "\n";
    }
  };

  for (const auto& spec : schemes) {
    const auto code = ec::make_code(spec);
    DBLREP_CHECK_MSG(code.is_ok(), code.status().to_string());

    for (const auto& mix_name : mix_names) {
      const auto mix = chaos::FaultMix::preset(mix_name);
      DBLREP_CHECK_MSG(mix.is_ok(), mix.status().to_string());

      chaos::ChaosConfig config;
      config.topology = topology_for(**code);
      config.code_spec = spec;
      config.mix = *mix;
      config.horizon_s = horizon_s;
      config.check_every = check_every;
      config.minimize_on_violation = true;
      const chaos::ChaosHarness harness(config);
      // Replay-identity re-runs skip minimization: a violating seed has
      // already been minimized once by `harness`; the twin run only needs
      // the trace.
      chaos::ChaosConfig replay_config = config;
      replay_config.minimize_on_violation = false;
      const chaos::ChaosHarness replay_harness(replay_config);

      ComboStats stats;
      stats.scheme = spec;
      stats.mix = mix_name;

      for (std::size_t s = 0; s < seeds; ++s) {
        // Distinct seeds per combo so no two scenarios share a schedule.
        const std::uint64_t seed =
            1 + s + 1000 * (combos.size() + 1);
        const chaos::ChaosReport report = harness.run_seed(seed);
        ++scenarios;
        ++stats.seeds;
        stats.events += report.trace.size();
        stats.violations += report.violations.size();
        stats.repair_attempts += report.repair_attempts;
        stats.repair_successes += report.repair_successes;
        stats.reads += report.reads;
        stats.read_errors += report.read_errors;
        stats.writes += report.writes;
        stats.write_errors += report.write_errors;
        stats.degraded_read_us.merge(report.degraded_read_us);
        stats.traffic_total_bytes += report.traffic_total_bytes;
        stats.traffic_cross_rack_bytes += report.traffic_cross_rack_bytes;

        if (!report.ok()) {
          total_violations += report.violations.size();
          std::fprintf(stderr, "VIOLATION scheme=%s mix=%s seed=%llu:\n",
                       spec.c_str(), mix_name.c_str(),
                       static_cast<unsigned long long>(seed));
          for (const auto& violation : report.violations) {
            std::fprintf(stderr, "  %s\n", violation.c_str());
          }
          dump_failure(harness, report, spec, mix_name);
        }

        // Replay determinism gate on the first seeds of each combo.
        if (s < replay_check) {
          const chaos::ChaosReport again = replay_harness.run_seed(seed);
          if (again.trace != report.trace ||
              again.final_fingerprint != report.final_fingerprint) {
            replay_ok = false;
            std::fprintf(stderr,
                         "REPLAY DIVERGED scheme=%s mix=%s seed=%llu\n",
                         spec.c_str(), mix_name.c_str(),
                         static_cast<unsigned long long>(seed));
          }
        }
      }
      std::fprintf(
          stderr,
          "%-15s %-16s seeds=%zu events=%zu violations=%zu repairs=%zu/%zu "
          "degraded_reads=%zu\n",
          spec.c_str(), mix_name.c_str(), stats.seeds, stats.events,
          stats.violations, stats.repair_successes, stats.repair_attempts,
          stats.degraded_read_us.count());
      combos.push_back(stats);
    }

    // Layered-vs-unlayered equivalence twins, once per scheme.
    chaos::ChaosConfig config;
    config.topology = topology_for(**code);
    config.code_spec = spec;
    config.mix = chaos::FaultMix::mixed();
    config.horizon_s = horizon_s;
    config.check_every = check_every;
    for (std::size_t s = 0; s < layering_check; ++s) {
      const auto violations =
          chaos::check_layering_equivalence(config, 77 + s);
      for (const auto& violation : violations) {
        layering_ok = false;
        std::fprintf(stderr, "LAYERING scheme=%s seed=%llu: %s\n",
                     spec.c_str(), static_cast<unsigned long long>(77 + s),
                     violation.c_str());
      }
    }
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"chaos_sweep\",\n"
       << "  \"scenarios\": " << scenarios << ",\n"
       << "  \"horizon_s\": " << horizon_s << ",\n"
       << "  \"total_violations\": " << total_violations << ",\n"
       << "  \"replay_deterministic\": " << (replay_ok ? "true" : "false")
       << ",\n"
       << "  \"layering_equivalent\": " << (layering_ok ? "true" : "false")
       << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < combos.size(); ++i) {
    const ComboStats& s = combos[i];
    const double rate =
        s.repair_attempts == 0
            ? 1.0
            : static_cast<double>(s.repair_successes) /
                  static_cast<double>(s.repair_attempts);
    json << "    {\"scheme\": \"" << s.scheme << "\", \"mix\": \"" << s.mix
         << "\", \"seeds\": " << s.seeds << ", \"events\": " << s.events
         << ", \"violations\": " << s.violations
         << ", \"repair_attempts\": " << s.repair_attempts
         << ", \"repair_success_rate\": " << rate
         << ", \"reads\": " << s.reads
         << ", \"read_errors\": " << s.read_errors
         << ", \"writes\": " << s.writes
         << ", \"write_errors\": " << s.write_errors
         << ", \"degraded_reads\": " << s.degraded_read_us.count()
         << ", \"degraded_read_mean_us\": "
         << (s.degraded_read_us.count() > 0 ? s.degraded_read_us.mean() : 0)
         << ", \"degraded_read_max_us\": "
         << (s.degraded_read_us.count() > 0 ? s.degraded_read_us.max() : 0)
         << ", \"traffic_total_bytes\": " << s.traffic_total_bytes
         << ", \"traffic_cross_rack_bytes\": " << s.traffic_cross_rack_bytes
         << "}" << (i + 1 == combos.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s (%zu scenarios)\n", json_path.c_str(),
               scenarios);

  // ---- acceptance gates --------------------------------------------------
  bool ok = true;
  if (total_violations != 0) {
    std::fprintf(stderr, "FAIL: %zu invariant violations\n",
                 total_violations);
    ok = false;
  }
  if (!replay_ok) {
    std::fprintf(stderr, "FAIL: seed replay diverged\n");
    ok = false;
  }
  if (!layering_ok) {
    std::fprintf(stderr, "FAIL: layered repair not equivalent\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
