// Reproduces Table 1: storage overhead, code length, and MTTDL (25-node
// system) for 3-rep, pentagon, heptagon, heptagon-local, (10,9) RAID+m and
// (12,11) RAID+m, side by side with the paper's published values.
//
// Usage: table1_metrics [--csv]
//
// Model: exact per-placement-group absorbing CTMC (node MTBF 10 years,
// node MTTR 1 hour, parallel repair, rank-oracle fatality), system MTTDL =
// group MTTDL / number of disjoint groups in 25 nodes. See
// docs/paper_map.md for calibration and the tier-3 discussion.
#include <iostream>
#include <string>

#include "common/table.h"
#include "ec/registry.h"
#include "reliability/markov.h"

namespace {

struct PaperRow {
  const char* spec;
  const char* paper_name;
  double paper_mttdl_years;
};

constexpr PaperRow kPaperRows[] = {
    {"3-rep", "3-rep", 1.20e9},
    {"pentagon", "pentagon", 1.05e8},
    {"heptagon", "heptagon", 2.68e7},
    {"heptagon-local", "heptagon-local", 8.34e9},
    {"raidm-9", "(10,9) RAID+m", 2.03e9},
    {"raidm-11", "(12,11) RAID+m", 6.50e8},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dblrep;
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  rel::ReliabilityParams params;  // documented defaults
  TextTable table({"Code", "Storage Overhead", "Code Length",
                   "MTTDL (yrs, paper)", "MTTDL (yrs, ours)", "states"});
  for (const auto& row : kPaperRows) {
    const auto code = ec::make_code(row.spec).value();
    const rel::GroupMarkovModel model(*code, params);
    table.add_row({row.paper_name,
                   fmt_double(code->params().storage_overhead(), 2) + "x",
                   std::to_string(code->params().num_nodes),
                   fmt_sci(row.paper_mttdl_years),
                   fmt_sci(model.mttdl_system_years()),
                   std::to_string(model.num_states())});
  }

  std::cout << "Table 1: storage overhead, code length and MTTDL of the\n"
               "coding schemes (25-node system; node MTBF "
            << params.node_mtbf_hours / 8766.0 << " y, MTTR "
            << params.node_mttr_hours << " h)\n\n";
  if (csv) {
    std::cout << table.to_csv();
  } else {
    std::cout << table.to_string();
  }
  std::cout << "\nNotes:\n"
               "  * overhead and code length columns match the paper "
               "exactly (structural).\n"
               "  * MTTDL: tier-2 ordering (heptagon < pentagon < 3-rep) and\n"
               "    raidm-11 < raidm-9 reproduce the paper; the exact chain\n"
               "    credits parity recovery fully, so 3-failure-tolerant\n"
               "    codes land higher than the paper's model (see "
               "docs/paper_map.md).\n";
  return 0;
}
