// Reproduces Fig. 4: Terasort on set-up 1 (25 data nodes, 2 map + 1 reduce
// slots, 128 MB blocks): job time, network traffic (GB) and data locality
// vs load for 3-rep / 2-rep / pentagon / heptagon, with Hadoop's delay
// scheduler for map-task assignment.
//
// Usage: fig4_setup1 [--csv] [--trials N] [--degraded]
//   --degraded additionally runs the paper's future-work scenario (two
//   failed nodes; on-the-fly repairs with partial parities).
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "ec/registry.h"
#include "mapred/terasort_sim.h"

namespace {

using namespace dblrep;

int parse_trials(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::stoi(argv[i + 1]);
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

void run_panel(const std::vector<std::string>& codes,
               const std::vector<double>& loads, mapred::JobConfig config,
               bool csv) {
  TextTable time_table({"Load (%)", "3-rep", "2-rep", "pentagon", "heptagon"});
  TextTable traffic_table(
      {"Load (%)", "3-rep", "2-rep", "pentagon", "heptagon"});
  TextTable locality_table(
      {"Load (%)", "3-rep", "2-rep", "pentagon", "heptagon"});

  std::vector<std::vector<mapred::JobMetrics>> grid;
  for (const auto& spec : codes) {
    const auto code = ec::make_code(spec).value();
    std::vector<mapred::JobMetrics> row;
    for (double load : loads) {
      sched::DelayScheduler scheduler;
      config.load = load;
      row.push_back(mapred::run_terasort(*code, scheduler, config));
    }
    grid.push_back(row);
  }
  for (std::size_t i = 0; i < loads.size(); ++i) {
    std::vector<std::string> t{fmt_double(loads[i] * 100, 0)};
    std::vector<std::string> g{fmt_double(loads[i] * 100, 0)};
    std::vector<std::string> l{fmt_double(loads[i] * 100, 0)};
    for (std::size_t c = 0; c < codes.size(); ++c) {
      t.push_back(fmt_double(grid[c][i].job_seconds, 1) + " s");
      g.push_back(fmt_double(grid[c][i].map_input_traffic_bytes / 1e9, 2) +
                  " GB");
      l.push_back(fmt_pct(grid[c][i].locality));
    }
    time_table.add_row(t);
    traffic_table.add_row(g);
    locality_table.add_row(l);
  }
  std::cout << "\nJob time:\n"
            << (csv ? time_table.to_csv() : time_table.to_string());
  std::cout << "\nNetwork traffic (map-input bytes crossing the network):\n"
            << (csv ? traffic_table.to_csv() : traffic_table.to_string());
  std::cout << "\nData locality:\n"
            << (csv ? locality_table.to_csv() : locality_table.to_string());
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const int trials = parse_trials(argc, argv, 10);

  const std::vector<std::string> codes = {"3-rep", "2-rep", "pentagon",
                                          "heptagon"};
  const std::vector<double> loads = {0.50, 0.75, 1.00};

  mapred::JobConfig config = mapred::setup1_config();
  config.trials = trials;

  std::cout << "Fig. 4: Terasort on set-up 1 (25 nodes, 2 map slots, 128 MB "
               "blocks), delay scheduling, "
            << trials << " trials per point\n";
  run_panel(codes, loads, config, csv);

  if (has_flag(argc, argv, "--degraded")) {
    std::cout << "\n== Degraded mode (nodes 3 and 7 down; Section 5 "
                 "future-work scenario) ==\n";
    config.down_nodes = {3, 7};
    run_panel(codes, loads, config, csv);
  }

  std::cout << "\nExpected shapes (paper): 2-rep tracks 3-rep at moderate\n"
               "load; pentagon/heptagon lose locality and pay traffic in\n"
               "proportion; job-time penalty is clear with only 2 map slots\n"
               "(values in the ~70-110 s band).\n";
  return 0;
}
