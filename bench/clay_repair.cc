// Sub-packetized repair frontier: the repair bytes the Clay-style MSR
// scheme and the piggybacked RS scheme move for a single node failure,
// against the plain RS baseline at *equal storage overhead* -- the
// comparison the paper's Table 2 makes for codes without inherent
// replication. Emits BENCH_clay_repair.json.
//
// Gates (asserted at exit, mirroring the PR acceptance bar):
//  * clay-6-4 worst-case single-node repair bytes strictly below rs-4-2
//    (both 1.5x overhead): 20 sub-chunks = 2.5 blocks vs 4 blocks;
//  * pgy-10-4 worst-case *data*-node repair bytes strictly below rs-10-4
//    (both 1.4x overhead): at most 14 half-blocks = 7 blocks vs 10;
//  * exact accounting: the bytes the MiniDfs wire actually moves for a
//    node repair equal the plan's network_bytes() sum to the byte;
//  * beta * helpers exactness for clay: every one of the d = 5 helpers
//    ships exactly beta = 4 sub-chunks, for every failed node;
//  * baselines pinned: rs-4-2 repairs at 4 blocks, rs-10-4 at 10.
//
// Self-contained harness (no google-benchmark), same pattern as
// bench_rack_layering; runs on the inline pool so every number is a
// deterministic function of the seed.
//
// Usage: clay_repair [--block-size=BYTES] [--stripes=N] [--json=PATH]
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "cluster/topology.h"
#include "common/bytes.h"
#include "common/check.h"
#include "ec/registry.h"
#include "hdfs/minidfs.h"

namespace {

using namespace dblrep;

struct Sample {
  std::string scheme;
  std::size_t alpha = 1;
  double overhead = 0;
  // Plan-level single-node repair cost across all failed-node choices.
  std::size_t repair_units_min = 0;
  std::size_t repair_units_max = 0;
  double repair_bytes_min = 0;
  double repair_bytes_max = 0;
  std::size_t data_repair_units_max = 0;  // failed node in [0, k)
  // End-to-end node repair on the MiniDfs wire.
  double e2e_measured_bytes = 0;
  double e2e_planned_bytes = 0;
  bool e2e_exact = false;
  bool e2e_restored = false;
  bool stored_overhead_exact = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t block_size = 4096;
  std::size_t stripes = 4;
  std::string json_path = "BENCH_clay_repair.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg.rfind("--block-size=", 0) == 0) {
        block_size = std::stoull(arg.substr(13));
      } else if (arg.rfind("--stripes=", 0) == 0) {
        stripes = std::stoull(arg.substr(10));
      } else if (arg.rfind("--json=", 0) == 0) {
        json_path = arg.substr(7);
      } else {
        std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
      return 2;
    }
  }
  if (block_size == 0 || stripes == 0) {
    std::fprintf(stderr, "--block-size and --stripes must be nonzero\n");
    return 2;
  }

  constexpr std::uint64_t kSeed = 31;
  const std::vector<std::string> specs = {"clay-6-4", "rs-4-2", "pgy-10-4",
                                          "rs-10-4"};
  std::map<std::string, Sample> by_scheme;
  bool ok = true;

  for (const auto& spec : specs) {
    const auto code = ec::make_code(spec).value();
    const std::size_t alpha = code->sub_chunks();
    DBLREP_CHECK_EQ(block_size % alpha, 0u);

    Sample s;
    s.scheme = spec;
    s.alpha = alpha;
    s.overhead = code->params().storage_overhead();

    // ---- plan-level repair cost, every failed-node choice ---------------
    for (std::size_t j = 0; j < code->num_nodes(); ++j) {
      const auto plan = code->plan_node_repair(static_cast<ec::NodeIndex>(j));
      DBLREP_CHECK_MSG(plan.is_ok(), plan.status().to_string());
      const std::size_t units = plan->network_units();
      const double bytes =
          static_cast<double>(plan->network_bytes(block_size, alpha));
      if (j == 0 || units < s.repair_units_min) s.repair_units_min = units;
      if (units > s.repair_units_max) s.repair_units_max = units;
      if (j == 0 || bytes < s.repair_bytes_min) s.repair_bytes_min = bytes;
      if (bytes > s.repair_bytes_max) s.repair_bytes_max = bytes;
      if (j < code->data_blocks() && units > s.data_repair_units_max) {
        s.data_repair_units_max = units;
      }
      // beta * helpers exactness for the MSR point: each of the d = n - 1
      // helpers ships exactly beta = alpha / 2 sub-chunks.
      if (spec == "clay-6-4") {
        std::map<ec::NodeIndex, std::size_t> per_helper;
        for (const auto& send : plan->aggregates) ++per_helper[send.from_node];
        const std::size_t beta = alpha / 2;
        if (per_helper.size() != code->num_nodes() - 1) ok = false;
        for (const auto& [helper, count] : per_helper) {
          if (count != beta) {
            std::fprintf(stderr,
                         "FAIL: clay-6-4 node %zu repair: helper %d ships "
                         "%zu sub-chunks, want beta = %zu\n",
                         j, helper, count, beta);
            ok = false;
          }
        }
      }
    }

    // ---- end-to-end: node repair on the MiniDfs wire --------------------
    {
      cluster::Topology topology;  // 25 nodes, 1 rack
      hdfs::MiniDfs dfs(topology, kSeed, nullptr);
      const std::size_t data_bytes =
          stripes * code->data_blocks() * block_size;
      const Buffer data = random_buffer(data_bytes, 7);
      DBLREP_CHECK(dfs.write_file("/f", data, spec, block_size).is_ok());

      // Stored bytes must land exactly at the advertised overhead.
      s.stored_overhead_exact =
          dfs.stored_bytes() ==
          static_cast<std::size_t>(s.overhead * static_cast<double>(data_bytes));

      const auto info = *dfs.stat("/f");
      const cluster::NodeId victim =
          dfs.catalog().stripe(info.stripes.front()).group[0];
      // Planned cost: sum, over every stripe with a slot on the victim, of
      // that stripe's single-node plan bytes for the code-local index the
      // victim holds.
      for (cluster::StripeId id : info.stripes) {
        const auto& group = dfs.catalog().stripe(id).group;
        for (std::size_t j = 0; j < group.size(); ++j) {
          if (group[j] != victim) continue;
          const auto plan =
              code->plan_node_repair(static_cast<ec::NodeIndex>(j));
          s.e2e_planned_bytes += static_cast<double>(
              plan->network_bytes(block_size, alpha));
          break;
        }
      }
      DBLREP_CHECK(dfs.fail_node(victim).is_ok());
      dfs.traffic().reset();
      DBLREP_CHECK(dfs.repair_node(victim).is_ok());
      s.e2e_measured_bytes = dfs.traffic().total_bytes();
      s.e2e_exact = s.e2e_measured_bytes == s.e2e_planned_bytes;
      const auto back = dfs.read_file("/f");
      s.e2e_restored = back.is_ok() && *back == data;
    }

    std::fprintf(stderr,
                 "%-9s alpha=%zu overhead=%.2f  repair units [%zu, %zu] "
                 "bytes [%.0f, %.0f]  e2e %.0f/%.0f exact=%d restored=%d\n",
                 spec.c_str(), s.alpha, s.overhead, s.repair_units_min,
                 s.repair_units_max, s.repair_bytes_min, s.repair_bytes_max,
                 s.e2e_measured_bytes, s.e2e_planned_bytes,
                 s.e2e_exact ? 1 : 0, s.e2e_restored ? 1 : 0);
    by_scheme[spec] = s;
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"clay_repair\",\n"
       << "  \"block_size\": " << block_size << ",\n"
       << "  \"stripes\": " << stripes << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const Sample& s = by_scheme.at(specs[i]);
    json << "    {\"scheme\": \"" << s.scheme << "\", \"alpha\": " << s.alpha
         << ", \"storage_overhead\": " << s.overhead
         << ", \"repair_units_min\": " << s.repair_units_min
         << ", \"repair_units_max\": " << s.repair_units_max
         << ", \"repair_bytes_min\": " << s.repair_bytes_min
         << ", \"repair_bytes_max\": " << s.repair_bytes_max
         << ", \"data_repair_units_max\": " << s.data_repair_units_max
         << ", \"e2e_measured_bytes\": " << s.e2e_measured_bytes
         << ", \"e2e_planned_bytes\": " << s.e2e_planned_bytes
         << ", \"e2e_exact\": " << (s.e2e_exact ? "true" : "false")
         << ", \"e2e_restored\": " << (s.e2e_restored ? "true" : "false")
         << ", \"stored_overhead_exact\": "
         << (s.stored_overhead_exact ? "true" : "false") << "}"
         << (i + 1 == specs.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());

  // ---- acceptance gates --------------------------------------------------
  const Sample& clay = by_scheme.at("clay-6-4");
  const Sample& rs42 = by_scheme.at("rs-4-2");
  const Sample& pgy = by_scheme.at("pgy-10-4");
  const Sample& rs104 = by_scheme.at("rs-10-4");

  // Baselines pinned: plain RS repairs k whole blocks.
  if (rs42.repair_units_max != 4 || rs42.repair_units_min != 4) {
    std::fprintf(stderr, "FAIL: rs-4-2 repair not 4 blocks\n");
    ok = false;
  }
  if (rs104.repair_units_max != 10 || rs104.repair_units_min != 10) {
    std::fprintf(stderr, "FAIL: rs-10-4 repair not 10 blocks\n");
    ok = false;
  }
  // Equal storage overhead is what makes the comparison fair.
  if (clay.overhead != rs42.overhead || pgy.overhead != rs104.overhead) {
    std::fprintf(stderr, "FAIL: overhead pairing broken\n");
    ok = false;
  }
  // The frontier: strictly fewer repair bytes at equal overhead.
  if (!(clay.repair_bytes_max < rs42.repair_bytes_min)) {
    std::fprintf(stderr,
                 "FAIL: clay-6-4 worst repair (%.0f bytes) not below rs-4-2 "
                 "(%.0f bytes)\n",
                 clay.repair_bytes_max, rs42.repair_bytes_min);
    ok = false;
  }
  const double pgy_data_worst =
      static_cast<double>(pgy.data_repair_units_max) *
      static_cast<double>(block_size / pgy.alpha);
  if (!(pgy_data_worst < rs104.repair_bytes_min)) {
    std::fprintf(stderr,
                 "FAIL: pgy-10-4 worst data-node repair (%.0f bytes) not "
                 "below rs-10-4 (%.0f bytes)\n",
                 pgy_data_worst, rs104.repair_bytes_min);
    ok = false;
  }
  // Exact byte accounting + data integrity + overhead, all schemes.
  for (const auto& [spec, s] : by_scheme) {
    if (!s.e2e_exact) {
      std::fprintf(stderr,
                   "FAIL: %s e2e repair moved %.0f bytes, plans say %.0f\n",
                   spec.c_str(), s.e2e_measured_bytes, s.e2e_planned_bytes);
      ok = false;
    }
    if (!s.e2e_restored) {
      std::fprintf(stderr, "FAIL: %s file corrupt after repair\n",
                   spec.c_str());
      ok = false;
    }
    if (!s.stored_overhead_exact) {
      std::fprintf(stderr, "FAIL: %s stored bytes off advertised overhead\n",
                   spec.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
