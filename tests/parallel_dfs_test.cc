// Determinism and safety of the concurrent data plane.
//
// The core property: for every registered code and every failure count the
// code tolerates (capped at 3), running the byte-heavy paths on a real
// thread pool leaves *byte-identical* datanode contents and *identical*
// traffic totals versus the zero-worker serial execution. Placement is
// serialized by design, and every traffic increment is a whole number of
// bytes (exact in double), so parallel and serial runs must agree exactly
// -- any divergence is a lost update or a double-repair.
//
// Plus end-to-end safety runs: closed-loop clients with a concurrent
// repair_all (the workload-under-repair regime), and raw multi-threaded
// writer/reader crossfire against one DFS.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "cluster/topology.h"
#include "common/rng.h"
#include "ec/registry.h"
#include "exec/thread_pool.h"
#include "hdfs/minidfs.h"
#include "hdfs/workload_driver.h"

namespace dblrep::hdfs {
namespace {

constexpr std::size_t kBlockSize = 64;
constexpr std::size_t kNodes = 25;

/// Full cluster image: node -> (address -> bytes). get() re-verifies CRCs,
/// so a corrupt block would show up as absent and fail the comparison.
using ClusterImage =
    std::map<cluster::NodeId, std::map<cluster::SlotAddress, Buffer>>;

ClusterImage image_of(MiniDfs& dfs) {
  ClusterImage image;
  for (std::size_t n = 0; n < kNodes; ++n) {
    auto& dn = dfs.datanode(static_cast<cluster::NodeId>(n));
    auto& blocks = image[static_cast<cluster::NodeId>(n)];
    for (const auto& address : dn.stored_addresses()) {
      auto bytes = dn.get(address);
      if (bytes.is_ok()) blocks.emplace(address, std::move(*bytes));
    }
  }
  return image;
}

struct RunResult {
  ClusterImage image;
  double traffic_total = 0;
  double traffic_cross_rack = 0;
  std::size_t healed = 0;
};

/// One deterministic failure/repair scenario for `spec` with `failures`
/// nodes lost, executed on `pool` (nullptr = serial reference).
RunResult run_repair_scenario(const std::string& spec, int failures,
                              exec::ThreadPool* pool) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  MiniDfs dfs(topology, /*seed=*/99, pool);
  const auto code = ec::make_code(spec).value();
  // 3 full stripes plus a ragged tail, two files.
  const std::size_t bytes =
      code->data_blocks() * kBlockSize * 3 + 2 * kBlockSize;
  EXPECT_TRUE(
      dfs.write_file("/a", random_buffer(bytes, 5), spec, kBlockSize).is_ok());
  EXPECT_TRUE(
      dfs.write_file("/b", random_buffer(bytes, 6), spec, kBlockSize).is_ok());

  // Fail members of the first stripe's placement group: guaranteed data
  // loss, never beyond the per-stripe tolerance, and the same nodes in the
  // serial and parallel runs (placement is deterministic per seed).
  const auto group = dfs.catalog().stripe(dfs.stat("/a")->stripes[0]).group;
  for (int i = 0; i < failures; ++i) {
    EXPECT_TRUE(dfs.fail_node(group[static_cast<std::size_t>(i)]).is_ok());
  }
  dfs.traffic().reset();
  const Status repaired = dfs.repair_all();
  EXPECT_TRUE(repaired.is_ok()) << spec << ": " << repaired.to_string();
  EXPECT_TRUE(dfs.scrub().is_ok()) << spec;

  RunResult result;
  result.image = image_of(dfs);
  result.traffic_total = dfs.traffic().total_bytes();
  result.traffic_cross_rack = dfs.traffic().cross_rack_bytes();
  return result;
}

TEST(ParallelRepairEquivalence, ByteIdenticalToSerialForEveryCode) {
  auto specs = ec::paper_code_specs();
  specs.push_back("rs-10-4");
  specs.push_back("clay-6-4");
  specs.push_back("pgy-10-4");
  exec::ThreadPool pool(4);
  for (const auto& spec : specs) {
    const auto code = ec::make_code(spec).value();
    const int max_failures =
        std::min(3, code->params().fault_tolerance);
    for (int failures = 1; failures <= max_failures; ++failures) {
      SCOPED_TRACE(spec + " failures=" + std::to_string(failures));
      const RunResult serial = run_repair_scenario(spec, failures, nullptr);
      const RunResult parallel = run_repair_scenario(spec, failures, &pool);
      EXPECT_EQ(serial.image, parallel.image);
      EXPECT_DOUBLE_EQ(serial.traffic_total, parallel.traffic_total);
      EXPECT_DOUBLE_EQ(serial.traffic_cross_rack,
                       parallel.traffic_cross_rack);
      EXPECT_GT(parallel.traffic_total, 0.0);  // the repair actually ran
    }
  }
}

/// Deterministic corruption + scrub_repair scenario.
RunResult run_scrub_scenario(const std::string& spec, exec::ThreadPool* pool) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  MiniDfs dfs(topology, /*seed=*/123, pool);
  const auto code = ec::make_code(spec).value();
  const std::size_t bytes = code->data_blocks() * kBlockSize * 2;
  EXPECT_TRUE(
      dfs.write_file("/f", random_buffer(bytes, 8), spec, kBlockSize).is_ok());
  // Corrupt one replica of symbol 0 and -- when the code has a second
  // symbol to spare -- drop one replica of the last symbol in every
  // stripe; same addresses in serial and parallel runs because placement
  // is deterministic per seed. (Single-symbol replication codes only get
  // the corruption: hitting both copies of their one block is data loss.)
  const auto info = *dfs.stat("/f");
  for (const auto stripe : info.stripes) {
    const auto& layout = code->layout();
    const std::size_t slot_a = layout.slots_of_symbol(0).front();
    EXPECT_TRUE(dfs.datanode(dfs.catalog().node_of({stripe, slot_a}))
                    .corrupt({stripe, slot_a}, 1)
                    .is_ok());
    if (code->num_symbols() > 1) {
      const std::size_t slot_b =
          layout.slots_of_symbol(code->num_symbols() - 1).back();
      EXPECT_TRUE(dfs.datanode(dfs.catalog().node_of({stripe, slot_b}))
                      .drop({stripe, slot_b})
                      .is_ok());
    }
  }
  dfs.traffic().reset();
  const auto healed = dfs.scrub_repair();
  EXPECT_TRUE(healed.is_ok()) << spec << ": " << healed.status().to_string();
  EXPECT_TRUE(dfs.scrub().is_ok()) << spec;

  RunResult result;
  result.image = image_of(dfs);
  result.traffic_total = dfs.traffic().total_bytes();
  result.traffic_cross_rack = dfs.traffic().cross_rack_bytes();
  result.healed = healed.is_ok() ? *healed : 0;
  return result;
}

TEST(ParallelScrubRepairEquivalence, ByteIdenticalToSerialForEveryCode) {
  auto specs = ec::paper_code_specs();
  specs.push_back("rs-10-4");
  specs.push_back("clay-6-4");
  specs.push_back("pgy-10-4");
  exec::ThreadPool pool(4);
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec);
    const RunResult serial = run_scrub_scenario(spec, nullptr);
    const RunResult parallel = run_scrub_scenario(spec, &pool);
    EXPECT_EQ(serial.healed, parallel.healed);
    EXPECT_GT(parallel.healed, 0u);
    EXPECT_EQ(serial.image, parallel.image);
    EXPECT_DOUBLE_EQ(serial.traffic_total, parallel.traffic_total);
  }
}

// ------------------------------------------------- workload under repair

TEST(WorkloadDriver, MixedWorkloadUnderConcurrentRepairIsErrorFree) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  exec::ThreadPool pool(2);
  MiniDfs dfs(topology, 31, &pool);

  WorkloadOptions options;
  options.code_spec = "pentagon";
  options.block_size = kBlockSize;
  options.stripes_per_file = 2;
  options.preload_files = 4;
  options.clients = 3;
  options.ops_per_client = 25;
  options.fail_nodes = 2;
  options.repair_concurrently = true;
  options.seed = 17;
  WorkloadDriver driver(dfs, options);
  const auto report = driver.run();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_TRUE(report->repair_status.is_ok())
      << report->repair_status.to_string();
  EXPECT_EQ(report->total_errors(), 0u);
  EXPECT_GT(report->total_ops(), 0u);
  EXPECT_GT(report->repair_s, 0.0);
  // The cluster must come out consistent: every file readable, codewords
  // intact, nothing left degraded.
  EXPECT_TRUE(dfs.repair_all().is_ok());
  EXPECT_TRUE(dfs.scrub().is_ok());
  for (const auto& path : dfs.list_files()) {
    EXPECT_TRUE(dfs.read_file(path).is_ok()) << path;
  }
}

TEST(WorkloadDriver, DegradedMixTargetsActuallyLostBlocks) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  exec::ThreadPool pool(2);
  MiniDfs dfs(topology, 32, &pool);

  WorkloadOptions options;
  options.code_spec = "rs-10-4";  // no replication: any loss is degraded
  options.block_size = kBlockSize;
  options.stripes_per_file = 1;
  options.preload_files = 3;
  options.clients = 2;
  options.ops_per_client = 20;
  options.read_fraction = 0.0;
  options.write_fraction = 0.0;
  options.degraded_fraction = 1.0;
  options.fail_nodes = 2;
  options.repair_concurrently = false;  // stays degraded the whole run
  options.seed = 23;
  WorkloadDriver driver(dfs, options);
  const auto report = driver.run();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(report->total_errors(), 0u);
  EXPECT_EQ(report->degraded.latency_us.count(), 40u);
  // Degraded reads move extra blocks over the wire; with rs-10-4 each one
  // costs k transfers, so traffic dwarfs the block count.
  EXPECT_GT(dfs.traffic().total_bytes(), 40.0 * kBlockSize);
}

// --------------------------------------------------- raw client crossfire

TEST(ConcurrentClients, WritersReadersAndRepairDoNotCorrupt) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  exec::ThreadPool pool(3);
  MiniDfs dfs(topology, 77, &pool);

  const auto code = ec::make_code("pentagon").value();
  const Buffer payload =
      random_buffer(code->data_blocks() * kBlockSize * 2, 9);
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(dfs.write_file("/seed/" + std::to_string(f), payload,
                               "pentagon", kBlockSize)
                    .is_ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 8; ++i) {
        const std::string path =
            "/w" + std::to_string(w) + "/" + std::to_string(i);
        if (!dfs.write_file(path, payload, "pentagon", kBlockSize).is_ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(static_cast<std::uint64_t>(r) + 1);
      for (int i = 0; i < 12; ++i) {
        const auto path = "/seed/" + std::to_string(rng.next_below(3));
        const auto read = dfs.read_file(path);
        if (!read.is_ok() || *read != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(dfs.scrub().is_ok());
  EXPECT_EQ(dfs.list_files().size(), 3u + 24u);
}

// --------------------------------------------- sub-chunk repair traffic
//
// Sub-packetized schemes claim their repair savings at sub-chunk (beta)
// granularity; the claim only counts if the *wire* honors it. For each
// scheme, the bytes TrafficMeter observes during a node repair must equal
// the sum of the per-stripe plan network_bytes() to the byte -- for clay
// that is beta * helpers sub-chunks per stripe, and for the alpha = 1
// schemes it is the unchanged whole-block accounting.

TEST(SubChunkRepairTraffic, WireBytesEqualPlanBytesExactly) {
  for (const std::string& spec :
       {std::string{"clay-6-4"}, std::string{"pgy-10-4"},
        std::string{"rs-10-4"}}) {
    SCOPED_TRACE(spec);
    cluster::Topology topology;
    topology.num_nodes = kNodes;
    MiniDfs dfs(topology, /*seed=*/41, nullptr);
    const auto code = ec::make_code(spec).value();
    const std::size_t bytes = code->data_blocks() * kBlockSize * 3;
    const Buffer payload = random_buffer(bytes, 11);
    ASSERT_TRUE(dfs.write_file("/f", payload, spec, kBlockSize).is_ok());

    const auto info = *dfs.stat("/f");
    const cluster::NodeId victim =
        dfs.catalog().stripe(info.stripes.front()).group[0];
    double planned = 0;
    for (const auto stripe : info.stripes) {
      const auto& group = dfs.catalog().stripe(stripe).group;
      for (std::size_t j = 0; j < group.size(); ++j) {
        if (group[j] != victim) continue;
        const auto plan =
            code->plan_node_repair(static_cast<ec::NodeIndex>(j));
        ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
        planned += static_cast<double>(
            plan->network_bytes(kBlockSize, code->sub_chunks()));
        break;
      }
    }
    ASSERT_GT(planned, 0.0);

    ASSERT_TRUE(dfs.fail_node(victim).is_ok());
    dfs.traffic().reset();
    ASSERT_TRUE(dfs.repair_node(victim).is_ok());
    EXPECT_DOUBLE_EQ(dfs.traffic().total_bytes(), planned);
    const auto back = dfs.read_file("/f");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, payload);
  }
}

// ------------------------------------------------ delete vs repair race
//
// Regression for the delete/rename-during-repair hazard: delete_file used
// to be able to unregister a stripe while repair_stripe held references
// into it. With the catalog repair lease, the deleter drains in-flight
// repairs and the repairer skips tombstoned stripes cleanly (ABORTED /
// NOT_FOUND become an ok no-op), so both sides finish without error and
// the cluster stays consistent. Runs several seeds to vary interleaving;
// the TSan job re-runs this suite to catch lock-ordering regressions.

TEST(DeleteRepairRace, DeleteDuringNodeRepairIsCleanOnBothSides) {
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    cluster::Topology topology;
    topology.num_nodes = kNodes;
    exec::ThreadPool pool(3);
    MiniDfs dfs(topology, /*seed=*/500 + round, &pool);

    const auto code = ec::make_code("clay-6-4").value();
    const std::size_t bytes = code->data_blocks() * kBlockSize * 6;
    const Buffer kept_payload = random_buffer(bytes, 13);
    ASSERT_TRUE(dfs.write_file("/doomed", random_buffer(bytes, 12),
                               "clay-6-4", kBlockSize)
                    .is_ok());
    ASSERT_TRUE(
        dfs.write_file("/kept", kept_payload, "clay-6-4", kBlockSize).is_ok());

    const auto victim =
        dfs.catalog().stripe(dfs.stat("/doomed")->stripes[0]).group[0];
    ASSERT_TRUE(dfs.fail_node(victim).is_ok());

    Status repair_status = Status::ok();
    Status delete_status = Status::ok();
    std::thread repairer([&] { repair_status = dfs.repair_node(victim); });
    std::thread deleter([&] { delete_status = dfs.delete_file("/doomed"); });
    repairer.join();
    deleter.join();
    EXPECT_TRUE(repair_status.is_ok()) << repair_status.to_string();
    EXPECT_TRUE(delete_status.is_ok()) << delete_status.to_string();

    // The file is gone, the survivor is whole, and a full repair + scrub
    // pass finds nothing inconsistent left behind by the race.
    EXPECT_FALSE(dfs.stat("/doomed").is_ok());
    EXPECT_TRUE(dfs.repair_all().is_ok());
    EXPECT_TRUE(dfs.scrub().is_ok());
    const auto back = dfs.read_file("/kept");
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(*back, kept_payload);
  }
}

// ------------------------------------------- metadata shard equivalence
//
// The shard count is a pure concurrency knob: every observable -- bytes
// read back, stored cluster image, traffic totals, stat results, and the
// shard-count-independent catalog fingerprint -- must be identical
// between an N-shard and a 1-shard run of the same seeded scenario.

MiniDfs make_sharded(std::size_t shards, exec::ThreadPool* pool = nullptr,
                     std::uint64_t seed = 99) {
  cluster::Topology topology;
  topology.num_nodes = kNodes;
  MiniDfsOptions options;
  options.meta_shards = shards;
  return MiniDfs(topology, seed, pool, options);
}

struct ShardRun {
  ClusterImage image;
  double traffic_total = 0;
  double traffic_cross = 0;
  std::uint64_t catalog_fp = 0;
  std::map<std::string, Buffer> reads;
  std::map<std::string, std::pair<std::uint64_t, std::size_t>> stats;
};

/// Writes across several directories, deletes one file, renames another,
/// then fails a placed node and repairs -- the full metadata lifecycle
/// with data-plane consequences -- and captures everything observable.
ShardRun run_shard_scenario(const std::string& spec, std::size_t shards) {
  MiniDfs dfs = make_sharded(shards);
  const auto code = ec::make_code(spec).value();
  const std::size_t bytes = code->data_blocks() * kBlockSize * 2 + kBlockSize;
  for (int f = 0; f < 4; ++f) {
    const std::string path =
        "/eq/d" + std::to_string(f % 2) + "/f" + std::to_string(f);
    EXPECT_TRUE(dfs.write_file(path, random_buffer(bytes, 40 + f), spec,
                               kBlockSize)
                    .is_ok());
  }
  EXPECT_TRUE(dfs.delete_file("/eq/d1/f3").is_ok());
  EXPECT_TRUE(dfs.rename("/eq/d0/f2", "/moved/f2").is_ok());

  const auto group = dfs.catalog().stripe(dfs.stat("/eq/d0/f0")->stripes[0]).group;
  EXPECT_TRUE(dfs.fail_node(group[0]).is_ok());
  EXPECT_TRUE(dfs.repair_all().is_ok());
  EXPECT_TRUE(dfs.scrub().is_ok());

  ShardRun run;
  for (const std::string path : {"/eq/d0/f0", "/eq/d1/f1", "/moved/f2"}) {
    const auto read = dfs.read_file(path);
    EXPECT_TRUE(read.is_ok()) << path;
    if (read.is_ok()) run.reads[path] = *read;
    const auto info = dfs.stat(path);
    EXPECT_TRUE(info.is_ok()) << path;
    if (info.is_ok()) run.stats[path] = {info->length, info->stripes.size()};
  }
  run.image = image_of(dfs);
  run.traffic_total = dfs.traffic().total_bytes();
  run.traffic_cross = dfs.traffic().cross_rack_bytes();
  run.catalog_fp = dfs.catalog_fingerprint();
  return run;
}

TEST(MetaShardEquivalence, EveryObservableMatchesOneShardForEveryCode) {
  auto specs = ec::paper_code_specs();
  specs.push_back("rs-10-4");
  specs.push_back("clay-6-4");
  specs.push_back("pgy-10-4");
  for (const auto& spec : specs) {
    SCOPED_TRACE(spec);
    const ShardRun one = run_shard_scenario(spec, 1);
    EXPECT_GT(one.catalog_fp, 0u);
    for (const std::size_t shards : {std::size_t{4}, std::size_t{16}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const ShardRun many = run_shard_scenario(spec, shards);
      EXPECT_EQ(many.reads, one.reads);
      EXPECT_EQ(many.stats, one.stats);
      EXPECT_EQ(many.image, one.image);
      EXPECT_DOUBLE_EQ(many.traffic_total, one.traffic_total);
      EXPECT_DOUBLE_EQ(many.traffic_cross, one.traffic_cross);
      EXPECT_EQ(many.catalog_fp, one.catalog_fp);
    }
  }
}

TEST(MetaShardEquivalence, ConcurrentWritersSafeAtEveryShardCount) {
  // Concurrency makes placement order nondeterministic, so byte-identity
  // across shard counts is out of scope here; what must hold at every
  // shard count is correctness: every write lands readable, the namespace
  // is complete, and the crash-recovery artifacts reproduce the catalog.
  const auto code = ec::make_code("pentagon").value();
  const Buffer payload =
      random_buffer(code->data_blocks() * kBlockSize * 2, 31);
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    MiniDfs dfs = make_sharded(shards);
    // Writers deliberately share directories, so paths hashing to the
    // same shard and to different shards both contend.
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&, w] {
        for (int i = 0; i < 6; ++i) {
          const std::string path = "/shared/d" + std::to_string(i % 2) +
                                   "/w" + std::to_string(w) + "_" +
                                   std::to_string(i);
          if (!dfs.write_file(path, payload, "pentagon", kBlockSize)
                   .is_ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(dfs.list_files().size(), 24u);

    const std::uint64_t fp = dfs.catalog_fingerprint();
    const auto report = dfs.crash_namenode();
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(dfs.catalog_fingerprint(), fp);
    for (const auto& path : dfs.list_files()) {
      const auto read = dfs.read_file(path);
      ASSERT_TRUE(read.is_ok()) << path;
      EXPECT_EQ(*read, payload) << path;
    }
  }
}

}  // namespace
}  // namespace dblrep::hdfs
