// The chaos harness's own contract tests: schedules are pure functions of
// (config, seed); replays reproduce traces and cluster state byte for
// byte, across worker pools; the invariant checkers detect true
// violations (seeded silent corruption) and the minimizer shrinks a
// violating schedule to a core that still violates; layered repair stays
// byte-equivalent under chaos; and the fault model pieces underneath
// (transient offline, stale-replica GC, corruption-aware repair) behave.
#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/harness.h"
#include "chaos/invariants.h"
#include "chaos/schedule.h"
#include "exec/thread_pool.h"
#include "hdfs/minidfs.h"

namespace dblrep::chaos {
namespace {

/// Small, fast scenario: ~40 events on a 21-node/3-rack cluster.
ChaosConfig small_config(const std::string& code_spec = "rs-10-4") {
  ChaosConfig config;
  config.code_spec = code_spec;
  config.horizon_s = 12.0;
  config.preload_files = 2;
  config.stripes_per_file = 1;
  return config;
}

// ----------------------------------------------------------- schedules

TEST(ChaosSchedule, DeterministicPerSeed) {
  const ChaosConfig config = small_config();
  const auto a = generate_schedule(config, 7);
  const auto b = generate_schedule(config, 7);
  EXPECT_EQ(a, b);
  const auto c = generate_schedule(config, 8);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.empty());
}

TEST(ChaosSchedule, TimeOrdered) {
  const auto events = generate_schedule(small_config(), 3);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.at < b.at; }));
}

TEST(ChaosSchedule, MixPresetsRoundTrip) {
  for (const FaultMix& mix : FaultMix::presets()) {
    const auto parsed = FaultMix::preset(mix.name);
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed->name, mix.name);
  }
  EXPECT_FALSE(FaultMix::preset("antigravity").is_ok());
}

// -------------------------------------------------------------- replay

TEST(ChaosHarness, ReplayReproducesTraceAndState) {
  const ChaosHarness harness(small_config());
  const ChaosReport a = harness.run_seed(21);
  const ChaosReport b = harness.run_seed(21);
  EXPECT_TRUE(a.ok()) << a.trace_to_string();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.final_fingerprint, b.final_fingerprint);
  EXPECT_EQ(a.final_storage_fingerprint, b.final_storage_fingerprint);
}

TEST(ChaosHarness, WorkerPoolReplaysInlineTraceByteForByte) {
  // The DBLREP_THREADS regime: every event is a serial barrier, the DFS
  // parallelizes inside events, and the result must be bit-identical to
  // the fully serial run.
  ChaosConfig inline_config = small_config();
  const ChaosReport serial = ChaosHarness(inline_config).run_seed(33);

  exec::ThreadPool pool(3);
  ChaosConfig pooled_config = small_config();
  pooled_config.pool = &pool;
  const ChaosReport pooled = ChaosHarness(pooled_config).run_seed(33);

  EXPECT_EQ(serial.trace, pooled.trace);
  EXPECT_EQ(serial.final_fingerprint, pooled.final_fingerprint);
  EXPECT_EQ(serial.traffic_total_bytes, pooled.traffic_total_bytes);
  EXPECT_EQ(serial.traffic_cross_rack_bytes,
            pooled.traffic_cross_rack_bytes);
}

TEST(ChaosHarness, EveryPresetMixHoldsInvariants) {
  for (const FaultMix& mix : FaultMix::presets()) {
    ChaosConfig config = small_config();
    config.mix = mix;
    const ChaosReport report = ChaosHarness(config).run_seed(5);
    EXPECT_TRUE(report.ok()) << mix.name << ":\n" << report.trace_to_string();
    EXPECT_FALSE(report.trace.empty()) << mix.name;
  }
}

// ---------------------------------------------- checker true positives

TEST(ChaosHarness, DurabilityCheckerCatchesSilentCorruption) {
  // kTamperBlock rewrites a stored block with a fresh, CRC-valid payload:
  // the one fault class checksums cannot see. The durability checker must
  // flag it (decode succeeds, bytes differ from write-time contents).
  const ChaosHarness harness(small_config());
  const std::vector<ChaosEvent> events = {
      {0.5, EventKind::kTamperBlock, 12345}};
  const ChaosReport report = harness.run_schedule(99, events);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("durability"), std::string::npos)
      << report.violations.front();
}

TEST(ChaosHarness, MinimizerShrinksToViolatingCore) {
  // Bury one tamper event inside a benign generated schedule; the
  // minimizer must strip the noise and keep a schedule that still
  // violates -- which must include the tamper (nothing else can violate).
  const ChaosHarness harness(small_config());
  std::vector<ChaosEvent> events = generate_schedule(small_config(), 11);
  const std::size_t original = events.size();
  ASSERT_GT(original, 5u);
  events.insert(events.begin() + static_cast<std::ptrdiff_t>(original / 2),
                {events[original / 2].at, EventKind::kTamperBlock, 777});

  ASSERT_FALSE(harness.run_schedule(11, events).ok());
  const auto minimized = harness.minimize(11, events);
  EXPECT_LT(minimized.size(), events.size());
  EXPECT_FALSE(harness.run_schedule(11, minimized).ok());
  EXPECT_TRUE(std::any_of(minimized.begin(), minimized.end(),
                          [](const ChaosEvent& event) {
                            return event.kind == EventKind::kTamperBlock;
                          }));
}

TEST(ChaosHarness, NameNodeCrashEventsAreScheduledAndSurvivable) {
  // Every preset carries a nonzero namenode_crash_rate, so generated
  // schedules must actually contain crash events -- and a run that crashes
  // the NameNode repeatedly (with and without a prior snapshot) must
  // recover to the same catalog every time and stay deterministic.
  bool scheduled = false;
  for (const FaultMix& mix : FaultMix::presets()) {
    ChaosConfig config = small_config();
    config.mix = mix;
    for (std::uint64_t seed = 0; seed < 8 && !scheduled; ++seed) {
      const auto events = generate_schedule(config, seed);
      scheduled = std::any_of(events.begin(), events.end(),
                              [](const ChaosEvent& event) {
                                return event.kind ==
                                       EventKind::kNameNodeCrash;
                              });
    }
  }
  EXPECT_TRUE(scheduled);

  const ChaosHarness harness(small_config());
  const std::vector<ChaosEvent> events = {
      {0.5, EventKind::kNameNodeCrash, 0},   // crash with journal replay
      {1.0, EventKind::kNameNodeCrash, 1},   // snapshot first, then crash
      {1.5, EventKind::kNameNodeCrash, 2}};  // crash again on empty journal
  const ChaosReport a = harness.run_schedule(17, events);
  EXPECT_TRUE(a.ok()) << a.trace_to_string();
  const ChaosReport b = harness.run_schedule(17, events);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.final_fingerprint, b.final_fingerprint);
}

TEST(ChaosInvariants, CatalogRecoveryCheckerCatchesLostJournalRecord) {
  // Forget the durable record of the most recent commit: the on-disk
  // journal now replays to a catalog missing one published file, which the
  // recovery checker must flag against the live NameNode.
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfsOptions options;
  options.meta_shards = 4;
  hdfs::MiniDfs dfs(topology, 9, nullptr, options);
  ASSERT_TRUE(
      dfs.write_file("/a", random_buffer(64 * 10, 6), "rs-10-4", 64).is_ok());
  ASSERT_TRUE(
      dfs.write_file("/b", random_buffer(64 * 3, 7), "3-rep", 64).is_ok());

  std::vector<std::string> violations;
  check_catalog_recovery(dfs, violations);
  ASSERT_TRUE(violations.empty()) << violations.front();

  const std::size_t shard = dfs.namenode().shard_of("/b");
  ASSERT_GT(dfs.namenode().journal_record_count(shard), 0u);
  ASSERT_TRUE(dfs.namenode().testonly_drop_last_journal_record(shard).is_ok());

  check_catalog_recovery(dfs, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("catalog"), std::string::npos)
      << violations.front();
}

// ------------------------------------------------- layered equivalence

TEST(ChaosHarness, LayeredRepairEquivalentUnderChaos) {
  for (const char* spec : {"heptagon-local", "rs-10-4"}) {
    ChaosConfig config = small_config(spec);
    const auto violations = check_layering_equivalence(config, 13);
    EXPECT_TRUE(violations.empty())
        << spec << ": " << violations.front();
  }
}

// ------------------------------------------------- fault-model pieces

TEST(MiniDfsFaultModel, OfflineNodeKeepsItsDisk) {
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfs dfs(topology, 5);
  const Buffer data = random_buffer(64 * 10, 2);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 64).is_ok());
  const auto group = dfs.catalog().stripe(dfs.stat("/f")->stripes[0]).group;

  const std::size_t blocks =
      dfs.datanode(group[0]).block_count();
  ASSERT_GT(blocks, 0u);
  ASSERT_TRUE(dfs.offline_node(group[0]).is_ok());
  EXPECT_FALSE(dfs.datanode(group[0]).is_up());
  ASSERT_TRUE(dfs.restart_node(group[0]).is_ok());
  // Unlike fail_node, the blocks survived: no repair needed.
  EXPECT_EQ(dfs.datanode(group[0]).block_count(), blocks);
  EXPECT_TRUE(dfs.scrub().is_ok());
}

TEST(MiniDfsFaultModel, RejoiningNodeDropsReplicasOfDeletedFiles) {
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfs dfs(topology, 5);
  const Buffer data = random_buffer(64 * 10, 3);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 64).is_ok());
  const auto group = dfs.catalog().stripe(dfs.stat("/f")->stripes[0]).group;

  // Delete while one replica holder is away: the deletion cannot reach its
  // disk, so the block-report GC on rejoin must drop the stale replicas.
  ASSERT_TRUE(dfs.offline_node(group[0]).is_ok());
  ASSERT_TRUE(dfs.delete_file("/f").is_ok());
  ASSERT_TRUE(dfs.restart_node(group[0]).is_ok());
  EXPECT_EQ(dfs.datanode(group[0]).block_count(), 0u);

  std::vector<std::string> violations;
  check_placement(dfs, {}, violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(MiniDfsFaultModel, RepairHealsCrcCorruptReplicas) {
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfs dfs(topology, 5);
  const Buffer data = random_buffer(64 * 10, 4);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 64).is_ok());
  const cluster::StripeId stripe = dfs.stat("/f")->stripes[0];
  const auto group = dfs.catalog().stripe(stripe).group;

  // Corrupt one replica (CRC catches it), then repair its node: the probe
  // must treat the CRC-broken slot as failed and rewrite it.
  auto& dn = dfs.datanode(group[1]);
  const auto addresses = dn.stored_addresses();
  ASSERT_FALSE(addresses.empty());
  ASSERT_TRUE(dn.corrupt(addresses[0], 3).is_ok());
  EXPECT_FALSE(dn.get(addresses[0]).is_ok());
  ASSERT_TRUE(dfs.repair_node(group[1]).is_ok());
  EXPECT_TRUE(dn.get(addresses[0]).is_ok());
  EXPECT_TRUE(dfs.scrub().is_ok());
}

// ----------------------------------------------------------- checkers

TEST(ChaosInvariants, CleanClusterPassesAllCheckers) {
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfs dfs(topology, 9);
  const Buffer data = random_buffer(64 * 20, 6);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 64).is_ok());

  TruthMap truth;
  FileTruth file;
  file.expected = data;
  file.block_size = 64;
  truth["/f"] = std::move(file);

  std::vector<std::string> violations;
  check_all(dfs, truth, violations);
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ChaosInvariants, FingerprintTracksByteChanges) {
  cluster::Topology topology;
  topology.num_nodes = 21;
  topology.num_racks = 3;
  hdfs::MiniDfs dfs(topology, 9);
  const Buffer data = random_buffer(64 * 10, 7);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", 64).is_ok());
  const std::uint64_t before = storage_fingerprint(dfs);

  const cluster::StripeId stripe = dfs.stat("/f")->stripes[0];
  auto& dn = dfs.datanode(dfs.catalog().node_of({stripe, 0}));
  ASSERT_TRUE(dn.corrupt({stripe, 0}, 0).is_ok());
  EXPECT_NE(storage_fingerprint(dfs), before);
}

}  // namespace
}  // namespace dblrep::chaos
