// Adaptive tiering tests: heat tracking fed by real client traffic, the
// heat -> tier policy (hysteresis, multi-rung demotes), the TieringEngine's
// publish-then-delete transitions (idempotence, promote/demote round-trip
// byte identity per ladder scheme, mid-transition crash readability, delete
// races), the kRetier transfer classing of re-encode streams, and the
// Zipfian workload skew the engine is built for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "hdfs/minidfs.h"
#include "hdfs/raidnode.h"
#include "hdfs/workload_driver.h"
#include "net/transfer.h"
#include "tier/engine.h"

namespace dblrep::tier {
namespace {

constexpr std::size_t kBlockSize = 64;

cluster::Topology topology(std::size_t nodes = 21, std::size_t racks = 3) {
  cluster::Topology t;
  t.num_nodes = nodes;
  t.num_racks = racks;
  return t;
}

hdfs::MiniDfs make_dfs(hdfs::MiniDfsOptions options = {},
                       std::uint64_t seed = 7) {
  return hdfs::MiniDfs(topology(), seed, &exec::inline_pool(), options);
}

// ------------------------------------------------------------ HeatTracker

TEST(HeatTrackerTest, AccruesAndDecaysWithHalfLife) {
  HeatTracker heat({.half_life_s = 10.0});
  heat.record_access("/f", 1000);
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 1000.0);
  heat.advance_to(10.0);
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 500.0);
  heat.advance_to(20.0);
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 250.0);
  // The clock is monotonic: rewinding is a no-op, not a re-heat.
  heat.advance_to(5.0);
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 250.0);
  EXPECT_DOUBLE_EQ(heat.heat("/untracked"), 0.0);
}

TEST(HeatTrackerTest, HalfLifeEnvKnobApplies) {
  ASSERT_EQ(setenv("DBLREP_TIER_HALF_LIFE_S", "10", 1), 0);
  HeatTracker heat;  // half_life_s = 0 defers to the env knob
  unsetenv("DBLREP_TIER_HALF_LIFE_S");
  heat.record_access("/f", 100);
  heat.advance_to(10.0);
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 50.0);
}

TEST(HeatTrackerTest, NamespaceEventsFollowTheFile) {
  HeatTracker heat({.half_life_s = 60.0});
  heat.record_access("/a", 100);
  heat.on_rename("/a", "/b");
  EXPECT_FALSE(heat.tracked("/a"));
  EXPECT_DOUBLE_EQ(heat.heat("/b"), 100.0);
  heat.on_delete("/b");
  EXPECT_EQ(heat.size(), 0u);

  // replace(from, to): the temp's accrued (write) heat is scaffolding and
  // is dropped; the published path keeps its own history.
  heat.record_access("/f", 500);
  heat.record_access("/f.raid-tmp", 9999);
  heat.on_replace("/f.raid-tmp", "/f");
  EXPECT_FALSE(heat.tracked("/f.raid-tmp"));
  EXPECT_DOUBLE_EQ(heat.heat("/f"), 500.0);
}

TEST(HeatTrackerTest, SnapshotIsHottestFirstAndDeterministic) {
  HeatTracker heat({.half_life_s = 60.0});
  heat.record_access("/cold", 10);
  heat.record_access("/hot", 1000);
  heat.record_access("/warm", 100);
  const auto samples = heat.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].path, "/hot");
  EXPECT_EQ(samples[1].path, "/warm");
  EXPECT_EQ(samples[2].path, "/cold");
}

TEST(HeatTrackerTest, ObservesClientTrafficButNotRetierStreams) {
  HeatTracker heat({.half_life_s = 60.0});
  hdfs::MiniDfsOptions options;
  options.access_observer = &heat;
  hdfs::MiniDfs dfs = make_dfs(options);
  const Buffer data = random_buffer(kBlockSize * 20, 1);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());
  const double after_write = heat.heat("/f");
  EXPECT_GT(after_write, 0.0);

  ASSERT_TRUE(dfs.read_file("/f").is_ok());
  const double after_read = heat.heat("/f");
  EXPECT_GT(after_read, after_write);

  // A tier transition streams the whole file under kRetier: the file being
  // cooled must not re-heat, and the temp's heat must not linger.
  hdfs::RaidNode raid(dfs);
  ASSERT_TRUE(raid.raid_file("/f", "3-rep").is_ok());
  EXPECT_DOUBLE_EQ(heat.heat("/f"), after_read);
  EXPECT_FALSE(heat.tracked("/f.raid-tmp"));
}

// ---------------------------------------------------------- TieringPolicy

TEST(TieringPolicyTest, MapsHeatToLadderRungs) {
  TieringPolicy policy({.demote_below = {4096, 1024}});
  ASSERT_EQ(policy.num_tiers(), 3u);
  // Hot files stay replicated; lukewarm files settle mid-ladder; cold
  // files fall through both thresholds in a single decision.
  EXPECT_EQ(policy.target_tier(10000, 0), 0u);
  EXPECT_EQ(policy.target_tier(2000, 0), 1u);
  EXPECT_EQ(policy.target_tier(0, 0), 2u);
  EXPECT_EQ(policy.target_tier(500, 1), 2u);
}

TEST(TieringPolicyTest, PromotionRequiresHysteresis) {
  TieringPolicy policy(
      {.demote_below = {4096, 1024}, .promote_hysteresis = 4.0});
  // Just above the demotion threshold is inside the anti-thrash band: the
  // file stays where it is in both directions.
  EXPECT_EQ(policy.target_tier(5000, 1), 1u);
  EXPECT_EQ(policy.target_tier(5000, 0), 0u);
  // Past threshold x hysteresis it promotes -- from the bottom rung all the
  // way up when hot enough.
  EXPECT_EQ(policy.target_tier(4096 * 4, 1), 0u);
  EXPECT_EQ(policy.target_tier(4096 * 4, 2), 0u);
  EXPECT_EQ(policy.target_tier(1024 * 4, 2), 1u);
}

TEST(TieringPolicyTest, ThresholdEnvKnobsApply) {
  ASSERT_EQ(setenv("DBLREP_TIER_HOT", "100", 1), 0);
  ASSERT_EQ(setenv("DBLREP_TIER_COLD", "10", 1), 0);
  TieringPolicy policy;  // empty demote_below defers to the env knobs
  unsetenv("DBLREP_TIER_HOT");
  unsetenv("DBLREP_TIER_COLD");
  EXPECT_DOUBLE_EQ(policy.demote_threshold(0), 100.0);
  EXPECT_DOUBLE_EQ(policy.demote_threshold(1), 10.0);
}

TEST(TieringPolicyTest, OffLadderSpecsAreRejected) {
  TieringPolicy policy;
  EXPECT_TRUE(policy.tier_of("rs-10-4").is_ok());
  EXPECT_FALSE(policy.tier_of("pentagon").is_ok());
  EXPECT_FALSE(policy.tier_of("").is_ok());
}

// ---------------------------------------------------------- TieringEngine

struct Cluster {
  HeatTracker heat{HeatOptions{.half_life_s = 60.0}};
  hdfs::MiniDfs dfs;
  TieringEngine engine;

  explicit Cluster(TieringPolicyOptions policy = {},
                   TieringEngineOptions options = {})
      : dfs(make_dfs(with_observer())),
        engine(dfs, heat, TieringPolicy(std::move(policy)), options) {}

  hdfs::MiniDfsOptions with_observer() {
    hdfs::MiniDfsOptions options;
    options.access_observer = &heat;
    return options;
  }
};

TEST(TieringEngineTest, DemotesColdAndPromotesReheatedFiles) {
  Cluster c;
  const Buffer data = random_buffer(kBlockSize * 20, 2);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "3-rep", kBlockSize).is_ok());

  // Cold from the start (the write's heat decays to ~0 after many half
  // lives): one pass demotes straight to the bottom rung.
  auto report = c.engine.run_once(/*now_s=*/600.0);
  EXPECT_EQ(report.transitions, 1u);
  EXPECT_EQ(report.demotions, 1u);
  auto info = c.dfs.stat("/f");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->code_spec, "rs-10-4");

  // Idempotence: at the same heat a second pass has nothing to do.
  report = c.engine.run_once(600.0);
  EXPECT_EQ(report.considered, 1u);
  EXPECT_EQ(report.transitions, 0u);
  EXPECT_EQ(report.errors, 0u);

  // Re-heat past hysteresis: the file promotes back and still reads
  // byte-identical after the full demote/promote cycle.
  c.heat.record_access("/f", 1u << 20);
  report = c.engine.run_once(601.0);
  EXPECT_EQ(report.promotions, 1u);
  info = c.dfs.stat("/f");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info->code_spec, "3-rep");
  const auto read = c.dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);
}

TEST(TieringEngineTest, RoundTripIsByteIdenticalPerLadderScheme) {
  Cluster c;
  const Buffer data = random_buffer(kBlockSize * 25, 3);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());
  for (const std::string& spec : c.engine.policy().ladder()) {
    if (spec == "rs-10-4") continue;
    ASSERT_TRUE(c.engine.force_transition("/f", spec).is_ok()) << spec;
    auto read = c.dfs.read_file("/f");
    ASSERT_TRUE(read.is_ok()) << spec;
    EXPECT_EQ(*read, data) << spec;
    ASSERT_TRUE(c.engine.force_transition("/f", "rs-10-4").is_ok()) << spec;
    read = c.dfs.read_file("/f");
    ASSERT_TRUE(read.is_ok()) << spec;
    EXPECT_EQ(*read, data) << spec;
  }
}

TEST(TieringEngineTest, ForceTransitionRejectsOffLadderTargets) {
  Cluster c;
  const Buffer data = random_buffer(kBlockSize * 10, 4);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());
  EXPECT_FALSE(c.engine.force_transition("/f", "pentagon").is_ok());
  EXPECT_EQ(c.dfs.stat("/f")->code_spec, "rs-10-4");
}

TEST(TieringEngineTest, ResidencyGateDefersFlappingFiles) {
  TieringPolicyOptions sticky;
  sticky.min_residency_s = 100.0;
  Cluster c(sticky);
  const Buffer data = random_buffer(kBlockSize * 20, 5);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "3-rep", kBlockSize).is_ok());
  auto report = c.engine.run_once(600.0);
  ASSERT_EQ(report.transitions, 1u);

  // Immediately re-heated: due for promotion, but inside the residency
  // window -- deferred, then executed once the window passes.
  c.heat.record_access("/f", 1u << 20);
  report = c.engine.run_once(601.0);
  EXPECT_EQ(report.transitions, 0u);
  EXPECT_EQ(report.skipped_residency, 1u);
  report = c.engine.run_once(701.0);
  EXPECT_EQ(report.promotions, 1u);
}

TEST(TieringEngineTest, PassBudgetCapsTransitionsPerPass) {
  TieringEngineOptions budget;
  budget.max_transitions_per_pass = 1;
  Cluster c({}, budget);
  const Buffer data = random_buffer(kBlockSize * 20, 6);
  ASSERT_TRUE(c.dfs.write_file("/a", data, "3-rep", kBlockSize).is_ok());
  ASSERT_TRUE(c.dfs.write_file("/b", data, "3-rep", kBlockSize).is_ok());
  auto report = c.engine.run_once(600.0);
  EXPECT_EQ(report.transitions, 1u);
  EXPECT_EQ(report.skipped_budget, 1u);
  report = c.engine.run_once(600.0);
  EXPECT_EQ(report.transitions, 1u);
}

TEST(TieringEngineTest, FileStaysReadableThroughMidTransitionCrash) {
  Cluster c;
  const Buffer data = random_buffer(kBlockSize * 20, 7);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());

  // Crash a node while the re-encode stream is in flight, and prove the
  // published layout still serves the exact bytes at that instant -- the
  // tentpole's always-readable invariant.
  bool checked_mid_stream = false;
  c.engine.set_mid_transition_hook([&] {
    ASSERT_TRUE(c.dfs.fail_node(0).is_ok());
    const auto mid = c.dfs.read_file("/f");
    ASSERT_TRUE(mid.is_ok()) << mid.status().to_string();
    EXPECT_EQ(*mid, data);
    checked_mid_stream = true;
  });
  const auto raided = c.engine.force_transition("/f", "3-rep");
  EXPECT_TRUE(checked_mid_stream);

  // Whether the transition survived the crash or aborted, the file reads
  // back byte-identical and no temp scaffolding is left behind.
  const auto read = c.dfs.read_file("/f");
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(*read, data);
  for (const std::string& path : c.dfs.list_files()) {
    EXPECT_FALSE(path.ends_with(".raid-tmp")) << path;
  }
  if (raided.is_ok()) {
    EXPECT_EQ(c.dfs.stat("/f")->code_spec, "3-rep");
  } else {
    EXPECT_EQ(c.dfs.stat("/f")->code_spec, "rs-10-4");
  }
}

TEST(TieringEngineTest, DeleteRacingATransitionWinsCleanly) {
  Cluster c;
  const Buffer data = random_buffer(kBlockSize * 20, 8);
  ASSERT_TRUE(c.dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());
  c.engine.set_mid_transition_hook([&] {
    ASSERT_TRUE(c.dfs.delete_file("/f").is_ok());
  });
  // publish-then-delete: the swap finds the published path gone, the
  // transition reports the loss, and its temp is cleaned up.
  const auto raided = c.engine.force_transition("/f", "3-rep");
  EXPECT_FALSE(raided.is_ok());
  EXPECT_TRUE(c.dfs.list_files().empty());
}

TEST(TieringEngineTest, ConcurrentReadersSeeConsistentBytesThroughout) {
  Cluster c;
  hdfs::MiniDfs& dfs = c.dfs;
  TieringEngine& engine = c.engine;
  const Buffer data = random_buffer(kBlockSize * 20, 9);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());

  // Real reader threads race the swap's metadata handoff (the TSan job
  // runs this suite). Readers yield between reads so the transition
  // stream is raced, not starved.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> good_reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto read = dfs.read_file("/f");
        // Every read -- before, during, or after a swap -- must return
        // the exact contents: the path is always published.
        ASSERT_TRUE(read.is_ok()) << read.status().to_string();
        ASSERT_EQ(*read, data);
        good_reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }
  ASSERT_TRUE(engine.force_transition("/f", "3-rep").is_ok());
  ASSERT_TRUE(engine.force_transition("/f", "heptagon-local").is_ok());
  ASSERT_TRUE(engine.force_transition("/f", "rs-10-4").is_ok());
  // Let every reader land at least one read against the final layout
  // before stopping (the transitions can outrun a reader's first pass).
  while (good_reads.load(std::memory_order_relaxed) < 3) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(good_reads.load(), 0u);
  EXPECT_EQ(*dfs.read_file("/f"), data);
}

// ------------------------------------------------- retier transfer class

TEST(TieringEngineTest, TransitionTrafficIsRetierClassed) {
  net::TransferLog log;
  HeatTracker heat({.half_life_s = 60.0});
  hdfs::MiniDfsOptions options;
  options.transfer_log = &log;
  options.access_observer = &heat;
  hdfs::MiniDfs dfs = make_dfs(options);
  TieringEngine engine(dfs, heat, TieringPolicy{});
  const Buffer data = random_buffer(kBlockSize * 20, 10);
  ASSERT_TRUE(dfs.write_file("/f", data, "rs-10-4", kBlockSize).is_ok());
  (void)log.drain();  // discard the foreground write's records

  ASSERT_TRUE(engine.force_transition("/f", "heptagon-local").is_ok());
  const auto records = log.drain();
  ASSERT_FALSE(records.empty());
  for (const auto& record : records) {
    EXPECT_EQ(record.cls, net::TransferClass::kRetier);
  }
  EXPECT_TRUE(net::is_repair_class(net::TransferClass::kRetier));
  EXPECT_STREQ(net::to_string(net::TransferClass::kRetier), "retier");
}

// ------------------------------------------------------- Zipfian workload

TEST(ZipfWorkloadTest, ZeroExponentIsUniform) {
  const hdfs::ZipfSampler zipf(8, 0.0);
  for (std::size_t rank = 0; rank < 8; ++rank) {
    EXPECT_NEAR(zipf.probability(rank), 1.0 / 8, 1e-12);
  }
}

TEST(ZipfWorkloadTest, SkewIsMonotoneInRankAndExponent) {
  const hdfs::ZipfSampler zipf(16, 1.0);
  for (std::size_t rank = 0; rank + 1 < 16; ++rank) {
    EXPECT_GT(zipf.probability(rank), zipf.probability(rank + 1));
  }
  // A sharper exponent concentrates more mass on the head.
  const hdfs::ZipfSampler sharper(16, 2.0);
  EXPECT_GT(sharper.probability(0), zipf.probability(0));

  // Empirically: rank 0 dominates the tail by roughly the analytic ratio.
  Rng rng(42);
  std::vector<std::size_t> counts(16, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[15] * 4);
}

TEST(ZipfWorkloadTest, SkewedDriverRunsCleanAndIsDeterministic) {
  const auto run = [](double zipf_s) {
    hdfs::MiniDfs dfs = make_dfs();
    hdfs::WorkloadOptions options;
    options.clients = 2;
    options.ops_per_client = 30;
    options.block_size = kBlockSize;
    options.preload_files = 6;
    options.pread_fraction = 0.2;
    options.zipf_s = zipf_s;
    options.seed = 11;
    hdfs::WorkloadDriver driver(dfs, options);
    EXPECT_TRUE(driver.preload().is_ok());
    const auto report = driver.run();
    EXPECT_TRUE(report.is_ok());
    EXPECT_EQ(report->total_errors(), 0u);
    return report->traffic_total_bytes;
  };
  // Same seed, same skew -> identical traffic; the skew knob itself is
  // exercised at s = 0 (the byte-identical legacy path) and s > 0.
  EXPECT_EQ(run(0.0), run(0.0));
  EXPECT_EQ(run(1.2), run(1.2));
}

}  // namespace
}  // namespace dblrep::tier
