// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/event_queue.h"

namespace dblrep::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, DeadlineStopsWithoutDroppingEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  const std::size_t ran = q.run(5.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastIsContractViolation) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_after(-0.5, [] {}), ContractViolation);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(0.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace dblrep::sim
