// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "sim/event_queue.h"

namespace dblrep::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, DeadlineStopsWithoutDroppingEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  const std::size_t ran = q.run(5.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastIsContractViolation) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(1.0, [] {}), ContractViolation);
  EXPECT_THROW(q.schedule_after(-0.5, [] {}), ContractViolation);
}

TEST(EventQueue, TiesBreakFifoAcrossScheduleVariants) {
  // schedule_at and schedule_after landing on the same timestamp share one
  // FIFO: insertion order wins regardless of which API queued the event.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5.0, [&] { order.push_back(0); });
  q.schedule_after(5.0, [&] { order.push_back(1); });  // now == 0 -> t = 5
  q.schedule_at(5.0, [&] { order.push_back(2); });
  q.schedule_after(5.0, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, DeadlineBoundaryIsInclusive) {
  // run(deadline) executes events AT the deadline; only strictly-later
  // events stay queued. The clock advances to the last executed event, not
  // to the deadline itself.
  EventQueue q;
  int fired = 0;
  q.schedule_at(5.0, [&] { ++fired; });
  q.schedule_at(5.0 + 1e-9, [&] { ++fired; });
  const std::size_t ran = q.run(5.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ReentrantScheduleAfterFromCallback) {
  // A callback scheduling at zero delay runs later the same instant (after
  // everything already queued at that time), and a reentrant chain
  // interleaves correctly with pre-queued events at later times.
  EventQueue q;
  std::vector<std::pair<double, int>> order;
  q.schedule_at(1.0, [&] {
    order.emplace_back(q.now(), 0);
    q.schedule_after(0.0, [&] { order.emplace_back(q.now(), 2); });
    q.schedule_after(1.0, [&] { order.emplace_back(q.now(), 3); });
  });
  q.schedule_at(1.0, [&] { order.emplace_back(q.now(), 1); });
  q.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], (std::pair<double, int>{1.0, 0}));
  EXPECT_EQ(order[1], (std::pair<double, int>{1.0, 1}));  // pre-queued first
  EXPECT_EQ(order[2], (std::pair<double, int>{1.0, 2}));  // zero-delay after
  EXPECT_EQ(order[3], (std::pair<double, int>{2.0, 3}));
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(0.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace dblrep::sim
